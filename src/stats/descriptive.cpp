#include "src/stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace psga::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double min_of(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = xs.size() / 2;
  return (xs.size() % 2 == 1) ? xs[mid] : 0.5 * (xs[mid - 1] + xs[mid]);
}

double rpd(double value, double reference) {
  if (reference == 0.0) return 0.0;
  return 100.0 * (value - reference) / reference;
}

double mean_rpd(std::span<const double> values, double reference) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += rpd(v, reference);
  return acc / static_cast<double>(values.size());
}

std::vector<Speedup> speedup_table(
    const std::vector<std::pair<int, double>>& runs) {
  std::vector<Speedup> out;
  out.reserve(runs.size());
  const double base = runs.empty() ? 1.0 : runs.front().second;
  for (const auto& [workers, seconds] : runs) {
    Speedup s;
    s.workers = workers;
    s.seconds = seconds;
    s.speedup = seconds > 0.0 ? base / seconds : 0.0;
    s.efficiency = workers > 0 ? s.speedup / workers : 0.0;
    out.push_back(s);
  }
  return out;
}

std::vector<std::pair<double, double>> pareto_front_2d(
    std::vector<std::pair<double, double>> points) {
  std::sort(points.begin(), points.end());
  std::vector<std::pair<double, double>> front;
  double best_second = std::numeric_limits<double>::infinity();
  for (const auto& p : points) {
    if (p.second < best_second) {
      // Drop an earlier point with equal first coordinate (it is weakly
      // dominated by this one).
      if (!front.empty() && front.back().first == p.first) front.pop_back();
      front.push_back(p);
      best_second = p.second;
    }
  }
  return front;
}

double hypervolume_2d(std::vector<std::pair<double, double>> front,
                      std::pair<double, double> reference) {
  front = pareto_front_2d(std::move(front));
  double volume = 0.0;
  double prev_x = reference.first;
  // Sweep from the largest first-objective point leftwards; each point
  // owns the strip [x, prev_x) at height (ref_y - y).
  for (auto it = front.rbegin(); it != front.rend(); ++it) {
    const double x = std::min(it->first, reference.first);
    const double y = it->second;
    if (x >= prev_x || y >= reference.second) continue;
    volume += (prev_x - x) * (reference.second - y);
    prev_x = x;
  }
  return volume;
}

}  // namespace psga::stats
