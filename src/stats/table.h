// Minimal fixed-column ASCII table + CSV writer for experiment output.
//
// Every experiment bench prints one of these with a "paper" column and a
// "measured" column so EXPERIMENTS.md rows can be regenerated verbatim.
#pragma once

#include <string>
#include <vector>

namespace psga::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double value, int precision = 2);

  /// Renders with aligned columns and a header rule.
  std::string to_string() const;

  /// Renders as CSV (no quoting needed for our cell contents).
  std::string to_csv() const;

  /// Prints to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace psga::stats
