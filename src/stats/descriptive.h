// Descriptive statistics used by the experiment harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace psga::stats {

double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);  ///< sample stddev (n-1)
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);
double median(std::vector<double> xs);  ///< by value: needs to sort

/// Relative percentage deviation of `value` to `reference`:
/// 100 * (value - reference) / reference. The standard quality metric in
/// the shop-scheduling literature (distance to best-known solution).
double rpd(double value, double reference);

/// Mean RPD of a sample against a reference.
double mean_rpd(std::span<const double> values, double reference);

/// Parallel speedup & efficiency records used by the speedup experiments.
struct Speedup {
  int workers = 1;
  double seconds = 0.0;
  double speedup = 1.0;     ///< t(1) / t(workers)
  double efficiency = 1.0;  ///< speedup / workers
};

/// Builds the speedup table from {workers, seconds} pairs; entry 0 must be
/// the single-worker measurement.
std::vector<Speedup> speedup_table(const std::vector<std::pair<int, double>>& runs);

/// Dominated hypervolume of a bi-objective MINIMIZATION front with respect
/// to a reference (nadir) point: the area dominated by the front inside
/// the box [0, ref). Points outside the box contribute nothing. The
/// standard Pareto-quality indicator used for fronts like [38]'s.
double hypervolume_2d(std::vector<std::pair<double, double>> front,
                      std::pair<double, double> reference);

/// Filters a bi-objective minimization point set to its non-dominated
/// subset, sorted by the first objective.
std::vector<std::pair<double, double>> pareto_front_2d(
    std::vector<std::pair<double, double>> points);

}  // namespace psga::stats
