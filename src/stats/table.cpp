#include "src/stats/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace psga::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << cells[c] << std::string(widths[c] - cells[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace psga::stats
