// Parallel, resumable sweep dispatch: run an expanded SweepSpec against
// a live psgad daemon with N jobs in flight, producing the same
// exp::SweepResult — and byte-compatible JSONL telemetry — as the
// in-process SweepRunner.
//
// Each worker owns one Client connection and pulls cells from an atomic
// cursor (the submit-ahead window is exactly `jobs` cells in flight).
// A cell is submit → watch: the daemon's watch stream is translated
// line-for-line into the sweep telemetry schema (`job` → `cell`; the
// daemon's run_begin/job_end are replaced by the runner's own
// run_begin/cell records, including the stable cell hash), so a
// dispatched `--telemetry` file is interchangeable with an in-process
// one — same records, same resume semantics, same psga_report input.
//
// Fault model, mirroring SweepRunner's fail-soft cells:
//  - server-side rejection (bad spec, unknown engine) → the cell
//    records a structured error and the sweep carries on;
//  - transport failure (daemon restarting, connection lost) → bounded
//    reconnect/retry with exponential backoff; watch replays from the
//    job's start so no telemetry is lost, and a restarted daemon (which
//    forgot the job) gets the cell resubmitted — seeds are baked into
//    the cell spec, so the re-run is bit-identical;
//  - retries exhausted → the cell fails in-memory but writes no `cell`
//    record, so a later --resume re-runs it instead of trusting an
//    environmental failure.
#pragma once

#include <functional>
#include <string>

#include "src/exp/sweep_runner.h"
#include "src/obs/metrics.h"

namespace psga::svc {

struct DispatchOptions {
  /// Cells in flight against the daemon (worker connections).
  int jobs = 1;
  /// Optional JSONL sink; receives the sweep telemetry schema (each
  /// cell's lines are flushed contiguously after the cell finishes, so
  /// a killed dispatch loses at most the in-flight cells).
  exp::TelemetrySink* telemetry = nullptr;
  /// Finished cells from a previous run (exp::scan_finished_cells):
  /// matched cells are reconstructed, not resubmitted.
  const exp::FinishedCells* resume = nullptr;
  /// Transport retry budget per cell (connect + reconnect attempts).
  int attempts = 5;
  /// Initial backoff between retries; doubles per attempt.
  int backoff_ms = 100;
  /// Called after every finished cell (any worker, serialized).
  std::function<void(const exp::CellResult&, int done, int total)> progress;
  /// Optional registry (not owned) for dispatch health counters:
  ///   dispatch.transport_errors  connection/watch failures seen
  ///   dispatch.retries           cell attempts burned on failures
  ///   dispatch.backoffs          backoff sleeps taken
  ///   dispatch.resubmits         jobs resubmitted after daemon restarts
  obs::Registry* metrics = nullptr;
};

/// Dispatches one sweep to the daemon at `socket_path`. Throws
/// std::invalid_argument for unrunnable sweeps (empty grid — the same
/// contract as SweepRunner::run); per-cell failures are fail-soft in
/// the returned result.
exp::SweepResult dispatch_sweep(const exp::SweepSpec& sweep,
                                const std::string& socket_path,
                                const DispatchOptions& options = {});

/// The full RunSpec of one expanded cell: the cell's combined tokens
/// with the @instances entry folded in as an instance= token — the same
/// folding SweepRunner's planner performs, so a dispatched cell solves
/// the identical spec.
std::string cell_runspec(const exp::SweepCell& cell);

}  // namespace psga::svc
