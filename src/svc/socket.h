// Minimal Unix-domain stream sockets for the solver service: an RAII fd,
// a listener, a connector, and a buffered newline-framed reader.
//
// The service speaks newline-delimited JSON over SOCK_STREAM, so this
// layer only needs four things: bind/listen/accept, connect, write a
// whole line, read a whole line. Reads poll with a short timeout and
// re-check a caller-supplied stop predicate, which is how every blocking
// server thread stays interruptible without cross-thread fd shutdown
// games; writes use MSG_NOSIGNAL so a client that vanished mid-stream
// surfaces as an error return, not SIGPIPE.
#pragma once

#include <functional>
#include <string>

namespace psga::svc {

/// Owning file descriptor (move-only). -1 = empty.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { close(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

/// Waits until `fd` is readable. Returns false on timeout, true when
/// readable (or the peer hung up — the subsequent read reports EOF).
/// timeout_ms < 0 blocks indefinitely.
bool wait_readable(int fd, int timeout_ms);

/// Sends all of `text` (MSG_NOSIGNAL). Returns false when the peer is
/// gone (EPIPE/ECONNRESET) or on any other write error.
bool write_all(int fd, const std::string& text);

/// write_all of `line` + '\n'.
bool write_line(int fd, const std::string& line);

/// Buffered newline framing over a non-owned fd. One reader per fd —
/// the buffer holds bytes past the last returned line.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Reads the next '\n'-terminated line (newline stripped). Returns
  /// false on EOF/error, or when `interrupted` (polled between 100 ms
  /// waits) returns true before a full line arrives.
  bool read_line(std::string& out,
                 const std::function<bool()>& interrupted = {});

 private:
  int fd_;
  std::string buffer_;
};

/// A bound + listening Unix-domain socket. Unlinks the path on bind (a
/// stale socket file from a crashed daemon would otherwise block every
/// restart) and again on destruction.
class UnixListener {
 public:
  /// Throws std::runtime_error (with errno text) when the path is too
  /// long for sockaddr_un or bind/listen fail.
  explicit UnixListener(const std::string& path);
  ~UnixListener();

  /// Accepts one connection; empty Fd when `interrupted` (polled every
  /// 100 ms, same cadence as LineReader) fires first or accept fails.
  /// Without a predicate, blocks until a connection arrives.
  Fd accept(const std::function<bool()>& interrupted = {});

  const std::string& path() const { return path_; }
  int fd() const { return fd_.get(); }

 private:
  std::string path_;
  Fd fd_;
};

/// Connects to a listening Unix-domain socket; throws std::runtime_error
/// (with errno text) when nothing listens at `path`.
Fd unix_connect(const std::string& path);

}  // namespace psga::svc
