// The daemon's multi-tenant job table: admission control, a priority
// queue feeding worker lanes, per-job cancellation, and the telemetry
// log that `watch` clients replay and follow.
//
// Concurrency model: one mutex guards the whole table; two condition
// variables split the waiters — `work_` wakes worker lanes when a job
// is queued (or the table starts draining), `update_` broadcasts every
// state change and telemetry append to watchers and wait()ers. Jobs are
// shared_ptrs so a worker can run one outside the lock while clients
// snapshot it; everything mutable on a Job is only touched under the
// table mutex except `cancel`, an atomic the run observer polls from
// the engine thread without locking.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/ga/result.h"
#include "src/obs/metrics.h"
#include "src/svc/protocol.h"

namespace psga::svc {

/// One submitted job. Fields other than `cancel` are guarded by the
/// owning JobTable's mutex.
struct Job {
  long long id = 0;
  std::string spec;  ///< RunSpec tokens as submitted
  int priority = 0;
  ga::StopCondition stop;  ///< effective (policy-clamped) budget
  JobState state = JobState::kQueued;
  std::atomic<bool> cancel{false};
  std::string error;
  ga::RunResult result;
  double seconds = 0.0;
  /// The job's full JSONL event log (schema_version-stamped lines).
  /// Watchers replay from index 0, then follow appends; `log_done`
  /// means no further lines will arrive (set with the terminal state,
  /// after the job_end record lands).
  std::vector<std::string> log;
  bool log_done = false;
  /// Steady-clock stamps (ns) for the queue/run latency histograms:
  /// set at submit and at the queued→running transition.
  std::uint64_t submitted_ns = 0;
  std::uint64_t started_ns = 0;
};

using JobPtr = std::shared_ptr<Job>;

/// Thrown by submit() when admission control rejects a job (queue at
/// max_queued, or the table is draining).
struct AdmissionError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class JobTable {
 public:
  explicit JobTable(int max_queued) : max_queued_(max_queued) {}

  /// Attaches the daemon's metrics registry (not owned; must outlive the
  /// table). Resolves every handle once:
  ///   svc.queue.depth                            gauge
  ///   svc.jobs.{admitted,rejected,completed,failed,cancelled}  counters
  ///   svc.job.{queue_ns,run_ns,total_ns}         histograms
  /// Call before serving traffic; null detaches.
  void set_metrics(obs::Registry* registry);

  /// Admits a job or throws AdmissionError (queue full / draining).
  /// The caller pre-validates and pre-clamps spec and stop.
  JobPtr submit(std::string spec, int priority,
                const ga::StopCondition& stop);

  /// Blocks until a queued job is available (highest priority first,
  /// FIFO within a priority), marks it running and returns it; nullptr
  /// once the table is draining and the queue is empty (the worker's
  /// signal to exit).
  JobPtr next_job();

  /// Terminal transition for a job the caller ran. Appends nothing —
  /// the runner writes the job_end record via append_log first.
  void finish(const JobPtr& job, JobState state, ga::RunResult result,
              std::string error, double seconds);

  /// Cancels `id`: queued jobs flip to cancelled immediately (their log
  /// is closed with a job_end record by the table); running jobs get
  /// their cancel flag set and stop at the next generation boundary.
  /// Returns the job's state after the call, or nullopt for unknown ids.
  std::optional<JobState> request_cancel(long long id);

  /// Stops admission, cancels every queued job, and wakes all workers.
  /// Returns the number of queued jobs cancelled. Idempotent.
  int drain();
  bool draining() const;

  /// Appends a telemetry line to the job's log and wakes watchers.
  void append_log(const JobPtr& job, const std::string& line);

  /// Copies log lines starting at `cursor` (advancing it). Blocks until
  /// new lines arrive or the log closes; returns false when the log is
  /// closed and fully consumed.
  bool follow_log(const JobPtr& job, std::size_t& cursor,
                  std::vector<std::string>& out);

  /// Blocks until the job is terminal.
  void wait_terminal(const JobPtr& job);
  /// Bounded wait: blocks up to `seconds` (<= 0 waits forever). Returns
  /// whether the job reached a terminal state before the deadline.
  bool wait_terminal_for(const JobPtr& job, double seconds);

  JobPtr find(long long id) const;
  JobRecord snapshot(long long id) const;  ///< throws for unknown ids
  std::vector<JobRecord> snapshot_all() const;
  /// Jobs per state, protocol order (queued..cancelled).
  std::array<int, 5> counts() const;

  void set_max_queued(int max_queued);
  int max_queued() const;

 private:
  static JobRecord snapshot_locked(const Job& job);
  int queued_count_locked() const;
  void update_queue_depth_locked() const;
  void count_terminal(JobState state) const;

  // Resolved metric handles (null when no registry is attached). The
  // handles write lock-free, so counting happens wherever convenient —
  // inside or outside the table mutex.
  obs::Gauge* queue_depth_ = nullptr;
  obs::Counter* jobs_admitted_ = nullptr;
  obs::Counter* jobs_rejected_ = nullptr;
  obs::Counter* jobs_completed_ = nullptr;
  obs::Counter* jobs_failed_ = nullptr;
  obs::Counter* jobs_cancelled_ = nullptr;
  obs::Histogram* queue_ns_ = nullptr;
  obs::Histogram* run_ns_ = nullptr;
  obs::Histogram* total_ns_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable work_;    ///< workers: queue non-empty / draining
  std::condition_variable update_;  ///< watchers + wait()ers
  std::map<long long, JobPtr> jobs_;
  std::vector<JobPtr> queue_;  ///< submission order; next_job scans by priority
  long long next_id_ = 1;
  int max_queued_;
  bool draining_ = false;
};

}  // namespace psga::svc
