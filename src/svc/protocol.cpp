#include "src/svc/protocol.h"

#include <stdexcept>

#include "src/exp/telemetry.h"

namespace psga::svc {

using exp::Json;

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::optional<JobState> job_state_from_string(const std::string& text) {
  if (text == "queued") return JobState::kQueued;
  if (text == "running") return JobState::kRunning;
  if (text == "done") return JobState::kDone;
  if (text == "failed") return JobState::kFailed;
  if (text == "cancelled") return JobState::kCancelled;
  return std::nullopt;
}

Json job_to_json(const JobRecord& record) {
  Json job = Json::object();
  job.set("id", Json::integer(record.id))
      .set("state", Json::string(to_string(record.state)))
      .set("spec", Json::string(record.spec))
      .set("priority", Json::integer(record.priority));
  Json stop = Json::object();
  stop.set("generations", Json::integer(record.stop.max_generations));
  if (record.stop.max_seconds > 0) {
    stop.set("seconds", Json::number(record.stop.max_seconds));
  }
  if (record.stop.max_evaluations > 0) {
    stop.set("evaluations", Json::integer(record.stop.max_evaluations));
  }
  if (record.stop.target_objective >= 0) {
    stop.set("target", Json::number(record.stop.target_objective));
  }
  job.set("stop", std::move(stop));
  if (!record.error.empty()) job.set("error", Json::string(record.error));
  if (record.state == JobState::kDone ||
      record.state == JobState::kCancelled) {
    // Cancelled jobs report the best-so-far at the stop boundary — the
    // anytime answer the online-replanning workload will lean on.
    job.set("best_objective", Json::number(record.best_objective))
        .set("generations", Json::integer(record.generations))
        .set("evaluations", Json::integer(record.evaluations));
  }
  if (record.seconds > 0) job.set("seconds", Json::number(record.seconds));
  if (record.cache) {
    job.set("cache",
            Json::object()
                .set("hits", Json::integer(record.cache->hits))
                .set("misses", Json::integer(record.cache->misses))
                .set("inserts", Json::integer(record.cache->inserts))
                .set("evictions", Json::integer(record.cache->evictions)));
  }
  return job;
}

JobRecord job_from_json(const Json& json) {
  const Json* id = json.find("id");
  const Json* state = json.find("state");
  if (id == nullptr || state == nullptr) {
    throw std::invalid_argument("job record missing id/state: " + json.dump());
  }
  const std::optional<JobState> parsed =
      job_state_from_string(state->as_string());
  if (!parsed) {
    throw std::invalid_argument("job record has unknown state '" +
                                state->as_string() + "'");
  }
  JobRecord record;
  record.id = id->as_i64();
  record.state = *parsed;
  record.spec = json.string_or("spec", "");
  record.priority = static_cast<int>(json.number_or("priority", 0));
  record.error = json.string_or("error", "");
  record.best_objective = json.number_or("best_objective", 0.0);
  record.generations = static_cast<int>(json.number_or("generations", 0));
  record.evaluations =
      static_cast<long long>(json.number_or("evaluations", 0));
  record.seconds = json.number_or("seconds", 0.0);
  if (const Json* cache = json.find("cache"); cache != nullptr) {
    ga::EvalCacheStats stats;
    stats.hits = static_cast<long long>(cache->number_or("hits", 0));
    stats.misses = static_cast<long long>(cache->number_or("misses", 0));
    stats.inserts = static_cast<long long>(cache->number_or("inserts", 0));
    stats.evictions = static_cast<long long>(cache->number_or("evictions", 0));
    record.cache = stats;
  }
  if (const Json* stop = json.find("stop"); stop != nullptr) {
    record.stop.max_generations = static_cast<int>(
        stop->number_or("generations", record.stop.max_generations));
    record.stop.max_seconds = stop->number_or("seconds", 0.0);
    record.stop.max_evaluations =
        static_cast<long long>(stop->number_or("evaluations", 0));
    record.stop.target_objective = stop->number_or("target", -1.0);
  }
  return record;
}

Json submit_request(const std::string& spec, const SubmitOptions& options) {
  Json request = Json::object();
  request.set("op", Json::string("submit")).set("spec", Json::string(spec));
  if (options.priority != 0) {
    request.set("priority", Json::integer(options.priority));
  }
  if (options.generations) {
    request.set("generations", Json::integer(*options.generations));
  }
  if (options.seconds) request.set("seconds", Json::number(*options.seconds));
  if (options.evaluations) {
    request.set("evaluations", Json::integer(*options.evaluations));
  }
  if (options.target) request.set("target", Json::number(*options.target));
  return request;
}

Json session_open_request(const std::string& instance,
                          const SessionOptions& options) {
  Json request = Json::object();
  request.set("op", Json::string("session_open"))
      .set("instance", Json::string(instance));
  if (!options.solver.empty()) {
    request.set("solver", Json::string(options.solver));
  }
  if (options.generations) {
    request.set("generations", Json::integer(*options.generations));
  }
  if (options.evaluations) {
    request.set("evaluations", Json::integer(*options.evaluations));
  }
  if (options.slo_seconds) {
    request.set("slo", Json::number(*options.slo_seconds));
  }
  if (options.seed) request.set("seed", Json::uinteger(*options.seed));
  if (options.warm) request.set("warm", Json::boolean(*options.warm));
  if (options.immigrants) {
    request.set("immigrants", Json::number(*options.immigrants));
  }
  return request;
}

Json simple_request(const std::string& op) {
  return Json::object().set("op", Json::string(op));
}

Json id_request(const std::string& op, long long id) {
  return Json::object()
      .set("op", Json::string(op))
      .set("id", Json::integer(id));
}

Json ok_response() {
  return Json::object()
      .set("schema_version", Json::integer(exp::kTelemetrySchemaVersion))
      .set("ok", Json::boolean(true));
}

Json error_response(const std::string& message) {
  return Json::object()
      .set("schema_version", Json::integer(exp::kTelemetrySchemaVersion))
      .set("ok", Json::boolean(false))
      .set("error", Json::string(message));
}

}  // namespace psga::svc
