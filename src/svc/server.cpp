#include "src/svc/server.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <limits>
#include <sstream>

#include "src/exp/obs_json.h"
#include "src/exp/telemetry.h"
#include "src/ga/problem_registry.h"
#include "src/ga/solver.h"
#include "src/ga/spec_util.h"
#include "src/par/thread_pool.h"

// Stamped by the build system (CMake passes the active CMAKE_BUILD_TYPE)
// so `info` can report what kind of binary is serving.
#ifndef PSGA_BUILD_TYPE
#define PSGA_BUILD_TYPE "unknown"
#endif

namespace psga::svc {

namespace {

using exp::Json;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// TelemetrySink whose transport is the job's in-table log: watchers
/// replay and follow it over their sockets — the socket-backed leg of
/// the telemetry pipeline. Lines are stamped/serialized once here and
/// fanned out to any number of watch connections by the table.
class JobLogSink final : public exp::TelemetrySink {
 public:
  JobLogSink(JobTable& table, JobPtr job)
      : table_(&table), job_(std::move(job)) {}

 protected:
  void emit(const std::string& text) override {
    table_->append_log(job_, text);
  }

 private:
  JobTable* table_;
  JobPtr job_;
};

/// CellObserver's service twin: streams generation / improvement /
/// migration events keyed by `job`, and stops the engine at the next
/// generation boundary once the job's cancel flag is up (the
/// RunObserver early-stop hook is the whole cancellation mechanism).
class JobObserver final : public ga::RunObserver {
 public:
  JobObserver(exp::TelemetrySink& sink, const JobPtr& job, int every)
      : sink_(&sink), job_(job.get()), every_(every) {}

  bool on_generation(const ga::Engine& engine,
                     const ga::GenerationEvent& event) override {
    (void)engine;
    if (every_ > 0 && event.generation % every_ == 0) {
      sink_->write(Json::object()
                       .set("event", Json::string("generation"))
                       .set("job", Json::integer(job_->id))
                       .set("generation", Json::integer(event.generation))
                       .set("best", Json::number(event.best_objective))
                       .set("evaluations", Json::integer(event.evaluations))
                       .set("seconds", Json::number(event.seconds)));
    }
    return !job_->cancel.load(std::memory_order_relaxed);
  }

  void on_improvement(const ga::Engine& engine,
                      const ga::GenerationEvent& event) override {
    (void)engine;
    sink_->write(Json::object()
                     .set("event", Json::string("improvement"))
                     .set("job", Json::integer(job_->id))
                     .set("generation", Json::integer(event.generation))
                     .set("best", Json::number(event.best_objective)));
  }

  void on_migration(const ga::MigrationEvent& event) override {
    sink_->write(Json::object()
                     .set("event", Json::string("migration"))
                     .set("job", Json::integer(job_->id))
                     .set("epoch", Json::integer(event.epoch))
                     .set("from", Json::integer(event.from))
                     .set("to", Json::integer(event.to))
                     .set("objective", Json::number(event.objective)));
  }

 private:
  exp::TelemetrySink* sink_;
  Job* job_;
  int every_;
};

}  // namespace

// --- ServerConfig ------------------------------------------------------------

void ServerConfig::apply_tokens(const std::string& text) {
  std::istringstream tokens(text);
  std::string token;
  while (tokens >> token) {
    if (token[0] == '#') {  // comment: swallow the rest of the line
      std::string rest;
      std::getline(tokens, rest);
      continue;
    }
    const std::size_t equals = token.find('=');
    if (equals == std::string::npos) {
      ga::spec::bad_token("ServerConfig", token, "expected key=value");
    }
    const std::string key = token.substr(0, equals);
    const std::string value = token.substr(equals + 1);
    if (key == "socket") {
      socket_path = value;
    } else if (key == "workers") {
      workers = ga::spec::parse_int("ServerConfig", value, token);
    } else if (key == "max_queued") {
      max_queued = ga::spec::parse_int("ServerConfig", value, token);
    } else if (key == "session_workers") {
      session_workers = ga::spec::parse_int("ServerConfig", value, token);
    } else if (key == "telemetry_every") {
      telemetry_every = ga::spec::parse_int("ServerConfig", value, token);
    } else if (key == "max_generations") {
      max_generations = ga::spec::parse_int("ServerConfig", value, token);
    } else if (key == "max_seconds") {
      max_seconds = ga::spec::parse_double("ServerConfig", value, token);
    } else if (key == "max_evaluations") {
      max_evaluations = static_cast<long long>(
          ga::spec::parse_u64("ServerConfig", value, token));
    } else {
      ga::spec::bad_token("ServerConfig", token, "unknown key");
    }
  }
}

void ServerConfig::apply_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("cannot read config file " + path);
  }
  std::ostringstream text;
  text << file.rdbuf();
  apply_tokens(text.str());
}

ga::StopCondition ServerConfig::clamp(
    const ga::StopCondition& requested) const {
  ga::StopCondition stop = requested;
  if (max_generations > 0) {
    stop.max_generations = std::min(stop.max_generations, max_generations);
  }
  if (max_seconds > 0) {
    stop.max_seconds = stop.max_seconds > 0
                           ? std::min(stop.max_seconds, max_seconds)
                           : max_seconds;
  }
  if (max_evaluations > 0) {
    stop.max_evaluations =
        stop.max_evaluations > 0
            ? std::min(stop.max_evaluations, max_evaluations)
            : max_evaluations;
  }
  return stop;
}

// --- Server ------------------------------------------------------------------

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      start_seconds_(now_seconds()),
      table_(config_.max_queued) {
  table_.set_metrics(&registry_);
  session::SessionManagerConfig sessions;
  sessions.workers = std::max(1, config_.session_workers);
  // One shared LRU store across every session: replans namespace their
  // keys (cache salt), so sharing is safe and repeats hit across events.
  sessions.cache.mode = ga::EvalCacheMode::kLru;
  sessions.cache.capacity = 1 << 16;
  // Alias the daemon registry (destroyed after sessions_ by member
  // order), so session.* metrics land in the same `stats` payload.
  sessions.metrics = obs::RegistryPtr(&registry_, [](obs::Registry*) {});
  sessions_ = std::make_unique<session::SessionManager>(std::move(sessions));
}

Server::~Server() { stop(); }

void Server::start() {
  listener_ = std::make_unique<UnixListener>(config_.socket_path);
  started_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  workers_.reserve(static_cast<std::size_t>(std::max(1, config_.workers)));
  for (int i = 0; i < std::max(1, config_.workers); ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

int Server::drain() {
  // Sessions first: every accepted event still gets its replan, so a
  // drain never leaves a session transcript mid-trace.
  sessions_->drain();
  return table_.drain();
}

void Server::wait() {
  if (!started_.load()) return;
  std::call_once(join_once_, [this] {
    // Workers exit once the table is draining and its queue is empty —
    // joining them IS the "finish running jobs" phase of the drain.
    for (std::thread& worker : workers_) worker.join();
    // All jobs terminal and all logs closed: watchers finish their
    // streams on their own, so connection readers can be interrupted.
    stopping_.store(true);
    accept_thread_.join();
    std::vector<std::thread> connections;
    {
      std::lock_guard lock(connections_mutex_);
      connections.swap(connections_);
    }
    for (std::thread& connection : connections) connection.join();
    listener_.reset();  // closes + unlinks the socket path
  });
}

void Server::stop() {
  if (!started_.load()) return;
  drain();
  wait();
}

void Server::reload(const ServerConfig& config) {
  {
    std::lock_guard lock(config_mutex_);
    config_.max_queued = config.max_queued;
    config_.telemetry_every = config.telemetry_every;
    config_.max_generations = config.max_generations;
    config_.max_seconds = config.max_seconds;
    config_.max_evaluations = config.max_evaluations;
  }
  table_.set_max_queued(config.max_queued);
}

void Server::accept_loop() {
  for (;;) {
    reap_connections();
    Fd client = listener_->accept([this] { return stopping_.load(); });
    if (!client.valid()) {
      if (stopping_.load()) return;
      continue;
    }
    std::lock_guard lock(connections_mutex_);
    connections_.emplace_back([this, fd = std::move(client)]() mutable {
      serve_connection(std::move(fd));
      std::lock_guard finished_lock(connections_mutex_);
      finished_.push_back(std::this_thread::get_id());
    });
  }
}

void Server::reap_connections() {
  // Joins connection threads that announced completion, so a long-lived
  // daemon does not accumulate joinable thread stacks. A thread joins
  // nearly instantly here: it pushed its id as its last act.
  std::vector<std::thread> done;
  {
    std::lock_guard lock(connections_mutex_);
    for (const std::thread::id id : finished_) {
      const auto it =
          std::find_if(connections_.begin(), connections_.end(),
                       [&](const std::thread& t) { return t.get_id() == id; });
      if (it != connections_.end()) {
        done.push_back(std::move(*it));
        connections_.erase(it);
      }
    }
    finished_.clear();
  }
  for (std::thread& thread : done) thread.join();
}

void Server::worker_loop() {
  while (JobPtr job = table_.next_job()) run_job(job);
}

void Server::run_job(const JobPtr& job) {
  JobLogSink sink(table_, job);
  int every;
  {
    std::lock_guard lock(config_mutex_);
    every = config_.telemetry_every;
  }
  sink.write(Json::object()
                 .set("event", Json::string("run_begin"))
                 .set("job", Json::integer(job->id))
                 .set("spec", Json::string(job->spec)));
  const double start = now_seconds();
  JobState state = JobState::kFailed;
  ga::RunResult result;
  std::string error;
  try {
    // A private single-lane pool, exactly like sweep cells: engine-level
    // pool parallelism runs inline on this worker lane, so results are a
    // pure function of the spec — bit-identical to an in-process run.
    par::ThreadPool job_pool(1);
    ga::Solver solver =
        ga::Solver::build(ga::RunSpec::parse(job->spec), &job_pool);
    JobObserver observer(sink, job, every);
    solver.set_observer(&observer);
    result = solver.run(job->stop);
    state = job->cancel.load(std::memory_order_relaxed)
                ? JobState::kCancelled
                : JobState::kDone;
  } catch (const std::exception& e) {
    state = JobState::kFailed;
    error = e.what();
  }
  const double seconds = now_seconds() - start;
  Json end = Json::object();
  end.set("event", Json::string("job_end"))
      .set("job", Json::integer(job->id))
      .set("state", Json::string(to_string(state)))
      .set("spec", Json::string(job->spec))
      .set("ok", Json::boolean(state == JobState::kDone));
  if (state == JobState::kFailed) {
    end.set("error", Json::string(error));
  } else {
    end.set("best_objective", Json::number(result.best_objective))
        .set("generations", Json::integer(result.generations))
        .set("evaluations", Json::integer(result.evaluations))
        .set("seconds", Json::number(seconds));
    // Cache counters are always engaged (Engine::run fills zeros when no
    // cache is configured), matching the in-process cell record.
    const ga::EvalCacheStats cache = result.cache.value_or(ga::EvalCacheStats{});
    end.set("cache",
            Json::object()
                .set("hits", Json::integer(cache.hits))
                .set("misses", Json::integer(cache.misses))
                .set("inserts", Json::integer(cache.inserts))
                .set("evictions", Json::integer(cache.evictions)));
  }
  sink.write(std::move(end));
  table_.finish(job, state, std::move(result), std::move(error), seconds);
}

void Server::serve_connection(Fd fd) {
  LineReader reader(fd.get());
  std::string line;
  while (reader.read_line(line, [this] { return stopping_.load(); })) {
    Json response;
    bool streamed = false;
    try {
      const Json request = Json::parse(line);
      response = handle_request(request, fd.get(), streamed);
    } catch (const std::exception& e) {
      response = error_response(e.what());
    }
    if (!streamed && !write_line(fd.get(), response.dump())) return;
  }
}

exp::Json Server::handle_request(const Json& request, int connection_fd,
                                 bool& streamed) {
  if (!request.is_object()) return error_response("request is not an object");
  const std::string op = request.string_or("op", "");
  if (op.empty()) return error_response("request has no op");

  auto job_id = [&]() -> long long {
    const Json* id = request.find("id");
    if (id == nullptr) throw std::invalid_argument(op + " needs an id");
    return id->as_i64();
  };

  if (op == "ping") return ok_response();

  if (op == "submit") {
    const std::string spec = request.string_or("spec", "");
    if (spec.empty()) return error_response("submit needs a spec");
    std::string canonical;
    try {
      const ga::RunSpec parsed = ga::RunSpec::parse(spec);
      // Registry keys resolve lazily at build time; look them up now so
      // a typo'd engine/problem is a submit-time error, not a job that
      // sits in the queue only to fail when a worker picks it up.
      const std::vector<std::string> engines = ga::engine_names();
      if (std::find(engines.begin(), engines.end(), parsed.solver.engine) ==
          engines.end()) {
        return error_response("unknown engine '" + parsed.solver.engine + "'");
      }
      const std::vector<std::string> problems = ga::problem_names();
      if (std::find(problems.begin(), problems.end(),
                    parsed.problem.problem) == problems.end()) {
        return error_response("unknown problem '" + parsed.problem.problem +
                              "'");
      }
      canonical = parsed.to_string();
    } catch (const std::exception& e) {
      return error_response(e.what());
    }
    // Unset budget fields mirror the StopCondition named constructors:
    // any explicit budget lifts the default generation backstop.
    ga::StopCondition requested;
    const Json* generations = request.find("generations");
    const Json* seconds = request.find("seconds");
    const Json* evaluations = request.find("evaluations");
    const Json* target = request.find("target");
    if (generations != nullptr) {
      requested.max_generations = static_cast<int>(generations->as_i64());
    } else if (seconds != nullptr || evaluations != nullptr ||
               target != nullptr) {
      requested.max_generations = std::numeric_limits<int>::max();
    }
    if (seconds != nullptr) requested.max_seconds = seconds->as_number();
    if (evaluations != nullptr) {
      requested.max_evaluations = evaluations->as_i64();
    }
    if (target != nullptr) requested.target_objective = target->as_number();
    ga::StopCondition stop;
    {
      std::lock_guard lock(config_mutex_);
      stop = config_.clamp(requested);
    }
    const int priority =
        static_cast<int>(request.number_or("priority", 0));
    JobPtr job;
    try {
      job = table_.submit(canonical, priority, stop);
    } catch (const AdmissionError& e) {
      return error_response(e.what());
    }
    return ok_response()
        .set("id", Json::integer(job->id))
        .set("state", Json::string(to_string(JobState::kQueued)));
  }

  if (op == "list") {
    Json jobs = Json::array();
    for (const JobRecord& record : table_.snapshot_all()) {
      jobs.push(job_to_json(record));
    }
    return ok_response().set("jobs", std::move(jobs));
  }

  if (op == "status" || op == "wait") {
    const long long id = job_id();
    const JobPtr job = table_.find(id);
    if (job == nullptr) {
      return error_response("unknown job id " + std::to_string(id));
    }
    bool timed_out = false;
    if (op == "wait") {
      const Json* timeout = request.find("timeout");
      timed_out =
          !table_.wait_terminal_for(job, timeout ? timeout->as_number() : 0);
    }
    Json response =
        ok_response().set("job", job_to_json(table_.snapshot(id)));
    if (timed_out) response.set("timed_out", Json::boolean(true));
    return response;
  }

  if (op == "watch") {
    const long long id = job_id();
    const JobPtr job = table_.find(id);
    if (job == nullptr) {
      return error_response("unknown job id " + std::to_string(id));
    }
    // Ack, then stream: replay the log from the start (watch attaches
    // late without losing events), then follow appends until job_end.
    streamed = true;
    if (!write_line(connection_fd,
                    ok_response().set("id", Json::integer(id)).dump())) {
      return Json();
    }
    std::size_t cursor = 0;
    std::vector<std::string> lines;
    while (table_.follow_log(job, cursor, lines)) {
      for (const std::string& telemetry : lines) {
        if (!write_line(connection_fd, telemetry)) return Json();
      }
    }
    return Json();
  }

  if (op == "cancel") {
    const long long id = job_id();
    const std::optional<JobState> state = table_.request_cancel(id);
    if (!state) return error_response("unknown job id " + std::to_string(id));
    return ok_response().set("state", Json::string(to_string(*state)));
  }

  if (op == "drain") {
    const int cancelled = drain();
    return ok_response().set("cancelled", Json::integer(cancelled));
  }

  auto session_id = [&]() -> long long {
    const Json* id = request.find("session");
    if (id == nullptr) throw std::invalid_argument(op + " needs a session");
    return id->as_i64();
  };

  if (op == "session_open") {
    const std::string instance = request.string_or("instance", "");
    if (instance.empty()) {
      return error_response("session_open needs an instance");
    }
    session::SessionConfig config;
    if (const Json* solver = request.find("solver")) {
      config.solver = solver->as_string();
    }
    if (const Json* generations = request.find("generations")) {
      config.replan_generations = static_cast<int>(generations->as_i64());
    }
    if (const Json* evaluations = request.find("evaluations")) {
      config.replan_evaluations = evaluations->as_i64();
    }
    if (const Json* slo = request.find("slo")) {
      config.slo_seconds = slo->as_number();
    }
    if (const Json* seed = request.find("seed")) {
      config.seed = static_cast<std::uint64_t>(seed->as_i64());
    }
    if (const Json* warm = request.find("warm")) {
      config.warm.enabled = warm->as_bool();
    }
    if (const Json* immigrants = request.find("immigrants")) {
      config.warm.immigrant_fraction = immigrants->as_number();
    }
    long long id = 0;
    try {
      // Resolving the instance and the opening solve both run inline on
      // this connection thread; a bad instance or solver spec is a
      // structured error, not a dead session.
      id = sessions_->open(ga::resolve_job_shop_instance(instance),
                           std::move(config));
    } catch (const std::exception& e) {
      return error_response(e.what());
    }
    const session::SessionManager::BestView view = sessions_->best(id);
    return ok_response()
        .set("session", Json::integer(id))
        .set("best", Json::number(view.best))
        .set("events", Json::integer(view.events));
  }

  if (op == "session_event") {
    const long long id = session_id();
    try {
      const session::Event event = session::Event::from_json(request);
      const session::EventReply reply = sessions_->apply(id, event);
      Json response = ok_response().set("session", Json::integer(id));
      // Named: members() returns a reference into this object, so a
      // temporary would dangle under the range-for.
      const Json reply_json = reply.to_json(true);
      for (const Json::Member& member : reply_json.members()) {
        response.set(member.first, member.second);
      }
      return response;
    } catch (const std::exception& e) {
      return error_response(e.what());
    }
  }

  if (op == "session_best") {
    const long long id = session_id();
    try {
      const session::SessionManager::BestView view = sessions_->best(id);
      return ok_response()
          .set("session", Json::integer(id))
          .set("best", Json::number(view.best))
          .set("now", Json::integer(view.now))
          .set("events", Json::integer(view.events))
          .set("plan_hash", Json::uinteger(view.plan_hash));
    } catch (const std::exception& e) {
      return error_response(e.what());
    }
  }

  if (op == "session_close") {
    const long long id = session_id();
    try {
      const session::SessionManager::CloseResult closed = sessions_->close(id);
      return ok_response()
          .set("session", Json::integer(id))
          .set("events", Json::integer(closed.events))
          .set("transcript", Json::string(closed.transcript))
          .set("transcript_hash", Json::uinteger(closed.transcript_hash));
    } catch (const std::exception& e) {
      return error_response(e.what());
    }
  }

  if (op == "info") {
    Json config = Json::object();
    {
      std::lock_guard lock(config_mutex_);
      config.set("socket", Json::string(config_.socket_path))
          .set("workers", Json::integer(config_.workers))
          .set("session_workers", Json::integer(config_.session_workers))
          .set("max_queued", Json::integer(config_.max_queued))
          .set("telemetry_every", Json::integer(config_.telemetry_every))
          .set("max_generations", Json::integer(config_.max_generations))
          .set("max_seconds", Json::number(config_.max_seconds))
          .set("max_evaluations", Json::integer(config_.max_evaluations));
    }
    const std::array<int, 5> counts = table_.counts();
    Json jobs = Json::object();
    jobs.set("queued", Json::integer(counts[0]))
        .set("running", Json::integer(counts[1]))
        .set("done", Json::integer(counts[2]))
        .set("failed", Json::integer(counts[3]))
        .set("cancelled", Json::integer(counts[4]));
    const obs::MetricsSnapshot snapshot = registry_.snapshot();
    auto total = [&](const char* name) {
      const std::uint64_t* value = snapshot.counter(name);
      return Json::uinteger(value != nullptr ? *value : 0);
    };
    Json totals = Json::object();
    totals.set("admitted", total("svc.jobs.admitted"))
        .set("completed", total("svc.jobs.completed"))
        .set("failed", total("svc.jobs.failed"))
        .set("cancelled", total("svc.jobs.cancelled"))
        .set("rejected", total("svc.jobs.rejected"));
    Json latency = Json::object();
    for (const auto& [name, key] :
         {std::pair<const char*, const char*>{"svc.job.queue_ns", "queue"},
          {"svc.job.run_ns", "run"},
          {"svc.job.total_ns", "total"}}) {
      const obs::HistogramSnapshot* h = snapshot.histogram(name);
      if (h == nullptr || h->count == 0) continue;
      latency.set(key, Json::object()
                           .set("p50", Json::number(h->percentile(50) / 1e9))
                           .set("p95", Json::number(h->percentile(95) / 1e9))
                           .set("p99", Json::number(h->percentile(99) / 1e9)));
    }
    return ok_response()
        .set("config", std::move(config))
        .set("build_type", Json::string(PSGA_BUILD_TYPE))
        .set("uptime_seconds", Json::number(now_seconds() - start_seconds_))
        .set("jobs", std::move(jobs))
        .set("sessions", Json::integer(sessions_->active()))
        .set("totals", std::move(totals))
        .set("latency", std::move(latency))
        .set("draining", Json::boolean(table_.draining()));
  }

  if (op == "stats") {
    // The whole registry, merged: queue/job metrics today, whatever the
    // daemon grows tomorrow — psgactl stats renders this payload.
    return ok_response()
        .set("uptime_seconds", Json::number(now_seconds() - start_seconds_))
        .set("metrics", exp::metrics_to_json(registry_.snapshot()));
  }

  return error_response("unknown op '" + op + "'");
}

}  // namespace psga::svc
