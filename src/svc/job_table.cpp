#include "src/svc/job_table.h"

#include <algorithm>
#include <chrono>

#include "src/exp/telemetry.h"

namespace psga::svc {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The job_end line the table writes when it cancels a queued job
/// itself (jobs that ran get theirs from the runner, with result
/// fields). Stamped here because it bypasses any TelemetrySink.
std::string cancelled_job_end(const Job& job) {
  return exp::Json::object()
      .set("schema_version", exp::Json::integer(exp::kTelemetrySchemaVersion))
      .set("event", exp::Json::string("job_end"))
      .set("job", exp::Json::integer(job.id))
      .set("state", exp::Json::string(to_string(JobState::kCancelled)))
      .set("spec", exp::Json::string(job.spec))
      .set("ok", exp::Json::boolean(false))
      .dump();
}

}  // namespace

void JobTable::set_metrics(obs::Registry* registry) {
  std::lock_guard lock(mutex_);
  if (registry == nullptr) {
    queue_depth_ = nullptr;
    jobs_admitted_ = jobs_rejected_ = nullptr;
    jobs_completed_ = jobs_failed_ = jobs_cancelled_ = nullptr;
    queue_ns_ = run_ns_ = total_ns_ = nullptr;
    return;
  }
  queue_depth_ = &registry->gauge("svc.queue.depth");
  jobs_admitted_ = &registry->counter("svc.jobs.admitted");
  jobs_rejected_ = &registry->counter("svc.jobs.rejected");
  jobs_completed_ = &registry->counter("svc.jobs.completed");
  jobs_failed_ = &registry->counter("svc.jobs.failed");
  jobs_cancelled_ = &registry->counter("svc.jobs.cancelled");
  queue_ns_ = &registry->histogram("svc.job.queue_ns");
  run_ns_ = &registry->histogram("svc.job.run_ns");
  total_ns_ = &registry->histogram("svc.job.total_ns");
}

void JobTable::update_queue_depth_locked() const {
  if (queue_depth_ != nullptr) {
    queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
  }
}

void JobTable::count_terminal(JobState state) const {
  switch (state) {
    case JobState::kDone:
      if (jobs_completed_ != nullptr) jobs_completed_->add();
      break;
    case JobState::kFailed:
      if (jobs_failed_ != nullptr) jobs_failed_->add();
      break;
    case JobState::kCancelled:
      if (jobs_cancelled_ != nullptr) jobs_cancelled_->add();
      break;
    default:
      break;
  }
}

JobPtr JobTable::submit(std::string spec, int priority,
                        const ga::StopCondition& stop) {
  std::unique_lock lock(mutex_);
  if (draining_) {
    if (jobs_rejected_ != nullptr) jobs_rejected_->add();
    throw AdmissionError("server is draining");
  }
  if (queued_count_locked() >= max_queued_) {
    if (jobs_rejected_ != nullptr) jobs_rejected_->add();
    throw AdmissionError("queue full (" + std::to_string(max_queued_) +
                         " jobs queued)");
  }
  auto job = std::make_shared<Job>();
  job->id = next_id_++;
  job->spec = std::move(spec);
  job->priority = priority;
  job->stop = stop;
  job->submitted_ns = now_ns();
  jobs_[job->id] = job;
  queue_.push_back(job);
  if (jobs_admitted_ != nullptr) jobs_admitted_->add();
  update_queue_depth_locked();
  lock.unlock();
  work_.notify_one();
  update_.notify_all();
  return job;
}

JobPtr JobTable::next_job() {
  std::unique_lock lock(mutex_);
  for (;;) {
    // Highest priority wins; the stable scan keeps FIFO order within a
    // priority (queue_ is submission-ordered).
    auto best = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (best == queue_.end() || (*it)->priority > (*best)->priority) {
        best = it;
      }
    }
    if (best != queue_.end()) {
      JobPtr job = *best;
      queue_.erase(best);
      job->state = JobState::kRunning;
      job->started_ns = now_ns();
      if (queue_ns_ != nullptr) {
        queue_ns_->record(job->started_ns - job->submitted_ns);
      }
      update_queue_depth_locked();
      update_.notify_all();
      return job;
    }
    if (draining_) return nullptr;
    work_.wait(lock);
  }
}

void JobTable::finish(const JobPtr& job, JobState state, ga::RunResult result,
                      std::string error, double seconds) {
  {
    std::lock_guard lock(mutex_);
    job->state = state;
    job->result = std::move(result);
    job->error = std::move(error);
    job->seconds = seconds;
    job->log_done = true;
    count_terminal(state);
    const std::uint64_t end_ns = now_ns();
    if (run_ns_ != nullptr && job->started_ns != 0) {
      run_ns_->record(end_ns - job->started_ns);
    }
    if (total_ns_ != nullptr && job->submitted_ns != 0) {
      total_ns_->record(end_ns - job->submitted_ns);
    }
  }
  update_.notify_all();
}

std::optional<JobState> JobTable::request_cancel(long long id) {
  JobPtr to_close;
  {
    std::lock_guard lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return std::nullopt;
    JobPtr& job = it->second;
    job->cancel.store(true, std::memory_order_relaxed);
    if (job->state == JobState::kQueued) {
      queue_.erase(std::remove(queue_.begin(), queue_.end(), job),
                   queue_.end());
      job->state = JobState::kCancelled;
      to_close = job;
      job->log.push_back(cancelled_job_end(*job));
      job->log_done = true;
      count_terminal(JobState::kCancelled);
      if (total_ns_ != nullptr && job->submitted_ns != 0) {
        total_ns_->record(now_ns() - job->submitted_ns);
      }
      update_queue_depth_locked();
    }
    if (to_close == nullptr) return job->state;
  }
  update_.notify_all();
  return JobState::kCancelled;
}

int JobTable::drain() {
  std::vector<JobPtr> cancelled;
  {
    std::lock_guard lock(mutex_);
    draining_ = true;
    const std::uint64_t end_ns = now_ns();
    for (const JobPtr& job : queue_) {
      job->cancel.store(true, std::memory_order_relaxed);
      job->state = JobState::kCancelled;
      job->log.push_back(cancelled_job_end(*job));
      job->log_done = true;
      count_terminal(JobState::kCancelled);
      if (total_ns_ != nullptr && job->submitted_ns != 0) {
        total_ns_->record(end_ns - job->submitted_ns);
      }
      cancelled.push_back(job);
    }
    queue_.clear();
    update_queue_depth_locked();
  }
  work_.notify_all();
  update_.notify_all();
  return static_cast<int>(cancelled.size());
}

bool JobTable::draining() const {
  std::lock_guard lock(mutex_);
  return draining_;
}

void JobTable::append_log(const JobPtr& job, const std::string& line) {
  {
    std::lock_guard lock(mutex_);
    job->log.push_back(line);
  }
  update_.notify_all();
}

bool JobTable::follow_log(const JobPtr& job, std::size_t& cursor,
                          std::vector<std::string>& out) {
  std::unique_lock lock(mutex_);
  update_.wait(lock,
               [&] { return job->log.size() > cursor || job->log_done; });
  out.assign(job->log.begin() + static_cast<std::ptrdiff_t>(cursor),
             job->log.end());
  cursor = job->log.size();
  return !out.empty() || !job->log_done;
}

void JobTable::wait_terminal(const JobPtr& job) {
  std::unique_lock lock(mutex_);
  update_.wait(lock, [&] { return is_terminal(job->state); });
}

bool JobTable::wait_terminal_for(const JobPtr& job, double seconds) {
  std::unique_lock lock(mutex_);
  if (seconds <= 0) {
    update_.wait(lock, [&] { return is_terminal(job->state); });
    return true;
  }
  return update_.wait_for(lock, std::chrono::duration<double>(seconds),
                          [&] { return is_terminal(job->state); });
}

JobPtr JobTable::find(long long id) const {
  std::lock_guard lock(mutex_);
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

JobRecord JobTable::snapshot_locked(const Job& job) {
  JobRecord record;
  record.id = job.id;
  record.state = job.state;
  record.spec = job.spec;
  record.priority = job.priority;
  record.stop = job.stop;
  record.error = job.error;
  record.best_objective = job.result.best_objective;
  record.generations = job.result.generations;
  record.evaluations = job.result.evaluations;
  record.seconds = job.seconds;
  record.cache = job.result.cache;
  return record;
}

JobRecord JobTable::snapshot(long long id) const {
  std::lock_guard lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw std::invalid_argument("unknown job id " + std::to_string(id));
  }
  return snapshot_locked(*it->second);
}

std::vector<JobRecord> JobTable::snapshot_all() const {
  std::lock_guard lock(mutex_);
  std::vector<JobRecord> records;
  records.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) records.push_back(snapshot_locked(*job));
  return records;
}

std::array<int, 5> JobTable::counts() const {
  std::lock_guard lock(mutex_);
  std::array<int, 5> counts{};
  for (const auto& [id, job] : jobs_) {
    counts[static_cast<std::size_t>(job->state)]++;
  }
  return counts;
}

void JobTable::set_max_queued(int max_queued) {
  std::lock_guard lock(mutex_);
  max_queued_ = max_queued;
}

int JobTable::max_queued() const {
  std::lock_guard lock(mutex_);
  return max_queued_;
}

int JobTable::queued_count_locked() const {
  return static_cast<int>(queue_.size());
}

}  // namespace psga::svc
