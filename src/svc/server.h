// psgad's server core: a Unix-socket listener, a pool of worker lanes
// running jobs through Solver::build(RunSpec), and per-connection
// request threads speaking the newline-JSON protocol (protocol.h).
//
// The bessd/bessctl split: the daemon owns all solver state and a thin
// CLI (psgactl, via svc::Client) speaks the message protocol over a
// local socket. Embeddable by design — tests run a Server in-process
// over a temp socket (tests/test_service.cpp); tools/psgad.cpp is just
// flags + signals around this class.
//
// Lifecycle: start() binds the socket and launches the accept loop and
// worker lanes; drain() (idempotent, also triggered by the `drain` op
// and psgad's SIGTERM handler) stops admission, cancels queued jobs and
// lets running jobs finish; wait() blocks until the drained server has
// stopped; stop() is drain() + join everything (the destructor calls
// it). reload() swaps in new policy limits (admission + budget caps) —
// psgad wires it to SIGHUP.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/ga/stop.h"
#include "src/obs/metrics.h"
#include "src/session/manager.h"
#include "src/svc/job_table.h"
#include "src/svc/socket.h"

namespace psga::svc {

/// Server policy. The budget caps clamp every submitted job's
/// StopCondition: a client may ask for less than a cap, never more
/// (0 = uncapped). Reloadable fields are marked; workers is fixed at
/// start().
struct ServerConfig {
  std::string socket_path = "/tmp/psgad.sock";
  int workers = 2;     ///< concurrent running jobs (fixed at start)
  int max_queued = 64; ///< admission limit on queued jobs (reloadable)
  /// Event-replan lanes shared by all open sessions (fixed at start).
  int session_workers = 2;
  /// Generation-event stride in job telemetry logs (reloadable;
  /// 1 = every generation, 0 = improvements and job_end only).
  int telemetry_every = 1;
  // Budget caps (reloadable). Also the default budget: a submit with no
  // budget fields runs under exactly these caps (uncapped fields fall
  // back to StopCondition{} defaults — 100 generations).
  int max_generations = 0;
  double max_seconds = 0.0;
  long long max_evaluations = 0;

  /// Parses "key=value ..." tokens (the SolverSpec token idiom):
  /// socket= workers= max_queued= telemetry_every= max_generations=
  /// max_seconds= max_evaluations=. Unknown keys throw
  /// std::invalid_argument naming the token. Applied on top of *this,
  /// so a config file only lists what it overrides.
  void apply_tokens(const std::string& text);

  /// apply_tokens over a config file's contents ('#' comments,
  /// whitespace/newline separated). Throws on unreadable paths.
  void apply_file(const std::string& path);

  /// The submitted budget clamped against the caps: each set cap lowers
  /// the corresponding field; unset request fields inherit the cap.
  ga::StopCondition clamp(const ga::StopCondition& requested) const;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and launches accept + worker threads. Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();

  /// Graceful drain: reject new submissions, cancel queued jobs, finish
  /// running ones, then shut down. Returns the number of queued jobs
  /// cancelled. Safe from any thread, including connection handlers.
  int drain();

  /// Blocks until the server has fully stopped (drain completed and all
  /// threads joined). Call after start(); psgad's main thread lives here.
  void wait();

  /// drain() + wait(). The destructor calls stop().
  void stop();

  /// Swaps in reloadable limits from `config` (max_queued,
  /// telemetry_every, budget caps). Socket path and workers are ignored
  /// — they are fixed for the server's lifetime.
  void reload(const ServerConfig& config);

  const std::string& socket_path() const { return config_.socket_path; }
  JobTable& jobs() { return table_; }
  /// The online-replanning multiplexer behind the session_* ops
  /// (sessions share its cache and the daemon's metrics registry).
  session::SessionManager& sessions() { return *sessions_; }
  /// The daemon's process-lifetime metrics registry (queue depth, job
  /// counters, latency histograms — see JobTable::set_metrics). The
  /// `stats` op serves its snapshot; tests scrape it directly.
  obs::Registry& metrics() { return registry_; }

 private:
  void accept_loop();
  void reap_connections();
  void worker_loop();
  void serve_connection(Fd fd);
  void run_job(const JobPtr& job);
  exp::Json handle_request(const exp::Json& request, int connection_fd,
                           bool& streamed);

  ServerConfig config_;  ///< reloadable fields guarded by config_mutex_
  mutable std::mutex config_mutex_;
  /// Process-lifetime metrics (declared before table_, which resolves
  /// handles into it at construction and writes through them until its
  /// own destruction).
  obs::Registry registry_;
  double start_seconds_ = 0.0;  ///< steady-clock stamp of construction
  JobTable table_;
  /// Declared after registry_ (sessions write metrics through it) and
  /// destroyed before it: the unique_ptr lets stop() drain sessions
  /// before the job table shuts down.
  std::unique_ptr<session::SessionManager> sessions_;
  std::unique_ptr<UnixListener> listener_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::vector<std::thread> connections_;
  std::vector<std::thread::id> finished_;  ///< connections ready to reap
  std::mutex connections_mutex_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::once_flag join_once_;
};

}  // namespace psga::svc
