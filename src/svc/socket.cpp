#include "src/svc/socket.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace psga::svc {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof(address.sun_path)) {
    throw std::runtime_error("socket path too long (" +
                             std::to_string(path.size()) + " bytes, max " +
                             std::to_string(sizeof(address.sun_path) - 1) +
                             "): " + path);
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

// Poll cadence for interruptible blocking calls: short enough that
// drain/stop is visibly prompt, long enough to stay off the profiler.
constexpr int kPollMs = 100;

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Fd::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool wait_readable(int fd, int timeout_ms) {
  pollfd poller{};
  poller.fd = fd;
  poller.events = POLLIN;
  for (;;) {
    const int ready = ::poll(&poller, 1, timeout_ms);
    if (ready < 0 && errno == EINTR) continue;
    return ready > 0;
  }
}

bool write_all(int fd, const std::string& text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t n =
        ::send(fd, text.data() + sent, text.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_line(int fd, const std::string& line) {
  return write_all(fd, line + "\n");
}

bool LineReader::read_line(std::string& out,
                          const std::function<bool()>& interrupted) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      out.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    if (interrupted) {
      while (!wait_readable(fd_, kPollMs)) {
        if (interrupted()) return false;
      }
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;  // EOF or error; a partial line is dropped
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

UnixListener::UnixListener(const std::string& path) : path_(path) {
  const sockaddr_un address = make_address(path);
  fd_ = Fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd_.valid()) throw_errno("socket(" + path + ")");
  ::unlink(path.c_str());
  if (::bind(fd_.get(), reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd_.get(), 64) != 0) throw_errno("listen(" + path + ")");
}

UnixListener::~UnixListener() {
  fd_.close();
  if (!path_.empty()) ::unlink(path_.c_str());
}

Fd UnixListener::accept(const std::function<bool()>& interrupted) {
  for (;;) {
    if (!wait_readable(fd_.get(), kPollMs)) {
      if (interrupted && interrupted()) return Fd();
      continue;
    }
    const int client = ::accept(fd_.get(), nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Fd();
    }
    return Fd(client);
  }
}

Fd unix_connect(const std::string& path) {
  const sockaddr_un address = make_address(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(" + path + ")");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    throw_errno("connect(" + path + ")");
  }
  return fd;
}

}  // namespace psga::svc
