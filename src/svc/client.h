// The psgad client library: one blocking connection speaking the
// newline-JSON protocol. psgactl, psga_sweep --dispatch and the service
// tests all go through this class, so the wire format has exactly one
// client-side implementation.
//
//   Client client(socket_path);
//   long long id = client.submit("problem=flowshop instance=ta001 "
//                                "engine=island seed=7");
//   JobRecord job = client.watch(id, [](const exp::Json& line) { ... });
//
// Methods throw TransportError for transport failures ({connect
// refused, connection lost, malformed server line}) and plain
// ServiceError for server-side {ok:false} responses — the server's
// structured error message becomes the exception text. TransportError
// is-a ServiceError, so callers who don't care catch one type; callers
// who retry (psga_sweep --dispatch) reconnect on TransportError and
// fail the cell on ServiceError. One in-flight request per Client; a
// watch owns the connection until its job_end arrives.
#pragma once

#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/svc/protocol.h"
#include "src/svc/socket.h"

namespace psga::svc {

struct ServiceError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Connection-level failure (vs. a structured server rejection): the
/// daemon may be restarting, so retrying on a fresh connection can
/// succeed where re-sending the same request cannot.
struct TransportError : ServiceError {
  using ServiceError::ServiceError;
};

class Client {
 public:
  /// Connects immediately; throws TransportError when nothing listens.
  explicit Client(const std::string& socket_path);

  /// One request/response round trip. Stamps schema_version on the
  /// request, throws ServiceError on transport failure or {ok:false}.
  exp::Json request(const exp::Json& request_line);

  /// Submits a RunSpec; returns the job id.
  long long submit(const std::string& spec, const SubmitOptions& options = {});

  std::vector<JobRecord> list();
  JobRecord status(long long id);
  /// Blocks until the job is terminal; returns the final record.
  JobRecord wait(long long id);
  /// Bounded wait: nullopt when `seconds` elapsed first (<= 0 = forever).
  std::optional<JobRecord> wait_for(long long id, double seconds);
  /// Streams the job's telemetry (replayed from its start, then live):
  /// `on_line` sees every parsed line including the final job_end, then
  /// watch() fetches and returns the job's terminal record.
  JobRecord watch(long long id,
                  const std::function<void(const exp::Json&)>& on_line = {});
  /// Returns the job's state after the cancel request.
  JobState cancel(long long id);
  /// Initiates server drain; returns the number of queued jobs cancelled.
  int drain();
  void ping();
  /// The server's `info` payload (config + job counts + uptime/build).
  exp::Json info();
  /// The server's `stats` payload (uptime + full metrics registry
  /// snapshot in the exp::metrics_to_json layout).
  exp::Json stats();

  // --- online replanning sessions (op=session_*) ---
  // Event payloads travel as flat JSON objects (session::Event::to_json
  // on the sending side), keeping this class free of session-layer types.

  /// Opens a session on `instance`; returns the session id.
  long long session_open(const std::string& instance,
                         const SessionOptions& options = {});
  /// Applies one event (blocks until the replan answers); returns the
  /// full response line (EventReply fields + seconds/slo_met).
  exp::Json session_event(long long session, const exp::Json& event_fields);
  /// The session's current answer: best, now, events, plan_hash.
  exp::Json session_best(long long session);
  /// Drains and closes the session; the response carries the transcript
  /// (JSONL) and its hash.
  exp::Json session_close(long long session);

 private:
  exp::Json read_response();

  Fd fd_;
  LineReader reader_;
};

}  // namespace psga::svc
