#include "src/svc/dispatch.h"

#include <atomic>
#include <chrono>
#include <limits>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/ga/solver.h"
#include "src/svc/client.h"

namespace psga::svc {

namespace {

using exp::Json;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The sweep's @-budget as submit fields — unset fields would otherwise
/// inherit the server's default budget instead of the sweep's.
SubmitOptions submit_options(const ga::StopCondition& stop) {
  SubmitOptions options;
  if (stop.max_generations < std::numeric_limits<int>::max()) {
    options.generations = stop.max_generations;
  }
  if (stop.max_seconds > 0) options.seconds = stop.max_seconds;
  if (stop.max_evaluations > 0) options.evaluations = stop.max_evaluations;
  if (stop.target_objective >= 0) options.target = stop.target_objective;
  return options;
}

/// Rewrites a daemon watch line into the sweep schema: the `job` key
/// becomes `cell` (same position — the layouts are otherwise identical,
/// see JobObserver vs CellObserver), everything else passes through.
Json translate_line(const Json& line, int cell_index) {
  Json out = Json::object();
  for (const Json::Member& member : line.members()) {
    if (member.first == "job") {
      out.set("cell", Json::integer(cell_index));
    } else {
      out.set(member.first, member.second);
    }
  }
  return out;
}

/// Dispatch health counters, resolved once per dispatch (all null when
/// no registry is attached — bump() then costs one branch).
struct DispatchMetrics {
  obs::Counter* transport_errors = nullptr;
  obs::Counter* retries = nullptr;
  obs::Counter* backoffs = nullptr;
  obs::Counter* resubmits = nullptr;

  static DispatchMetrics resolve(obs::Registry* registry) {
    DispatchMetrics metrics;
    if (registry != nullptr) {
      metrics.transport_errors = &registry->counter("dispatch.transport_errors");
      metrics.retries = &registry->counter("dispatch.retries");
      metrics.backoffs = &registry->counter("dispatch.backoffs");
      metrics.resubmits = &registry->counter("dispatch.resubmits");
    }
    return metrics;
  }
};

void bump(obs::Counter* counter) {
  if (counter != nullptr) counter->add();
}

/// One worker's bounded-retry connection: (re)connects with exponential
/// backoff, counting attempts against the shared per-cell budget.
class Connection {
 public:
  Connection(std::string socket_path, int backoff_ms,
             const DispatchMetrics& metrics)
      : socket_path_(std::move(socket_path)),
        backoff_ms_(backoff_ms),
        metrics_(metrics) {}

  Client& ensure(int& attempts_left) {
    while (!client_) {
      try {
        client_.emplace(socket_path_);
      } catch (const TransportError&) {
        bump(metrics_.transport_errors);
        if (--attempts_left <= 0) throw;
        bump(metrics_.retries);
        backoff();
      }
    }
    return *client_;
  }

  void drop() { client_.reset(); }

  void backoff() {
    bump(metrics_.backoffs);
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms_));
    backoff_ms_ = std::min(backoff_ms_ * 2, 5000);
  }

 private:
  std::string socket_path_;
  int backoff_ms_;
  DispatchMetrics metrics_;
  std::optional<Client> client_;
};

}  // namespace

std::string cell_runspec(const exp::SweepCell& cell) {
  std::string spec = cell.spec;
  if (!cell.instance.empty()) spec += " instance=" + cell.instance;
  return spec;
}

exp::SweepResult dispatch_sweep(const exp::SweepSpec& sweep,
                                const std::string& socket_path,
                                const DispatchOptions& options) {
  const double sweep_start = now_seconds();
  exp::SweepResult out;
  out.spec = sweep;
  const std::vector<exp::SweepCell> cells = sweep.expand();
  if (cells.empty()) {
    throw std::invalid_argument("SweepSpec '" + sweep.name +
                                "' expands to zero cells");
  }

  exp::TelemetrySink* sink = options.telemetry;
  if (sink != nullptr) sink->write(exp::sweep_begin_record(sweep, cells));

  out.cells.resize(cells.size());
  std::mutex progress_mutex;
  int done = 0;
  const int total = static_cast<int>(cells.size());
  const SubmitOptions submit = submit_options(sweep.stop);
  const DispatchMetrics metrics = DispatchMetrics::resolve(options.metrics);

  auto run_cell = [&](Connection& connection, const exp::SweepCell& cell) {
    exp::CellResult result;
    result.cell = cell;
    if (options.resume != nullptr) {
      const auto finished =
          options.resume->find(exp::sweep_cell_hash_hex(sweep.name, cell));
      if (finished != options.resume->end()) {
        result = exp::cell_result_from_record(cell, finished->second);
      }
    }
    if (!result.resumed) {
      const std::string spec = cell_runspec(cell);
      // The same canonicalization the server applies at submit and the
      // in-process planner applies per cell — gives the telemetry
      // `problem` field and the spec echo the restart guard compares.
      std::string canonical;
      std::string problem;
      try {
        const ga::RunSpec parsed = ga::RunSpec::parse(spec);
        canonical = parsed.to_string();
        problem = parsed.problem.to_string();
      } catch (const std::exception&) {
        // Unparsable client-side: the server will reject it too; let the
        // submit produce the structured error so both paths agree that
        // the cell fails soft.
      }
      // Each cell's telemetry is buffered and flushed contiguously once
      // the cell settles: a retried watch (which replays from the job's
      // start) never duplicates lines, and a SIGKILL loses at most the
      // in-flight cells — finished cells are either fully present (and
      // resumable by hash) or absent.
      std::vector<Json> buffer;
      std::optional<long long> id;
      bool write_record = true;
      const double start = now_seconds();
      for (int attempts_left = std::max(1, options.attempts);;) {
        try {
          Client& client = connection.ensure(attempts_left);
          if (!id) id = client.submit(spec, submit);
          buffer.clear();
          buffer.push_back(exp::run_begin_record(cell, problem));
          const JobRecord job =
              client.watch(*id, [&](const Json& line) {
                const std::string event = line.string_or("event", "");
                if (event == "generation" || event == "improvement" ||
                    event == "migration") {
                  buffer.push_back(translate_line(line, cell.index));
                }
              });
          if (!canonical.empty() && job.spec != canonical) {
            // The daemon restarted and recycled our job id for someone
            // else's submit — this job is not our cell. Resubmit.
            throw TransportError("job id recycled by restarted daemon");
          }
          result.ok = job.state == JobState::kDone;
          if (result.ok) {
            result.result.best_objective = job.best_objective;
            result.result.generations = job.generations;
            result.result.evaluations = job.evaluations;
            result.result.problem = problem;
            result.result.cache = job.cache;
          } else {
            result.error = job.error.empty()
                               ? std::string("job ") + to_string(job.state)
                               : job.error;
          }
          break;
        } catch (const TransportError& e) {
          bump(metrics.transport_errors);
          connection.drop();
          if (--attempts_left <= 0) {
            // Environmental failure, not a property of the cell: fail
            // soft in-memory but leave no `cell` record, so a --resume
            // re-runs this cell instead of trusting the outage.
            result.ok = false;
            result.error = std::string("dispatch: ") + e.what();
            write_record = false;
            break;
          }
          bump(metrics.retries);
          connection.backoff();
        } catch (const ServiceError& e) {
          const std::string what = e.what();
          if (id && what.find("unknown job id") != std::string::npos) {
            // Daemon restarted and forgot the job: resubmit (seeds are
            // baked into the spec, the re-run is bit-identical).
            bump(metrics.resubmits);
            id.reset();
            continue;
          }
          if (!id && what.find("queue full") != std::string::npos) {
            // Transient admission pressure, not a bad cell.
            if (--attempts_left <= 0) {
              result.ok = false;
              result.error = std::string("dispatch: ") + what;
              write_record = false;
              break;
            }
            bump(metrics.retries);
            connection.backoff();
            continue;
          }
          // Structured server rejection (bad spec, unknown engine,
          // draining): deterministic — record it like an in-process
          // plan failure.
          result.ok = false;
          result.error = what;
          break;
        }
      }
      result.seconds = now_seconds() - start;
      if (sink != nullptr && write_record) {
        buffer.push_back(exp::cell_record(sweep, result, problem));
        for (const Json& line : buffer) sink->write(line);
      }
    }
    {
      std::lock_guard lock(progress_mutex);
      ++done;
      if (options.progress) options.progress(result, done, total);
    }
    out.cells[static_cast<std::size_t>(cell.index)] = std::move(result);
  };

  const int workers =
      std::max(1, std::min(options.jobs, static_cast<int>(cells.size())));
  if (workers == 1) {
    Connection connection(socket_path, std::max(1, options.backoff_ms),
                          metrics);
    for (const exp::SweepCell& cell : cells) run_cell(connection, cell);
  } else {
    // Dynamic dealing, exactly like the in-process runner: cells are
    // uneven, so workers pull from an atomic cursor. Each worker owns
    // its own connection; the in-flight window is `workers` jobs.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        Connection connection(socket_path, std::max(1, options.backoff_ms),
                              metrics);
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= cells.size()) break;
          run_cell(connection, cells[i]);
        }
      });
    }
    for (std::thread& worker : pool) worker.join();
  }

  for (const exp::CellResult& result : out.cells) {
    if (!result.ok) ++out.failed;
  }
  out.seconds = now_seconds() - sweep_start;
  if (sink != nullptr) {
    sink->write(exp::sweep_end_record(sweep, total - out.failed, out.failed,
                                      out.seconds));
  }
  return out;
}

}  // namespace psga::svc
