// The psgad wire protocol: newline-delimited JSON over a Unix-domain
// stream socket, one request object per line, one response object per
// line (except `watch`, which streams telemetry lines after its ack).
//
// Requests carry `op` plus op-specific fields; responses carry
// `ok` (bool) plus either payload fields or `error` (a structured
// message — malformed requests never drop the connection). Every line
// in both directions carries `schema_version`
// (exp::kTelemetrySchemaVersion): the wire protocol and the on-disk
// JSONL telemetry are the same schema and evolve together.
//
//   op=submit   spec (RunSpec tokens), [priority], [generations],
//               [seconds], [evaluations], [target]
//               → ok, id, state
//   op=list     → ok, jobs[]                         (JobRecord objects)
//   op=status   id → ok, job                         (one JobRecord)
//   op=wait     id, [timeout] → ok, job, [timed_out]  (blocks until the
//               job is terminal; with timeout (seconds) the server
//               answers at the deadline with timed_out=true and the
//               job's live snapshot instead of blocking forever)
//   op=watch    id → ok, id, then the job's telemetry lines streamed
//               live (generation / improvement / migration with `job`
//               in place of `cell`, then one final job_end record);
//               after job_end the connection is back in request mode
//   op=cancel   id → ok, state    (flips queued jobs to cancelled;
//               running jobs stop at the next generation boundary)
//   op=drain    → ok, cancelled   (stop accepting, cancel the queue,
//               finish running jobs, then the daemon exits)
//   op=ping     → ok
//   op=info     → ok, config{}, build_type, uptime_seconds,
//               jobs{queued,running,done,failed,cancelled},
//               totals{admitted,completed,failed,cancelled,rejected},
//               latency{queue,run,total → {p50,p95,p99} seconds}
//   op=stats    → ok, uptime_seconds, metrics{} — the daemon's full
//               metrics registry (exp::metrics_to_json layout: named
//               counters, gauges and log2 histograms with percentiles)
//
// Online replanning sessions (src/session, docs/sessions.md):
//   op=session_open   instance, [solver], [generations], [evaluations],
//                     [slo], [seed], [warm], [immigrants]
//                     → ok, session, best, events
//   op=session_event  session + Event fields (kind/time/route/due/
//                     machine/duration/job — session::Event::to_json)
//                     → ok, session + the EventReply fields (index, kind,
//                     time, frozen, remaining, carried, baseline, best,
//                     adopted, generations, evaluations, plan_hash,
//                     seconds, slo_met); blocks until the replan answers
//   op=session_best   session → ok, best, now, events, plan_hash
//   op=session_close  session → ok, events, transcript (JSONL),
//                     transcript_hash — drains the session's queue first
//
// docs/service.md is the human-facing reference for this header.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "src/exp/json.h"
#include "src/ga/eval_cache.h"
#include "src/ga/stop.h"

namespace psga::svc {

/// Job lifecycle. Queued and running are live; the other three are
/// terminal and final (a cancel on a done job is a no-op).
enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

const char* to_string(JobState state);
std::optional<JobState> job_state_from_string(const std::string& text);
inline bool is_terminal(JobState state) {
  return state != JobState::kQueued && state != JobState::kRunning;
}

/// Client-side view of one job, as serialized in list/status/wait
/// responses. Result fields are meaningful once the state says so.
struct JobRecord {
  long long id = 0;
  JobState state = JobState::kQueued;
  std::string spec;        ///< canonical RunSpec tokens
  int priority = 0;
  ga::StopCondition stop;  ///< effective (policy-clamped) budget
  std::string error;       ///< failed jobs: what broke
  double best_objective = 0.0;
  int generations = 0;
  long long evaluations = 0;
  double seconds = 0.0;  ///< run wall-clock (0 while queued)
  /// Eval-cache counters when the job's engine ran with a cache — kept
  /// on the wire so dispatched sweep telemetry carries the same cache{}
  /// object as in-process cell records.
  std::optional<ga::EvalCacheStats> cache;
};

/// JobRecord → JSON object (the `job` payload / `jobs[]` element).
exp::Json job_to_json(const JobRecord& record);
/// JSON object → JobRecord; throws std::invalid_argument on a payload
/// missing id/state (the fields no record is valid without).
JobRecord job_from_json(const exp::Json& json);

/// Submit-time knobs. Unset budget fields fall back to the server's
/// default budget; set fields are clamped against the server's caps.
struct SubmitOptions {
  int priority = 0;  ///< higher runs first; FIFO within a priority
  std::optional<int> generations;
  std::optional<double> seconds;
  std::optional<long long> evaluations;
  std::optional<double> target;
};

/// Builds the submit request line for `spec` + options.
exp::Json submit_request(const std::string& spec,
                         const SubmitOptions& options = {});

/// session_open knobs. Unset fields keep the session layer's defaults
/// (SessionConfig in src/session/session.h).
struct SessionOptions {
  std::string solver;  ///< SolverSpec tokens; empty = session default
  std::optional<int> generations;         ///< per-event generation budget
  std::optional<long long> evaluations;   ///< per-event evaluation budget
  std::optional<double> slo_seconds;      ///< per-event wall-clock SLO
  std::optional<std::uint64_t> seed;
  std::optional<bool> warm;               ///< false = cold restarts
  std::optional<double> immigrants;       ///< WarmStart::immigrant_fraction
};

/// Builds the session_open request line for `instance` + options.
exp::Json session_open_request(const std::string& instance,
                               const SessionOptions& options = {});
/// Builds a one-field request ({"op":op}) or id-carrying request.
exp::Json simple_request(const std::string& op);
exp::Json id_request(const std::string& op, long long id);

/// Response builders (server side). Both stamp schema_version.
exp::Json ok_response();
exp::Json error_response(const std::string& message);

}  // namespace psga::svc
