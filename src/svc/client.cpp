#include "src/svc/client.h"

#include "src/exp/telemetry.h"

namespace psga::svc {

using exp::Json;

Client::Client(const std::string& socket_path)
    : fd_([&] {
        try {
          return unix_connect(socket_path);
        } catch (const std::exception& e) {
          throw TransportError(e.what());
        }
      }()),
      reader_(fd_.get()) {}

Json Client::read_response() {
  std::string line;
  if (!reader_.read_line(line)) {
    throw TransportError("connection closed by server");
  }
  Json response;
  try {
    response = Json::parse(line);
  } catch (const std::exception& e) {
    throw TransportError(std::string("malformed server line: ") + e.what());
  }
  const Json* ok = response.find("ok");
  if (ok == nullptr) throw ServiceError("server line has no ok: " + line);
  if (!ok->as_bool()) {
    throw ServiceError(response.string_or("error", "unspecified server error"));
  }
  return response;
}

Json Client::request(const Json& request_line) {
  Json stamped = Json::object();
  stamped.set("schema_version",
              Json::integer(exp::kTelemetrySchemaVersion));
  for (const Json::Member& member : request_line.members()) {
    stamped.set(member.first, member.second);
  }
  if (!write_line(fd_.get(), stamped.dump())) {
    throw TransportError("connection lost while sending request");
  }
  return read_response();
}

long long Client::submit(const std::string& spec,
                         const SubmitOptions& options) {
  const Json response = request(submit_request(spec, options));
  const Json* id = response.find("id");
  if (id == nullptr) throw ServiceError("submit response has no id");
  return id->as_i64();
}

std::vector<JobRecord> Client::list() {
  const Json response = request(simple_request("list"));
  std::vector<JobRecord> records;
  if (const Json* jobs = response.find("jobs"); jobs != nullptr) {
    for (const Json& job : jobs->items()) {
      records.push_back(job_from_json(job));
    }
  }
  return records;
}

JobRecord Client::status(long long id) {
  const Json response = request(id_request("status", id));
  const Json* job = response.find("job");
  if (job == nullptr) throw ServiceError("status response has no job");
  return job_from_json(*job);
}

JobRecord Client::wait(long long id) {
  const Json response = request(id_request("wait", id));
  const Json* job = response.find("job");
  if (job == nullptr) throw ServiceError("wait response has no job");
  return job_from_json(*job);
}

std::optional<JobRecord> Client::wait_for(long long id, double seconds) {
  Json line = id_request("wait", id);
  if (seconds > 0) line.set("timeout", Json::number(seconds));
  const Json response = request(line);
  if (response.find("timed_out") != nullptr) return std::nullopt;
  const Json* job = response.find("job");
  if (job == nullptr) throw ServiceError("wait response has no job");
  return job_from_json(*job);
}

JobRecord Client::watch(long long id,
                        const std::function<void(const Json&)>& on_line) {
  request(id_request("watch", id));  // the ack; telemetry lines follow
  for (;;) {
    std::string line;
    if (!reader_.read_line(line)) {
      throw TransportError("connection lost mid-watch");
    }
    Json record;
    try {
      record = Json::parse(line);
    } catch (const std::exception& e) {
      throw TransportError(std::string("malformed telemetry line: ") +
                           e.what());
    }
    if (on_line) on_line(record);
    if (record.string_or("event", "") == "job_end") break;
  }
  return status(id);
}

JobState Client::cancel(long long id) {
  const Json response = request(id_request("cancel", id));
  const std::optional<JobState> state =
      job_state_from_string(response.string_or("state", ""));
  if (!state) throw ServiceError("cancel response has no state");
  return *state;
}

int Client::drain() {
  const Json response = request(simple_request("drain"));
  return static_cast<int>(response.number_or("cancelled", 0));
}

void Client::ping() { request(simple_request("ping")); }

Json Client::info() { return request(simple_request("info")); }

Json Client::stats() { return request(simple_request("stats")); }

long long Client::session_open(const std::string& instance,
                               const SessionOptions& options) {
  const Json response = request(session_open_request(instance, options));
  const Json* session = response.find("session");
  if (session == nullptr) {
    throw ServiceError("session_open response has no session");
  }
  return session->as_i64();
}

Json Client::session_event(long long session, const Json& event_fields) {
  Json line = Json::object();
  line.set("op", Json::string("session_event"))
      .set("session", Json::integer(session));
  for (const Json::Member& member : event_fields.members()) {
    line.set(member.first, member.second);
  }
  return request(line);
}

Json Client::session_best(long long session) {
  return request(Json::object()
                     .set("op", Json::string("session_best"))
                     .set("session", Json::integer(session)));
}

Json Client::session_close(long long session) {
  return request(Json::object()
                     .set("op", Json::string("session_close"))
                     .set("session", Json::integer(session)));
}

}  // namespace psga::svc
