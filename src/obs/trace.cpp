#include "src/obs/trace.h"

#include <algorithm>
#include <ostream>

#include "src/obs/metrics.h"

namespace psga::obs {

Tracer::Tracer(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      slots_(std::max<std::size_t>(capacity, 1)) {}

std::uint64_t Tracer::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::record(const char* name, std::uint64_t start_ns,
                    std::uint64_t dur_ns) noexcept {
  const std::size_t slot = next_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SpanEvent& event = slots_[slot];
  event.name = name;
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  event.tid = this_thread_index();
}

std::vector<SpanEvent> Tracer::events() const {
  const std::size_t used =
      std::min(next_.load(std::memory_order_relaxed), slots_.size());
  return {slots_.begin(),
          slots_.begin() + static_cast<std::ptrdiff_t>(used)};
}

namespace {

void append_json_string(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Microseconds with nanosecond precision, without float formatting.
std::string micros_text(std::uint64_t ns) {
  std::string text = std::to_string(ns / 1000);
  const std::uint64_t frac = ns % 1000;
  if (frac != 0) {
    text += '.';
    text += static_cast<char>('0' + frac / 100);
    text += static_cast<char>('0' + frac / 10 % 10);
    text += static_cast<char>('0' + frac % 10);
    while (text.back() == '0') text.pop_back();
  }
  return text;
}

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceProcess>& processes) {
  std::string buffer;
  buffer += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceProcess& process : processes) {
    if (!process.name.empty()) {
      if (!first) buffer += ',';
      first = false;
      buffer += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
      buffer += std::to_string(process.pid);
      buffer += ",\"tid\":0,\"args\":{\"name\":";
      append_json_string(buffer, process.name);
      buffer += "}}";
    }
    for (const SpanEvent& event : process.events) {
      if (!first) buffer += ',';
      first = false;
      buffer += "{\"name\":";
      append_json_string(buffer,
                         event.name != nullptr ? event.name : "(null)");
      buffer += ",\"cat\":\"psga\",\"ph\":\"X\",\"ts\":";
      buffer += micros_text(event.start_ns);
      buffer += ",\"dur\":";
      buffer += micros_text(event.dur_ns);
      buffer += ",\"pid\":";
      buffer += std::to_string(process.pid);
      buffer += ",\"tid\":";
      buffer += std::to_string(event.tid);
      buffer += '}';
    }
  }
  buffer += "]}";
  out << buffer;
}

}  // namespace psga::obs
