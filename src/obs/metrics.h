// psga::obs — hot-path observability: counters, gauges and log2
// histograms behind a named registry.
//
// Design (after BESS's per-module counter model): the write path is
// lock-free and allocation-free — a counter add is one relaxed
// fetch_add into a per-thread shard slot, a histogram record is two —
// so metrics stay ALWAYS ON in the decode hot path at a cost of a few
// nanoseconds. Shards are cache-line padded so concurrent writers never
// bounce a line; readers pay instead: value()/snapshot() sum the shards
// on every scrape. Handles returned by the Registry are stable for the
// registry's lifetime, so hot code resolves them once at construction
// and never touches the name map again.
//
// Scoping: a Registry is cheap (a mutex + name maps); every engine run
// gets its own (shared with its inner engines), the daemon keeps one
// for its process lifetime. Per-run deltas come from snapshot
// subtraction, mirroring the EvalCacheStats baseline idiom.
//
// Determinism: nothing in this header ever feeds back into a decision —
// observation must never alter an evolutionary trace, and a test pins
// RunResults bit-identical with observability on vs off.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace psga::obs {

/// Process-wide kill switch (default on). Off, write paths return after
/// one relaxed load — the hook the on/off bit-identity test flips.
void set_enabled(bool enabled) noexcept;
bool enabled() noexcept;

/// Small dense id of the calling thread (assigned on first use); shards
/// and trace tracks key off it.
int this_thread_index() noexcept;

namespace detail {
struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace detail

/// Monotonic event counter. add() is one relaxed fetch_add into the
/// caller's shard; value() sums the shards (exact once writers joined,
/// safe — merely approximately ordered — while they race).
class Counter {
 public:
  static constexpr int kShards = 16;  // power of two (mask indexing)

  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    shards_[static_cast<std::size_t>(this_thread_index()) & (kShards - 1)]
        .value.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<detail::PaddedU64, kShards> shards_;
};

/// Point-in-time level (queue depth, inflight jobs). Single slot —
/// gauges live on cold paths; set/add are still lock-free.
class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    if (!enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    if (!enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Merged read-side view of one histogram: fixed log2 buckets — bucket 0
/// holds zeros, bucket b >= 1 holds values in [2^(b-1), 2^b).
struct HistogramSnapshot {
  static constexpr int kBuckets = 65;  // zeros + one per bit width

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Percentile estimate (p in [0, 100]) with linear interpolation
  /// inside the winning bucket; resolution is the bucket width (a factor
  /// of 2), which is plenty for latency tiles.
  double percentile(double p) const;

  /// Per-run deltas from lifetime snapshots (counts are monotonic).
  HistogramSnapshot& operator-=(const HistogramSnapshot& other);
};

/// Fixed-bucket log2 histogram of non-negative integer samples
/// (nanoseconds, batch sizes). record() is two relaxed fetch_adds into
/// the caller's shard; snapshot() merges the shards.
class Histogram {
 public:
  static constexpr int kShards = 8;  // power of two (mask indexing)

  void record(std::uint64_t value) noexcept {
    if (!enabled()) return;
    Shard& shard =
        shards_[static_cast<std::size_t>(this_thread_index()) & (kShards - 1)];
    shard.buckets[static_cast<std::size_t>(std::bit_width(value))].fetch_add(
        1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const noexcept;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, HistogramSnapshot::kBuckets>
        buckets{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Merged, name-sorted view of a whole Registry — the RunResult::metrics
/// payload and the `stats` protocol body. Plain data: copyable,
/// comparable-by-inspection, no atomics.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Name lookups (nullptr when absent) — tests and report tiles.
  const std::uint64_t* counter(const std::string& name) const;
  const std::int64_t* gauge(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;

  /// Adds (or overwrites) a counter keeping the name ordering — used to
  /// fold the EvalCache's own exact counters into a run snapshot.
  void set_counter(const std::string& name, std::uint64_t value);

  /// Per-run delta: subtracts `baseline`'s counters/histograms by name
  /// (names absent from the baseline pass through; gauges are levels and
  /// keep their current value).
  void subtract(const MetricsSnapshot& baseline);
};

/// Named metric directory. Lookup takes a mutex (cold: handles are
/// resolved once, at construction time); the returned references stay
/// valid for the registry's lifetime. Scrapes run concurrently with
/// writers — shards are atomics, so a mid-write scrape is merely a
/// moment-in-time sum, never a data race.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

using RegistryPtr = std::shared_ptr<Registry>;

/// The engine-constructor idiom: reuse the registry an outer engine (or
/// caller) provided, otherwise create the run's own.
inline RegistryPtr ensure_registry(RegistryPtr& registry) {
  if (registry == nullptr) registry = std::make_shared<Registry>();
  return registry;
}

}  // namespace psga::obs
