#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace psga::obs {

namespace {

std::atomic<bool> g_enabled{true};
std::atomic<int> g_next_thread_index{0};

}  // namespace

void set_enabled(bool enabled) noexcept {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

int this_thread_index() noexcept {
  thread_local const int index =
      g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
  return index;
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = buckets[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      // Interpolate linearly inside [lo, hi): bucket 0 is exactly zero,
      // bucket b >= 1 covers [2^(b-1), 2^b).
      if (b == 0) return 0.0;
      const double lo = std::ldexp(1.0, b - 1);
      const double hi = std::ldexp(1.0, b);
      const double into =
          std::clamp((rank - static_cast<double>(seen)) /
                         static_cast<double>(in_bucket),
                     0.0, 1.0);
      return lo + into * (hi - lo);
    }
    seen += in_bucket;
  }
  return std::ldexp(1.0, kBuckets - 1);
}

HistogramSnapshot& HistogramSnapshot::operator-=(
    const HistogramSnapshot& other) {
  count -= std::min(count, other.count);
  sum -= std::min(sum, other.sum);
  for (int b = 0; b < kBuckets; ++b) {
    const auto i = static_cast<std::size_t>(b);
    buckets[i] -= std::min(buckets[i], other.buckets[i]);
  }
  return *this;
}

HistogramSnapshot Histogram::snapshot() const noexcept {
  HistogramSnapshot merged;
  for (const Shard& shard : shards_) {
    for (int b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      const auto i = static_cast<std::size_t>(b);
      const std::uint64_t n = shard.buckets[i].load(std::memory_order_relaxed);
      merged.buckets[i] += n;
      merged.count += n;
    }
    merged.sum += shard.sum.load(std::memory_order_relaxed);
  }
  return merged;
}

namespace {

template <typename Pairs>
auto find_pair(Pairs& pairs, const std::string& name) {
  auto it = std::lower_bound(
      pairs.begin(), pairs.end(), name,
      [](const auto& pair, const std::string& key) { return pair.first < key; });
  return it;
}

}  // namespace

const std::uint64_t* MetricsSnapshot::counter(const std::string& name) const {
  auto it = find_pair(counters, name);
  return it != counters.end() && it->first == name ? &it->second : nullptr;
}

const std::int64_t* MetricsSnapshot::gauge(const std::string& name) const {
  auto it = find_pair(gauges, name);
  return it != gauges.end() && it->first == name ? &it->second : nullptr;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  auto it = find_pair(histograms, name);
  return it != histograms.end() && it->first == name ? &it->second : nullptr;
}

void MetricsSnapshot::set_counter(const std::string& name,
                                  std::uint64_t value) {
  auto it = find_pair(counters, name);
  if (it != counters.end() && it->first == name) {
    it->second = value;
  } else {
    counters.insert(it, {name, value});
  }
}

void MetricsSnapshot::subtract(const MetricsSnapshot& baseline) {
  for (auto& [name, value] : counters) {
    if (const std::uint64_t* base = baseline.counter(name)) {
      value -= std::min(value, *base);
    }
  }
  for (auto& [name, histogram] : histograms) {
    if (const HistogramSnapshot* base = baseline.histogram(name)) {
      histogram -= *base;
    }
  }
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.histograms.emplace_back(name, histogram->snapshot());
  }
  return out;
}

}  // namespace psga::obs
