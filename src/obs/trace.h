// psga::obs — opt-in stage tracing.
//
// A Tracer is a bounded per-run buffer of completed spans (breed,
// submit, fence, batch decode, cache filter, migration, local-search
// climb, ...). Writers claim a slot with one atomic fetch_add and fill
// it in place — no locks, no allocation after construction; when the
// buffer fills, further spans are counted as dropped rather than
// wrapping, so early-run structure survives. Span names must be string
// literals (or otherwise outlive the tracer): slots store the pointer.
//
// Export is the Chrome trace-event JSON format ("ph":"X" complete
// events), loadable directly in chrome://tracing or https://ui.perfetto.dev.
// When a sweep merges many per-cell tracers, each cell becomes one
// `pid` so Perfetto renders cells as separate process tracks.
//
// Tracing is opt-in per run (`trace=on` spec token / `--trace`); every
// recording site also works with a null tracer at the cost of one
// branch, and a test pins RunResults bit-identical with tracing on/off.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace psga::obs {

/// One completed span. `name` must point at storage outliving the
/// tracer (string literals at every call site).
struct SpanEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;  // relative to the tracer's epoch
  std::uint64_t dur_ns = 0;
  int tid = 0;  // this_thread_index() of the recording thread
};

/// Bounded lock-free span sink. record() is an atomic slot claim plus
/// in-place stores; events() is a quiescent-time snapshot (call it
/// after the run's threads have fenced, not while they race).
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  /// Nanoseconds since this tracer's construction (steady clock).
  std::uint64_t now_ns() const noexcept;

  void record(const char* name, std::uint64_t start_ns,
              std::uint64_t dur_ns) noexcept;

  /// Completed spans in claim order, truncated to capacity.
  std::vector<SpanEvent> events() const;

  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::vector<SpanEvent> slots_;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// RAII span: times construction→destruction and records into the
/// tracer. Null-tolerant so call sites stay unconditional:
///   obs::Span span(tracer_.get(), "decode");
class Span {
 public:
  Span(Tracer* tracer, const char* name) noexcept
      : tracer_(tracer), name_(name),
        start_ns_(tracer != nullptr ? tracer->now_ns() : 0) {}
  ~Span() {
    if (tracer_ != nullptr) {
      tracer_->record(name_, start_ns_, tracer_->now_ns() - start_ns_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
  std::uint64_t start_ns_;
};

/// One Perfetto process track: a named pid plus its spans (timestamps
/// already relative to that tracer's epoch).
struct TraceProcess {
  int pid = 0;
  std::string name;
  std::vector<SpanEvent> events;
};

/// Writes Chrome trace-event JSON ({"traceEvents":[...]}) with one
/// complete ("ph":"X") event per span; ts/dur are microseconds as the
/// format requires (fractional, so ns precision survives).
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceProcess>& processes);

}  // namespace psga::obs
