#include "src/ga/quantum_ga.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/ga/problems.h"

namespace psga::ga {

namespace {

constexpr double kHalfPi = 1.5707963267948966;

struct QuantumIndividual {
  std::vector<double> theta;  ///< qubit angles
};

/// Reusable per-island buffers for the measurement loop.
struct MeasureScratch {
  std::vector<double> priority;
  std::vector<int> perm;
};

/// Collapses angles to a genome: priority_i = sin²θ_i + noise·U(0,1),
/// decoded by the random-keys rule appropriate for the problem's traits.
/// All buffers (including out.seq) are reused across calls.
void measure(const std::vector<double>& theta, const GenomeTraits& traits,
             double noise, par::Rng& rng, MeasureScratch& scratch,
             Genome& out) {
  std::vector<double>& priority = scratch.priority;
  priority.resize(theta.size());
  for (std::size_t i = 0; i < theta.size(); ++i) {
    const double s = std::sin(theta[i]);
    priority[i] = s * s + noise * rng.uniform();
  }
  if (traits.seq_kind == SeqKind::kJobRepetition) {
    keys_to_repetition_sequence(priority, traits.repeats, scratch.perm,
                                out.seq);
  } else {
    keys_to_permutation(priority, out.seq);
  }
}

/// Rotation gate: pull θ toward the angle configuration whose measurement
/// would reproduce `target`'s priority ranks.
void rotate_toward(std::vector<double>& theta, const Genome& target,
                   const GenomeTraits& traits, double delta) {
  // target.seq orders values; invert it to per-slot rank. For repetition
  // sequences rank slots job-major (k-th occurrence of job j = its k-th
  // flat op slot), mirroring keys_to_repetition_sequence.
  const std::size_t n = theta.size();
  std::vector<double> target_key(n, 0.0);
  if (traits.seq_kind == SeqKind::kJobRepetition) {
    // slot_base[j] = first flat slot of job j.
    std::vector<int> slot_base(traits.repeats.size() + 1, 0);
    for (std::size_t j = 0; j < traits.repeats.size(); ++j) {
      slot_base[j + 1] = slot_base[j] + traits.repeats[j];
    }
    std::vector<int> seen(traits.repeats.size(), 0);
    for (std::size_t pos = 0; pos < target.seq.size(); ++pos) {
      const int job = target.seq[pos];
      const int slot = slot_base[static_cast<std::size_t>(job)] +
                       seen[static_cast<std::size_t>(job)]++;
      target_key[static_cast<std::size_t>(slot)] =
          static_cast<double>(pos) / static_cast<double>(n);
    }
  } else {
    for (std::size_t pos = 0; pos < target.seq.size(); ++pos) {
      target_key[static_cast<std::size_t>(target.seq[pos])] =
          static_cast<double>(pos) / static_cast<double>(n);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    // Angle whose sin² equals the target key.
    const double want = std::asin(std::sqrt(std::clamp(target_key[i], 0.0, 1.0)));
    if (theta[i] < want) {
      theta[i] = std::min(theta[i] + delta, want);
    } else {
      theta[i] = std::max(theta[i] - delta, want);
    }
  }
}

}  // namespace

QuantumGa::QuantumGa(ProblemPtr problem, QuantumGaConfig config,
                     par::ThreadPool* pool)
    : problem_(std::move(problem)),
      config_(std::move(config)),
      pool_(pool != nullptr ? pool : &par::default_pool()) {}

QuantumGaResult QuantumGa::run() {
  const auto start = std::chrono::steady_clock::now();
  const GenomeTraits& traits = problem_->traits();
  const std::size_t genes = static_cast<std::size_t>(traits.seq_length);
  const int k = config_.islands;

  par::Rng root(config_.seed);
  struct Island {
    std::vector<QuantumIndividual> pop;
    par::Rng rng;
    Genome best;
    double best_obj = -1.0;
    MeasureScratch measure_scratch;
  };
  std::vector<Island> islands(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    Island& island = islands[static_cast<std::size_t>(i)];
    island.rng = root.split(static_cast<std::uint64_t>(i + 1));
    island.pop.resize(static_cast<std::size_t>(config_.population));
    for (auto& ind : island.pop) {
      ind.theta.resize(genes);
      // Start at maximum superposition (π/4) with small jitter.
      for (auto& t : ind.theta) {
        t = kHalfPi / 2.0 + island.rng.uniform(-0.2, 0.2);
      }
    }
  }

  QuantumGaResult result;

  // All measurements of a generation live in one flat batch (island-major)
  // so a single Evaluator call covers every island at once.
  const std::size_t pop = static_cast<std::size_t>(config_.population);
  std::vector<Genome> measured(static_cast<std::size_t>(k) * pop);
  std::vector<double> objectives(measured.size(), 0.0);
  Evaluator evaluator(problem_, config_.eval_backend, pool_);

  double annealed_noise = config_.measure_noise;
  auto measure_island = [&](std::size_t idx) {
    Island& island = islands[idx];
    for (std::size_t p = 0; p < island.pop.size(); ++p) {
      measure(island.pop[p].theta, traits, annealed_noise, island.rng,
              island.measure_scratch, measured[idx * pop + p]);
    }
  };
  auto evolve_island = [&](std::size_t idx) {
    Island& island = islands[idx];
    for (std::size_t p = 0; p < island.pop.size(); ++p) {
      const double objective = objectives[idx * pop + p];
      if (island.best_obj < 0.0 || objective < island.best_obj) {
        island.best_obj = objective;
        island.best = measured[idx * pop + p];
      }
    }
    // Rotation toward the island best.
    for (auto& ind : island.pop) {
      rotate_toward(ind.theta, island.best, traits, config_.rotation_delta);
    }
    // Quantum segment crossover within the island (lower level of [28]).
    for (std::size_t p = 0; p + 1 < island.pop.size(); p += 2) {
      if (!island.rng.chance(config_.crossover_rate)) continue;
      std::size_t lo = island.rng.below(genes);
      std::size_t hi = island.rng.below(genes);
      if (lo > hi) std::swap(lo, hi);
      for (std::size_t g = lo; g <= hi; ++g) {
        std::swap(island.pop[p].theta[g], island.pop[p + 1].theta[g]);
      }
    }
    // Not-gate mutation.
    for (auto& ind : island.pop) {
      if (island.rng.chance(config_.not_gate_rate)) {
        const std::size_t g = island.rng.below(genes);
        ind.theta[g] = kHalfPi - ind.theta[g];
      }
    }
  };

  for (int gen = 0; gen < config_.generations; ++gen) {
    const double t =
        config_.generations > 1
            ? static_cast<double>(gen) / (config_.generations - 1)
            : 0.0;
    annealed_noise = config_.measure_noise +
                     t * (config_.measure_noise_final - config_.measure_noise);
    pool_->parallel_for(islands.size(), measure_island);
    evaluator.evaluate(measured, objectives);
    pool_->parallel_for(islands.size(), evolve_island);
    // Upper level: penetration migration from the globally best island.
    if (config_.migration_interval > 0 &&
        (gen + 1) % config_.migration_interval == 0 && k > 1) {
      std::size_t leader = 0;
      for (std::size_t i = 1; i < islands.size(); ++i) {
        if (islands[i].best_obj < islands[leader].best_obj) leader = i;
      }
      // Blend the leader's best-measured solution into every other
      // island's worst individual's angles.
      std::vector<double> leader_theta(genes, kHalfPi / 2.0);
      rotate_toward(leader_theta, islands[leader].best, traits, kHalfPi);
      for (std::size_t i = 0; i < islands.size(); ++i) {
        if (i == leader) continue;
        std::size_t worst = 0;
        for (std::size_t p = 1; p < islands[i].pop.size(); ++p) {
          if (objectives[i * pop + p] > objectives[i * pop + worst]) worst = p;
        }
        auto& worst_theta = islands[i].pop[worst].theta;
        for (std::size_t g = 0; g < genes; ++g) {
          worst_theta[g] = config_.penetration * leader_theta[g] +
                           (1.0 - config_.penetration) * worst_theta[g];
        }
      }
    }
    double global = islands.front().best_obj;
    for (const auto& island : islands) global = std::min(global, island.best_obj);
    result.overall.history.push_back(global);
  }

  std::size_t leader = 0;
  result.island_best.resize(islands.size());
  for (std::size_t i = 0; i < islands.size(); ++i) {
    result.island_best[i] = islands[i].best_obj;
    if (islands[i].best_obj < islands[leader].best_obj) leader = i;
  }
  result.overall.best = islands[leader].best;
  result.overall.best_objective = islands[leader].best_obj;
  result.overall.evaluations = evaluator.evaluations();
  result.overall.generations = config_.generations;
  result.overall.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace psga::ga
