#include "src/ga/quantum_ga.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/ga/problems.h"

namespace psga::ga {

namespace {

constexpr double kHalfPi = 1.5707963267948966;

struct QuantumIndividual {
  std::vector<double> theta;  ///< qubit angles
};

/// Reusable per-island buffers for the measurement loop.
struct MeasureScratch {
  std::vector<double> priority;
  std::vector<int> perm;
};

/// Collapses angles to a genome: priority_i = sin²θ_i + noise·U(0,1),
/// decoded by the random-keys rule appropriate for the problem's traits.
/// All buffers (including out.seq) are reused across calls.
void measure(const std::vector<double>& theta, const GenomeTraits& traits,
             double noise, par::Rng& rng, MeasureScratch& scratch,
             Genome& out) {
  std::vector<double>& priority = scratch.priority;
  priority.resize(theta.size());
  for (std::size_t i = 0; i < theta.size(); ++i) {
    const double s = std::sin(theta[i]);
    priority[i] = s * s + noise * rng.uniform();
  }
  if (traits.seq_kind == SeqKind::kJobRepetition) {
    keys_to_repetition_sequence(priority, traits.repeats, scratch.perm,
                                out.seq);
  } else {
    keys_to_permutation(priority, out.seq);
  }
}

/// Rotation gate: pull θ toward the angle configuration whose measurement
/// would reproduce `target`'s priority ranks.
void rotate_toward(std::vector<double>& theta, const Genome& target,
                   const GenomeTraits& traits, double delta) {
  // target.seq orders values; invert it to per-slot rank. For repetition
  // sequences rank slots job-major (k-th occurrence of job j = its k-th
  // flat op slot), mirroring keys_to_repetition_sequence.
  const std::size_t n = theta.size();
  std::vector<double> target_key(n, 0.0);
  if (traits.seq_kind == SeqKind::kJobRepetition) {
    // slot_base[j] = first flat slot of job j.
    std::vector<int> slot_base(traits.repeats.size() + 1, 0);
    for (std::size_t j = 0; j < traits.repeats.size(); ++j) {
      slot_base[j + 1] = slot_base[j] + traits.repeats[j];
    }
    std::vector<int> seen(traits.repeats.size(), 0);
    for (std::size_t pos = 0; pos < target.seq.size(); ++pos) {
      const int job = target.seq[pos];
      const int slot = slot_base[static_cast<std::size_t>(job)] +
                       seen[static_cast<std::size_t>(job)]++;
      target_key[static_cast<std::size_t>(slot)] =
          static_cast<double>(pos) / static_cast<double>(n);
    }
  } else {
    for (std::size_t pos = 0; pos < target.seq.size(); ++pos) {
      target_key[static_cast<std::size_t>(target.seq[pos])] =
          static_cast<double>(pos) / static_cast<double>(n);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    // Angle whose sin² equals the target key.
    const double want = std::asin(std::sqrt(std::clamp(target_key[i], 0.0, 1.0)));
    if (theta[i] < want) {
      theta[i] = std::min(theta[i] + delta, want);
    } else {
      theta[i] = std::max(theta[i] - delta, want);
    }
  }
}

}  // namespace

struct QuantumGa::State {
  struct Island {
    std::vector<QuantumIndividual> pop;
    par::Rng rng;
    Genome best;
    double best_obj = -1.0;
    MeasureScratch measure_scratch;
  };

  State(ProblemPtr problem, EvalBackend backend, par::ThreadPool* pool,
        int eval_batch)
      : evaluator(std::move(problem), backend, pool,
                  /*async_coordinator_only=*/false, eval_batch) {}

  std::vector<Island> islands;
  /// All measurements of a generation in one flat batch (island-major)
  /// so a single Evaluator call covers every island at once.
  std::vector<Genome> measured;
  std::vector<double> objectives;
  Evaluator evaluator;
  double annealed_noise = 0.0;
  int generation = 0;

  std::size_t leader() const {
    std::size_t lead = 0;
    for (std::size_t i = 1; i < islands.size(); ++i) {
      if (islands[i].best_obj < islands[lead].best_obj) lead = i;
    }
    return lead;
  }
};

QuantumGa::QuantumGa(ProblemPtr problem, QuantumGaConfig config,
                     par::ThreadPool* pool)
    : problem_(std::move(problem)),
      config_(std::move(config)),
      pool_(pool != nullptr ? pool : &par::default_pool()),
      planned_generations_(config_.generations) {
  obs::ensure_registry(config_.metrics);
  attach_obs(config_.metrics, config_.tracer);
}

QuantumGa::~QuantumGa() = default;

void QuantumGa::prepare_run(const StopCondition& stop) {
  // The noise-annealing schedule needs a finite horizon; under an
  // unbounded generation cap (wall-clock / evaluation budgets) fall back
  // to the configured generation count so the exploration→exploitation
  // ramp still happens.
  planned_generations_ =
      stop.max_generations == std::numeric_limits<int>::max()
          ? config_.generations
          : stop.max_generations;
}

void QuantumGa::init() {
  const GenomeTraits& traits = problem_->traits();
  const std::size_t genes = static_cast<std::size_t>(traits.seq_length);
  const int k = config_.islands;
  const std::size_t pop = static_cast<std::size_t>(config_.population);

  state_ = std::make_unique<State>(problem_, config_.eval_backend, pool_,
                                   config_.eval_batch);
  state_->evaluator.set_cache(
      EvalCache::make(config_.eval_cache, config_.shared_eval_cache));
  state_->evaluator.set_obs(config_.metrics, config_.tracer);
  par::Rng root(config_.seed);
  state_->islands.resize(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    State::Island& island = state_->islands[static_cast<std::size_t>(i)];
    island.rng = root.split(static_cast<std::uint64_t>(i + 1));
    island.pop.resize(pop);
    for (auto& ind : island.pop) {
      ind.theta.resize(genes);
      // Start at maximum superposition (π/4) with small jitter.
      for (auto& t : ind.theta) {
        t = kHalfPi / 2.0 + island.rng.uniform(-0.2, 0.2);
      }
    }
  }
  state_->measured.assign(static_cast<std::size_t>(k) * pop, Genome{});
  state_->objectives.assign(state_->measured.size(), 0.0);
  state_->annealed_noise = config_.measure_noise;
  state_->generation = 0;
}

void QuantumGa::step() {
  State& s = *state_;
  const GenomeTraits& traits = problem_->traits();
  const std::size_t genes = static_cast<std::size_t>(traits.seq_length);
  const std::size_t pop = static_cast<std::size_t>(config_.population);
  const int k = config_.islands;

  const double t =
      planned_generations_ > 1
          ? static_cast<double>(s.generation) / (planned_generations_ - 1)
          : 0.0;
  s.annealed_noise = config_.measure_noise +
                     t * (config_.measure_noise_final - config_.measure_noise);

  auto measure_island = [&](std::size_t idx) {
    State::Island& island = s.islands[idx];
    for (std::size_t p = 0; p < island.pop.size(); ++p) {
      measure(island.pop[p].theta, traits, s.annealed_noise, island.rng,
              island.measure_scratch, s.measured[idx * pop + p]);
    }
  };
  auto evolve_island = [&](std::size_t idx) {
    State::Island& island = s.islands[idx];
    for (std::size_t p = 0; p < island.pop.size(); ++p) {
      const double objective = s.objectives[idx * pop + p];
      if (island.best_obj < 0.0 || objective < island.best_obj) {
        island.best_obj = objective;
        island.best = s.measured[idx * pop + p];
      }
    }
    // Rotation toward the island best.
    for (auto& ind : island.pop) {
      rotate_toward(ind.theta, island.best, traits, config_.rotation_delta);
    }
    // Quantum segment crossover within the island (lower level of [28]).
    for (std::size_t p = 0; p + 1 < island.pop.size(); p += 2) {
      if (!island.rng.chance(config_.crossover_rate)) continue;
      std::size_t lo = island.rng.below(genes);
      std::size_t hi = island.rng.below(genes);
      if (lo > hi) std::swap(lo, hi);
      for (std::size_t g = lo; g <= hi; ++g) {
        std::swap(island.pop[p].theta[g], island.pop[p + 1].theta[g]);
      }
    }
    // Not-gate mutation.
    for (auto& ind : island.pop) {
      if (island.rng.chance(config_.not_gate_rate)) {
        const std::size_t g = island.rng.below(genes);
        ind.theta[g] = kHalfPi - ind.theta[g];
      }
    }
  };

  pool_->parallel_for(s.islands.size(), measure_island);
  s.evaluator.evaluate(s.measured, s.objectives);
  pool_->parallel_for(s.islands.size(), evolve_island);

  // Upper level: penetration migration from the globally best island.
  if (config_.migration_interval > 0 &&
      (s.generation + 1) % config_.migration_interval == 0 && k > 1) {
    const std::size_t leader = s.leader();
    // Blend the leader's best-measured solution into every other
    // island's worst individual's angles.
    std::vector<double> leader_theta(genes, kHalfPi / 2.0);
    rotate_toward(leader_theta, s.islands[leader].best, traits, kHalfPi);
    for (std::size_t i = 0; i < s.islands.size(); ++i) {
      if (i == leader) continue;
      std::size_t worst = 0;
      for (std::size_t p = 1; p < s.islands[i].pop.size(); ++p) {
        if (s.objectives[i * pop + p] > s.objectives[i * pop + worst]) {
          worst = p;
        }
      }
      auto& worst_theta = s.islands[i].pop[worst].theta;
      for (std::size_t g = 0; g < genes; ++g) {
        worst_theta[g] = config_.penetration * leader_theta[g] +
                         (1.0 - config_.penetration) * worst_theta[g];
      }
      if (observer_ != nullptr) {
        observer_->on_migration(MigrationEvent{
            s.generation + 1, static_cast<int>(leader), static_cast<int>(i),
            s.islands[leader].best_obj});
      }
    }
  }
  ++s.generation;
}

int QuantumGa::generation() const {
  return state_ ? state_->generation : 0;
}

double QuantumGa::best_objective() const {
  return state_ ? state_->islands[state_->leader()].best_obj : 0.0;
}

const Genome& QuantumGa::best() const {
  return state_->islands[state_->leader()].best;
}

long long QuantumGa::evaluations() const {
  return state_ ? state_->evaluator.evaluations() : 0;
}

int QuantumGa::population_size() const {
  return state_ ? static_cast<int>(state_->measured.size()) : 0;
}

const Genome& QuantumGa::individual(int i) const {
  return state_->measured[static_cast<std::size_t>(i)];
}

double QuantumGa::objective_of(int i) const {
  return state_->objectives[static_cast<std::size_t>(i)];
}

EvalCachePtr QuantumGa::eval_cache_shared() const {
  // Pre-init, a user-shared cache is already known from the config, so
  // the run loop can baseline its counters before init() attaches it.
  return state_ ? state_->evaluator.cache_ptr() : config_.shared_eval_cache;
}

void QuantumGa::fill_sections(RunResult& result) const {
  const State& s = *state_;
  IslandSection islands;
  islands.best.reserve(s.islands.size());
  islands.best_genome.reserve(s.islands.size());
  for (const auto& island : s.islands) {
    islands.best.push_back(island.best_obj);
    islands.best_genome.push_back(island.best);
  }
  islands.surviving = static_cast<int>(s.islands.size());
  result.islands = std::move(islands);

  QuantumSection quantum;
  quantum.final_noise = s.annealed_noise;
  double collapse = 0.0;
  std::size_t angles = 0;
  for (const auto& island : s.islands) {
    for (const auto& ind : island.pop) {
      for (double theta : ind.theta) {
        collapse += std::abs(theta - kHalfPi / 2.0);
        ++angles;
      }
    }
  }
  quantum.mean_collapse = angles > 0 ? collapse / static_cast<double>(angles)
                                     : 0.0;
  result.quantum = quantum;
}

}  // namespace psga::ga
