// Selection operators (Section III.A of the survey: "roulette wheel
// selection, stochastic universal sampling, tournament selection and so
// on", plus the elitist-roulette combination of Mui et al. [17]).
//
// All selections act on FITNESS values where larger is better — the
// engines apply one of the survey's fitness transforms (Eq. 1/2) to the
// minimized objective first.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/par/rng.h"

namespace psga::ga {

class Selection {
 public:
  virtual ~Selection() = default;

  virtual std::string name() const = 0;

  /// Index of one selected parent.
  virtual int pick(std::span<const double> fitness, par::Rng& rng) const = 0;

  /// `count` parents; the default draws independently, SUS overrides with
  /// its equally-spaced-pointer sweep.
  virtual std::vector<int> pick_many(std::span<const double> fitness,
                                     int count, par::Rng& rng) const;
};

using SelectionPtr = std::shared_ptr<const Selection>;

/// Fitness-proportionate (roulette wheel). Degenerates to uniform when all
/// fitness mass is zero.
class RouletteSelection final : public Selection {
 public:
  std::string name() const override { return "roulette"; }
  int pick(std::span<const double> fitness, par::Rng& rng) const override;
};

/// Stochastic universal sampling: one spin, `count` equally spaced
/// pointers — lower variance than repeated roulette.
class StochasticUniversalSelection final : public Selection {
 public:
  std::string name() const override { return "sus"; }
  int pick(std::span<const double> fitness, par::Rng& rng) const override;
  std::vector<int> pick_many(std::span<const double> fitness, int count,
                             par::Rng& rng) const override;
};

/// k-way tournament (Defersha & Chen use k-way; Kokosiński 2-elements).
class TournamentSelection final : public Selection {
 public:
  explicit TournamentSelection(int k = 2) : k_(k) {}
  std::string name() const override {
    return "tournament" + std::to_string(k_);
  }
  int pick(std::span<const double> fitness, par::Rng& rng) const override;

 private:
  int k_;
};

/// Linear ranking selection: pressure in [1, 2].
class RankSelection final : public Selection {
 public:
  explicit RankSelection(double pressure = 1.8) : pressure_(pressure) {}
  std::string name() const override { return "rank"; }
  int pick(std::span<const double> fitness, par::Rng& rng) const override;

 private:
  double pressure_;
};

/// Mui et al. [17]: with probability `elite_bias` pick uniformly among the
/// top `elite_fraction` of the population, otherwise roulette.
class ElitistRouletteSelection final : public Selection {
 public:
  ElitistRouletteSelection(double elite_fraction = 0.1, double elite_bias = 0.5)
      : elite_fraction_(elite_fraction), elite_bias_(elite_bias) {}
  std::string name() const override { return "elitist-roulette"; }
  int pick(std::span<const double> fitness, par::Rng& rng) const override;

 private:
  double elite_fraction_;
  double elite_bias_;
};

}  // namespace psga::ga
