#include "src/ga/cellular_ga.h"

#include <algorithm>
#include <cstdlib>

#include "src/ga/simple_ga.h"

namespace psga::ga {

CellularGa::CellularGa(ProblemPtr problem, CellularConfig config,
                       par::ThreadPool* pool)
    : problem_(std::move(problem)),
      config_(std::move(config)),
      pool_(pool != nullptr ? pool : &par::default_pool()),
      evaluator_(problem_, config_.eval_backend, pool_,
                 config_.async_coordinator_only, config_.eval_batch) {
  if (!config_.crossover || !config_.mutation) {
    OperatorConfig defaults = default_operators(*problem_);
    if (!config_.crossover) config_.crossover = defaults.crossover;
    if (!config_.mutation) config_.mutation = defaults.mutation;
  }
  evaluator_.set_cache(
      EvalCache::make(config_.eval_cache, config_.shared_eval_cache));
  evaluator_.set_hash_salt(config_.cache_salt);
  obs::ensure_registry(config_.metrics);
  attach_obs(config_.metrics, config_.tracer);
  evaluator_.set_obs(config_.metrics, config_.tracer);
}

std::vector<int> CellularGa::neighbors_of(int cell) const {
  const int w = config_.width;
  const int h = config_.height;
  const int x = cell % w;
  const int y = cell / w;
  const int r = config_.radius;
  std::vector<int> out;
  for (int dy = -r; dy <= r; ++dy) {
    for (int dx = -r; dx <= r; ++dx) {
      if (dx == 0 && dy == 0) continue;
      if (config_.neighborhood == Neighborhood::kVonNeumann &&
          std::abs(dx) + std::abs(dy) > r) {
        continue;
      }
      const int nx = ((x + dx) % w + w) % w;  // torus wrap
      const int ny = ((y + dy) % h + h) % h;
      const int neighbor = ny * w + nx;
      if (neighbor != cell &&
          std::find(out.begin(), out.end(), neighbor) == out.end()) {
        out.push_back(neighbor);
      }
    }
  }
  return out;
}

void CellularGa::init() {
  const int n = cells();
  par::Rng root(config_.seed);
  grid_.clear();
  grid_.reserve(static_cast<std::size_t>(n));
  cell_rngs_.clear();
  cell_rngs_.reserve(static_cast<std::size_t>(n));
  neighbor_table_.clear();
  neighbor_table_.reserve(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    cell_rngs_.push_back(root.split(static_cast<std::uint64_t>(c)));
    grid_.push_back(problem_->random_genome(cell_rngs_.back()));
    neighbor_table_.push_back(neighbors_of(c));
  }
  // Warm start: injected individuals occupy the leading cells (the random
  // draw above still happens so unseeded cells' streams are unaffected).
  for (std::size_t c = 0;
       c < config_.initial_population.size() && c < grid_.size(); ++c) {
    grid_[c] = config_.initial_population[c];
  }
  objectives_.assign(static_cast<std::size_t>(n), 0.0);
  evaluations_baseline_ = evaluator_.evaluations();
  evaluator_.evaluate(grid_, objectives_);
  generation_ = 0;
  best_objective_ = objectives_.front();
  best_ = grid_.front();
  update_best();
}

void CellularGa::update_best() {
  for (std::size_t c = 0; c < grid_.size(); ++c) {
    if (objectives_[c] < best_objective_) {
      best_objective_ = objectives_[c];
      best_ = grid_[c];
    }
  }
}

void CellularGa::step() {
  const int n = cells();
  next_grid_.resize(static_cast<std::size_t>(n));
  next_objectives_.assign(static_cast<std::size_t>(n), 0.0);
  const GenomeTraits& traits = problem_->traits();

  // Phase 1 — breeding: every cell produces its candidate offspring from
  // its own Rng stream (thread-count independent).
  pool_->parallel_for(static_cast<std::size_t>(n), [&](std::size_t c) {
    par::Rng& rng = cell_rngs_[c];
    const std::vector<int>& hood = neighbor_table_[c];
    // Binary tournament within the neighborhood for the mate.
    auto pick_neighbor = [&] {
      const int a = hood[rng.below(hood.size())];
      const int b = hood[rng.below(hood.size())];
      return objectives_[static_cast<std::size_t>(a)] <=
                     objectives_[static_cast<std::size_t>(b)]
                 ? a
                 : b;
    };
    const int mate = pick_neighbor();
    Genome child1;
    Genome child2;
    if (rng.chance(config_.crossover_rate)) {
      config_.crossover->cross(grid_[c],
                               grid_[static_cast<std::size_t>(mate)], traits,
                               child1, child2, rng);
    } else {
      child1 = grid_[c];
    }
    if (rng.chance(config_.mutation_rate)) {
      config_.mutation->mutate(child1, traits, rng);
    }
    next_grid_[c] = std::move(child1);
  });

  // Phase 2 — one batched fitness evaluation for the whole grid.
  evaluator_.evaluate(next_grid_, next_objectives_);

  // Phase 3 — synchronous replacement.
  for (std::size_t c = 0; c < static_cast<std::size_t>(n); ++c) {
    if (config_.replace_if_better && next_objectives_[c] > objectives_[c]) {
      next_grid_[c] = grid_[c];
      next_objectives_[c] = objectives_[c];
    }
  }
  grid_.swap(next_grid_);
  objectives_.swap(next_objectives_);
  ++generation_;
  update_best();
}

void CellularGa::replace_cell(int cell, const Genome& genome,
                              double objective) {
  grid_[static_cast<std::size_t>(cell)] = genome;
  objectives_[static_cast<std::size_t>(cell)] = objective;
  if (objective < best_objective_) {
    best_objective_ = objective;
    best_ = genome;
  }
}

}  // namespace psga::ga
