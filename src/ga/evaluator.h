// The unified batched fitness-evaluation engine shared by every GA model.
//
// The survey's central axis is *where* fitness evaluation is parallelized
// (master-slave, cellular, island); this class is the single place that
// axis lives. An engine hands a population to evaluate() and the chosen
// backend fills the objective vector:
//   kSerial     — the calling thread, one reusable Workspace;
//   kThreadPool — the library thread pool, one static chunk + Workspace
//                 per lane (the master-slave model of Table III);
//   kOpenMp     — the OpenMP runtime with the same static chunking
//                 (serial when OpenMP is not compiled in).
// Objectives are pure, and the chunk→lane mapping is deterministic, so
// results are bit-identical across backends and thread counts; Workspaces
// only recycle allocations, never carry state between genomes.
//
// An Evaluator instance is NOT re-entrant: it owns one Workspace per lane.
// Engines that evaluate from several threads at once (islands stepping in
// parallel) give each inner engine its own serial Evaluator instead.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "src/ga/problem.h"
#include "src/par/thread_pool.h"

namespace psga::ga {

/// Which runtime executes fitness batches (selected via GaConfig).
enum class EvalBackend {
  kSerial,      ///< calling thread only
  kThreadPool,  ///< the library thread pool (master-slave slaves)
  kOpenMp,      ///< OpenMP parallel-for (serial if not compiled in)
};

class Evaluator {
 public:
  /// `pool` may be null — the library default pool is used (only relevant
  /// for EvalBackend::kThreadPool).
  explicit Evaluator(ProblemPtr problem,
                     EvalBackend backend = EvalBackend::kSerial,
                     par::ThreadPool* pool = nullptr);

  /// Fills objectives[i] = problem objective of genomes[i]. Spans must
  /// have equal size. Counts toward evaluations().
  void evaluate(std::span<const Genome> genomes, std::span<double> objectives);

  /// Single-genome convenience on lane 0's Workspace (local search, B&B
  /// comparisons). Counts toward evaluations().
  double evaluate_one(const Genome& genome);

  /// Total genomes evaluated through this Evaluator.
  long long evaluations() const noexcept { return evaluations_; }

  EvalBackend backend() const noexcept { return backend_; }
  const Problem& problem() const noexcept { return *problem_; }

  /// Worker-lane count of the active backend (1 for kSerial).
  int lanes() const noexcept { return static_cast<int>(workspaces_.size()); }

 private:
  Workspace& workspace(std::size_t lane) { return *workspaces_[lane]; }

  ProblemPtr problem_;
  EvalBackend backend_;
  par::ThreadPool* pool_;
  std::vector<std::unique_ptr<Workspace>> workspaces_;  // one per lane
  long long evaluations_ = 0;
};

}  // namespace psga::ga
