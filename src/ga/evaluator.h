// The unified batched fitness-evaluation engine shared by every GA model.
//
// The survey's central axis is *where* fitness evaluation is parallelized
// (master-slave, cellular, island); this class is the single place that
// axis lives. An engine hands a population to evaluate() and the chosen
// backend fills the objective vector:
//   kSerial     — the calling thread, one reusable Workspace;
//   kThreadPool — the library thread pool, one static chunk + Workspace
//                 per lane (the master-slave model of Table III);
//   kOpenMp     — the OpenMP runtime with the same static chunking
//                 (serial when OpenMP is not compiled in);
//   kAsyncPool  — the pipelined mode: submit() enqueues batches on a
//                 coordinator thread and returns immediately, so an
//                 engine keeps breeding generation g+1 while earlier
//                 blocks of it are already being evaluated; fence() is
//                 the generation fence that every objective read (elitism
//                 sort, migration, run-loop bookkeeping) must cross.
// Objectives are pure, and the chunk→lane mapping is deterministic, so
// results are bit-identical across backends and thread counts; Workspaces
// only recycle allocations, never carry state between genomes. The async
// pipeline preserves that contract: it changes *when* a batch is decoded,
// never what the decode returns, and evaluations() counts at submit time
// on the engine thread, so evaluation-budget stops are backend-invariant.
//
// An optional EvalCache (set_cache) memoizes objectives by genome hash;
// lookups happen on the engine thread, only the misses reach the backend,
// and decode_calls() reports how many genomes were actually decoded.
// Several evaluators may share one cache (islands, cluster ranks): cached
// values come from the same pure objectives, so sharing never perturbs a
// trace. Cache counters are exact on synchronous backends; under the
// async pipeline the hit/miss split of intra-flight duplicates depends on
// insert timing (values never do).
//
// An Evaluator instance is NOT re-entrant: it owns one Workspace per lane.
// Engines that evaluate from several threads at once (islands stepping in
// parallel) give each inner engine its own serial — or coordinator-only
// async — Evaluator instead.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "src/ga/eval_cache.h"
#include "src/ga/problem.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/par/thread_pool.h"

namespace psga::ga {

/// Which runtime executes fitness batches (selected via GaConfig).
enum class EvalBackend {
  kSerial,      ///< calling thread only
  kThreadPool,  ///< the library thread pool (master-slave slaves)
  kOpenMp,      ///< OpenMP parallel-for (serial if not compiled in)
  kAsyncPool,   ///< pipelined submit()/fence() on a coordinator thread
};

class AsyncPipeline;  // internal to evaluator.cpp

class Evaluator {
 public:
  /// `pool` may be null — the library default pool is used (only relevant
  /// for the thread-pool and async backends). `async_coordinator_only`
  /// restricts the async pipeline to its coordinator thread instead of
  /// fanning batches out on the pool — set by engines whose outer level
  /// already owns the pool (parallel island steps, cluster ranks), where
  /// a nested fork-join would contend or deadlock. `eval_batch` is the
  /// chunk size handed to Problem::objective_batch on every backend:
  /// 0 = auto (a lane-width-friendly default block), otherwise the exact
  /// block size (1 degenerates to per-genome calls). Objectives are pure
  /// and the chunk→genome mapping is deterministic, so the value never
  /// changes any objective — only how many genomes each batched decode
  /// kernel invocation sees.
  explicit Evaluator(ProblemPtr problem,
                     EvalBackend backend = EvalBackend::kSerial,
                     par::ThreadPool* pool = nullptr,
                     bool async_coordinator_only = false,
                     int eval_batch = 0);
  ~Evaluator();
  Evaluator(Evaluator&&) noexcept;
  Evaluator& operator=(Evaluator&&) noexcept;

  /// Fills objectives[i] = problem objective of genomes[i]. Spans must
  /// have equal size. Counts toward evaluations(). Synchronous on every
  /// backend: on kAsyncPool this is submit() + fence().
  void evaluate(std::span<const Genome> genomes, std::span<double> objectives);

  /// Pipelined entry point. On kAsyncPool: resolves cache hits
  /// immediately, enqueues the rest and returns — both spans must stay
  /// valid and untouched until the next fence(). On synchronous backends
  /// this is evaluate(). Counts toward evaluations() at submit time.
  void submit(std::span<const Genome> genomes, std::span<double> objectives);

  /// The generation fence: blocks until every submitted batch has been
  /// evaluated and written back. No-op on synchronous backends.
  void fence();

  /// Single-genome convenience on lane 0's Workspace (local search, B&B
  /// comparisons). Fences first on kAsyncPool. Counts toward
  /// evaluations().
  double evaluate_one(const Genome& genome);

  /// Attaches (or clears) the memoization cache. Call while no batch is
  /// in flight. The cache may be shared with other evaluators.
  void set_cache(EvalCachePtr cache);

  /// Namespaces this evaluator's cache keys (same in-flight rule as
  /// set_cache). A cache shared across *different* objective landscapes —
  /// the session layer's cross-replan store, where the same suffix genome
  /// means different schedules under different frozen prefixes and
  /// downtimes — must keep their entries apart. The salt is folded into
  /// the key through a bijective mixer, so for any fixed genome distinct
  /// salts can never produce the same key: a cross-namespace hit is
  /// impossible, not merely improbable, and the cache's genome-equality
  /// check still catches ordinary hash collisions within a namespace.
  /// Salt 0 (the default) leaves keys exactly as before.
  void set_hash_salt(std::uint64_t salt);

  /// Attaches the observability sinks (both may be null). Handles into
  /// `metrics` are resolved once, here — the hot path then costs two
  /// clock reads plus a few relaxed adds per *batch*, never per genome.
  /// Fences first; call while no batch is in flight (the set_cache rule).
  /// Metric names: eval.decode_ns / eval.batch_size / eval.decoded_genomes
  /// on every decode batch, eval.fence_wait_ns + eval.submit_to_fence_ns
  /// on the pipelined backend. Spans: decode, submit, fence, cache_filter.
  void set_obs(obs::RegistryPtr metrics, std::shared_ptr<obs::Tracer> tracer);
  const EvalCache* cache() const { return cache_.get(); }
  /// Shared handle for per-run stat snapshots (Engine::eval_cache_shared).
  EvalCachePtr cache_ptr() const { return cache_; }

  /// Total genomes evaluated through this Evaluator — the *logical*
  /// count: a cache hit counts exactly once, same as a decode, so
  /// evaluation budgets see identical numbers with the cache on or off.
  long long evaluations() const noexcept { return evaluations_; }

  /// Genomes actually decoded (cache misses reaching the backend).
  /// Equals evaluations() when no cache is attached.
  long long decode_calls() const noexcept;

  EvalBackend backend() const noexcept { return backend_; }
  /// Resolved objective_batch chunk size (the auto default when the
  /// constructor was given 0).
  int eval_batch() const noexcept { return static_cast<int>(batch_size_); }
  /// True when submit() actually pipelines (kAsyncPool).
  bool pipelined() const noexcept { return backend_ == EvalBackend::kAsyncPool; }
  const Problem& problem() const noexcept { return *problem_; }

  /// Worker-lane count of the active backend (1 for kSerial and for the
  /// engine-thread side of kAsyncPool).
  int lanes() const noexcept { return static_cast<int>(workspaces_.size()); }

  /// Decode lanes behind the async pipeline (0 when not pipelined).
  /// Engines size their submit blocks from this so a wide pool is not
  /// dispatched over a handful of genomes.
  int pipeline_width() const noexcept;

 private:
  Workspace& workspace(std::size_t lane) { return *workspaces_[lane]; }
  /// Backend dispatch without cache filtering (the decode path).
  /// Instrumented wrapper over raw_evaluate_impl.
  void raw_evaluate(std::span<const Genome> genomes,
                    std::span<double> objectives);
  void raw_evaluate_impl(std::span<const Genome> genomes,
                         std::span<double> objectives);

  ProblemPtr problem_;
  EvalBackend backend_;
  par::ThreadPool* pool_;
  std::size_t batch_size_;  ///< objective_batch chunk size (resolved)
  std::vector<std::unique_ptr<Workspace>> workspaces_;  // one per lane
  EvalCachePtr cache_;
  std::uint64_t hash_salt_ = 0;  ///< cache-key namespace (see set_hash_salt)
  /// Present only on kAsyncPool; self-contained (own workspaces, own
  /// decode counter) so the Evaluator stays movable while jobs run.
  std::unique_ptr<AsyncPipeline> pipeline_;
  long long evaluations_ = 0;
  long long decode_calls_ = 0;  ///< engine-thread decodes (sync paths)
  // Reusable scratch for the cache-filtering path.
  std::vector<Genome> miss_genomes_;
  std::vector<std::uint64_t> miss_hashes_;
  std::vector<std::size_t> miss_slots_;
  std::vector<double> miss_values_;
  // Observability sinks (set_obs). The shared handles keep the registry
  // and tracer alive; the raw pointers are the pre-resolved hot-path
  // handles (stable for the registry's lifetime).
  obs::RegistryPtr metrics_;
  std::shared_ptr<obs::Tracer> tracer_;
  obs::Histogram* decode_ns_ = nullptr;
  obs::Histogram* batch_size_hist_ = nullptr;
  obs::Counter* decoded_genomes_ = nullptr;
  obs::Histogram* fence_wait_ns_ = nullptr;
  obs::Histogram* submit_to_fence_ns_ = nullptr;
  std::uint64_t inflight_since_ns_ = 0;  ///< first submit since last fence
  bool inflight_timed_ = false;
};

}  // namespace psga::ga
