// The unified engine interface behind every parallel GA model.
//
// PR 1 unified *evaluation* behind psga::ga::Evaluator; this header makes
// the same move one layer up, at the engine boundary. Every engine —
// simple, master-slave, cellular, island, islands-of-cellular, quantum,
// memetic, cluster — implements Engine, so cross-model experiments drive
// one API:
//
//   auto engine = make_engine(problem, config);   // or Solver::build(spec)
//   RunResult r = engine->run(StopCondition::generations(200));
//
// The base class owns the run loop that the engines used to duplicate:
// stop-condition checks (generations / wall-clock / target / stagnation /
// evaluation budget), convergence-history recording, and observer
// notification. Engines only provide init() / step() plus introspection;
// an engine whose execution model has no step boundary (the in-process
// cluster) overrides run() wholesale.
#pragma once

#include <memory>

#include "src/ga/genome.h"
#include "src/ga/result.h"
#include "src/ga/stop.h"
#include "src/obs/trace.h"

namespace psga::ga {

class Engine;

/// Snapshot handed to RunObserver after every generation.
struct GenerationEvent {
  int generation = 0;
  double best_objective = 0.0;
  long long evaluations = 0;
  double seconds = 0.0;  ///< elapsed since run() started
};

/// One migrant delivered between islands (island-structured engines).
struct MigrationEvent {
  int epoch = 0;
  int from = 0;
  int to = 0;
  double objective = 0.0;  ///< objective of the migrant
};

/// Observer/callback hooks for telemetry, early stopping and
/// checkpointing. All callbacks run on the thread driving the engine's
/// run loop; default implementations do nothing.
class RunObserver {
 public:
  virtual ~RunObserver() = default;

  /// Fired after init() and after every step(). Return false to stop the
  /// run early (the engine finalizes its result normally).
  virtual bool on_generation(const Engine& engine,
                             const GenerationEvent& event) {
    (void)engine;
    (void)event;
    return true;
  }

  /// Fired whenever the best-so-far objective improves (including the
  /// initial population's best).
  virtual void on_improvement(const Engine& engine,
                              const GenerationEvent& event) {
    (void)engine;
    (void)event;
  }

  /// Fired per migrant delivered by an island-structured engine.
  virtual void on_migration(const MigrationEvent& event) { (void)event; }
};

class Engine {
 public:
  virtual ~Engine() = default;

  // --- stepwise API -------------------------------------------------------
  /// (Re)creates the initial population. Engines that evaluate at init
  /// (see evaluates_on_init) have a valid best() afterwards.
  virtual void init() = 0;
  /// One generation of the engine's evolutionary model.
  virtual void step() = 0;

  // --- introspection ------------------------------------------------------
  // Scalar accessors are safe at any time (0 before init()); the
  // reference-returning ones (best(), individual()) are only valid once
  // init() has run and — for engines that evaluate lazily — after the
  // first step().
  virtual int generation() const = 0;
  virtual double best_objective() const = 0;
  virtual const Genome& best() const = 0;
  /// Fitness evaluations since the last init().
  virtual long long evaluations() const = 0;

  /// Population introspection (checkpointing, diversity telemetry). An
  /// engine without an inspectable population (the cluster engine while
  /// its ranks run) reports size 0.
  virtual int population_size() const = 0;
  virtual const Genome& individual(int i) const = 0;
  virtual double objective_of(int i) const = 0;

  /// Injects a full initial population for the next init()/run(): the
  /// engine consumes the genomes in order (truncating at its population
  /// size, padding any shortfall with its own random genomes — see
  /// GaConfig::initial_population). Island engines deal them round-robin
  /// across islands. Returns false when the engine's representation
  /// cannot host foreign genomes (quantum qubit chromosomes, cluster
  /// ranks) — callers fall back to a cold start.
  virtual bool seed_population(std::vector<Genome> genomes) {
    (void)genomes;
    return false;
  }

  /// Snapshot of the current population via the introspection API,
  /// sorted best-first (stable, so equal objectives keep population
  /// order). The warm-start export: feed it back through
  /// seed_population() / RunResult::population to chain runs.
  PopulationSection population_snapshot() const;

  /// The evaluation cache behind this engine's evaluators (null when
  /// caching is off), as a shared handle: the run loop snapshots it
  /// before init() and holds it across the run, so an engine that
  /// rebuilds its cache inside init() can never alias the old address
  /// and corrupt the per-run counter delta. Overrides MUST return a
  /// handle to a cache the engine itself keeps alive (a copy of a live
  /// member), never a freshly created or sole-owner snapshot —
  /// eval_cache() hands out the raw pointer after the handle dies.
  virtual EvalCachePtr eval_cache_shared() const { return nullptr; }
  /// Raw-pointer convenience over eval_cache_shared().
  const EvalCache* eval_cache() const { return eval_cache_shared().get(); }

  /// The metrics registry this engine records into (never null once the
  /// engine is constructed — every engine ensures one on its config) and
  /// the opt-in stage tracer (null unless `trace=on`). Shared handles:
  /// outer engines hand the same objects to their inner engines.
  obs::RegistryPtr metrics_shared() const { return metrics_; }
  std::shared_ptr<obs::Tracer> tracer_shared() const { return tracer_; }

  // --- running ------------------------------------------------------------
  /// Full run under `stop`. The default implementation is the shared
  /// init/step loop; `stop` also replaces the engine's configured
  /// termination so generation-indexed schedules (variable mutation,
  /// measurement-noise annealing) see the true horizon.
  virtual RunResult run(const StopCondition& stop);

  /// Full run under the engine's configured termination.
  RunResult run() { return run(stop_default()); }

  /// The stop condition run() uses when none is given (the engine
  /// config's termination).
  virtual StopCondition stop_default() const = 0;

  /// Installs an observer for subsequent runs (nullptr to clear). Not
  /// owned; must outlive the run.
  void set_observer(RunObserver* observer) { observer_ = observer; }
  RunObserver* observer() const { return observer_; }

 protected:
  /// Called by run() before init() with the effective stop condition;
  /// engines sync their config's termination here.
  virtual void prepare_run(const StopCondition& stop) { (void)stop; }

  /// Engines whose init() leaves best() undefined (no evaluation until
  /// the first step, e.g. the quantum engine) return false: the run loop
  /// then skips the generation-0 history entry and target check.
  virtual bool evaluates_on_init() const { return true; }

  /// Populates engine-specific RunResult sections after the loop.
  virtual void fill_sections(RunResult& result) const { (void)result; }

  /// Engines call this from their constructor after ensuring a registry
  /// on their config (obs::ensure_registry); run() snapshots/deltas
  /// these into RunResult::metrics.
  void attach_obs(obs::RegistryPtr metrics,
                  std::shared_ptr<obs::Tracer> tracer) {
    metrics_ = std::move(metrics);
    tracer_ = std::move(tracer);
  }

  RunObserver* observer_ = nullptr;
  obs::RegistryPtr metrics_;
  std::shared_ptr<obs::Tracer> tracer_;
};

using EnginePtr = std::unique_ptr<Engine>;

}  // namespace psga::ga
