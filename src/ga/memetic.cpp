#include "src/ga/memetic.h"

#include <algorithm>
#include <numeric>

namespace psga::ga {

MemeticGa::MemeticGa(ProblemPtr problem, MemeticConfig config)
    : problem_(std::move(problem)), config_(std::move(config)) {
  obs::ensure_registry(config_.base.metrics);
  attach_obs(config_.base.metrics, config_.base.tracer);
  climbs_ = &config_.base.metrics->counter("engine.climbs");
}

void MemeticGa::init() {
  inner_.emplace(problem_, config_.base);
  rng_ = par::Rng(config_.base.seed ^ 0x5eedu);
  inner_->init();
}

void MemeticGa::step() {
  inner_->step();
  if (config_.interval > 0 && inner_->generation() % config_.interval == 0) {
    const obs::Span span(tracer_.get(), "local_search");
    // Refine the current top individuals in place.
    std::vector<int> order(inner_->population().size());
    std::iota(order.begin(), order.end(), 0);
    const int refine = std::min<int>(
        config_.refine_count, static_cast<int>(inner_->population().size()));
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(refine),
                      order.end(), [&](int a, int b) {
                        return inner_->objectives()[static_cast<std::size_t>(a)] <
                               inner_->objectives()[static_cast<std::size_t>(b)];
                      });
    for (int r = 0; r < refine; ++r) {
      const int slot = order[static_cast<std::size_t>(r)];
      Genome candidate = inner_->population()[static_cast<std::size_t>(slot)];
      const double before =
          inner_->objectives()[static_cast<std::size_t>(slot)];
      // Climbs evaluate through the inner engine's Evaluator: counted
      // toward budgets like any evaluation, memoized by the cache, and
      // fenced against the async pipeline.
      climbs_->add();
      double after = local_search_swap(inner_->evaluator(), candidate,
                                       config_.search_budget, rng_);
      if (config_.use_redirect && after >= before) {
        // Escape: perturb and climb again ([38]'s Redirect step).
        Genome restarted = candidate;
        redirect(restarted, rng_);
        const double redirected = local_search_swap(
            inner_->evaluator(), restarted, config_.search_budget, rng_);
        if (redirected < after) {
          candidate = std::move(restarted);
          after = redirected;
        }
      }
      if (after < before) {
        inner_->replace_individual(slot, candidate, after);
      }
    }
  }
}

}  // namespace psga::ga
