#include "src/ga/memetic.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <numeric>

namespace psga::ga {

MemeticGa::MemeticGa(ProblemPtr problem, MemeticConfig config)
    : problem_(std::move(problem)), config_(std::move(config)) {}

GaResult MemeticGa::run() {
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  SimpleGa inner(problem_, config_.base);
  par::Rng rng(config_.base.seed ^ 0x5eedu);
  // One reusable scratch for every local-search climb of the run.
  const std::unique_ptr<Workspace> workspace = problem_->make_workspace();
  inner.init();
  GaResult result;
  result.history.push_back(inner.best_objective());
  long long extra_evaluations = 0;

  const Termination& term = config_.base.termination;
  for (int gen = 0; gen < term.max_generations; ++gen) {
    if (term.max_seconds > 0.0 && elapsed() >= term.max_seconds) break;
    if (term.target_objective >= 0.0 &&
        inner.best_objective() <= term.target_objective) {
      break;
    }
    inner.step();
    if (config_.interval > 0 && (gen + 1) % config_.interval == 0) {
      // Refine the current top individuals in place.
      std::vector<int> order(inner.population().size());
      std::iota(order.begin(), order.end(), 0);
      const int refine =
          std::min<int>(config_.refine_count,
                        static_cast<int>(inner.population().size()));
      std::partial_sort(order.begin(),
                        order.begin() + static_cast<std::ptrdiff_t>(refine),
                        order.end(), [&](int a, int b) {
                          return inner.objectives()[static_cast<std::size_t>(a)] <
                                 inner.objectives()[static_cast<std::size_t>(b)];
                        });
      for (int r = 0; r < refine; ++r) {
        const int slot = order[static_cast<std::size_t>(r)];
        Genome candidate = inner.population()[static_cast<std::size_t>(slot)];
        const double before =
            inner.objectives()[static_cast<std::size_t>(slot)];
        double after = local_search_swap(*problem_, candidate,
                                         config_.search_budget, rng,
                                         workspace.get());
        extra_evaluations += config_.search_budget;
        if (config_.use_redirect && after >= before) {
          // Escape: perturb and climb again ([38]'s Redirect step).
          Genome restarted = candidate;
          redirect(restarted, rng);
          const double redirected = local_search_swap(
              *problem_, restarted, config_.search_budget, rng,
              workspace.get());
          extra_evaluations += config_.search_budget;
          if (redirected < after) {
            candidate = std::move(restarted);
            after = redirected;
          }
        }
        if (after < before) {
          inner.replace_individual(slot, candidate, after);
        }
      }
    }
    result.history.push_back(inner.best_objective());
  }
  result.best = inner.best();
  result.best_objective = inner.best_objective();
  result.evaluations = inner.evaluations() + extra_evaluations;
  result.generations = inner.generation();
  result.seconds = elapsed();
  return result;
}

}  // namespace psga::ga
