// Concrete Problem adapters, one per shop model in src/sched.
#pragma once

#include <cassert>
#include <memory>
#include <utility>

#include "src/ga/problem.h"
#include "src/sched/batch_decode.h"
#include "src/sched/dynamic.h"
#include "src/sched/energy.h"
#include "src/sched/flexible_job_shop.h"
#include "src/sched/flow_shop.h"
#include "src/sched/fuzzy.h"
#include "src/sched/hybrid_flow_shop.h"
#include "src/sched/job_shop.h"
#include "src/sched/lot_streaming.h"
#include "src/sched/open_shop.h"
#include "src/sched/stochastic.h"

namespace psga::ga {

namespace detail {

/// Typed per-worker scratch carrier: each heavy problem hands the
/// evaluator a ScratchWorkspace over its sched-layer scratch struct, and
/// the workspace entry points recover it via dynamic_cast (falling back
/// to the allocating path if handed a foreign workspace).
template <typename S>
class ScratchWorkspace final : public Workspace {
 public:
  S scratch;
};

template <typename S>
S* scratch_of(Workspace& workspace) {
  auto* typed = dynamic_cast<ScratchWorkspace<S>*>(&workspace);
  // A mismatch means make_workspace() and objective() disagree on the
  // scratch type — a programming error, not a runtime condition; the
  // release fallback to the allocating path stays correct but slow.
  assert(typed != nullptr && "workspace type mismatch");
  return typed != nullptr ? &typed->scratch : nullptr;
}

}  // namespace detail

/// CRTP mixin deduplicating the workspace plumbing every heavy problem
/// used to repeat: make_workspace() produces a ScratchWorkspace<Scratch>,
/// and the workspace/batch objective entry points dispatch to
/// `Derived::objective_with(genome, Scratch&)` with the typed scratch
/// resolved once per chunk. Derived still implements the allocating
/// `objective(genome)` (the fallback for foreign workspaces) and may
/// override objective_batch to exploit cross-genome structure.
template <typename Derived, typename Scratch>
class WorkspaceProblem : public Problem {
 public:
  std::unique_ptr<Workspace> make_workspace() const final {
    return std::make_unique<detail::ScratchWorkspace<Scratch>>();
  }

  double objective(const Genome& genome, Workspace& workspace) const final {
    if (auto* s = detail::scratch_of<Scratch>(workspace)) {
      return derived().objective_with(genome, *s);
    }
    return derived().objective(genome);
  }

  void objective_batch(std::span<const Genome> genomes,
                       std::span<double> objectives,
                       Workspace& workspace) const override {
    // Resolve the typed scratch once per chunk, not once per genome.
    if (auto* s = detail::scratch_of<Scratch>(workspace)) {
      for (std::size_t i = 0; i < genomes.size(); ++i) {
        objectives[i] = derived().objective_with(genomes[i], *s);
      }
      return;
    }
    Problem::objective_batch(genomes, objectives, workspace);
  }

 private:
  const Derived& derived() const {
    return static_cast<const Derived&>(*this);
  }
};

/// Flow-shop evaluation scratch: the scalar buffers plus the SoA batch
/// scratch and the per-batch lane views handed to the batch kernel.
struct FlowShopEvalScratch {
  sched::FlowShopScratch fs;
  sched::FlowShopBatchScratch batch;
  std::vector<std::span<const int>> lanes;
};

/// Permutation flow shop under any single criterion.
class FlowShopProblem final
    : public WorkspaceProblem<FlowShopProblem, FlowShopEvalScratch> {
 public:
  FlowShopProblem(sched::FlowShopInstance inst,
                  sched::Criterion criterion = sched::Criterion::kMakespan);

  const GenomeTraits& traits() const override { return traits_; }
  Genome random_genome(par::Rng& rng) const override;
  using WorkspaceProblem::objective;
  double objective(const Genome& genome) const override;
  double objective_with(const Genome& genome,
                        FlowShopEvalScratch& scratch) const;
  void objective_batch(std::span<const Genome> genomes,
                       std::span<double> objectives,
                       Workspace& workspace) const override;

  const sched::FlowShopInstance& instance() const { return inst_; }

 private:
  sched::FlowShopInstance inst_;
  sched::Criterion criterion_;
  GenomeTraits traits_;
};

/// Random-key scratch: the decoded permutation plus the flow-shop buffers
/// and the shared batch workspaces (perm_storage holds all B decoded
/// permutations of a batch back to back — the shared index workspace the
/// batched argsort writes into).
struct RandomKeyFlowScratch {
  std::vector<int> perm;
  sched::FlowShopScratch fs;
  std::vector<int> perm_storage;
  std::vector<std::span<const int>> lanes;
  sched::FlowShopBatchScratch batch;
};

/// Flow shop on random keys (Bean-style: permutation = argsort(keys)),
/// the encoding of Huang et al. [24].
class RandomKeyFlowShopProblem final
    : public WorkspaceProblem<RandomKeyFlowShopProblem, RandomKeyFlowScratch> {
 public:
  RandomKeyFlowShopProblem(
      sched::FlowShopInstance inst,
      sched::Criterion criterion = sched::Criterion::kMakespan);

  const GenomeTraits& traits() const override { return traits_; }
  Genome random_genome(par::Rng& rng) const override;
  using WorkspaceProblem::objective;
  double objective(const Genome& genome) const override;
  double objective_with(const Genome& genome,
                        RandomKeyFlowScratch& scratch) const;
  void objective_batch(std::span<const Genome> genomes,
                       std::span<double> objectives,
                       Workspace& workspace) const override;

  /// The decoded permutation (exposed for inspection).
  std::vector<int> decode(const Genome& genome) const;

 private:
  sched::FlowShopInstance inst_;
  sched::Criterion criterion_;
  GenomeTraits traits_;
};

/// Job-shop evaluation scratch: the scalar decode buffers plus the shared
/// batch frontiers and per-batch lane views.
struct JobShopEvalScratch {
  sched::JobShopScratch js;
  sched::JobShopBatchScratch batch;
  std::vector<std::span<const int>> lanes;
};

/// Job shop with either the semi-active operation-based decoder or the
/// Giffler–Thompson active decoder.
class JobShopProblem final
    : public WorkspaceProblem<JobShopProblem, JobShopEvalScratch> {
 public:
  enum class Decoder { kOperationBased, kGifflerThompson };

  JobShopProblem(sched::JobShopInstance inst,
                 Decoder decoder = Decoder::kOperationBased,
                 sched::Criterion criterion = sched::Criterion::kMakespan);

  const GenomeTraits& traits() const override { return traits_; }
  Genome random_genome(par::Rng& rng) const override;
  using WorkspaceProblem::objective;
  double objective(const Genome& genome) const override;
  double objective_with(const Genome& genome,
                        JobShopEvalScratch& scratch) const;
  void objective_batch(std::span<const Genome> genomes,
                       std::span<double> objectives,
                       Workspace& workspace) const override;

  const sched::JobShopInstance& instance() const { return inst_; }
  sched::Schedule decode(const Genome& genome) const;

 private:
  sched::JobShopInstance inst_;
  Decoder decoder_;
  sched::Criterion criterion_;
  GenomeTraits traits_;
};

/// Open shop with the LPT-Task or LPT-Machine chromosome decoder ([32]).
class OpenShopProblem final
    : public WorkspaceProblem<OpenShopProblem, sched::OpenShopScratch> {
 public:
  OpenShopProblem(sched::OpenShopInstance inst,
                  sched::OpenShopDecoder decoder =
                      sched::OpenShopDecoder::kLptTask,
                  sched::Criterion criterion = sched::Criterion::kMakespan);

  const GenomeTraits& traits() const override { return traits_; }
  Genome random_genome(par::Rng& rng) const override;
  using WorkspaceProblem::objective;
  double objective(const Genome& genome) const override;
  double objective_with(const Genome& genome,
                        sched::OpenShopScratch& scratch) const;

  const sched::OpenShopInstance& instance() const { return inst_; }

 private:
  sched::OpenShopInstance inst_;
  sched::OpenShopDecoder decoder_;
  sched::Criterion criterion_;
  GenomeTraits traits_;
};

/// Hybrid flow shop (job permutation genome), single or composite
/// criterion — the composite form is the weighted bi-objective of
/// Rashidi et al. [38].
class HybridFlowShopProblem final
    : public WorkspaceProblem<HybridFlowShopProblem,
                              sched::HybridFlowShopScratch> {
 public:
  HybridFlowShopProblem(
      sched::HybridFlowShopInstance inst,
      sched::CompositeObjective objective = {
          {{sched::Criterion::kMakespan, 1.0}}});

  const GenomeTraits& traits() const override { return traits_; }
  Genome random_genome(par::Rng& rng) const override;
  using WorkspaceProblem::objective;
  double objective(const Genome& genome) const override;
  double objective_with(const Genome& genome,
                        sched::HybridFlowShopScratch& scratch) const;

  /// Evaluates a single criterion of the decoded schedule (Pareto
  /// reporting needs the components separately).
  double criterion_value(const Genome& genome, sched::Criterion c) const;

  const sched::HybridFlowShopInstance& instance() const { return inst_; }

 private:
  sched::HybridFlowShopInstance inst_;
  sched::CompositeObjective objective_;
  GenomeTraits traits_;
};

/// Flexible job shop: assignment + sequencing chromosomes ([36]).
class FlexibleJobShopProblem final
    : public WorkspaceProblem<FlexibleJobShopProblem,
                              sched::FlexibleJobShopScratch> {
 public:
  FlexibleJobShopProblem(
      sched::FlexibleJobShopInstance inst,
      sched::Criterion criterion = sched::Criterion::kMakespan);

  const GenomeTraits& traits() const override { return traits_; }
  Genome random_genome(par::Rng& rng) const override;
  using WorkspaceProblem::objective;
  double objective(const Genome& genome) const override;
  double objective_with(const Genome& genome,
                        sched::FlexibleJobShopScratch& scratch) const;

  const sched::FlexibleJobShopInstance& instance() const { return inst_; }

 private:
  sched::FlexibleJobShopInstance inst_;
  sched::Criterion criterion_;
  GenomeTraits traits_;
};

/// Lot-streaming flexible flow shop: keys (sublot splits) + sublot
/// sequencing permutation ([35]).
class LotStreamingProblem final
    : public WorkspaceProblem<LotStreamingProblem, sched::LotStreamingScratch> {
 public:
  explicit LotStreamingProblem(sched::LotStreamingInstance inst);

  const GenomeTraits& traits() const override { return traits_; }
  Genome random_genome(par::Rng& rng) const override;
  using WorkspaceProblem::objective;
  double objective(const Genome& genome) const override;
  double objective_with(const Genome& genome,
                        sched::LotStreamingScratch& scratch) const;

  const sched::LotStreamingInstance& instance() const { return inst_; }

 private:
  sched::LotStreamingInstance inst_;
  GenomeTraits traits_;
};

/// Fuzzy flow-shop scratch: the decoded permutation plus the fuzzy
/// recurrence buffers (reused across every genome of a batch).
struct FuzzyFlowScratch {
  std::vector<int> perm;
  sched::FuzzyFlowShopScratch fz;
};

/// Fuzzy flow shop on random keys (Huang et al. [24]): minimize
/// 1 - mean agreement index between fuzzy completion times and fuzzy due
/// dates (i.e. maximize agreement).
class FuzzyFlowShopProblem final
    : public WorkspaceProblem<FuzzyFlowShopProblem, FuzzyFlowScratch> {
 public:
  explicit FuzzyFlowShopProblem(sched::FuzzyFlowShopInstance inst);

  const GenomeTraits& traits() const override { return traits_; }
  Genome random_genome(par::Rng& rng) const override;
  using WorkspaceProblem::objective;
  double objective(const Genome& genome) const override;
  double objective_with(const Genome& genome, FuzzyFlowScratch& scratch) const;

  /// Mean agreement index of a genome (the maximized quantity).
  double agreement(const Genome& genome) const;

 private:
  sched::FuzzyFlowShopInstance inst_;
  GenomeTraits traits_;
};

/// Stochastic job shop under the expected-value model ([28]).
class StochasticJobShopProblem final : public Problem {
 public:
  explicit StochasticJobShopProblem(
      std::shared_ptr<const sched::StochasticJobShop> shop);

  const GenomeTraits& traits() const override { return traits_; }
  Genome random_genome(par::Rng& rng) const override;
  double objective(const Genome& genome) const override;

 private:
  std::shared_ptr<const sched::StochasticJobShop> shop_;
  GenomeTraits traits_;
};

/// Job shop under the survey's INDIRECT encoding (Section III.A /
/// Cheng et al. [12]): the chromosome is a sequence of dispatching-rule
/// ids, one per Giffler–Thompson conflict resolution, carried on the
/// assignment channel (domain = kDispatchRuleCount per position).
class RuleSequenceJobShopProblem final : public Problem {
 public:
  explicit RuleSequenceJobShopProblem(
      sched::JobShopInstance inst,
      sched::Criterion criterion = sched::Criterion::kMakespan);

  const GenomeTraits& traits() const override { return traits_; }
  Genome random_genome(par::Rng& rng) const override;
  double objective(const Genome& genome) const override;

  sched::Schedule decode(const Genome& genome) const;

 private:
  sched::JobShopInstance inst_;
  sched::Criterion criterion_;
  GenomeTraits traits_;
};

/// Energy-aware flow shop (Section II, [8][9]): weighted makespan +
/// total energy + peak power on a job permutation.
class EnergyFlowShopProblem final : public Problem {
 public:
  explicit EnergyFlowShopProblem(sched::EnergyAwareFlowShop shop);

  const GenomeTraits& traits() const override { return traits_; }
  Genome random_genome(par::Rng& rng) const override;
  double objective(const Genome& genome) const override;

  const sched::EnergyAwareFlowShop& shop() const { return shop_; }

 private:
  sched::EnergyAwareFlowShop shop_;
  GenomeTraits traits_;
};

/// Reactive re-optimization problem for dynamic scheduling (Section II,
/// [9]): the genome orders the not-yet-started operations; the objective
/// is the realized makespan of frozen-prefix + suffix under downtimes.
class DynamicSuffixProblem final : public Problem {
 public:
  DynamicSuffixProblem(const sched::JobShopInstance* inst,
                       std::vector<int> frozen_prefix,
                       std::vector<int> remaining,
                       std::vector<sched::Downtime> downtimes);

  /// Owning variant for registry-built problems (problem=dynamic-jobshop):
  /// keeps the instance alive for the problem's lifetime.
  DynamicSuffixProblem(std::shared_ptr<const sched::JobShopInstance> inst,
                       std::vector<int> frozen_prefix,
                       std::vector<int> remaining,
                       std::vector<sched::Downtime> downtimes);

  const GenomeTraits& traits() const override { return traits_; }
  Genome random_genome(par::Rng& rng) const override;
  double objective(const Genome& genome) const override;

 private:
  std::shared_ptr<const sched::JobShopInstance> owned_;  // may be null
  const sched::JobShopInstance* inst_;  // borrowed unless owned_ holds it
  std::vector<int> frozen_prefix_;
  std::vector<int> remaining_;
  std::vector<sched::Downtime> downtimes_;
  GenomeTraits traits_;
};

/// Decodes random keys into the permutation argsort(keys) (stable).
std::vector<int> keys_to_permutation(std::span<const double> keys);

/// Allocation-free variant: fills `out` (resized to keys.size()).
void keys_to_permutation(std::span<const double> keys, std::vector<int>& out);

/// Decodes random keys into a job-repetition sequence: argsort(keys) over
/// flat op slots, slot i belonging to the job that owns the i-th flat op.
std::vector<int> keys_to_repetition_sequence(std::span<const double> keys,
                                             std::span<const int> repeats);

/// Allocation-free variant (aside from a per-call argsort buffer reuse
/// through `perm_scratch`): fills `out` with the repetition sequence.
void keys_to_repetition_sequence(std::span<const double> keys,
                                 std::span<const int> repeats,
                                 std::vector<int>& perm_scratch,
                                 std::vector<int>& out);

}  // namespace psga::ga
