#include "src/ga/solver.h"

#include <limits>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "src/ga/registry.h"
#include "src/ga/spec_util.h"

namespace psga::ga {

namespace {

[[noreturn]] void bad_token(const std::string& token,
                            const std::string& reason) {
  spec::bad_token("SolverSpec", token, reason);
}

EvalBackend parse_eval(const std::string& value, const std::string& token) {
  if (value == "serial") return EvalBackend::kSerial;
  if (value == "pool") return EvalBackend::kThreadPool;
  if (value == "omp") return EvalBackend::kOpenMp;
  if (value == "async_pool" || value == "async") return EvalBackend::kAsyncPool;
  bad_token(token, "unknown eval backend");
}

Topology parse_topology(const std::string& value, const std::string& token) {
  if (value == "ring") return Topology::kRing;
  if (value == "grid") return Topology::kGrid;
  if (value == "torus") return Topology::kTorus;
  if (value == "full") return Topology::kFullyConnected;
  if (value == "star") return Topology::kStar;
  if (value == "hypercube") return Topology::kHypercube;
  if (value == "random") return Topology::kRandom;
  bad_token(token, "unknown topology");
}

MigrationPolicy parse_policy(const std::string& value,
                             const std::string& token) {
  if (value == "best-worst") return MigrationPolicy::kBestReplaceWorst;
  if (value == "best-random") return MigrationPolicy::kBestReplaceRandom;
  if (value == "random-random") return MigrationPolicy::kRandomReplaceRandom;
  bad_token(token, "unknown migration policy");
}

Neighborhood parse_neighborhood(const std::string& value,
                                const std::string& token) {
  if (value == "von-neumann") return Neighborhood::kVonNeumann;
  if (value == "moore") return Neighborhood::kMoore;
  bad_token(token, "unknown neighborhood");
}

FitnessTransform parse_transform(const std::string& value,
                                 const std::string& token) {
  if (value == "inverse") return FitnessTransform::kInverse;
  if (value == "reference") return FitnessTransform::kReference;
  bad_token(token, "unknown fitness transform");
}

int parse_int(const std::string& value, const std::string& token) {
  return spec::parse_int("SolverSpec", value, token);
}

double parse_double(const std::string& value, const std::string& token) {
  return spec::parse_double("SolverSpec", value, token);
}

std::uint64_t parse_u64(const std::string& value, const std::string& token) {
  return spec::parse_u64("SolverSpec", value, token);
}

EvalCacheConfig parse_eval_cache(std::string value, const std::string& token) {
  EvalCacheConfig cache;
  if (value == "off") {
    cache.mode = EvalCacheMode::kOff;
    return cache;
  }
  // Optional trailing ":<shards>" on the cached modes.
  auto take_shards = [&](std::string rest) {
    const std::size_t colon = rest.find(':');
    if (colon != std::string::npos) {
      cache.shards = parse_int(rest.substr(colon + 1), token);
      if (cache.shards < 1) bad_token(token, "shard count must be positive");
      rest = rest.substr(0, colon);
    }
    return rest;
  };
  if (value.rfind("unbounded", 0) == 0) {
    cache.mode = EvalCacheMode::kUnbounded;
    if (!take_shards(value.substr(9)).empty()) {
      bad_token(token, "expected unbounded[:<shards>]");
    }
    return cache;
  }
  if (value.rfind("lru:", 0) == 0) {
    cache.mode = EvalCacheMode::kLru;
    const std::string capacity = take_shards(value.substr(4));
    cache.capacity = static_cast<std::size_t>(parse_u64(capacity, token));
    if (cache.capacity == 0) bad_token(token, "lru capacity must be positive");
    return cache;
  }
  bad_token(token,
            "unknown eval cache (off | unbounded[:<shards>] | "
            "lru:<capacity>[:<shards>])");
}

}  // namespace

SolverSpec SolverSpec::parse(const std::string& text) {
  SolverSpec spec;
  std::istringstream stream(text);
  std::string token;
  while (stream >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
      bad_token(token, "expected key=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "engine") {
      spec.engine = value;
    } else if (key == "pop") {
      spec.population = parse_int(value, token);
    } else if (key == "elites") {
      spec.elites = parse_int(value, token);
    } else if (key == "seed") {
      spec.seed = parse_u64(value, token);
    } else if (key == "eval" || key == "eval_backend") {
      spec.eval = parse_eval(value, token);
    } else if (key == "eval_cache") {
      spec.eval_cache = parse_eval_cache(value, token);
    } else if (key == "eval_batch") {
      if (value == "auto") {
        spec.eval_batch = 0;
      } else {
        const int batch = parse_int(value, token);
        if (batch < 1) bad_token(token, "eval batch must be auto or >= 1");
        spec.eval_batch = batch;
      }
    } else if (key == "sel") {
      spec.selection = value;
    } else if (key == "xover") {
      spec.crossover = value;
    } else if (key == "mut") {
      spec.mutation = value;
    } else if (key == "xover-rate") {
      spec.crossover_rate = parse_double(value, token);
    } else if (key == "mut-rate") {
      spec.mutation_rate = parse_double(value, token);
    } else if (key == "immigration") {
      spec.immigration = parse_double(value, token);
    } else if (key == "transform") {
      spec.transform = parse_transform(value, token);
    } else if (key == "reference") {
      spec.reference = parse_double(value, token);
    } else if (key == "islands") {
      spec.islands = parse_int(value, token);
    } else if (key == "topology") {
      spec.topology = parse_topology(value, token);
    } else if (key == "policy") {
      spec.policy = parse_policy(value, token);
    } else if (key == "interval") {
      spec.interval = parse_int(value, token);
    } else if (key == "migrants") {
      spec.migrants = parse_int(value, token);
    } else if (key == "delay") {
      spec.delay = parse_int(value, token);
    } else if (key == "width") {
      spec.width = parse_int(value, token);
    } else if (key == "height") {
      spec.height = parse_int(value, token);
    } else if (key == "neighborhood") {
      spec.neighborhood = parse_neighborhood(value, token);
    } else if (key == "radius") {
      spec.radius = parse_int(value, token);
    } else if (key == "refine") {
      spec.refine = parse_int(value, token);
    } else if (key == "budget") {
      spec.budget = parse_int(value, token);
    } else if (key == "ranks") {
      spec.ranks = parse_int(value, token);
    } else if (key == "broadcast") {
      spec.broadcast = parse_int(value, token);
    } else if (key == "trace") {
      if (value == "on") {
        spec.trace = true;
      } else if (value == "off") {
        spec.trace = false;
      } else {
        bad_token(token, "expected trace=on|off");
      }
    } else {
      bad_token(token, "unknown key");
    }
  }
  return spec;
}

namespace {

const char* eval_name(EvalBackend backend) {
  switch (backend) {
    case EvalBackend::kSerial: return "serial";
    case EvalBackend::kThreadPool: return "pool";
    case EvalBackend::kOpenMp: return "omp";
    case EvalBackend::kAsyncPool: return "async_pool";
  }
  return "serial";
}

const char* topology_name(Topology topology) {
  switch (topology) {
    case Topology::kRing: return "ring";
    case Topology::kGrid: return "grid";
    case Topology::kTorus: return "torus";
    case Topology::kFullyConnected: return "full";
    case Topology::kStar: return "star";
    case Topology::kHypercube: return "hypercube";
    case Topology::kRandom: return "random";
  }
  return "ring";
}

const char* policy_name(MigrationPolicy policy) {
  switch (policy) {
    case MigrationPolicy::kBestReplaceWorst: return "best-worst";
    case MigrationPolicy::kBestReplaceRandom: return "best-random";
    case MigrationPolicy::kRandomReplaceRandom: return "random-random";
  }
  return "best-worst";
}

const char* neighborhood_name(Neighborhood neighborhood) {
  return neighborhood == Neighborhood::kMoore ? "moore" : "von-neumann";
}

const char* transform_name(FitnessTransform transform) {
  return transform == FitnessTransform::kReference ? "reference" : "inverse";
}

std::string eval_cache_value(const EvalCacheConfig& cache) {
  // A non-default shard count rides along as ":<shards>" so programmatic
  // configs survive the parse(to_string()) round-trip too.
  const std::string shards = cache.shards != EvalCacheConfig{}.shards
                                 ? ":" + std::to_string(cache.shards)
                                 : "";
  switch (cache.mode) {
    case EvalCacheMode::kOff: return "off";
    case EvalCacheMode::kUnbounded: return "unbounded" + shards;
    case EvalCacheMode::kLru:
      return "lru:" + std::to_string(cache.capacity) + shards;
  }
  return "off";
}

}  // namespace

std::string SolverSpec::to_string() const {
  std::ostringstream out;
  // max_digits10 keeps doubles exact through a parse round-trip.
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "engine=" << engine;
  auto put = [&out](const char* key, const auto& value) {
    if (value) out << ' ' << key << '=' << *value;
  };
  put("pop", population);
  put("elites", elites);
  put("seed", seed);
  if (eval) out << " eval=" << eval_name(*eval);
  if (eval_cache) out << " eval_cache=" << eval_cache_value(*eval_cache);
  if (eval_batch) {
    out << " eval_batch=";
    if (*eval_batch == 0) {
      out << "auto";
    } else {
      out << *eval_batch;
    }
  }
  put("sel", selection);
  put("xover", crossover);
  put("mut", mutation);
  put("xover-rate", crossover_rate);
  put("mut-rate", mutation_rate);
  put("immigration", immigration);
  if (transform) out << " transform=" << transform_name(*transform);
  put("reference", reference);
  put("islands", islands);
  if (topology) out << " topology=" << topology_name(*topology);
  if (policy) out << " policy=" << policy_name(*policy);
  put("interval", interval);
  put("migrants", migrants);
  put("delay", delay);
  put("width", width);
  put("height", height);
  if (neighborhood) out << " neighborhood=" << neighborhood_name(*neighborhood);
  put("radius", radius);
  put("refine", refine);
  put("budget", budget);
  put("ranks", ranks);
  put("broadcast", broadcast);
  if (trace) out << " trace=" << (*trace ? "on" : "off");
  return out.str();
}

namespace {

/// Applies the spec's shared GA knobs onto a GaConfig.
GaConfig base_config(const SolverSpec& spec) {
  GaConfig cfg;
  if (spec.population) cfg.population = *spec.population;
  if (spec.elites) cfg.elites = *spec.elites;
  if (spec.seed) cfg.seed = *spec.seed;
  if (spec.eval) cfg.eval_backend = *spec.eval;
  if (spec.eval_cache) cfg.eval_cache = *spec.eval_cache;
  if (spec.eval_batch) cfg.eval_batch = *spec.eval_batch;
  if (spec.selection) cfg.ops.selection = make_selection(*spec.selection);
  if (spec.crossover) cfg.ops.crossover = make_crossover(*spec.crossover);
  if (spec.mutation) cfg.ops.mutation = make_mutation(*spec.mutation);
  if (spec.crossover_rate) cfg.ops.crossover_rate = *spec.crossover_rate;
  if (spec.mutation_rate) cfg.ops.mutation_rate = *spec.mutation_rate;
  if (spec.immigration) cfg.immigration_fraction = *spec.immigration;
  if (spec.transform) cfg.transform = *spec.transform;
  if (spec.reference) cfg.reference_objective = *spec.reference;
  if (spec.trace.value_or(false)) {
    cfg.tracer = std::make_shared<obs::Tracer>();
  }
  cfg.shared_eval_cache = spec.shared_cache;
  cfg.cache_salt = spec.cache_salt;
  return cfg;
}

MigrationConfig migration_config(const SolverSpec& spec) {
  MigrationConfig mig;
  if (spec.topology) mig.topology = *spec.topology;
  if (spec.policy) mig.policy = *spec.policy;
  if (spec.interval) mig.interval = *spec.interval;
  if (spec.migrants) mig.count = *spec.migrants;
  if (spec.delay) mig.delay_epochs = *spec.delay;
  return mig;
}

CellularConfig cellular_config(const SolverSpec& spec) {
  CellularConfig cell;
  if (spec.width) cell.width = *spec.width;
  if (spec.height) cell.height = *spec.height;
  if (spec.neighborhood) cell.neighborhood = *spec.neighborhood;
  if (spec.radius) cell.radius = *spec.radius;
  if (spec.crossover) cell.crossover = make_crossover(*spec.crossover);
  if (spec.mutation) cell.mutation = make_mutation(*spec.mutation);
  if (spec.crossover_rate) cell.crossover_rate = *spec.crossover_rate;
  if (spec.mutation_rate) cell.mutation_rate = *spec.mutation_rate;
  if (spec.eval) cell.eval_backend = *spec.eval;
  if (spec.eval_cache) cell.eval_cache = *spec.eval_cache;
  if (spec.eval_batch) cell.eval_batch = *spec.eval_batch;
  if (spec.seed) cell.seed = *spec.seed;
  if (spec.trace.value_or(false)) {
    cell.tracer = std::make_shared<obs::Tracer>();
  }
  cell.shared_eval_cache = spec.shared_cache;
  cell.cache_salt = spec.cache_salt;
  return cell;
}

struct EngineEntry {
  EngineFactory factory;
  std::string description;
};

std::map<std::string, EngineEntry>& registry() {
  static std::map<std::string, EngineEntry> engines = [] {
    std::map<std::string, EngineEntry> map;
    map["simple"] = {[](ProblemPtr problem, const SolverSpec& spec,
                        par::ThreadPool* pool) {
                       return make_engine(std::move(problem),
                                          base_config(spec), pool);
                     },
                     "sequential GA (the survey's baseline model)"};
    map["master-slave"] = {
        [](ProblemPtr problem, const SolverSpec& spec, par::ThreadPool* pool) {
          return make_master_slave_engine(std::move(problem),
                                          base_config(spec), pool);
        },
        "global population, parallel fitness evaluation"};
    map["cellular"] = {[](ProblemPtr problem, const SolverSpec& spec,
                          par::ThreadPool* pool) {
                         return make_engine(std::move(problem),
                                            cellular_config(spec), pool);
                       },
                       "fine-grained grid, neighborhood-local breeding"};
    map["island"] = {[](ProblemPtr problem, const SolverSpec& spec,
                        par::ThreadPool* pool) {
                       IslandGaConfig cfg;
                       cfg.base = base_config(spec);
                       if (spec.islands) cfg.islands = *spec.islands;
                       cfg.migration = migration_config(spec);
                       return make_engine(std::move(problem), std::move(cfg),
                                          pool);
                     },
                     "coarse-grained subpopulations with migration"};
    map["islands-of-cellular"] = {
        [](ProblemPtr problem, const SolverSpec& spec, par::ThreadPool* pool) {
          IslandsOfCellularConfig cfg;
          cfg.cell = cellular_config(spec);
          if (spec.islands) cfg.islands = *spec.islands;
          if (spec.interval) cfg.migration_interval = *spec.interval;
          if (spec.migrants) cfg.migrants = *spec.migrants;
          if (spec.seed) cfg.seed = *spec.seed;
          return make_engine(std::move(problem), std::move(cfg), pool);
        },
        "hybrid: migrating islands, each a cellular grid"};
    map["quantum"] = {[](ProblemPtr problem, const SolverSpec& spec,
                         par::ThreadPool* pool) {
                        // The quantum engine evolves qubit angles; classical
                        // operator names (xover/mut/sel) do not apply and are
                        // ignored.
                        QuantumGaConfig cfg;
                        if (spec.islands) cfg.islands = *spec.islands;
                        if (spec.population) cfg.population = *spec.population;
                        if (spec.interval) {
                          cfg.migration_interval = *spec.interval;
                        }
                        if (spec.eval) cfg.eval_backend = *spec.eval;
                        if (spec.eval_cache) cfg.eval_cache = *spec.eval_cache;
                        if (spec.eval_batch) cfg.eval_batch = *spec.eval_batch;
                        if (spec.seed) cfg.seed = *spec.seed;
                        if (spec.trace.value_or(false)) {
                          cfg.tracer = std::make_shared<obs::Tracer>();
                        }
                        return make_engine(std::move(problem), std::move(cfg),
                                           pool);
                      },
                      "quantum-inspired islands over qubit chromosomes"};
    map["memetic"] = {[](ProblemPtr problem, const SolverSpec& spec,
                         par::ThreadPool*) {
                        MemeticConfig cfg;
                        cfg.base = base_config(spec);
                        if (spec.interval) cfg.interval = *spec.interval;
                        if (spec.refine) cfg.refine_count = *spec.refine;
                        if (spec.budget) cfg.search_budget = *spec.budget;
                        return make_engine(std::move(problem), std::move(cfg));
                      },
                      "GA + periodic local-search refinement waves"};
    map["cluster"] = {[](ProblemPtr problem, const SolverSpec& spec,
                         par::ThreadPool*) {
                        ClusterIslandConfig cfg;
                        cfg.base = base_config(spec);
                        if (spec.ranks) cfg.ranks = *spec.ranks;
                        if (spec.interval) cfg.neighbor_interval = *spec.interval;
                        if (spec.broadcast) {
                          cfg.broadcast_interval = *spec.broadcast;
                        }
                        return make_engine(std::move(problem), std::move(cfg));
                      },
                      "SPMD ranks, dual-frequency neighbor/broadcast epochs"};
    return map;
  }();
  return engines;
}

std::mutex& registry_mutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

void register_engine(const std::string& name, EngineFactory factory,
                     std::string description) {
  std::lock_guard lock(registry_mutex());
  registry()[name] = {std::move(factory), std::move(description)};
}

std::vector<std::string> engine_names() {
  std::lock_guard lock(registry_mutex());
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, entry] : registry()) names.push_back(name);
  return names;
}

std::vector<RegistryEntry> engine_catalog() {
  std::lock_guard lock(registry_mutex());
  std::vector<RegistryEntry> catalog;
  catalog.reserve(registry().size());
  for (const auto& [name, entry] : registry()) {
    catalog.push_back({name, entry.description});
  }
  return catalog;
}

RunSpec RunSpec::parse(const std::string& text) {
  const auto [problem_half, solver_half] = split_spec_tokens(text);
  RunSpec spec;
  spec.problem = ProblemSpec::parse(problem_half);
  spec.solver = SolverSpec::parse(solver_half);
  return spec;
}

std::string RunSpec::to_string() const {
  return problem.to_string() + " " + solver.to_string();
}

Solver Solver::build(const SolverSpec& spec, ProblemPtr problem,
                     par::ThreadPool* pool) {
  EngineFactory factory;
  {
    std::lock_guard lock(registry_mutex());
    const auto it = registry().find(spec.engine);
    if (it == registry().end()) {
      std::string known;
      for (const auto& [name, entry] : registry()) {
        if (!known.empty()) known += ", ";
        known += name;
      }
      throw std::invalid_argument("Solver: unknown engine '" + spec.engine +
                                  "' (registered: " + known + ")");
    }
    factory = it->second.factory;
  }
  return Solver(factory(std::move(problem), spec, pool), spec);
}

Solver Solver::build(const RunSpec& spec, par::ThreadPool* pool) {
  Solver solver = build(spec.solver, spec.problem.build(), pool);
  solver.problem_spec_ = spec.problem.to_string();
  return solver;
}

// --- typed escape hatches ----------------------------------------------------

EnginePtr make_engine(ProblemPtr problem, GaConfig config,
                      par::ThreadPool* pool) {
  return std::make_unique<SimpleGa>(std::move(problem), std::move(config),
                                    pool);
}

EnginePtr make_master_slave_engine(ProblemPtr problem, GaConfig config,
                                   par::ThreadPool* pool) {
  return std::make_unique<MasterSlaveGa>(std::move(problem), std::move(config),
                                         pool);
}

EnginePtr make_engine(ProblemPtr problem, CellularConfig config,
                      par::ThreadPool* pool) {
  return std::make_unique<CellularGa>(std::move(problem), std::move(config),
                                      pool);
}

EnginePtr make_engine(ProblemPtr problem, IslandGaConfig config,
                      par::ThreadPool* pool) {
  return std::make_unique<IslandGa>(std::move(problem), std::move(config),
                                    pool);
}

EnginePtr make_engine(ProblemPtr problem, IslandsOfCellularConfig config,
                      par::ThreadPool* pool) {
  return std::make_unique<IslandsOfCellularGa>(std::move(problem),
                                               std::move(config), pool);
}

EnginePtr make_engine(ProblemPtr problem, QuantumGaConfig config,
                      par::ThreadPool* pool) {
  return std::make_unique<QuantumGa>(std::move(problem), std::move(config),
                                     pool);
}

EnginePtr make_engine(ProblemPtr problem, MemeticConfig config) {
  return std::make_unique<MemeticGa>(std::move(problem), std::move(config));
}

EnginePtr make_engine(ProblemPtr problem, ClusterIslandConfig config) {
  return std::make_unique<ClusterIslandGa>(std::move(problem),
                                           std::move(config));
}

}  // namespace psga::ga
