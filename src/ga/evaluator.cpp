#include "src/ga/evaluator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "src/par/omp_backend.h"

namespace psga::ga {

namespace {

/// Auto value of the eval_batch knob: a lane-width-friendly block — big
/// enough that the SoA decode kernels amortize their staging pass, small
/// enough to stay in L1/L2 for typical instances.
constexpr std::size_t kDefaultEvalBatch = 16;

std::size_t resolve_eval_batch(int eval_batch) {
  return eval_batch > 0 ? static_cast<std::size_t>(eval_batch)
                        : kDefaultEvalBatch;
}

/// Hands `genomes` to objective_batch in blocks of at most `block`.
/// Purity + per-genome independence make the split invisible in the
/// results; it only sets how many lanes the batched kernels advance at
/// once.
void chunked_objective_batch(const Problem& problem,
                             std::span<const Genome> genomes,
                             std::span<double> out, Workspace& workspace,
                             std::size_t block) {
  for (std::size_t begin = 0; begin < genomes.size(); begin += block) {
    const std::size_t len = std::min(block, genomes.size() - begin);
    problem.objective_batch(genomes.subspan(begin, len),
                            out.subspan(begin, len), workspace);
  }
}

/// Folds the evaluator's namespace salt into a cache key. splitmix64's
/// finalizer is a bijection on 64-bit words, so for a fixed genome hash
/// the map salt -> key is injective: entries written under different
/// salts can never answer each other's lookups (see set_hash_salt).
/// Salt 0 keeps the raw genome hash, preserving pre-salt key layouts.
std::uint64_t salted_key(std::uint64_t hash, std::uint64_t salt) {
  if (salt == 0) return hash;
  std::uint64_t z = hash ^ salt;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

// --- async pipeline ----------------------------------------------------------
//
// One coordinator thread per pipelined Evaluator. submit() enqueues a
// batch and returns to the engine thread, which keeps breeding while the
// coordinator decodes — either fanning the batch out on the thread pool
// (single-population engines, where the pool is otherwise idle between
// fences) or on the coordinator alone (inner engines of islands/ranks,
// whose outer level owns the pool). The pipeline is self-contained — own
// problem handle, workspaces, cache pointer and decode counter — so the
// owning Evaluator can be moved (vectors of engines) while jobs run.
class AsyncPipeline {
 public:
  struct Job {
    // Direct mode: evaluate genomes[i] into out[i] (no cache attached).
    std::span<const Genome> genomes;
    std::span<double> out;
    // Filtered mode: cache misses compacted on the engine thread; each
    // result lands in *miss_out[j] and is inserted into the cache.
    bool filtered = false;
    std::vector<Genome> miss_genomes;
    std::vector<std::uint64_t> miss_hashes;
    std::vector<double*> miss_out;
  };

  AsyncPipeline(ProblemPtr problem, par::ThreadPool* pool, bool use_pool,
                std::size_t batch_size)
      : problem_(std::move(problem)),
        pool_(pool),
        use_pool_(use_pool),
        batch_size_(batch_size) {
    const int lanes = use_pool_ ? pool_->thread_count() : 1;
    workspaces_.reserve(static_cast<std::size_t>(lanes));
    for (int i = 0; i < lanes; ++i) {
      workspaces_.push_back(problem_->make_workspace());
    }
    thread_ = std::thread([this] { loop(); });
  }

  ~AsyncPipeline() {
    fence();
    {
      std::lock_guard lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_one();
    thread_.join();
  }

  void submit(Job job) {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(job));
    work_cv_.notify_one();
  }

  void fence() {
    std::unique_lock lock(mutex_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
  }

  /// Only call through a fence (the coordinator reads it while busy).
  void set_cache(EvalCachePtr cache) {
    std::lock_guard lock(mutex_);
    cache_ = std::move(cache);
  }

  /// Same fence rule as set_cache. Raw handles — the owning Evaluator
  /// keeps the registry/tracer alive for the pipeline's lifetime.
  void set_obs(obs::Histogram* decode_ns, obs::Histogram* batch_size,
               obs::Counter* decoded_genomes, obs::Tracer* tracer) {
    std::lock_guard lock(mutex_);
    decode_ns_ = decode_ns;
    batch_size_hist_ = batch_size;
    decoded_genomes_ = decoded_genomes;
    tracer_ = tracer;
  }

  long long decode_calls() const noexcept {
    return decode_calls_.load(std::memory_order_relaxed);
  }

  int width() const noexcept { return static_cast<int>(workspaces_.size()); }

 private:
  void loop() {
    for (;;) {
      Job job;
      {
        std::unique_lock lock(mutex_);
        work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ set and nothing left
        job = std::move(queue_.front());
        queue_.pop_front();
        busy_ = true;
      }
      process(job);
      {
        std::lock_guard lock(mutex_);
        busy_ = false;
      }
      idle_cv_.notify_all();
    }
  }

  void process(Job& job) {
    if (!job.filtered) {
      run_batch(job.genomes, job.out);
      return;
    }
    scratch_.resize(job.miss_genomes.size());
    run_batch(job.miss_genomes, scratch_);
    for (std::size_t j = 0; j < job.miss_genomes.size(); ++j) {
      *job.miss_out[j] = scratch_[j];
      if (cache_ != nullptr) {
        cache_->insert(job.miss_hashes[j], job.miss_genomes[j], scratch_[j]);
      }
    }
  }

  void run_batch(std::span<const Genome> genomes, std::span<double> out) {
    decode_calls_.fetch_add(static_cast<long long>(genomes.size()),
                            std::memory_order_relaxed);
    if (decode_ns_ != nullptr || tracer_ != nullptr) {
      const obs::Span span(tracer_, "decode");
      const auto start = std::chrono::steady_clock::now();
      run_batch_impl(genomes, out);
      if (decode_ns_ != nullptr) {
        decode_ns_->record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
        batch_size_hist_->record(genomes.size());
        decoded_genomes_->add(genomes.size());
      }
      return;
    }
    run_batch_impl(genomes, out);
  }

  void run_batch_impl(std::span<const Genome> genomes, std::span<double> out) {
    if (!use_pool_) {
      chunked_objective_batch(*problem_, genomes, out, *workspaces_[0],
                              batch_size_);
      return;
    }
    pool_->parallel_lanes(
        genomes.size(),
        [&](std::size_t lane, std::size_t begin, std::size_t end) {
          chunked_objective_batch(*problem_,
                                  genomes.subspan(begin, end - begin),
                                  out.subspan(begin, end - begin),
                                  *workspaces_[lane], batch_size_);
        });
  }

  ProblemPtr problem_;
  par::ThreadPool* pool_;
  bool use_pool_;
  std::size_t batch_size_;
  std::vector<std::unique_ptr<Workspace>> workspaces_;
  EvalCachePtr cache_;
  std::vector<double> scratch_;
  std::atomic<long long> decode_calls_{0};
  obs::Histogram* decode_ns_ = nullptr;
  obs::Histogram* batch_size_hist_ = nullptr;
  obs::Counter* decoded_genomes_ = nullptr;
  obs::Tracer* tracer_ = nullptr;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<Job> queue_;
  bool busy_ = false;
  bool stop_ = false;
  std::thread thread_;
};

// --- evaluator ---------------------------------------------------------------

Evaluator::Evaluator(ProblemPtr problem, EvalBackend backend,
                     par::ThreadPool* pool, bool async_coordinator_only,
                     int eval_batch)
    : problem_(std::move(problem)),
      backend_(backend),
      // Only the pool-carried backends need a pool; don't materialize the
      // process-wide default pool (and its worker threads) for serial or
      // OpenMP evaluators.
      pool_((backend == EvalBackend::kThreadPool ||
             (backend == EvalBackend::kAsyncPool && !async_coordinator_only)) &&
                    pool == nullptr
                ? &par::default_pool()
                : pool),
      batch_size_(resolve_eval_batch(eval_batch)) {
  int lanes = 1;
  switch (backend_) {
    case EvalBackend::kSerial:
      break;
    case EvalBackend::kThreadPool:
      lanes = pool_->thread_count();
      break;
    case EvalBackend::kOpenMp:
      lanes = par::omp_worker_count();
      break;
    case EvalBackend::kAsyncPool:
      // Lane 0 here serves evaluate_one; batch workspaces live inside the
      // pipeline, which owns the threads that use them.
      pipeline_ = std::make_unique<AsyncPipeline>(
          problem_, pool_, !async_coordinator_only, batch_size_);
      break;
  }
  workspaces_.reserve(static_cast<std::size_t>(lanes));
  for (int i = 0; i < lanes; ++i) {
    workspaces_.push_back(problem_->make_workspace());
  }
}

Evaluator::~Evaluator() = default;
Evaluator::Evaluator(Evaluator&&) noexcept = default;
Evaluator& Evaluator::operator=(Evaluator&&) noexcept = default;

void Evaluator::raw_evaluate(std::span<const Genome> genomes,
                             std::span<double> objectives) {
  if (decode_ns_ == nullptr && tracer_ == nullptr) {
    raw_evaluate_impl(genomes, objectives);
    return;
  }
  const obs::Span span(tracer_.get(), "decode");
  const auto start = std::chrono::steady_clock::now();
  raw_evaluate_impl(genomes, objectives);
  if (decode_ns_ != nullptr) {
    decode_ns_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
    batch_size_hist_->record(genomes.size());
    decoded_genomes_->add(genomes.size());
  }
}

void Evaluator::raw_evaluate_impl(std::span<const Genome> genomes,
                                  std::span<double> objectives) {
  const std::size_t n = genomes.size();
  switch (backend_) {
    case EvalBackend::kSerial:
    case EvalBackend::kAsyncPool:  // unreachable: async goes via submit()
      chunked_objective_batch(*problem_, genomes, objectives, workspace(0),
                              batch_size_);
      return;
    case EvalBackend::kThreadPool:
      pool_->parallel_lanes(
          n, [&](std::size_t lane, std::size_t begin, std::size_t end) {
            chunked_objective_batch(*problem_,
                                    genomes.subspan(begin, end - begin),
                                    objectives.subspan(begin, end - begin),
                                    workspace(lane), batch_size_);
          });
      return;
    case EvalBackend::kOpenMp: {
#if defined(PSGA_HAVE_OPENMP)
      // num_threads() caps the team at the lane count fixed at
      // construction, so no two threads ever share a Workspace even after
      // a later omp_set_num_threads(). The runtime may still deliver
      // FEWER threads (OMP_DYNAMIC, thread limits), so chunk by the
      // actual team size observed inside the region — every genome is
      // covered either way. Chunks go through objective_batch, so batch
      // overrides apply on every backend.
      const int team = static_cast<int>(workspaces_.size());
#pragma omp parallel num_threads(team)
      {
        const std::size_t actual =
            static_cast<std::size_t>(omp_get_num_threads());
        const std::size_t lane =
            static_cast<std::size_t>(omp_get_thread_num());
        const std::size_t begin = lane * n / actual;
        const std::size_t end = (lane + 1) * n / actual;
        if (begin < end) {
          chunked_objective_batch(*problem_,
                                  genomes.subspan(begin, end - begin),
                                  objectives.subspan(begin, end - begin),
                                  workspace(lane), batch_size_);
        }
      }
#else
      chunked_objective_batch(*problem_, genomes, objectives, workspace(0),
                              batch_size_);
#endif
      return;
    }
  }
}

void Evaluator::evaluate(std::span<const Genome> genomes,
                         std::span<double> objectives) {
  if (backend_ == EvalBackend::kAsyncPool) {
    submit(genomes, objectives);
    fence();
    return;
  }
  const std::size_t n = genomes.size();
  evaluations_ += static_cast<long long>(n);
  if (cache_ == nullptr) {
    raw_evaluate(genomes, objectives);
    decode_calls_ += static_cast<long long>(n);
    return;
  }
  // Filter hits on the calling thread, decode only the misses (still
  // batched through the backend), then publish the fresh values.
  miss_genomes_.clear();
  miss_hashes_.clear();
  miss_slots_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t hash = salted_key(genome_hash(genomes[i]), hash_salt_);
    if (const auto value = cache_->lookup(hash, genomes[i])) {
      objectives[i] = *value;
    } else {
      miss_genomes_.push_back(genomes[i]);
      miss_hashes_.push_back(hash);
      miss_slots_.push_back(i);
    }
  }
  if (miss_genomes_.empty()) return;
  miss_values_.resize(miss_genomes_.size());
  raw_evaluate(miss_genomes_, miss_values_);
  decode_calls_ += static_cast<long long>(miss_genomes_.size());
  for (std::size_t j = 0; j < miss_genomes_.size(); ++j) {
    cache_->insert(miss_hashes_[j], miss_genomes_[j], miss_values_[j]);
    objectives[miss_slots_[j]] = miss_values_[j];
  }
}

void Evaluator::submit(std::span<const Genome> genomes,
                       std::span<double> objectives) {
  if (backend_ != EvalBackend::kAsyncPool) {
    evaluate(genomes, objectives);
    return;
  }
  const std::size_t n = genomes.size();
  evaluations_ += static_cast<long long>(n);
  if (n == 0) return;
  const obs::Span span(tracer_.get(), "submit");
  if (submit_to_fence_ns_ != nullptr && !inflight_timed_) {
    // First submit of this generation: the fence closes the interval.
    inflight_since_ns_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    inflight_timed_ = true;
  }
  AsyncPipeline::Job job;
  if (cache_ == nullptr) {
    job.genomes = genomes;
    job.out = objectives;
    pipeline_->submit(std::move(job));
    return;
  }
  // Hits resolve right here on the engine thread; only misses travel.
  job.filtered = true;
  {
    const obs::Span filter_span(tracer_.get(), "cache_filter");
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t hash =
          salted_key(genome_hash(genomes[i]), hash_salt_);
      if (const auto value = cache_->lookup(hash, genomes[i])) {
        objectives[i] = *value;
      } else {
        job.miss_genomes.push_back(genomes[i]);
        job.miss_hashes.push_back(hash);
        job.miss_out.push_back(&objectives[i]);
      }
    }
  }
  if (!job.miss_genomes.empty()) pipeline_->submit(std::move(job));
}

void Evaluator::fence() {
  if (pipeline_ == nullptr) return;
  if (fence_wait_ns_ == nullptr && tracer_ == nullptr) {
    pipeline_->fence();
    return;
  }
  const obs::Span span(tracer_.get(), "fence");
  const auto start = std::chrono::steady_clock::now();
  pipeline_->fence();
  const auto now = std::chrono::steady_clock::now();
  if (fence_wait_ns_ != nullptr) {
    fence_wait_ns_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - start)
            .count()));
    if (inflight_timed_) {
      const auto now_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              now.time_since_epoch())
              .count());
      submit_to_fence_ns_->record(now_ns - inflight_since_ns_);
      inflight_timed_ = false;
    }
  }
}

double Evaluator::evaluate_one(const Genome& genome) {
  fence();
  ++evaluations_;
  if (cache_ != nullptr) {
    const std::uint64_t hash = salted_key(genome_hash(genome), hash_salt_);
    if (const auto value = cache_->lookup(hash, genome)) return *value;
    const double objective = problem_->objective(genome, workspace(0));
    ++decode_calls_;
    cache_->insert(hash, genome, objective);
    return objective;
  }
  ++decode_calls_;
  return problem_->objective(genome, workspace(0));
}

void Evaluator::set_cache(EvalCachePtr cache) {
  fence();
  cache_ = std::move(cache);
  if (pipeline_ != nullptr) pipeline_->set_cache(cache_);
}

void Evaluator::set_hash_salt(std::uint64_t salt) {
  fence();
  hash_salt_ = salt;
}

void Evaluator::set_obs(obs::RegistryPtr metrics,
                        std::shared_ptr<obs::Tracer> tracer) {
  fence();
  metrics_ = std::move(metrics);
  tracer_ = std::move(tracer);
  if (metrics_ != nullptr) {
    decode_ns_ = &metrics_->histogram("eval.decode_ns");
    batch_size_hist_ = &metrics_->histogram("eval.batch_size");
    decoded_genomes_ = &metrics_->counter("eval.decoded_genomes");
    if (backend_ == EvalBackend::kAsyncPool) {
      fence_wait_ns_ = &metrics_->histogram("eval.fence_wait_ns");
      submit_to_fence_ns_ = &metrics_->histogram("eval.submit_to_fence_ns");
    }
  } else {
    decode_ns_ = nullptr;
    batch_size_hist_ = nullptr;
    decoded_genomes_ = nullptr;
    fence_wait_ns_ = nullptr;
    submit_to_fence_ns_ = nullptr;
  }
  if (pipeline_ != nullptr) {
    pipeline_->set_obs(decode_ns_, batch_size_hist_, decoded_genomes_,
                       tracer_.get());
  }
}

long long Evaluator::decode_calls() const noexcept {
  return decode_calls_ + (pipeline_ != nullptr ? pipeline_->decode_calls() : 0);
}

int Evaluator::pipeline_width() const noexcept {
  return pipeline_ != nullptr ? pipeline_->width() : 0;
}

}  // namespace psga::ga
