#include "src/ga/evaluator.h"

#include "src/par/omp_backend.h"

namespace psga::ga {

Evaluator::Evaluator(ProblemPtr problem, EvalBackend backend,
                     par::ThreadPool* pool)
    : problem_(std::move(problem)),
      backend_(backend),
      // Only the thread-pool backend needs a pool; don't materialize the
      // process-wide default pool (and its worker threads) for serial or
      // OpenMP evaluators.
      pool_(backend == EvalBackend::kThreadPool && pool == nullptr
                ? &par::default_pool()
                : pool) {
  int lanes = 1;
  switch (backend_) {
    case EvalBackend::kSerial:
      break;
    case EvalBackend::kThreadPool:
      lanes = pool_->thread_count();
      break;
    case EvalBackend::kOpenMp:
      lanes = par::omp_worker_count();
      break;
  }
  workspaces_.reserve(static_cast<std::size_t>(lanes));
  for (int i = 0; i < lanes; ++i) {
    workspaces_.push_back(problem_->make_workspace());
  }
}

void Evaluator::evaluate(std::span<const Genome> genomes,
                         std::span<double> objectives) {
  const std::size_t n = genomes.size();
  evaluations_ += static_cast<long long>(n);
  switch (backend_) {
    case EvalBackend::kSerial:
      problem_->objective_batch(genomes, objectives, workspace(0));
      return;
    case EvalBackend::kThreadPool:
      pool_->parallel_lanes(
          n, [&](std::size_t lane, std::size_t begin, std::size_t end) {
            problem_->objective_batch(genomes.subspan(begin, end - begin),
                                      objectives.subspan(begin, end - begin),
                                      workspace(lane));
          });
      return;
    case EvalBackend::kOpenMp: {
#if defined(PSGA_HAVE_OPENMP)
      // num_threads() caps the team at the lane count fixed at
      // construction, so no two threads ever share a Workspace even after
      // a later omp_set_num_threads(). The runtime may still deliver
      // FEWER threads (OMP_DYNAMIC, thread limits), so chunk by the
      // actual team size observed inside the region — every genome is
      // covered either way. Chunks go through objective_batch, so batch
      // overrides apply on every backend.
      const int team = static_cast<int>(workspaces_.size());
#pragma omp parallel num_threads(team)
      {
        const std::size_t actual =
            static_cast<std::size_t>(omp_get_num_threads());
        const std::size_t lane =
            static_cast<std::size_t>(omp_get_thread_num());
        const std::size_t begin = lane * n / actual;
        const std::size_t end = (lane + 1) * n / actual;
        if (begin < end) {
          problem_->objective_batch(genomes.subspan(begin, end - begin),
                                    objectives.subspan(begin, end - begin),
                                    workspace(lane));
        }
      }
#else
      problem_->objective_batch(genomes, objectives, workspace(0));
#endif
      return;
    }
  }
}

double Evaluator::evaluate_one(const Genome& genome) {
  ++evaluations_;
  return problem_->objective(genome, workspace(0));
}

}  // namespace psga::ga
