#include "src/ga/engine.h"

#include <algorithm>
#include <chrono>
#include <numeric>

namespace psga::ga {

PopulationSection Engine::population_snapshot() const {
  const int n = population_size();
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    return objective_of(a) < objective_of(b);
  });
  PopulationSection section;
  section.genomes.reserve(static_cast<std::size_t>(n));
  section.objectives.reserve(static_cast<std::size_t>(n));
  for (int i : order) {
    section.genomes.push_back(individual(i));
    section.objectives.push_back(objective_of(i));
  }
  return section;
}

RunResult Engine::run(const StopCondition& stop) {
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  prepare_run(stop);
  // Snapshot cache counters so RunResult::cache reports this run's delta
  // even when the cache outlives the run (engine reuse, a shared cache
  // handed to several engines). The shared handle keeps the pre-init
  // cache alive, so the identity comparison below cannot be fooled by a
  // fresh cache reusing a freed address; a cache first attached during
  // init() is fresh by construction, so its zero baseline is correct.
  const EvalCachePtr pre_run_cache = eval_cache_shared();
  const EvalCacheStats cache_baseline =
      pre_run_cache != nullptr ? pre_run_cache->stats() : EvalCacheStats{};
  // Same baseline idiom for the metrics registry: the run reports its own
  // delta even when the registry outlives the run (engine reuse, a daemon
  // registry shared across jobs).
  const obs::RegistryPtr metrics = metrics_shared();
  const obs::MetricsSnapshot metrics_baseline =
      metrics != nullptr ? metrics->snapshot() : obs::MetricsSnapshot{};
  obs::Histogram* generation_ns =
      metrics != nullptr ? &metrics->histogram("engine.generation_ns")
                         : nullptr;
  obs::Tracer* const tracer = tracer_.get();
  init();

  RunResult result;
  bool has_best = evaluates_on_init();
  double stagnation_best = has_best ? best_objective() : 0.0;
  int stagnant = 0;

  auto notify = [&](bool improved) {
    if (observer_ == nullptr) return true;
    GenerationEvent event;
    event.generation = generation();
    event.best_objective = best_objective();
    event.evaluations = evaluations();
    event.seconds = elapsed();
    if (improved) observer_->on_improvement(*this, event);
    return observer_->on_generation(*this, event);
  };

  bool keep_going = true;
  if (has_best) {
    result.history.push_back(best_objective());
    keep_going = notify(/*improved=*/true);
  }

  while (keep_going && generation() < stop.max_generations) {
    if (stop.max_seconds > 0.0 && elapsed() >= stop.max_seconds) break;
    if (stop.max_evaluations > 0 && evaluations() >= stop.max_evaluations) {
      break;
    }
    if (has_best && stop.target_objective >= 0.0 &&
        best_objective() <= stop.target_objective) {
      break;
    }
    if (stop.stagnation_generations > 0 &&
        stagnant >= stop.stagnation_generations) {
      break;
    }
    {
      const obs::Span span(tracer, "generation");
      const auto step_start = std::chrono::steady_clock::now();
      step();
      if (generation_ns != nullptr) {
        generation_ns->record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - step_start)
                .count()));
      }
    }
    result.history.push_back(best_objective());
    bool improved = false;
    if (!has_best || best_objective() < stagnation_best) {
      stagnation_best = best_objective();
      stagnant = 0;
      improved = true;
      has_best = true;
    } else {
      ++stagnant;
    }
    keep_going = notify(improved);
  }

  result.best = best();
  result.best_objective = best_objective();
  result.evaluations = evaluations();
  result.generations = generation();
  result.seconds = elapsed();
  fill_sections(result);
  if (const EvalCachePtr cache = eval_cache_shared()) {
    EvalCacheStats stats = cache->stats();
    if (cache == pre_run_cache) stats -= cache_baseline;
    result.cache = stats;
  } else {
    // Always engage the section: dashboards and reports read zeros
    // instead of special-casing a missing field.
    result.cache = EvalCacheStats{};
  }
  if (metrics != nullptr) {
    obs::MetricsSnapshot snapshot = metrics->snapshot();
    snapshot.subtract(metrics_baseline);
    // Fold the cache's own exact counters in so one snapshot carries the
    // whole story (no separate hot-path counting — the cache already
    // tallies these).
    snapshot.set_counter("eval.cache.hits",
                         static_cast<std::uint64_t>(result.cache->hits));
    snapshot.set_counter("eval.cache.misses",
                         static_cast<std::uint64_t>(result.cache->misses));
    snapshot.set_counter("eval.cache.inserts",
                         static_cast<std::uint64_t>(result.cache->inserts));
    snapshot.set_counter("eval.cache.evictions",
                         static_cast<std::uint64_t>(result.cache->evictions));
    result.metrics = std::move(snapshot);
  }
  return result;
}

}  // namespace psga::ga
