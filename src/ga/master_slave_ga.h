// The master-slave (global parallel) GA — Table III of the survey.
//
// A single population lives on the master; the only parallelized stage is
// fitness evaluation, farmed out to the thread pool ("slaves"). As the
// survey notes, this is the one parallel model that does not change the
// algorithm's behaviour — enforced here by construction: MasterSlaveGa is
// a SimpleGa whose evaluator hook runs on the pool, and a test asserts
// trace equality with the serial engine for any thread count.
//
// The engine also offers the fixed-time-budget mode of AitZai et al. [14]:
// run until a wall-clock budget expires and report how many solutions
// were explored (fitness evaluations), the metric their CPU-vs-GPU
// comparison uses.
#pragma once

#include "src/ga/simple_ga.h"
#include "src/par/thread_pool.h"

namespace psga::ga {

class MasterSlaveGa {
 public:
  /// Which parallel runtime evaluates the slaves.
  enum class Backend {
    kThreadPool,  ///< the library thread pool (default)
    kOpenMp,      ///< OpenMP parallel-for (serial if not compiled in)
  };

  /// `pool` may be null — the library default pool is used.
  MasterSlaveGa(ProblemPtr problem, GaConfig config,
                par::ThreadPool* pool = nullptr,
                Backend backend = Backend::kThreadPool);

  /// Full run honoring config.termination.
  GaResult run();

  /// Fixed-budget mode ([14]): ignores max_generations and runs until
  /// `seconds` elapse; GaResult::evaluations is the explored-solutions
  /// count.
  GaResult run_time_budget(double seconds);

 private:
  SimpleGa make_engine(const GaConfig& config) const;

  ProblemPtr problem_;
  GaConfig config_;
  par::ThreadPool* pool_;
  Backend backend_;
};

}  // namespace psga::ga
