// The master-slave (global parallel) GA — Table III of the survey.
//
// A single population lives on the master; the only parallelized stage is
// fitness evaluation, farmed out to worker lanes ("slaves") through the
// shared Evaluator. As the survey notes, this is the one parallel model
// that does not change the algorithm's behaviour — enforced here by
// construction: MasterSlaveGa drives a SimpleGa whose
// GaConfig::eval_backend is promoted to a parallel backend, and a test
// asserts trace equality with the serial engine for any thread count.
//
// The fixed-time-budget mode of AitZai et al. [14] (run until a
// wall-clock budget expires, report explored solutions) is not special
// to this engine any more: pass StopCondition::time_budget(seconds) to
// run() — every engine honors it.
#pragma once

#include <optional>

#include "src/ga/simple_ga.h"
#include "src/par/thread_pool.h"

namespace psga::ga {

class MasterSlaveGa : public Engine {
 public:
  /// `pool` may be null — the library default pool is used. The parallel
  /// runtime comes from config.eval_backend; a config still set to
  /// kSerial is promoted to kThreadPool (a serial master-slave engine is
  /// a contradiction in terms), while kAsyncPool keeps the pipelined
  /// master: breeding overlaps the slaves' evaluation up to the
  /// generation fence.
  MasterSlaveGa(ProblemPtr problem, GaConfig config,
                par::ThreadPool* pool = nullptr);

  void init() override;
  void step() override;
  int generation() const override { return inner_ ? inner_->generation() : 0; }
  double best_objective() const override {
    return inner_ ? inner_->best_objective() : 0.0;
  }
  const Genome& best() const override { return inner_->best(); }
  long long evaluations() const override {
    return inner_ ? inner_->evaluations() : 0;
  }
  int population_size() const override {
    return inner_ ? inner_->population_size() : 0;
  }
  const Genome& individual(int i) const override {
    return inner_->individual(i);
  }
  double objective_of(int i) const override { return inner_->objective_of(i); }
  EvalCachePtr eval_cache_shared() const override {
    // Pre-init, a user-shared cache is already known from the config, so
    // the run loop can baseline its counters before init() attaches it.
    return inner_ ? inner_->eval_cache_shared() : config_.shared_eval_cache;
  }
  StopCondition stop_default() const override { return config_.termination; }
  bool seed_population(std::vector<Genome> genomes) override {
    // init() rebuilds the inner engine from config_, so the injected
    // population flows into the next run.
    config_.initial_population = std::move(genomes);
    return true;
  }

  using Engine::run;

 protected:
  void prepare_run(const StopCondition& stop) override {
    config_.termination = stop;
  }

 private:
  ProblemPtr problem_;
  GaConfig config_;
  par::ThreadPool* pool_;
  /// The single-population engine doing the work; rebuilt by init() so
  /// every run starts from the configured seed.
  std::optional<SimpleGa> inner_;
};

}  // namespace psga::ga
