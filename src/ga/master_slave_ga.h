// The master-slave (global parallel) GA — Table III of the survey.
//
// A single population lives on the master; the only parallelized stage is
// fitness evaluation, farmed out to worker lanes ("slaves") through the
// shared Evaluator. As the survey notes, this is the one parallel model
// that does not change the algorithm's behaviour — enforced here by
// construction: MasterSlaveGa is a SimpleGa whose GaConfig::eval_backend
// is promoted to a parallel backend, and a test asserts trace equality
// with the serial engine for any thread count.
//
// The engine also offers the fixed-time-budget mode of AitZai et al. [14]:
// run until a wall-clock budget expires and report how many solutions
// were explored (fitness evaluations), the metric their CPU-vs-GPU
// comparison uses.
#pragma once

#include "src/ga/simple_ga.h"
#include "src/par/thread_pool.h"

namespace psga::ga {

class MasterSlaveGa {
 public:
  /// `pool` may be null — the library default pool is used. The parallel
  /// runtime comes from config.eval_backend; a config still set to
  /// kSerial is promoted to kThreadPool (a serial master-slave engine is
  /// a contradiction in terms).
  MasterSlaveGa(ProblemPtr problem, GaConfig config,
                par::ThreadPool* pool = nullptr);

  /// Full run honoring config.termination.
  GaResult run();

  /// Fixed-budget mode ([14]): ignores max_generations and runs until
  /// `seconds` elapse; GaResult::evaluations is the explored-solutions
  /// count.
  GaResult run_time_budget(double seconds);

 private:
  SimpleGa make_engine(const GaConfig& config) const;

  ProblemPtr problem_;
  GaConfig config_;
  par::ThreadPool* pool_;
};

}  // namespace psga::ga
