// Island GA on the message-passing cluster layer — the MPI-style
// deployment of Harmanani et al. [33] (Beowulf/MPI) and Defersha & Chen
// [35][36] (workstation farm, MPI).
//
// Each rank owns one island and runs its own SimpleGa; migrants travel as
// explicit messages (genome buffers), exactly as MPI_Send/MPI_Recv would
// carry them. Supports the dual-frequency scheme of [33]: neighbors share
// their best every `neighbor_interval` (GN) generations and everyone
// broadcasts its best every `broadcast_interval` (LN) generations, with
// GN << LN.
#pragma once

#include "src/ga/engine.h"
#include "src/ga/island_ga.h"
#include "src/par/cluster.h"

namespace psga::ga {

struct ClusterIslandConfig {
  int ranks = 4;
  GaConfig base;             ///< per-rank (per-island) GA configuration
  int neighbor_interval = 5; ///< GN: ring-neighbor exchange period
  int broadcast_interval = 25;  ///< LN: all-to-all best broadcast; 0 = off
};

/// The SPMD island engine. Ranks are real threads exchanging messages, so
/// this engine has no step boundary: run() executes the whole SPMD
/// program and the stepwise API is unavailable (step() throws). Stop
/// conditions beyond the generation budget (wall-clock, target,
/// evaluation budget, rank-local stagnation) are honored through a
/// per-generation consensus vote among the ranks, so no rank blocks on a
/// migrant from a rank that already stopped. RunObserver hooks are not
/// fired (callbacks would cross rank threads).
class ClusterIslandGa : public Engine {
 public:
  ClusterIslandGa(ProblemPtr problem, ClusterIslandConfig config);

  RunResult run(const StopCondition& stop) override;

  void init() override {}
  [[noreturn]] void step() override;
  int generation() const override { return last_.generations; }
  double best_objective() const override { return last_.best_objective; }
  const Genome& best() const override { return last_.best; }
  long long evaluations() const override { return last_.evaluations; }
  /// The rank populations live on their own threads; nothing to inspect.
  int population_size() const override { return 0; }
  [[noreturn]] const Genome& individual(int i) const override;
  [[noreturn]] double objective_of(int i) const override;
  /// The cache shared by the ranks of the last run (null when off).
  EvalCachePtr eval_cache_shared() const override { return cache_; }
  StopCondition stop_default() const override {
    return config_.base.termination;
  }

  using Engine::run;

 private:
  ProblemPtr problem_;
  ClusterIslandConfig config_;
  /// Cache shared across ranks during run() (kept for introspection).
  EvalCachePtr cache_;
  obs::Counter* migrants_ = nullptr;  ///< engine.migrants (adopted)
  /// Gathered result of the last run (introspection after the fact).
  RunResult last_;
};

/// Runs the SPMD island GA on an in-process cluster and returns the
/// gathered result (RunResult::islands holds the per-rank bests).
/// Deterministic for a fixed config (per-rank seeds are derived streams;
/// migration only reads messages at barriers).
RunResult run_cluster_island_ga(ProblemPtr problem,
                                const ClusterIslandConfig& config);

}  // namespace psga::ga
