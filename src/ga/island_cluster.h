// Island GA on the message-passing cluster layer — the MPI-style
// deployment of Harmanani et al. [33] (Beowulf/MPI) and Defersha & Chen
// [35][36] (workstation farm, MPI).
//
// Each rank owns one island and runs its own SimpleGa; migrants travel as
// explicit messages (genome buffers), exactly as MPI_Send/MPI_Recv would
// carry them. Supports the dual-frequency scheme of [33]: neighbors share
// their best every `neighbor_interval` (GN) generations and everyone
// broadcasts its best every `broadcast_interval` (LN) generations, with
// GN << LN.
#pragma once

#include "src/ga/island_ga.h"
#include "src/par/cluster.h"

namespace psga::ga {

struct ClusterIslandConfig {
  int ranks = 4;
  GaConfig base;             ///< per-rank (per-island) GA configuration
  int neighbor_interval = 5; ///< GN: ring-neighbor exchange period
  int broadcast_interval = 25;  ///< LN: all-to-all best broadcast; 0 = off
};

struct ClusterIslandResult {
  GaResult overall;
  std::vector<double> rank_best;  ///< best objective found by each rank
};

/// Runs the SPMD island GA on an in-process cluster and returns the
/// gathered result. Deterministic for a fixed config (per-rank seeds are
/// derived streams; migration only reads messages at barriers).
ClusterIslandResult run_cluster_island_ga(ProblemPtr problem,
                                          const ClusterIslandConfig& config);

}  // namespace psga::ga
