// The island (coarse-grained / multi-deme / migration) GA — Table V of the
// survey and the model that "dominates the work on parallel GA for shop
// scheduling problems".
//
// K subpopulations evolve independently (one SimpleGa each, with its own
// deterministic Rng stream, so runs are reproducible for any thread
// count); every `interval` generations a migration exchanges individuals
// along a connection topology under a replacement policy. The
// configuration space covers what the surveyed works explore:
//   topologies  — ring [26], grid/torus [21][37], fully connected [35],
//                 star [28], hypercube ("virtual cube", [27]),
//                 random-per-epoch routes [36];
//   policies    — best-replace-worst, best-replace-random,
//                 random-replace-random ([35]'s three policies);
//   heterogeneous islands — per-island operators ([26], [30]) and even
//                 per-island objectives (the weighted multi-objective
//                 islands of Rashidi et al. [38]);
//   stagnation-triggered island merging (Spanos et al. [29]).
#pragma once

#include <vector>

#include "src/ga/engine.h"
#include "src/ga/simple_ga.h"
#include "src/par/thread_pool.h"

namespace psga::ga {

enum class Topology {
  kRing,
  kGrid,            ///< 2-D mesh, no wrap
  kTorus,           ///< 2-D mesh with wrap-around
  kFullyConnected,
  kStar,            ///< island 0 is the hub
  kHypercube,
  kRandom,          ///< fresh random routes at every migration epoch [36]
};

enum class MigrationPolicy {
  kBestReplaceWorst,
  kBestReplaceRandom,
  kRandomReplaceRandom,
};

struct MigrationConfig {
  Topology topology = Topology::kRing;
  MigrationPolicy policy = MigrationPolicy::kBestReplaceWorst;
  int interval = 10;  ///< generations between migrations; 0 = never
  int count = 1;      ///< migrants per edge per epoch
  /// Models asynchronous deployments deterministically: migrants selected
  /// at epoch e are delivered at epoch e + delay_epochs (0 = synchronous
  /// delivery within the epoch, the scheme of Park et al. [26]).
  int delay_epochs = 0;
};

struct IslandMergeConfig {
  bool enabled = false;
  /// An island stagnates when more than half its individuals are within
  /// this Hamming distance of its best ([29]).
  int hamming_threshold = 2;
  double fraction = 0.5;
};

struct IslandGaConfig {
  int islands = 4;
  /// Per-island defaults; GaConfig::population is the SUBpopulation size.
  GaConfig base;
  MigrationConfig migration;
  IslandMergeConfig merge;
  /// Optional heterogeneous per-island operator sets (size == islands).
  std::vector<OperatorConfig> per_island_ops;
  /// Optional per-island problems (size == islands) — e.g. differently
  /// weighted objectives for multi-objective search [38]. All entries
  /// must share the same GenomeTraits.
  std::vector<ProblemPtr> per_island_problems;
  /// Start all islands from the same initial subpopulation (Bożejko's
  /// "same start subpopulation" strategy [30]); default: different.
  bool identical_start = false;
};

class IslandGa : public Engine {
 public:
  IslandGa(ProblemPtr problem, IslandGaConfig config,
           par::ThreadPool* pool = nullptr);

  // --- Engine interface ---------------------------------------------------
  void init() override;
  /// One generation on every alive island (in parallel), followed by the
  /// migration epoch and stagnation-triggered merging when due.
  void step() override;
  int generation() const override { return generation_; }
  double best_objective() const override;
  const Genome& best() const override;
  long long evaluations() const override;
  /// Flat view over the alive islands' populations, island-major.
  int population_size() const override;
  const Genome& individual(int i) const override;
  double objective_of(int i) const override;
  /// One cache shared by every island, so elites *and* migrants hit
  /// across subpopulations (null when caching is off).
  EvalCachePtr eval_cache_shared() const override { return cache_; }
  StopCondition stop_default() const override {
    return config_.base.termination;
  }
  /// Injected genomes are dealt round-robin across the islands at init()
  /// (genome i goes to island i mod k), so a warm-started archipelago
  /// spreads the carried material instead of cloning it everywhere.
  bool seed_population(std::vector<Genome> genomes) override {
    config_.base.initial_population = std::move(genomes);
    return true;
  }

  /// The islands still alive (merging shrinks this).
  int surviving_islands() const { return static_cast<int>(alive_.size()); }
  /// Stepwise access to one island's engine (telemetry, tests).
  const SimpleGa& island(int i) const {
    return islands_[static_cast<std::size_t>(i)];
  }

  using Engine::run;

 protected:
  void prepare_run(const StopCondition& stop) override {
    config_.base.termination = stop;
  }
  void fill_sections(RunResult& result) const override;

 private:
  struct Edge {
    int from;
    int to;
  };
  struct Transfer {
    int from;
    int to;
    Genome genome;
    double objective;
  };
  std::vector<Edge> edges_for_epoch(int epoch, std::span<const int> alive);
  void migrate(std::span<const Edge> edges);
  void deliver(std::span<const Transfer> transfers);
  void deliver_due();

  ProblemPtr problem_;
  IslandGaConfig config_;
  par::ThreadPool* pool_;

  // Run state (rebuilt by init()).
  std::vector<SimpleGa> islands_;
  EvalCachePtr cache_;  ///< shared by all islands' evaluators
  std::vector<int> alive_;
  obs::Counter* migrants_ = nullptr;  ///< engine.migrants (delivered)
  par::Rng migration_rng_;
  int generation_ = 0;
  int epoch_ = 0;
  /// Migrations queued by the delayed (asynchronous-model) mode.
  std::vector<std::vector<Transfer>> in_flight_;
  /// Per-island best-so-far curves (RunResult::islands history).
  std::vector<std::vector<double>> island_history_;
};

}  // namespace psga::ga
