#include "src/ga/local_search.h"

#include <algorithm>
#include <memory>

namespace psga::ga {

namespace {

/// The climb itself, over any objective functor — the two public
/// overloads only differ in where objective values come from.
template <typename Objective>
double climb_swap(Objective&& objective, Genome& genome, int max_evaluations,
                  par::Rng& rng) {
  double best = objective(genome);
  const std::size_t n = genome.seq.size();
  if (n < 2) return best;
  int budget = max_evaluations;
  bool improved = true;
  while (improved && budget > 0) {
    improved = false;
    // Randomized first-improvement sweep.
    const std::size_t offset = rng.below(n);
    for (std::size_t step = 0; step < n && budget > 0; ++step) {
      const std::size_t i = (offset + step) % n;
      const std::size_t j = rng.below(n);
      if (i == j || genome.seq[i] == genome.seq[j]) continue;
      std::swap(genome.seq[i], genome.seq[j]);
      const double candidate = objective(genome);
      --budget;
      if (candidate < best) {
        best = candidate;
        improved = true;
      } else {
        std::swap(genome.seq[i], genome.seq[j]);  // undo
      }
    }
  }
  return best;
}

}  // namespace

double local_search_swap(const Problem& problem, Genome& genome,
                         int max_evaluations, par::Rng& rng,
                         Workspace* workspace) {
  std::unique_ptr<Workspace> owned;
  if (workspace == nullptr) {
    owned = problem.make_workspace();
    workspace = owned.get();
  }
  return climb_swap(
      [&](const Genome& g) { return problem.objective(g, *workspace); },
      genome, max_evaluations, rng);
}

double local_search_swap(Evaluator& evaluator, Genome& genome,
                         int max_evaluations, par::Rng& rng) {
  return climb_swap(
      [&](const Genome& g) { return evaluator.evaluate_one(g); }, genome,
      max_evaluations, rng);
}

void redirect(Genome& genome, par::Rng& rng) {
  const std::size_t n = genome.seq.size();
  if (n < 4) return;
  const std::size_t len = std::max<std::size_t>(2, n / 4);
  const std::size_t lo = rng.below(n - len + 1);
  for (std::size_t i = lo + len - 1; i > lo; --i) {
    const std::size_t j = lo + rng.below(i - lo + 1);
    std::swap(genome.seq[i], genome.seq[j]);
  }
}

}  // namespace psga::ga
