// Genome representation covering every encoding the survey catalogues
// (Section III.A): direct job permutations (flow shop), operation-based
// permutations with repetition (job shop, "direct way"), random keys
// (Huang et al. [24]), and the assignment + sequencing chromosome pair of
// the flexible shops ([36][37]).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace psga::ga {

struct Genome {
  /// Sequencing chromosome: a permutation of 0..L-1, or a permutation
  /// with repetition of job ids, depending on GenomeTraits::seq_kind.
  std::vector<int> seq;
  /// Assignment chromosome (flexible shops): per flat operation, an index
  /// into that operation's eligible-machine set.
  std::vector<int> assign;
  /// Continuous chromosome (random keys / sublot size splits).
  std::vector<double> keys;

  bool operator==(const Genome&) const = default;
};

/// Hamming distance over the sequencing chromosome — the stagnation
/// measure of Spanos et al. [29].
int hamming_distance(const Genome& a, const Genome& b);

/// Well-mixed 64-bit hash over all three chromosomes (the evaluation
/// cache's key; also the basis for future population dedup). Equal
/// genomes hash equal; each element passes through a full-avalanche
/// mixer and the chromosomes are length-prefixed, so permutations,
/// repetition sequences and key vectors that differ anywhere — including
/// the same values split differently across chromosomes — hash apart.
std::uint64_t genome_hash(const Genome& g);

/// What the sequencing chromosome means; operators use this to stay
/// validity-preserving.
enum class SeqKind {
  kPermutation,    ///< distinct values 0..L-1
  kJobRepetition,  ///< job j appears repeats[j] times
  kNone,           ///< genome has no sequencing chromosome
};

struct GenomeTraits {
  SeqKind seq_kind = SeqKind::kPermutation;
  int seq_length = 0;
  /// For kJobRepetition: repeats[j] = occurrences of job j in seq.
  std::vector<int> repeats;
  int key_length = 0;  ///< 0 = no keys chromosome
  /// For assignment chromosomes: assign_domain[i] = number of choices of
  /// flat operation i (empty = no assignment chromosome).
  std::vector<int> assign_domain;

  int job_count() const { return static_cast<int>(repeats.size()); }
};

/// Checks that a genome is structurally valid for the traits (multiset /
/// permutation / domain bounds). Used by tests and debug assertions.
bool genome_valid(const Genome& g, const GenomeTraits& traits);

}  // namespace psga::ga
