#include "src/ga/problems.h"

#include <algorithm>
#include <numeric>

namespace psga::ga {

namespace {

std::vector<int> random_permutation(int n, par::Rng& rng) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);
  return perm;
}

/// Argsort of `keys` written into out[0..keys.size()) — the slice form of
/// keys_to_permutation used by the batched random-key decode, where all B
/// permutations share one index workspace.
void keys_to_permutation_into(std::span<const double> keys,
                              std::span<int> out) {
  std::iota(out.begin(), out.end(), 0);
  std::stable_sort(out.begin(), out.end(), [&](int a, int b) {
    return keys[static_cast<std::size_t>(a)] < keys[static_cast<std::size_t>(b)];
  });
}

}  // namespace

void keys_to_permutation(std::span<const double> keys, std::vector<int>& out) {
  out.resize(keys.size());
  std::iota(out.begin(), out.end(), 0);
  std::stable_sort(out.begin(), out.end(), [&](int a, int b) {
    return keys[static_cast<std::size_t>(a)] < keys[static_cast<std::size_t>(b)];
  });
}

std::vector<int> keys_to_permutation(std::span<const double> keys) {
  std::vector<int> perm;
  keys_to_permutation(keys, perm);
  return perm;
}

void keys_to_repetition_sequence(std::span<const double> keys,
                                 std::span<const int> repeats,
                                 std::vector<int>& perm_scratch,
                                 std::vector<int>& out) {
  // Flat slot -> owning job table, kept in perm_scratch.
  perm_scratch.clear();
  perm_scratch.reserve(keys.size());
  for (int j = 0; j < static_cast<int>(repeats.size()); ++j) {
    for (int k = 0; k < repeats[static_cast<std::size_t>(j)]; ++k) {
      perm_scratch.push_back(j);
    }
  }
  keys_to_permutation(keys, out);
  // Map each argsorted slot to its owner in place (elements independent).
  for (int& slot : out) slot = perm_scratch[static_cast<std::size_t>(slot)];
}

std::vector<int> keys_to_repetition_sequence(std::span<const double> keys,
                                             std::span<const int> repeats) {
  std::vector<int> perm;
  std::vector<int> seq;
  keys_to_repetition_sequence(keys, repeats, perm, seq);
  return seq;
}

// --- FlowShopProblem -------------------------------------------------------

FlowShopProblem::FlowShopProblem(sched::FlowShopInstance inst,
                                 sched::Criterion criterion)
    : inst_(std::move(inst)), criterion_(criterion) {
  traits_.seq_kind = SeqKind::kPermutation;
  traits_.seq_length = inst_.jobs;
}

Genome FlowShopProblem::random_genome(par::Rng& rng) const {
  Genome g;
  g.seq = random_permutation(inst_.jobs, rng);
  return g;
}

double FlowShopProblem::objective(const Genome& genome) const {
  return sched::flow_shop_objective(inst_, genome.seq, criterion_);
}

double FlowShopProblem::objective_with(const Genome& genome,
                                       FlowShopEvalScratch& scratch) const {
  return sched::flow_shop_objective(inst_, genome.seq, criterion_, scratch.fs);
}

void FlowShopProblem::objective_batch(std::span<const Genome> genomes,
                                      std::span<double> objectives,
                                      Workspace& workspace) const {
  auto* s = detail::scratch_of<FlowShopEvalScratch>(workspace);
  if (s == nullptr) {
    WorkspaceProblem::objective_batch(genomes, objectives, workspace);
    return;
  }
  s->lanes.clear();
  s->lanes.reserve(genomes.size());
  for (const Genome& g : genomes) s->lanes.emplace_back(g.seq);
  sched::flow_shop_objective_batch(inst_, s->lanes, criterion_, objectives,
                                   s->batch);
}

// --- RandomKeyFlowShopProblem ----------------------------------------------

RandomKeyFlowShopProblem::RandomKeyFlowShopProblem(sched::FlowShopInstance inst,
                                                   sched::Criterion criterion)
    : inst_(std::move(inst)), criterion_(criterion) {
  traits_.seq_kind = SeqKind::kNone;
  traits_.seq_length = 0;
  traits_.key_length = inst_.jobs;
}

Genome RandomKeyFlowShopProblem::random_genome(par::Rng& rng) const {
  Genome g;
  g.keys.resize(static_cast<std::size_t>(inst_.jobs));
  for (auto& k : g.keys) k = rng.uniform();
  return g;
}

std::vector<int> RandomKeyFlowShopProblem::decode(const Genome& genome) const {
  return keys_to_permutation(genome.keys);
}

double RandomKeyFlowShopProblem::objective(const Genome& genome) const {
  return sched::flow_shop_objective(inst_, decode(genome), criterion_);
}

double RandomKeyFlowShopProblem::objective_with(
    const Genome& genome, RandomKeyFlowScratch& scratch) const {
  keys_to_permutation(genome.keys, scratch.perm);
  return sched::flow_shop_objective(inst_, scratch.perm, criterion_,
                                    scratch.fs);
}

void RandomKeyFlowShopProblem::objective_batch(std::span<const Genome> genomes,
                                               std::span<double> objectives,
                                               Workspace& workspace) const {
  auto* s = detail::scratch_of<RandomKeyFlowScratch>(workspace);
  if (s == nullptr) {
    WorkspaceProblem::objective_batch(genomes, objectives, workspace);
    return;
  }
  // Batched argsort: every lane's decoded permutation lands in one shared
  // index workspace, then the SoA kernel advances all lanes at once. Slots
  // are sized by each genome's key count so a malformed genome reaches the
  // kernel's length check instead of reading out of bounds here.
  std::size_t total = 0;
  for (const Genome& g : genomes) total += g.keys.size();
  s->perm_storage.resize(total);
  s->lanes.clear();
  s->lanes.reserve(genomes.size());
  std::size_t offset = 0;
  for (const Genome& g : genomes) {
    const std::span<int> slot(s->perm_storage.data() + offset, g.keys.size());
    keys_to_permutation_into(g.keys, slot);
    s->lanes.emplace_back(slot);
    offset += g.keys.size();
  }
  sched::flow_shop_objective_batch(inst_, s->lanes, criterion_, objectives,
                                   s->batch);
}

// --- JobShopProblem ---------------------------------------------------------

JobShopProblem::JobShopProblem(sched::JobShopInstance inst, Decoder decoder,
                               sched::Criterion criterion)
    : inst_(std::move(inst)), decoder_(decoder), criterion_(criterion) {
  traits_.seq_kind = SeqKind::kJobRepetition;
  traits_.seq_length = inst_.total_ops();
  traits_.repeats.reserve(static_cast<std::size_t>(inst_.jobs));
  for (int j = 0; j < inst_.jobs; ++j) {
    traits_.repeats.push_back(inst_.ops_of(j));
  }
}

Genome JobShopProblem::random_genome(par::Rng& rng) const {
  Genome g;
  g.seq = sched::random_operation_sequence(inst_, rng);
  return g;
}

sched::Schedule JobShopProblem::decode(const Genome& genome) const {
  switch (decoder_) {
    case Decoder::kGifflerThompson:
      return sched::giffler_thompson_sequence(inst_, genome.seq);
    case Decoder::kOperationBased:
    default:
      return sched::decode_operation_based(inst_, genome.seq);
  }
}

double JobShopProblem::objective(const Genome& genome) const {
  return sched::job_shop_objective(inst_, decode(genome), criterion_);
}

double JobShopProblem::objective_with(const Genome& genome,
                                      JobShopEvalScratch& scratch) const {
  const sched::Schedule& schedule =
      decoder_ == Decoder::kGifflerThompson
          ? sched::giffler_thompson_sequence(inst_, genome.seq, scratch.js)
          : sched::decode_operation_based(inst_, genome.seq, scratch.js);
  return sched::job_shop_objective(inst_, schedule, criterion_, scratch.js);
}

void JobShopProblem::objective_batch(std::span<const Genome> genomes,
                                     std::span<double> objectives,
                                     Workspace& workspace) const {
  auto* s = detail::scratch_of<JobShopEvalScratch>(workspace);
  if (s == nullptr) {
    WorkspaceProblem::objective_batch(genomes, objectives, workspace);
    return;
  }
  s->lanes.clear();
  s->lanes.reserve(genomes.size());
  for (const Genome& g : genomes) s->lanes.emplace_back(g.seq);
  const auto decoder = decoder_ == Decoder::kGifflerThompson
                           ? sched::JobShopBatchDecoder::kActive
                           : sched::JobShopBatchDecoder::kSemiActive;
  sched::job_shop_objective_batch(inst_, s->lanes, decoder, criterion_,
                                  objectives, s->batch);
}

// --- OpenShopProblem ---------------------------------------------------------

OpenShopProblem::OpenShopProblem(sched::OpenShopInstance inst,
                                 sched::OpenShopDecoder decoder,
                                 sched::Criterion criterion)
    : inst_(std::move(inst)), decoder_(decoder), criterion_(criterion) {
  traits_.seq_kind = SeqKind::kJobRepetition;
  traits_.seq_length = inst_.jobs * inst_.machines;
  traits_.repeats.assign(static_cast<std::size_t>(inst_.jobs), inst_.machines);
}

Genome OpenShopProblem::random_genome(par::Rng& rng) const {
  Genome g;
  g.seq = sched::random_job_repetition_sequence(inst_, rng);
  return g;
}

double OpenShopProblem::objective(const Genome& genome) const {
  const sched::Schedule schedule =
      sched::decode_open_shop(inst_, genome.seq, decoder_);
  return sched::open_shop_objective(inst_, schedule, criterion_);
}

double OpenShopProblem::objective_with(const Genome& genome,
                                       sched::OpenShopScratch& scratch) const {
  const sched::Schedule& schedule =
      sched::decode_open_shop(inst_, genome.seq, decoder_, scratch);
  return sched::open_shop_objective(inst_, schedule, criterion_, scratch);
}

// --- HybridFlowShopProblem ----------------------------------------------------

HybridFlowShopProblem::HybridFlowShopProblem(sched::HybridFlowShopInstance inst,
                                             sched::CompositeObjective objective)
    : inst_(std::move(inst)), objective_(std::move(objective)) {
  traits_.seq_kind = SeqKind::kPermutation;
  traits_.seq_length = inst_.jobs;
}

Genome HybridFlowShopProblem::random_genome(par::Rng& rng) const {
  Genome g;
  g.seq = random_permutation(inst_.jobs, rng);
  return g;
}

double HybridFlowShopProblem::objective(const Genome& genome) const {
  const sched::Schedule schedule = sched::decode_hybrid_flow_shop(inst_, genome.seq);
  return sched::hybrid_flow_shop_objective(inst_, schedule, objective_);
}

double HybridFlowShopProblem::objective_with(
    const Genome& genome, sched::HybridFlowShopScratch& scratch) const {
  const sched::Schedule& schedule =
      sched::decode_hybrid_flow_shop(inst_, genome.seq, scratch);
  return sched::hybrid_flow_shop_objective(inst_, schedule, objective_,
                                           scratch);
}

double HybridFlowShopProblem::criterion_value(const Genome& genome,
                                              sched::Criterion c) const {
  const sched::Schedule schedule = sched::decode_hybrid_flow_shop(inst_, genome.seq);
  return sched::hybrid_flow_shop_objective(inst_, schedule, c);
}

// --- FlexibleJobShopProblem ----------------------------------------------------

FlexibleJobShopProblem::FlexibleJobShopProblem(
    sched::FlexibleJobShopInstance inst, sched::Criterion criterion)
    : inst_(std::move(inst)), criterion_(criterion) {
  traits_.seq_kind = SeqKind::kJobRepetition;
  traits_.seq_length = inst_.total_ops();
  traits_.repeats.reserve(static_cast<std::size_t>(inst_.jobs));
  for (int j = 0; j < inst_.jobs; ++j) {
    traits_.repeats.push_back(inst_.ops_of(j));
  }
  traits_.assign_domain.reserve(static_cast<std::size_t>(inst_.total_ops()));
  for (int j = 0; j < inst_.jobs; ++j) {
    for (int k = 0; k < inst_.ops_of(j); ++k) {
      traits_.assign_domain.push_back(
          static_cast<int>(inst_.op(j, k).choices.size()));
    }
  }
}

Genome FlexibleJobShopProblem::random_genome(par::Rng& rng) const {
  Genome g;
  g.assign = sched::random_fjs_assignment(inst_, rng);
  g.seq = sched::random_fjs_sequence(inst_, rng);
  return g;
}

double FlexibleJobShopProblem::objective(const Genome& genome) const {
  const sched::Schedule schedule =
      sched::decode_flexible_job_shop(inst_, genome.assign, genome.seq);
  return sched::flexible_job_shop_objective(inst_, schedule, criterion_);
}

double FlexibleJobShopProblem::objective_with(
    const Genome& genome, sched::FlexibleJobShopScratch& scratch) const {
  const sched::Schedule& schedule =
      sched::decode_flexible_job_shop(inst_, genome.assign, genome.seq,
                                      scratch);
  return sched::flexible_job_shop_objective(inst_, schedule, criterion_,
                                            scratch);
}

// --- LotStreamingProblem ----------------------------------------------------

LotStreamingProblem::LotStreamingProblem(sched::LotStreamingInstance inst)
    : inst_(std::move(inst)) {
  traits_.seq_kind = SeqKind::kPermutation;
  traits_.seq_length = inst_.total_sublots();
  traits_.key_length = inst_.total_sublots();
}

Genome LotStreamingProblem::random_genome(par::Rng& rng) const {
  Genome g;
  g.seq = random_permutation(inst_.total_sublots(), rng);
  g.keys.resize(static_cast<std::size_t>(inst_.total_sublots()));
  for (auto& k : g.keys) k = rng.uniform(0.1, 1.0);
  return g;
}

double LotStreamingProblem::objective(const Genome& genome) const {
  return static_cast<double>(
      sched::lot_streaming_makespan(inst_, genome.keys, genome.seq));
}

double LotStreamingProblem::objective_with(
    const Genome& genome, sched::LotStreamingScratch& scratch) const {
  return static_cast<double>(
      sched::lot_streaming_makespan(inst_, genome.keys, genome.seq, scratch));
}

// --- FuzzyFlowShopProblem ----------------------------------------------------

FuzzyFlowShopProblem::FuzzyFlowShopProblem(sched::FuzzyFlowShopInstance inst)
    : inst_(std::move(inst)) {
  traits_.seq_kind = SeqKind::kNone;
  traits_.key_length = inst_.jobs;
}

Genome FuzzyFlowShopProblem::random_genome(par::Rng& rng) const {
  Genome g;
  g.keys.resize(static_cast<std::size_t>(inst_.jobs));
  for (auto& k : g.keys) k = rng.uniform();
  return g;
}

double FuzzyFlowShopProblem::agreement(const Genome& genome) const {
  return sched::mean_agreement(inst_, keys_to_permutation(genome.keys));
}

double FuzzyFlowShopProblem::objective(const Genome& genome) const {
  return 1.0 - agreement(genome);
}

double FuzzyFlowShopProblem::objective_with(const Genome& genome,
                                            FuzzyFlowScratch& scratch) const {
  keys_to_permutation(genome.keys, scratch.perm);
  return 1.0 - sched::mean_agreement(inst_, scratch.perm, scratch.fz);
}

// --- StochasticJobShopProblem ----------------------------------------------------

StochasticJobShopProblem::StochasticJobShopProblem(
    std::shared_ptr<const sched::StochasticJobShop> shop)
    : shop_(std::move(shop)) {
  const auto& nominal = shop_->nominal();
  traits_.seq_kind = SeqKind::kJobRepetition;
  traits_.seq_length = nominal.total_ops();
  traits_.repeats.reserve(static_cast<std::size_t>(nominal.jobs));
  for (int j = 0; j < nominal.jobs; ++j) {
    traits_.repeats.push_back(nominal.ops_of(j));
  }
}

Genome StochasticJobShopProblem::random_genome(par::Rng& rng) const {
  Genome g;
  g.seq = sched::random_operation_sequence(shop_->nominal(), rng);
  return g;
}

double StochasticJobShopProblem::objective(const Genome& genome) const {
  return shop_->expected_makespan(genome.seq);
}

// --- RuleSequenceJobShopProblem ----------------------------------------------

RuleSequenceJobShopProblem::RuleSequenceJobShopProblem(
    sched::JobShopInstance inst, sched::Criterion criterion)
    : inst_(std::move(inst)), criterion_(criterion) {
  traits_.seq_kind = SeqKind::kNone;
  traits_.assign_domain.assign(static_cast<std::size_t>(inst_.total_ops()),
                               sched::kDispatchRuleCount);
}

Genome RuleSequenceJobShopProblem::random_genome(par::Rng& rng) const {
  Genome g;
  g.assign.reserve(traits_.assign_domain.size());
  for (std::size_t i = 0; i < traits_.assign_domain.size(); ++i) {
    g.assign.push_back(static_cast<int>(
        rng.below(static_cast<std::uint64_t>(sched::kDispatchRuleCount))));
  }
  return g;
}

sched::Schedule RuleSequenceJobShopProblem::decode(const Genome& genome) const {
  return sched::giffler_thompson_rules(inst_, genome.assign);
}

double RuleSequenceJobShopProblem::objective(const Genome& genome) const {
  return sched::job_shop_objective(inst_, decode(genome), criterion_);
}

// --- EnergyFlowShopProblem ----------------------------------------------------

EnergyFlowShopProblem::EnergyFlowShopProblem(sched::EnergyAwareFlowShop shop)
    : shop_(std::move(shop)) {
  traits_.seq_kind = SeqKind::kPermutation;
  traits_.seq_length = shop_.instance().jobs;
}

Genome EnergyFlowShopProblem::random_genome(par::Rng& rng) const {
  Genome g;
  g.seq = random_permutation(shop_.instance().jobs, rng);
  return g;
}

double EnergyFlowShopProblem::objective(const Genome& genome) const {
  return shop_.objective(genome.seq);
}

// --- DynamicSuffixProblem ----------------------------------------------------

DynamicSuffixProblem::DynamicSuffixProblem(
    const sched::JobShopInstance* inst, std::vector<int> frozen_prefix,
    std::vector<int> remaining, std::vector<sched::Downtime> downtimes)
    : inst_(inst),
      frozen_prefix_(std::move(frozen_prefix)),
      remaining_(std::move(remaining)),
      downtimes_(std::move(downtimes)) {
  traits_.seq_kind = SeqKind::kJobRepetition;
  traits_.seq_length = static_cast<int>(remaining_.size());
  traits_.repeats.assign(static_cast<std::size_t>(inst_->jobs), 0);
  for (int j : remaining_) ++traits_.repeats[static_cast<std::size_t>(j)];
}

DynamicSuffixProblem::DynamicSuffixProblem(
    std::shared_ptr<const sched::JobShopInstance> inst,
    std::vector<int> frozen_prefix, std::vector<int> remaining,
    std::vector<sched::Downtime> downtimes)
    : DynamicSuffixProblem(inst.get(), std::move(frozen_prefix),
                           std::move(remaining), std::move(downtimes)) {
  owned_ = std::move(inst);
}

Genome DynamicSuffixProblem::random_genome(par::Rng& rng) const {
  Genome g;
  g.seq = remaining_;
  rng.shuffle(g.seq);
  return g;
}

double DynamicSuffixProblem::objective(const Genome& genome) const {
  return static_cast<double>(sched::realized_makespan_with_prefix(
      *inst_, frozen_prefix_, genome.seq, downtimes_));
}

}  // namespace psga::ga
