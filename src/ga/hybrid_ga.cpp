#include "src/ga/hybrid_ga.h"

#include <algorithm>
#include <stdexcept>

namespace psga::ga {

IslandsOfCellularGa::IslandsOfCellularGa(ProblemPtr problem,
                                         IslandsOfCellularConfig config,
                                         par::ThreadPool* pool)
    : problem_(std::move(problem)),
      config_(std::move(config)),
      pool_(pool != nullptr ? pool : &par::default_pool()),
      migration_rng_(0) {
  // Shared memoization across the tori: migrants are cloned island to
  // island, so one cache catches the duplicates. Built here (not in
  // init()) so run() can snapshot per-run counter deltas.
  cache_ =
      EvalCache::make(config_.cell.eval_cache, config_.cell.shared_eval_cache);
  obs::ensure_registry(config_.cell.metrics);
  attach_obs(config_.cell.metrics, config_.cell.tracer);
  migrants_ = &config_.cell.metrics->counter("engine.migrants");
}

void IslandsOfCellularGa::init() {
  par::Rng root(config_.seed);
  migration_rng_ = root.split(0x20000);
  islands_.clear();
  islands_.reserve(static_cast<std::size_t>(config_.islands));
  // The islands step sequentially (each internally parallel over
  // cells), so their evaluators may keep any backend, including
  // pool-carried async.
  for (int i = 0; i < config_.islands; ++i) {
    CellularConfig cell = config_.cell;
    cell.shared_eval_cache = cache_;
    cell.seed = root.split(static_cast<std::uint64_t>(i + 1))();
    cell.termination = config_.termination;
    islands_.emplace_back(problem_, cell, pool_);
  }
  for (auto& island : islands_) island.init();
  generation_ = 0;
}

void IslandsOfCellularGa::step() {
  // The torus steps run one after another but each is internally
  // parallel over cells (that is where the work is).
  for (auto& island : islands_) island.step();
  // Ring migration between islands, far less frequent than diffusion.
  if (config_.migration_interval > 0 &&
      (generation_ + 1) % config_.migration_interval == 0 &&
      islands_.size() > 1) {
    const obs::Span span(tracer_.get(), "migration");
    for (std::size_t i = 0; i < islands_.size(); ++i) {
      CellularGa& source = islands_[i];
      CellularGa& dest = islands_[(i + 1) % islands_.size()];
      for (int m = 0; m < config_.migrants; ++m) {
        const int cell = static_cast<int>(
            migration_rng_.below(static_cast<std::uint64_t>(dest.cells())));
        dest.replace_cell(cell, source.best(), source.best_objective());
        migrants_->add();
        if (observer_ != nullptr) {
          observer_->on_migration(MigrationEvent{
              generation_ + 1, static_cast<int>(i),
              static_cast<int>((i + 1) % islands_.size()),
              source.best_objective()});
        }
      }
    }
  }
  ++generation_;
}

double IslandsOfCellularGa::best_objective() const {
  if (islands_.empty()) return 0.0;
  double best = islands_.front().best_objective();
  for (const auto& island : islands_) {
    best = std::min(best, island.best_objective());
  }
  return best;
}

const Genome& IslandsOfCellularGa::best() const {
  const CellularGa* best_island = &islands_.front();
  for (const auto& island : islands_) {
    if (island.best_objective() < best_island->best_objective()) {
      best_island = &island;
    }
  }
  return best_island->best();
}

long long IslandsOfCellularGa::evaluations() const {
  long long evaluations = 0;
  for (const auto& island : islands_) evaluations += island.evaluations();
  return evaluations;
}

int IslandsOfCellularGa::population_size() const {
  int size = 0;
  for (const auto& island : islands_) size += island.population_size();
  return size;
}

const Genome& IslandsOfCellularGa::individual(int i) const {
  for (const auto& island : islands_) {
    if (i < island.population_size()) return island.individual(i);
    i -= island.population_size();
  }
  throw std::out_of_range(
      "IslandsOfCellularGa::individual: index past population");
}

double IslandsOfCellularGa::objective_of(int i) const {
  for (const auto& island : islands_) {
    if (i < island.population_size()) return island.objective_of(i);
    i -= island.population_size();
  }
  throw std::out_of_range(
      "IslandsOfCellularGa::objective_of: index past population");
}

void IslandsOfCellularGa::fill_sections(RunResult& result) const {
  IslandSection section;
  section.best.reserve(islands_.size());
  section.best_genome.reserve(islands_.size());
  for (const auto& island : islands_) {
    section.best.push_back(island.best_objective());
    section.best_genome.push_back(island.best());
  }
  section.surviving = static_cast<int>(islands_.size());
  result.islands = std::move(section);
}

IslandGaConfig make_torus_island_config(int islands, GaConfig base,
                                        int migration_interval) {
  IslandGaConfig config;
  config.islands = islands;
  config.base = std::move(base);
  config.migration.topology = Topology::kTorus;
  config.migration.interval = migration_interval;
  config.migration.policy = MigrationPolicy::kBestReplaceRandom;
  return config;
}

}  // namespace psga::ga
