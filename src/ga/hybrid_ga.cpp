#include "src/ga/hybrid_ga.h"

#include <chrono>

namespace psga::ga {

IslandsOfCellularGa::IslandsOfCellularGa(ProblemPtr problem,
                                         IslandsOfCellularConfig config,
                                         par::ThreadPool* pool)
    : problem_(std::move(problem)),
      config_(std::move(config)),
      pool_(pool != nullptr ? pool : &par::default_pool()) {}

GaResult IslandsOfCellularGa::run() {
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  par::Rng root(config_.seed);
  par::Rng migration_rng = root.split(0x20000);
  std::vector<CellularGa> islands;
  islands.reserve(static_cast<std::size_t>(config_.islands));
  for (int i = 0; i < config_.islands; ++i) {
    CellularConfig cell = config_.cell;
    cell.seed = root.split(static_cast<std::uint64_t>(i + 1))();
    cell.termination = config_.termination;
    islands.emplace_back(problem_, cell, pool_);
  }
  for (auto& island : islands) island.init();

  GaResult result;
  auto global_best = [&] {
    double best = islands.front().best_objective();
    for (const auto& island : islands) {
      best = std::min(best, island.best_objective());
    }
    return best;
  };
  result.history.push_back(global_best());

  const Termination& term = config_.termination;
  for (int gen = 0; gen < term.max_generations; ++gen) {
    if (term.max_seconds > 0.0 && elapsed() >= term.max_seconds) break;
    if (term.target_objective >= 0.0 && global_best() <= term.target_objective) {
      break;
    }
    // The torus steps run one after another but each is internally
    // parallel over cells (that is where the work is).
    for (auto& island : islands) island.step();
    // Ring migration between islands, far less frequent than diffusion.
    if (config_.migration_interval > 0 &&
        (gen + 1) % config_.migration_interval == 0 && islands.size() > 1) {
      for (std::size_t i = 0; i < islands.size(); ++i) {
        CellularGa& source = islands[i];
        CellularGa& dest = islands[(i + 1) % islands.size()];
        for (int m = 0; m < config_.migrants; ++m) {
          const int cell =
              static_cast<int>(migration_rng.below(
                  static_cast<std::uint64_t>(dest.cells())));
          dest.replace_cell(cell, source.best(), source.best_objective());
        }
      }
    }
    result.history.push_back(global_best());
  }

  double best = islands.front().best_objective();
  const CellularGa* best_island = &islands.front();
  long long evaluations = 0;
  for (const auto& island : islands) {
    evaluations += island.evaluations();
    if (island.best_objective() < best) {
      best = island.best_objective();
      best_island = &island;
    }
  }
  result.best = best_island->best();
  result.best_objective = best;
  result.evaluations = evaluations;
  result.generations = term.max_generations;
  result.seconds = elapsed();
  return result;
}

IslandGaConfig make_torus_island_config(int islands, GaConfig base,
                                        int migration_interval) {
  IslandGaConfig config;
  config.islands = islands;
  config.base = std::move(base);
  config.migration.topology = Topology::kTorus;
  config.migration.interval = migration_interval;
  config.migration.policy = MigrationPolicy::kBestReplaceRandom;
  return config;
}

}  // namespace psga::ga
