// Mutation operators. The survey (Section III.A): "the mutation for shop
// scheduling problems works often based on the neighborhoods, e.g. shift
// mutation (insertion neighborhood) or pairwise interchange mutation (swap
// neighborhood) to respect feasible solutions." All sequencing mutations
// below are validity-preserving for both permutations and permutations
// with repetition.
#pragma once

#include <memory>
#include <string>

#include "src/ga/genome.h"
#include "src/par/rng.h"

namespace psga::ga {

class Mutation {
 public:
  virtual ~Mutation() = default;
  virtual std::string name() const = 0;
  virtual void mutate(Genome& genome, const GenomeTraits& traits,
                      par::Rng& rng) const = 0;
};

using MutationPtr = std::shared_ptr<const Mutation>;

/// Pairwise interchange (swap neighborhood).
class SwapMutation final : public Mutation {
 public:
  std::string name() const override { return "swap"; }
  void mutate(Genome&, const GenomeTraits&, par::Rng&) const override;
};

/// Shift / insertion neighborhood: remove one gene, reinsert elsewhere.
class ShiftMutation final : public Mutation {
 public:
  std::string name() const override { return "shift"; }
  void mutate(Genome&, const GenomeTraits&, par::Rng&) const override;
};

/// Invert a random segment ([32]'s invert mutation).
class InversionMutation final : public Mutation {
 public:
  std::string name() const override { return "inversion"; }
  void mutate(Genome&, const GenomeTraits&, par::Rng&) const override;
};

/// Shuffle a random segment.
class ScrambleMutation final : public Mutation {
 public:
  std::string name() const override { return "scramble"; }
  void mutate(Genome&, const GenomeTraits&, par::Rng&) const override;
};

/// Reassign a random flexible-shop operation to another eligible machine.
class AssignMutation final : public Mutation {
 public:
  std::string name() const override { return "assign"; }
  void mutate(Genome&, const GenomeTraits&, par::Rng&) const override;
};

/// Gaussian creep on one random key ([25]'s Gaussian mutation), clamped to
/// [0, 1].
class KeyCreepMutation final : public Mutation {
 public:
  explicit KeyCreepMutation(double sigma = 0.15) : sigma_(sigma) {}
  std::string name() const override { return "key-creep"; }
  void mutate(Genome&, const GenomeTraits&, par::Rng&) const override;

 private:
  double sigma_;
};

/// Redraw one random key uniformly.
class KeyResetMutation final : public Mutation {
 public:
  std::string name() const override { return "key-reset"; }
  void mutate(Genome&, const GenomeTraits&, par::Rng&) const override;
};

/// Applies two mutations in sequence (e.g. sequencing + assignment for the
/// flexible job shop, as Defersha & Chen pair sequencing and assignment
/// operators).
class CompositeMutation final : public Mutation {
 public:
  CompositeMutation(MutationPtr first, MutationPtr second)
      : first_(std::move(first)), second_(std::move(second)) {}
  std::string name() const override {
    return first_->name() + "+" + second_->name();
  }
  void mutate(Genome& genome, const GenomeTraits& traits,
              par::Rng& rng) const override {
    first_->mutate(genome, traits, rng);
    second_->mutate(genome, traits, rng);
  }

 private:
  MutationPtr first_;
  MutationPtr second_;
};

}  // namespace psga::ga
