// Token-parsing helpers shared by the declarative spec languages
// (SolverSpec in src/ga/solver.cpp, SweepSpec in src/exp/sweep_spec.cpp):
// one copy of the "parse the whole value or name the offending token"
// validation so the two parsers cannot drift.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace psga::ga::spec {

/// `who` is the spec language reporting the error ("SolverSpec",
/// "SweepSpec") — the message shape both parsers' tests pin down.
[[noreturn]] inline void bad_token(const std::string& who,
                                   const std::string& token,
                                   const std::string& reason) {
  throw std::invalid_argument(who + ": " + reason + " in token '" + token +
                              "'");
}

inline int parse_int(const std::string& who, const std::string& value,
                     const std::string& token) {
  try {
    std::size_t used = 0;
    const int parsed = std::stoi(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    bad_token(who, token, "malformed integer");
  }
}

inline double parse_double(const std::string& who, const std::string& value,
                           const std::string& token) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    bad_token(who, token, "malformed number");
  }
}

inline std::uint64_t parse_u64(const std::string& who,
                               const std::string& value,
                               const std::string& token) {
  try {
    std::size_t used = 0;
    const unsigned long long parsed = std::stoull(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return static_cast<std::uint64_t>(parsed);
  } catch (const std::exception&) {
    bad_token(who, token, "malformed integer");
  }
}

}  // namespace psga::ga::spec
