#include "src/ga/island_ga.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

namespace psga::ga {

IslandGa::IslandGa(ProblemPtr problem, IslandGaConfig config,
                   par::ThreadPool* pool)
    : problem_(std::move(problem)),
      config_(std::move(config)),
      pool_(pool != nullptr ? pool : &par::default_pool()) {}

std::vector<IslandGa::Edge> IslandGa::edges_for_epoch(
    int epoch, std::span<const int> alive) {
  const int k = static_cast<int>(alive.size());
  std::vector<Edge> edges;
  if (k < 2) return edges;
  auto add = [&](int from_pos, int to_pos) {
    edges.push_back(Edge{alive[static_cast<std::size_t>(from_pos)],
                         alive[static_cast<std::size_t>(to_pos)]});
  };
  switch (config_.migration.topology) {
    case Topology::kRing:
      for (int i = 0; i < k; ++i) add(i, (i + 1) % k);
      break;
    case Topology::kGrid:
    case Topology::kTorus: {
      // Near-square arrangement of the alive islands.
      const int cols = std::max(1, static_cast<int>(std::ceil(std::sqrt(k))));
      const int rows = (k + cols - 1) / cols;
      const bool wrap = config_.migration.topology == Topology::kTorus;
      auto at = [&](int r, int c) { return r * cols + c; };
      for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
          const int i = at(r, c);
          if (i >= k) continue;
          // Right neighbor.
          int cr = c + 1;
          if (cr >= cols && wrap) cr = 0;
          if (cr < cols && at(r, cr) < k && at(r, cr) != i) add(i, at(r, cr));
          // Down neighbor.
          int rd = r + 1;
          if (rd >= rows && wrap) rd = 0;
          if (rd < rows && at(rd, c) < k && at(rd, c) != i) add(i, at(rd, c));
        }
      }
      break;
    }
    case Topology::kFullyConnected:
      for (int i = 0; i < k; ++i) {
        for (int j = 0; j < k; ++j) {
          if (i != j) add(i, j);
        }
      }
      break;
    case Topology::kStar:
      for (int i = 1; i < k; ++i) {
        add(i, 0);
        add(0, i);
      }
      break;
    case Topology::kHypercube: {
      // Edges along every dimension that stays inside [0, k).
      for (int i = 0; i < k; ++i) {
        for (int bit = 1; bit < k; bit <<= 1) {
          const int j = i ^ bit;
          if (j < k) add(i, j);
        }
      }
      break;
    }
    case Topology::kRandom: {
      // Fresh random routes per epoch ([36]): a random permutation cycle.
      par::Rng rng(config_.base.seed ^ (0x9e3779b97f4a7c15ULL *
                                        static_cast<std::uint64_t>(epoch + 1)));
      std::vector<int> order(static_cast<std::size_t>(k));
      std::iota(order.begin(), order.end(), 0);
      rng.shuffle(order);
      for (int i = 0; i < k; ++i) {
        add(order[static_cast<std::size_t>(i)],
            order[static_cast<std::size_t>((i + 1) % k)]);
      }
      break;
    }
  }
  return edges;
}

void IslandGa::migrate(std::vector<SimpleGa>& islands,
                       std::span<const Edge> edges, par::Rng& rng) {
  const MigrationConfig& mig = config_.migration;
  // Collect all transfers first (synchronous migration: everyone ships the
  // individuals selected *before* any replacement happens). With
  // delay_epochs > 0 the transfers go to the in-flight queue instead and
  // are delivered by deliver_due() at a later epoch — a deterministic
  // model of asynchronous migration staleness.
  std::vector<Transfer> transfers;
  for (const Edge& edge : edges) {
    SimpleGa& source = islands[static_cast<std::size_t>(edge.from)];
    for (int c = 0; c < mig.count; ++c) {
      int index;
      if (mig.policy == MigrationPolicy::kRandomReplaceRandom) {
        index = static_cast<int>(rng.below(source.population().size()));
      } else {
        index = source.best_index();
      }
      transfers.push_back(Transfer{
          edge.to, source.population()[static_cast<std::size_t>(index)],
          source.objectives()[static_cast<std::size_t>(index)]});
    }
  }
  if (mig.delay_epochs > 0) {
    in_flight_.push_back(std::move(transfers));
    return;
  }
  deliver(islands, transfers, rng);
}

void IslandGa::deliver(std::vector<SimpleGa>& islands,
                       std::span<const Transfer> transfers, par::Rng& rng) {
  for (const Transfer& t : transfers) {
    SimpleGa& dest = islands[static_cast<std::size_t>(t.to)];
    int slot;
    if (config_.migration.policy == MigrationPolicy::kBestReplaceWorst) {
      slot = dest.worst_index();
    } else {
      slot = static_cast<int>(rng.below(dest.population().size()));
    }
    dest.replace_individual(slot, t.genome, t.objective);
  }
}

void IslandGa::deliver_due(std::vector<SimpleGa>& islands, par::Rng& rng) {
  // in_flight_[k] was queued k+1 epochs ago (front is oldest).
  if (static_cast<int>(in_flight_.size()) >= config_.migration.delay_epochs) {
    deliver(islands, in_flight_.front(), rng);
    in_flight_.erase(in_flight_.begin());
  }
}

IslandGaResult IslandGa::run() {
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  const int k = config_.islands;
  par::Rng root(config_.base.seed);
  par::Rng migration_rng = root.split(0x10000);

  // Build the islands: per-island seed streams, optional heterogeneous
  // operators/problems, optional identical start populations.
  std::vector<SimpleGa> islands;
  islands.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    GaConfig cfg = config_.base;
    // Islands step concurrently on the pool; their inner evaluators must
    // stay on the stepping thread (the pool is not re-entrant). The
    // parallelism of this model lives at the island level.
    cfg.eval_backend = EvalBackend::kSerial;
    cfg.seed = config_.identical_start
                   ? config_.base.seed
                   : root.split(static_cast<std::uint64_t>(i + 1))();
    if (!config_.per_island_ops.empty()) {
      cfg.ops = config_.per_island_ops[static_cast<std::size_t>(i) %
                                       config_.per_island_ops.size()];
    }
    ProblemPtr problem =
        config_.per_island_problems.empty()
            ? problem_
            : config_.per_island_problems[static_cast<std::size_t>(i)];
    islands.emplace_back(std::move(problem), cfg);
  }
  // With identical starts but heterogeneous operators the initial
  // population must still match: same seed ⇒ same random genomes, because
  // initialization draws only genome randomness.
  pool_->parallel_for(islands.size(),
                      [&](std::size_t i) { islands[i].init(); });

  std::vector<int> alive(static_cast<std::size_t>(k));
  std::iota(alive.begin(), alive.end(), 0);

  IslandGaResult result;
  const Termination& term = config_.base.termination;
  auto global_best = [&] {
    double best = islands[static_cast<std::size_t>(alive.front())].best_objective();
    for (int i : alive) {
      best = std::min(best, islands[static_cast<std::size_t>(i)].best_objective());
    }
    return best;
  };
  result.overall.history.push_back(global_best());

  int epoch = 0;
  double stagnation_best = global_best();
  int stagnant = 0;
  for (int gen = 0; gen < term.max_generations; ++gen) {
    if (term.max_seconds > 0.0 && elapsed() >= term.max_seconds) break;
    if (term.target_objective >= 0.0 && global_best() <= term.target_objective) {
      break;
    }
    if (term.stagnation_generations > 0 && stagnant >= term.stagnation_generations) {
      break;
    }
    // One generation on every island, in parallel.
    pool_->parallel_for(alive.size(), [&](std::size_t idx) {
      islands[static_cast<std::size_t>(alive[idx])].step();
    });
    // Migration epoch.
    if (config_.migration.interval > 0 &&
        (gen + 1) % config_.migration.interval == 0 && alive.size() > 1) {
      if (config_.migration.delay_epochs > 0) {
        deliver_due(islands, migration_rng);
      }
      const auto edges = edges_for_epoch(epoch++, alive);
      migrate(islands, edges, migration_rng);
    }
    // Stagnation-triggered merging ([29]): a stagnated island pours its
    // population into its ring successor and disappears.
    if (config_.merge.enabled && alive.size() > 1) {
      for (std::size_t pos = 0; pos < alive.size(); ++pos) {
        SimpleGa& island = islands[static_cast<std::size_t>(alive[pos])];
        if (island.stagnation_fraction(config_.merge.hamming_threshold) >
            config_.merge.fraction) {
          SimpleGa& heir =
              islands[static_cast<std::size_t>(alive[(pos + 1) % alive.size()])];
          heir.absorb(island.population(), island.objectives());
          alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pos));
          break;  // at most one merge per generation keeps things simple
        }
      }
    }
    result.overall.history.push_back(global_best());
    if (global_best() < stagnation_best) {
      stagnation_best = global_best();
      stagnant = 0;
    } else {
      ++stagnant;
    }
  }

  // Gather results.
  result.island_best.resize(static_cast<std::size_t>(k), -1.0);
  result.island_best_genome.resize(static_cast<std::size_t>(k));
  double best = islands.front().best_objective();
  const SimpleGa* best_island = &islands.front();
  long long evaluations = 0;
  int generations = 0;
  for (int i = 0; i < k; ++i) {
    const SimpleGa& island = islands[static_cast<std::size_t>(i)];
    result.island_best[static_cast<std::size_t>(i)] = island.best_objective();
    result.island_best_genome[static_cast<std::size_t>(i)] = island.best();
    evaluations += island.evaluations();
    generations = std::max(generations, island.generation());
    if (island.best_objective() < best) {
      best = island.best_objective();
      best_island = &island;
    }
  }
  result.overall.best = best_island->best();
  result.overall.best_objective = best;
  result.overall.evaluations = evaluations;
  result.overall.generations = generations;
  result.overall.seconds = elapsed();
  result.surviving_islands = static_cast<int>(alive.size());
  return result;
}

}  // namespace psga::ga
