#include "src/ga/island_ga.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace psga::ga {

IslandGa::IslandGa(ProblemPtr problem, IslandGaConfig config,
                   par::ThreadPool* pool)
    : problem_(std::move(problem)),
      config_(std::move(config)),
      pool_(pool != nullptr ? pool : &par::default_pool()),
      migration_rng_(0) {
  // One cache for the whole archipelago: migration and merging duplicate
  // genomes *across* islands, and memoized objectives are pure values, so
  // sharing is deterministic and strictly increases the hit rate. Built
  // here (not in init()) so run() can snapshot per-run counter deltas.
  cache_ =
      EvalCache::make(config_.base.eval_cache, config_.base.shared_eval_cache);
  obs::ensure_registry(config_.base.metrics);
  attach_obs(config_.base.metrics, config_.base.tracer);
  migrants_ = &config_.base.metrics->counter("engine.migrants");
}

std::vector<IslandGa::Edge> IslandGa::edges_for_epoch(
    int epoch, std::span<const int> alive) {
  const int k = static_cast<int>(alive.size());
  std::vector<Edge> edges;
  if (k < 2) return edges;
  auto add = [&](int from_pos, int to_pos) {
    edges.push_back(Edge{alive[static_cast<std::size_t>(from_pos)],
                         alive[static_cast<std::size_t>(to_pos)]});
  };
  switch (config_.migration.topology) {
    case Topology::kRing:
      for (int i = 0; i < k; ++i) add(i, (i + 1) % k);
      break;
    case Topology::kGrid:
    case Topology::kTorus: {
      // Near-square arrangement of the alive islands.
      const int cols = std::max(1, static_cast<int>(std::ceil(std::sqrt(k))));
      const int rows = (k + cols - 1) / cols;
      const bool wrap = config_.migration.topology == Topology::kTorus;
      auto at = [&](int r, int c) { return r * cols + c; };
      for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
          const int i = at(r, c);
          if (i >= k) continue;
          // Right neighbor.
          int cr = c + 1;
          if (cr >= cols && wrap) cr = 0;
          if (cr < cols && at(r, cr) < k && at(r, cr) != i) add(i, at(r, cr));
          // Down neighbor.
          int rd = r + 1;
          if (rd >= rows && wrap) rd = 0;
          if (rd < rows && at(rd, c) < k && at(rd, c) != i) add(i, at(rd, c));
        }
      }
      break;
    }
    case Topology::kFullyConnected:
      for (int i = 0; i < k; ++i) {
        for (int j = 0; j < k; ++j) {
          if (i != j) add(i, j);
        }
      }
      break;
    case Topology::kStar:
      for (int i = 1; i < k; ++i) {
        add(i, 0);
        add(0, i);
      }
      break;
    case Topology::kHypercube: {
      // Edges along every dimension that stays inside [0, k).
      for (int i = 0; i < k; ++i) {
        for (int bit = 1; bit < k; bit <<= 1) {
          const int j = i ^ bit;
          if (j < k) add(i, j);
        }
      }
      break;
    }
    case Topology::kRandom: {
      // Fresh random routes per epoch ([36]): a random permutation cycle.
      par::Rng rng(config_.base.seed ^ (0x9e3779b97f4a7c15ULL *
                                        static_cast<std::uint64_t>(epoch + 1)));
      std::vector<int> order(static_cast<std::size_t>(k));
      std::iota(order.begin(), order.end(), 0);
      rng.shuffle(order);
      for (int i = 0; i < k; ++i) {
        add(order[static_cast<std::size_t>(i)],
            order[static_cast<std::size_t>((i + 1) % k)]);
      }
      break;
    }
  }
  return edges;
}

void IslandGa::migrate(std::span<const Edge> edges) {
  const MigrationConfig& mig = config_.migration;
  // Collect all transfers first (synchronous migration: everyone ships the
  // individuals selected *before* any replacement happens). With
  // delay_epochs > 0 the transfers go to the in-flight queue instead and
  // are delivered by deliver_due() at a later epoch — a deterministic
  // model of asynchronous migration staleness.
  std::vector<Transfer> transfers;
  for (const Edge& edge : edges) {
    SimpleGa& source = islands_[static_cast<std::size_t>(edge.from)];
    for (int c = 0; c < mig.count; ++c) {
      int index;
      if (mig.policy == MigrationPolicy::kRandomReplaceRandom) {
        index = static_cast<int>(migration_rng_.below(source.population().size()));
      } else {
        index = source.best_index();
      }
      transfers.push_back(Transfer{
          edge.from, edge.to,
          source.population()[static_cast<std::size_t>(index)],
          source.objectives()[static_cast<std::size_t>(index)]});
    }
  }
  if (mig.delay_epochs > 0) {
    in_flight_.push_back(std::move(transfers));
    return;
  }
  deliver(transfers);
}

void IslandGa::deliver(std::span<const Transfer> transfers) {
  for (const Transfer& t : transfers) {
    SimpleGa& dest = islands_[static_cast<std::size_t>(t.to)];
    int slot;
    if (config_.migration.policy == MigrationPolicy::kBestReplaceWorst) {
      slot = dest.worst_index();
    } else {
      slot = static_cast<int>(migration_rng_.below(dest.population().size()));
    }
    dest.replace_individual(slot, t.genome, t.objective);
    migrants_->add();
    if (observer_ != nullptr) {
      observer_->on_migration(
          MigrationEvent{epoch_, t.from, t.to, t.objective});
    }
  }
}

void IslandGa::deliver_due() {
  // in_flight_[k] was queued k+1 epochs ago (front is oldest).
  if (static_cast<int>(in_flight_.size()) >= config_.migration.delay_epochs) {
    deliver(in_flight_.front());
    in_flight_.erase(in_flight_.begin());
  }
}

void IslandGa::init() {
  const int k = config_.islands;
  par::Rng root(config_.base.seed);
  migration_rng_ = root.split(0x10000);

  // Build the islands: per-island seed streams, optional heterogeneous
  // operators/problems, optional identical start populations.
  islands_.clear();
  islands_.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    // Islands step concurrently on the pool; inner_engine_config keeps
    // their evaluators off it (the pool is not re-entrant) — serial on
    // the stepping thread, or a coordinator-only async pipeline so an
    // island's breeding still overlaps its own evaluation. The fan-out
    // parallelism of this model lives at the island level either way.
    GaConfig cfg = inner_engine_config(config_.base, cache_);
    // Deal an injected population round-robin: genome j seeds island
    // j mod k (the copy from base above would otherwise clone the whole
    // set onto every island).
    cfg.initial_population.clear();
    for (std::size_t j = static_cast<std::size_t>(i);
         j < config_.base.initial_population.size();
         j += static_cast<std::size_t>(k)) {
      cfg.initial_population.push_back(config_.base.initial_population[j]);
    }
    cfg.seed = config_.identical_start
                   ? config_.base.seed
                   : root.split(static_cast<std::uint64_t>(i + 1))();
    if (!config_.per_island_ops.empty()) {
      cfg.ops = config_.per_island_ops[static_cast<std::size_t>(i) %
                                       config_.per_island_ops.size()];
    }
    ProblemPtr problem =
        config_.per_island_problems.empty()
            ? problem_
            : config_.per_island_problems[static_cast<std::size_t>(i)];
    islands_.emplace_back(std::move(problem), cfg);
  }
  // With identical starts but heterogeneous operators the initial
  // population must still match: same seed ⇒ same random genomes, because
  // initialization draws only genome randomness.
  pool_->parallel_for(islands_.size(),
                      [&](std::size_t i) { islands_[i].init(); });

  alive_.resize(static_cast<std::size_t>(k));
  std::iota(alive_.begin(), alive_.end(), 0);
  in_flight_.clear();
  generation_ = 0;
  epoch_ = 0;
  island_history_.assign(static_cast<std::size_t>(k), {});
  for (int i = 0; i < k; ++i) {
    island_history_[static_cast<std::size_t>(i)].push_back(
        islands_[static_cast<std::size_t>(i)].best_objective());
  }
}

void IslandGa::step() {
  // One generation on every alive island, in parallel.
  pool_->parallel_for(alive_.size(), [&](std::size_t idx) {
    islands_[static_cast<std::size_t>(alive_[idx])].step();
  });
  // Migration epoch.
  if (config_.migration.interval > 0 &&
      (generation_ + 1) % config_.migration.interval == 0 &&
      alive_.size() > 1) {
    const obs::Span span(tracer_.get(), "migration");
    if (config_.migration.delay_epochs > 0) {
      deliver_due();
    }
    const auto edges = edges_for_epoch(epoch_++, alive_);
    migrate(edges);
  }
  // Stagnation-triggered merging ([29]): a stagnated island pours its
  // population into its ring successor and disappears.
  if (config_.merge.enabled && alive_.size() > 1) {
    for (std::size_t pos = 0; pos < alive_.size(); ++pos) {
      SimpleGa& island = islands_[static_cast<std::size_t>(alive_[pos])];
      if (island.stagnation_fraction(config_.merge.hamming_threshold) >
          config_.merge.fraction) {
        SimpleGa& heir = islands_[static_cast<std::size_t>(
            alive_[(pos + 1) % alive_.size()])];
        heir.absorb(island.population(), island.objectives());
        alive_.erase(alive_.begin() + static_cast<std::ptrdiff_t>(pos));
        break;  // at most one merge per generation keeps things simple
      }
    }
  }
  ++generation_;
  for (int i : alive_) {
    island_history_[static_cast<std::size_t>(i)].push_back(
        islands_[static_cast<std::size_t>(i)].best_objective());
  }
}

double IslandGa::best_objective() const {
  // Scan ALL islands, not just alive ones: a merged-away island's
  // best-so-far genome may have been evicted from its population (by a
  // random-slot migration) before absorb() transferred it, and its
  // frozen record must still count — this also keeps best_objective()
  // consistent with fill_sections' per-island bests.
  if (islands_.empty()) return 0.0;
  double best = islands_.front().best_objective();
  for (const SimpleGa& island : islands_) {
    best = std::min(best, island.best_objective());
  }
  return best;
}

const Genome& IslandGa::best() const {
  const SimpleGa* best_island = &islands_.front();
  for (const SimpleGa& island : islands_) {
    if (island.best_objective() < best_island->best_objective()) {
      best_island = &island;
    }
  }
  return best_island->best();
}

long long IslandGa::evaluations() const {
  long long evaluations = 0;
  for (const SimpleGa& island : islands_) {
    evaluations += island.evaluations();
  }
  return evaluations;
}

int IslandGa::population_size() const {
  int size = 0;
  for (int i : alive_) {
    size += islands_[static_cast<std::size_t>(i)].population_size();
  }
  return size;
}

const Genome& IslandGa::individual(int i) const {
  for (int a : alive_) {
    const SimpleGa& island = islands_[static_cast<std::size_t>(a)];
    if (i < island.population_size()) return island.individual(i);
    i -= island.population_size();
  }
  throw std::out_of_range("IslandGa::individual: index past population");
}

double IslandGa::objective_of(int i) const {
  for (int a : alive_) {
    const SimpleGa& island = islands_[static_cast<std::size_t>(a)];
    if (i < island.population_size()) return island.objective_of(i);
    i -= island.population_size();
  }
  throw std::out_of_range("IslandGa::objective_of: index past population");
}

void IslandGa::fill_sections(RunResult& result) const {
  IslandSection section;
  const std::size_t k = islands_.size();
  section.best.reserve(k);
  section.best_genome.reserve(k);
  for (const SimpleGa& island : islands_) {
    section.best.push_back(island.best_objective());
    section.best_genome.push_back(island.best());
  }
  section.history = island_history_;
  section.surviving = surviving_islands();
  result.islands = std::move(section);
}

}  // namespace psga::ga
