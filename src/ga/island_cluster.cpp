#include "src/ga/island_cluster.h"

#include <algorithm>
#include <chrono>
#include <mutex>

namespace psga::ga {

namespace {

constexpr int kTagNeighbor = 1;
constexpr int kTagBroadcast = 2;

par::Message pack(const Genome& genome, double objective, int tag) {
  par::Message msg;
  msg.tag = tag;
  msg.ints.reserve(genome.seq.size() + genome.assign.size() + 2);
  msg.ints.push_back(static_cast<std::int64_t>(genome.seq.size()));
  msg.ints.push_back(static_cast<std::int64_t>(genome.assign.size()));
  for (int v : genome.seq) msg.ints.push_back(v);
  for (int v : genome.assign) msg.ints.push_back(v);
  msg.doubles.reserve(genome.keys.size() + 1);
  msg.doubles.push_back(objective);
  for (double k : genome.keys) msg.doubles.push_back(k);
  return msg;
}

void unpack(const par::Message& msg, Genome& genome, double& objective) {
  const auto seq_len = static_cast<std::size_t>(msg.ints[0]);
  const auto assign_len = static_cast<std::size_t>(msg.ints[1]);
  genome.seq.assign(msg.ints.begin() + 2,
                    msg.ints.begin() + 2 + static_cast<std::ptrdiff_t>(seq_len));
  genome.assign.assign(
      msg.ints.begin() + 2 + static_cast<std::ptrdiff_t>(seq_len),
      msg.ints.begin() + 2 + static_cast<std::ptrdiff_t>(seq_len + assign_len));
  objective = msg.doubles[0];
  genome.keys.assign(msg.doubles.begin() + 1, msg.doubles.end());
}

}  // namespace

ClusterIslandResult run_cluster_island_ga(ProblemPtr problem,
                                          const ClusterIslandConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  par::Cluster cluster(config.ranks);
  ClusterIslandResult result;
  result.rank_best.assign(static_cast<std::size_t>(config.ranks), 0.0);

  std::mutex result_mutex;
  Genome global_best;
  double global_best_obj = -1.0;
  long long total_evaluations = 0;

  par::Rng root(config.base.seed);
  std::vector<std::uint64_t> rank_seeds;
  rank_seeds.reserve(static_cast<std::size_t>(config.ranks));
  for (int r = 0; r < config.ranks; ++r) {
    rank_seeds.push_back(root.split(static_cast<std::uint64_t>(r + 1))());
  }

  cluster.run([&](par::Rank& rank) {
    GaConfig cfg = config.base;
    // Ranks are concurrent threads; inner evaluation must stay on-rank.
    cfg.eval_backend = EvalBackend::kSerial;
    cfg.seed = rank_seeds[static_cast<std::size_t>(rank.id())];
    SimpleGa island(problem, cfg);
    island.init();

    const int generations = config.base.termination.max_generations;
    const int right = (rank.id() + 1) % rank.size();
    for (int gen = 1; gen <= generations; ++gen) {
      island.step();
      // GN: ship my best to my ring neighbor, receive from my left.
      if (config.neighbor_interval > 0 && gen % config.neighbor_interval == 0 &&
          rank.size() > 1) {
        const int best = island.best_index();
        rank.send(right, pack(island.population()[static_cast<std::size_t>(best)],
                              island.objectives()[static_cast<std::size_t>(best)],
                              kTagNeighbor));
        const par::Message incoming = rank.recv(kTagNeighbor);
        Genome migrant;
        double objective;
        unpack(incoming, migrant, objective);
        island.replace_individual(island.worst_index(), migrant, objective);
      }
      // LN: everyone broadcasts its best to all ([33], GN << LN).
      if (config.broadcast_interval > 0 &&
          gen % config.broadcast_interval == 0 && rank.size() > 1) {
        const int best = island.best_index();
        const auto all = rank.allgather(
            pack(island.population()[static_cast<std::size_t>(best)],
                 island.objectives()[static_cast<std::size_t>(best)],
                 kTagBroadcast),
            kTagBroadcast);
        // Adopt the single best incoming migrant.
        int best_source = -1;
        double best_obj = island.best_objective();
        for (int src = 0; src < rank.size(); ++src) {
          if (src == rank.id()) continue;
          if (all[static_cast<std::size_t>(src)].doubles[0] < best_obj) {
            best_obj = all[static_cast<std::size_t>(src)].doubles[0];
            best_source = src;
          }
        }
        if (best_source >= 0) {
          Genome migrant;
          double objective;
          unpack(all[static_cast<std::size_t>(best_source)], migrant, objective);
          island.replace_individual(island.worst_index(), migrant, objective);
        }
        rank.barrier();  // keep epochs aligned so tags never mix
      }
    }

    std::lock_guard lock(result_mutex);
    result.rank_best[static_cast<std::size_t>(rank.id())] =
        island.best_objective();
    total_evaluations += island.evaluations();
    if (global_best_obj < 0.0 || island.best_objective() < global_best_obj) {
      global_best_obj = island.best_objective();
      global_best = island.best();
    }
  });

  result.overall.best = global_best;
  result.overall.best_objective = global_best_obj;
  result.overall.evaluations = total_evaluations;
  result.overall.generations = config.base.termination.max_generations;
  result.overall.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace psga::ga
