#include "src/ga/island_cluster.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <stdexcept>

namespace psga::ga {

namespace {

constexpr int kTagNeighbor = 1;
constexpr int kTagBroadcast = 2;
constexpr int kTagConsensus = 3;

par::Message pack(const Genome& genome, double objective, int tag) {
  par::Message msg;
  msg.tag = tag;
  msg.ints.reserve(genome.seq.size() + genome.assign.size() + 2);
  msg.ints.push_back(static_cast<std::int64_t>(genome.seq.size()));
  msg.ints.push_back(static_cast<std::int64_t>(genome.assign.size()));
  for (int v : genome.seq) msg.ints.push_back(v);
  for (int v : genome.assign) msg.ints.push_back(v);
  msg.doubles.reserve(genome.keys.size() + 1);
  msg.doubles.push_back(objective);
  for (double k : genome.keys) msg.doubles.push_back(k);
  return msg;
}

void unpack(const par::Message& msg, Genome& genome, double& objective) {
  const auto seq_len = static_cast<std::size_t>(msg.ints[0]);
  const auto assign_len = static_cast<std::size_t>(msg.ints[1]);
  genome.seq.assign(msg.ints.begin() + 2,
                    msg.ints.begin() + 2 + static_cast<std::ptrdiff_t>(seq_len));
  genome.assign.assign(
      msg.ints.begin() + 2 + static_cast<std::ptrdiff_t>(seq_len),
      msg.ints.begin() + 2 + static_cast<std::ptrdiff_t>(seq_len + assign_len));
  objective = msg.doubles[0];
  genome.keys.assign(msg.doubles.begin() + 1, msg.doubles.end());
}

}  // namespace

ClusterIslandGa::ClusterIslandGa(ProblemPtr problem, ClusterIslandConfig config)
    : problem_(std::move(problem)), config_(std::move(config)) {
  obs::ensure_registry(config_.base.metrics);
  attach_obs(config_.base.metrics, config_.base.tracer);
  migrants_ = &config_.base.metrics->counter("engine.migrants");
}

void ClusterIslandGa::step() {
  throw std::logic_error(
      "ClusterIslandGa has no step boundary (ranks are threads); use run()");
}

const Genome& ClusterIslandGa::individual(int) const {
  throw std::out_of_range("ClusterIslandGa has no inspectable population");
}

double ClusterIslandGa::objective_of(int) const {
  throw std::out_of_range("ClusterIslandGa has no inspectable population");
}

RunResult ClusterIslandGa::run(const StopCondition& stop) {
  const auto start = std::chrono::steady_clock::now();
  par::Cluster cluster(config_.ranks);
  RunResult result;
  IslandSection section;
  section.best.assign(static_cast<std::size_t>(config_.ranks), 0.0);
  section.best_genome.resize(static_cast<std::size_t>(config_.ranks));
  section.surviving = config_.ranks;

  std::mutex result_mutex;
  Genome global_best;
  double global_best_obj = -1.0;
  long long total_evaluations = 0;
  int max_generations_run = 0;

  // One cache across ranks: neighbor/broadcast migrants are verbatim
  // clones, and memoized objectives are pure values, so the sharing is
  // deterministic exactly like the in-process island engine's. Counters
  // are snapshotted so result.cache is this run's delta even when the
  // cache is shared or the engine reruns.
  cache_ =
      EvalCache::make(config_.base.eval_cache, config_.base.shared_eval_cache);
  const EvalCacheStats cache_baseline =
      cache_ != nullptr ? cache_->stats() : EvalCacheStats{};
  // Mirror the base run loop's per-run metrics delta (this engine
  // overrides run() wholesale).
  const obs::MetricsSnapshot metrics_baseline = metrics_->snapshot();

  par::Rng root(config_.base.seed);
  std::vector<std::uint64_t> rank_seeds;
  rank_seeds.reserve(static_cast<std::size_t>(config_.ranks));
  for (int r = 0; r < config_.ranks; ++r) {
    rank_seeds.push_back(root.split(static_cast<std::uint64_t>(r + 1))());
  }

  // Stop conditions beyond the generation budget need a per-generation
  // consensus so every rank leaves the collective pattern at the same
  // generation (a rank breaking alone would deadlock its neighbors).
  const bool consensus_needed = stop.max_seconds > 0.0 ||
                                stop.target_objective >= 0.0 ||
                                stop.max_evaluations > 0 ||
                                stop.stagnation_generations > 0;

  cluster.run([&](par::Rank& rank) {
    // Ranks are concurrent threads; inner_engine_config keeps their
    // evaluation off the shared pool — serial on-rank, or a
    // coordinator-only async pipeline so a rank's breeding overlaps its
    // own evaluation.
    GaConfig cfg = inner_engine_config(config_.base, cache_);
    cfg.seed = rank_seeds[static_cast<std::size_t>(rank.id())];
    cfg.termination = stop;
    SimpleGa island(problem_, cfg);
    island.init();

    const int generations = stop.max_generations;
    const int right = (rank.id() + 1) % rank.size();
    double stagnation_best = island.best_objective();
    int stagnant = 0;
    int gen = 1;
    for (; gen <= generations; ++gen) {
      island.step();
      if (island.best_objective() < stagnation_best) {
        stagnation_best = island.best_objective();
        stagnant = 0;
      } else {
        ++stagnant;
      }
      // GN: ship my best to my ring neighbor, receive from my left.
      if (config_.neighbor_interval > 0 && gen % config_.neighbor_interval == 0 &&
          rank.size() > 1) {
        const int best = island.best_index();
        rank.send(right, pack(island.population()[static_cast<std::size_t>(best)],
                              island.objectives()[static_cast<std::size_t>(best)],
                              kTagNeighbor));
        const par::Message incoming = rank.recv(kTagNeighbor);
        Genome migrant;
        double objective;
        unpack(incoming, migrant, objective);
        island.replace_individual(island.worst_index(), migrant, objective);
        migrants_->add();
      }
      // LN: everyone broadcasts its best to all ([33], GN << LN).
      if (config_.broadcast_interval > 0 &&
          gen % config_.broadcast_interval == 0 && rank.size() > 1) {
        const int best = island.best_index();
        const auto all = rank.allgather(
            pack(island.population()[static_cast<std::size_t>(best)],
                 island.objectives()[static_cast<std::size_t>(best)],
                 kTagBroadcast),
            kTagBroadcast);
        // Adopt the single best incoming migrant.
        int best_source = -1;
        double best_obj = island.best_objective();
        for (int src = 0; src < rank.size(); ++src) {
          if (src == rank.id()) continue;
          if (all[static_cast<std::size_t>(src)].doubles[0] < best_obj) {
            best_obj = all[static_cast<std::size_t>(src)].doubles[0];
            best_source = src;
          }
        }
        if (best_source >= 0) {
          Genome migrant;
          double objective;
          unpack(all[static_cast<std::size_t>(best_source)], migrant, objective);
          island.replace_individual(island.worst_index(), migrant, objective);
          migrants_->add();
        }
        rank.barrier();  // keep epochs aligned so tags never mix
      }
      // Consensus stop vote: any rank over budget (or at target) ends the
      // run for everyone at the same generation.
      if (consensus_needed) {
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        par::Message vote_msg;
        vote_msg.tag = kTagConsensus;
        const bool vote =
            (stop.max_seconds > 0.0 && elapsed >= stop.max_seconds) ||
            (stop.target_objective >= 0.0 &&
             island.best_objective() <= stop.target_objective) ||
            (stop.stagnation_generations > 0 &&
             stagnant >= stop.stagnation_generations);
        vote_msg.ints = {vote ? 1 : 0, island.evaluations()};
        const auto votes = rank.allgather(std::move(vote_msg), kTagConsensus);
        bool any_vote = false;
        long long cluster_evaluations = 0;
        for (const auto& v : votes) {
          any_vote = any_vote || v.ints[0] != 0;
          cluster_evaluations += v.ints[1];
        }
        if (any_vote || (stop.max_evaluations > 0 &&
                         cluster_evaluations >= stop.max_evaluations)) {
          break;
        }
      }
    }

    std::lock_guard lock(result_mutex);
    section.best[static_cast<std::size_t>(rank.id())] =
        island.best_objective();
    section.best_genome[static_cast<std::size_t>(rank.id())] = island.best();
    total_evaluations += island.evaluations();
    max_generations_run = std::max(max_generations_run, island.generation());
    if (global_best_obj < 0.0 || island.best_objective() < global_best_obj) {
      global_best_obj = island.best_objective();
      global_best = island.best();
    }
  });

  result.best = global_best;
  result.best_objective = global_best_obj;
  result.evaluations = total_evaluations;
  result.generations = max_generations_run;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.islands = std::move(section);
  if (cache_ != nullptr) {
    EvalCacheStats stats = cache_->stats();
    stats -= cache_baseline;
    result.cache = stats;
  } else {
    result.cache = EvalCacheStats{};
  }
  {
    obs::MetricsSnapshot snapshot = metrics_->snapshot();
    snapshot.subtract(metrics_baseline);
    snapshot.set_counter("eval.cache.hits",
                         static_cast<std::uint64_t>(result.cache->hits));
    snapshot.set_counter("eval.cache.misses",
                         static_cast<std::uint64_t>(result.cache->misses));
    snapshot.set_counter("eval.cache.inserts",
                         static_cast<std::uint64_t>(result.cache->inserts));
    snapshot.set_counter("eval.cache.evictions",
                         static_cast<std::uint64_t>(result.cache->evictions));
    result.metrics = std::move(snapshot);
  }
  last_ = result;
  return result;
}

RunResult run_cluster_island_ga(ProblemPtr problem,
                                const ClusterIslandConfig& config) {
  ClusterIslandGa engine(std::move(problem), config);
  return engine.run();
}

}  // namespace psga::ga
