#include "src/ga/selection.h"

#include <algorithm>
#include <numeric>

namespace psga::ga {

std::vector<int> Selection::pick_many(std::span<const double> fitness,
                                      int count, par::Rng& rng) const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(pick(fitness, rng));
  return out;
}

namespace {

double total_fitness(std::span<const double> fitness) {
  double total = 0.0;
  for (double f : fitness) total += std::max(f, 0.0);
  return total;
}

int spin_wheel(std::span<const double> fitness, double target) {
  double acc = 0.0;
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    acc += std::max(fitness[i], 0.0);
    if (target < acc) return static_cast<int>(i);
  }
  return static_cast<int>(fitness.size()) - 1;
}

}  // namespace

int RouletteSelection::pick(std::span<const double> fitness,
                            par::Rng& rng) const {
  const double total = total_fitness(fitness);
  if (total <= 0.0) {
    return static_cast<int>(rng.below(fitness.size()));
  }
  return spin_wheel(fitness, rng.uniform() * total);
}

int StochasticUniversalSelection::pick(std::span<const double> fitness,
                                       par::Rng& rng) const {
  return RouletteSelection{}.pick(fitness, rng);
}

std::vector<int> StochasticUniversalSelection::pick_many(
    std::span<const double> fitness, int count, par::Rng& rng) const {
  const double total = total_fitness(fitness);
  if (total <= 0.0 || count <= 0) {
    return Selection::pick_many(fitness, count, rng);
  }
  const double step = total / count;
  double pointer = rng.uniform() * step;
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(count));
  double acc = 0.0;
  std::size_t i = 0;
  for (int k = 0; k < count; ++k) {
    const double target = pointer + step * k;
    while (i < fitness.size() - 1 && acc + std::max(fitness[i], 0.0) <= target) {
      acc += std::max(fitness[i], 0.0);
      ++i;
    }
    out.push_back(static_cast<int>(i));
  }
  return out;
}

int TournamentSelection::pick(std::span<const double> fitness,
                              par::Rng& rng) const {
  int best = static_cast<int>(rng.below(fitness.size()));
  for (int round = 1; round < k_; ++round) {
    const int challenger = static_cast<int>(rng.below(fitness.size()));
    if (fitness[static_cast<std::size_t>(challenger)] >
        fitness[static_cast<std::size_t>(best)]) {
      best = challenger;
    }
  }
  return best;
}

int RankSelection::pick(std::span<const double> fitness, par::Rng& rng) const {
  const std::size_t n = fitness.size();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return fitness[static_cast<std::size_t>(a)] <
           fitness[static_cast<std::size_t>(b)];
  });
  // Linear ranking: worst gets 2 - pressure, best gets pressure.
  std::vector<double> rank_fitness(n);
  for (std::size_t r = 0; r < n; ++r) {
    const double value =
        (2.0 - pressure_) +
        2.0 * (pressure_ - 1.0) * static_cast<double>(r) /
            std::max<double>(1.0, static_cast<double>(n - 1));
    rank_fitness[static_cast<std::size_t>(order[r])] = value;
  }
  return RouletteSelection{}.pick(rank_fitness, rng);
}

int ElitistRouletteSelection::pick(std::span<const double> fitness,
                                   par::Rng& rng) const {
  const std::size_t n = fitness.size();
  if (rng.chance(elite_bias_)) {
    const int elite_count = std::max(
        1, static_cast<int>(elite_fraction_ * static_cast<double>(n)));
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(elite_count),
                      order.end(), [&](int a, int b) {
                        return fitness[static_cast<std::size_t>(a)] >
                               fitness[static_cast<std::size_t>(b)];
                      });
    return order[rng.below(static_cast<std::uint64_t>(elite_count))];
  }
  return RouletteSelection{}.pick(fitness, rng);
}

}  // namespace psga::ga
