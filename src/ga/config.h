// Engine configuration shared by all GA models.
#pragma once

#include <cstdint>
#include <memory>

#include "src/ga/crossover.h"
#include "src/ga/evaluator.h"
#include "src/ga/mutation.h"
#include "src/ga/problem.h"
#include "src/ga/selection.h"
#include "src/ga/stop.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace psga::ga {

/// The survey's two fitness transforms (Section III.A).
enum class FitnessTransform {
  kInverse,    ///< Eq. (2): FIT = 1 / F
  kReference,  ///< Eq. (1): FIT = max(Fbar - F, 0)
};

struct OperatorConfig {
  SelectionPtr selection;
  CrossoverPtr crossover;
  MutationPtr mutation;
  double crossover_rate = 0.9;
  double mutation_rate = 0.2;
  /// Variable mutation probability ([32]): if >= 0, the rate is linearly
  /// interpolated from mutation_rate to this value over the run.
  double mutation_rate_final = -1.0;
};

/// Default operators for a problem's encoding: binary tournament, a
/// kind-appropriate crossover (OX for permutations, JOX for repetition
/// sequences, parameterized uniform for pure key genomes) and swap (or
/// key-creep) mutation — with an assignment mutation composed in when the
/// genome has an assignment chromosome.
OperatorConfig default_operators(const Problem& problem);

struct GaConfig;

/// Demotes `base` for an inner engine stepped from a pool thread (an
/// island, a cluster rank): the non-reentrant ThreadPool must not be
/// entered again, so kAsyncPool becomes coordinator-only and every other
/// backend becomes kSerial; `shared_cache` (may be null) is wired in so
/// all inner engines memoize into one table. Island-structured engines
/// MUST build their inner configs through this helper.
GaConfig inner_engine_config(GaConfig base, EvalCachePtr shared_cache);

struct GaConfig {
  int population = 100;
  int elites = 1;  ///< individuals copied unchanged to the next generation
  /// Fraction of each new generation drawn fresh at random — the
  /// "immigration" of Huang et al. [24] (their c%).
  double immigration_fraction = 0.0;
  /// Niche penalty (survey §I: "hire niche penalty in selection to keep
  /// the diversity"): when > 0, fitness sharing divides each individual's
  /// fitness by its niche count, with niches defined by Hamming distance
  /// below this radius on the sequencing chromosome. O(P²) per
  /// generation, as the survey warns ("may raise the complexity").
  int niche_radius = 0;
  double niche_alpha = 1.0;  ///< sharing-function shape exponent
  /// Warm-start individuals injected into the initial population (e.g. an
  /// NEH or dispatching-rule solution); the rest is drawn at random.
  /// Entries beyond `population` are ignored.
  std::vector<Genome> seed_genomes;
  /// A whole injected initial population — the warm-start seam of the
  /// session layer and sweep chaining. init() consumes these first (in
  /// order, before seed_genomes), truncating at `population` and padding
  /// any shortfall with random genomes. Engines expose this through
  /// Engine::seed_population so spec-built engines can be seeded after
  /// construction.
  std::vector<Genome> initial_population;
  OperatorConfig ops;
  /// Which runtime evaluates fitness batches (see evaluator.h). Engines
  /// that already parallelize at a coarser level (islands, cluster ranks)
  /// force this to kSerial for their inner engines — except kAsyncPool,
  /// which they keep in coordinator-only form (async_coordinator_only).
  EvalBackend eval_backend = EvalBackend::kSerial;
  /// Objective memoization by genome hash (see eval_cache.h); off by
  /// default. Traces are bit-identical with the cache on or off.
  EvalCacheConfig eval_cache;
  /// Pre-built cache to share across engines — island-structured engines
  /// set this on their inner configs so elites and migrants hit across
  /// subpopulations. When null and eval_cache.mode != kOff, the engine
  /// builds its own cache from eval_cache.
  EvalCachePtr shared_eval_cache;
  /// Namespaces the engine's cache keys (Evaluator::set_hash_salt): set a
  /// distinct nonzero salt per objective landscape when a shared cache
  /// outlives one problem state (the session layer's cross-replan store).
  /// 0 = no namespacing.
  std::uint64_t cache_salt = 0;
  /// Restricts the kAsyncPool pipeline to its coordinator thread (no
  /// thread-pool fan-out). Engines whose outer level owns the pool
  /// (parallel island steps, cluster ranks) set this on inner configs;
  /// leave false for single-population engines.
  bool async_coordinator_only = false;
  /// objective_batch chunk size on every backend: 0 = auto (a lane-width
  /// friendly block, currently 16), otherwise the exact block handed to
  /// the batched decode kernels (1 = per-genome). Never changes any
  /// objective — spec token `eval_batch=` (see solver.h).
  int eval_batch = 0;
  FitnessTransform transform = FitnessTransform::kInverse;
  double reference_objective = 0.0;  ///< Fbar for FitnessTransform::kReference
  Termination termination;
  std::uint64_t seed = 1;
  /// Metrics registry this engine records into (always-on counters and
  /// histograms — see src/obs/metrics.h). When null the engine creates
  /// its own at construction; island-structured engines propagate theirs
  /// to inner engines via inner_engine_config so a run scrapes one
  /// registry. Observation never alters the evolutionary trace.
  obs::RegistryPtr metrics;
  /// Stage tracer (opt-in, spec token `trace=on`); null = no tracing.
  /// Shared with inner engines the same way as `metrics`.
  std::shared_ptr<obs::Tracer> tracer;
};

}  // namespace psga::ga
