#include "src/ga/genome.h"

#include <algorithm>
#include <bit>

namespace psga::ga {

namespace {

/// Absorbs one 64-bit word with full avalanche (the SplitMix64
/// finalizer over the running state): every input bit flips each output
/// bit with probability ~1/2, so low-entropy inputs (small ints, nearby
/// doubles) still spread over the whole hash.
constexpr std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  h += 0x9e3779b97f4a7c15ULL + v;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace

std::uint64_t genome_hash(const Genome& g) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;  // pi fractional bits
  h = mix(h, g.seq.size());
  for (int v : g.seq) {
    h = mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
  }
  h = mix(h, g.assign.size());
  for (int v : g.assign) {
    h = mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
  }
  h = mix(h, g.keys.size());
  for (double k : g.keys) {
    h = mix(h, std::bit_cast<std::uint64_t>(k));
  }
  return h;
}

int hamming_distance(const Genome& a, const Genome& b) {
  const std::size_t n = std::min(a.seq.size(), b.seq.size());
  int distance = static_cast<int>(std::max(a.seq.size(), b.seq.size()) - n);
  for (std::size_t i = 0; i < n; ++i) {
    if (a.seq[i] != b.seq[i]) ++distance;
  }
  return distance;
}

bool genome_valid(const Genome& g, const GenomeTraits& traits) {
  if (static_cast<int>(g.seq.size()) != traits.seq_length) {
    return traits.seq_kind == SeqKind::kNone && g.seq.empty();
  }
  switch (traits.seq_kind) {
    case SeqKind::kPermutation: {
      std::vector<bool> seen(g.seq.size(), false);
      for (int v : g.seq) {
        if (v < 0 || v >= static_cast<int>(g.seq.size())) return false;
        if (seen[static_cast<std::size_t>(v)]) return false;
        seen[static_cast<std::size_t>(v)] = true;
      }
      break;
    }
    case SeqKind::kJobRepetition: {
      std::vector<int> count(traits.repeats.size(), 0);
      for (int v : g.seq) {
        if (v < 0 || v >= static_cast<int>(count.size())) return false;
        ++count[static_cast<std::size_t>(v)];
      }
      if (!std::equal(count.begin(), count.end(), traits.repeats.begin())) {
        return false;
      }
      break;
    }
    case SeqKind::kNone:
      break;
  }
  if (static_cast<int>(g.keys.size()) != traits.key_length) return false;
  if (g.assign.size() != traits.assign_domain.size()) return false;
  for (std::size_t i = 0; i < g.assign.size(); ++i) {
    if (g.assign[i] < 0 || g.assign[i] >= traits.assign_domain[i]) return false;
  }
  return true;
}

}  // namespace psga::ga
