#include "src/ga/problem_registry.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "src/ga/spec_util.h"
#include "src/sched/classics.h"
#include "src/sched/generators.h"
#include "src/sched/io.h"
#include "src/sched/taillard.h"

namespace psga::ga {

namespace {

bool is_gen(const std::string& instance) {
  return instance.rfind("gen:", 0) == 0;
}

[[noreturn]] void spec_error(const std::string& message) {
  throw std::invalid_argument("ProblemSpec: " + message);
}

const std::string& require_instance(const ProblemSpec& spec) {
  if (spec.instance.empty()) {
    spec_error("problem '" + spec.problem + "' requires an instance= token");
  }
  return spec.instance;
}

/// Parsed `gen:key=value,key=value` synthetic-instance parameters. Each
/// family takes the keys it understands; finish() rejects leftovers so a
/// typo'd key fails loudly instead of silently keeping a default.
class GenParams {
 public:
  GenParams(const std::string& instance, std::string family)
      : token_("instance=" + instance), family_(std::move(family)) {
    std::string body = instance.substr(4);  // past "gen:"
    std::size_t start = 0;
    while (start <= body.size()) {
      const std::size_t comma = body.find(',', start);
      const std::string part = body.substr(
          start, comma == std::string::npos ? std::string::npos
                                            : comma - start);
      if (!part.empty()) {
        const std::size_t eq = part.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= part.size()) {
          spec::bad_token("ProblemSpec", token_,
                          "gen: parameters must be key=value");
        }
        pairs_.emplace_back(part.substr(0, eq), part.substr(eq + 1));
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }

  int take_int(const std::string& key, int fallback) {
    const std::optional<std::string> value = take(key);
    return value ? spec::parse_int("ProblemSpec", *value, token_) : fallback;
  }

  std::uint64_t take_u64(const std::string& key, std::uint64_t fallback) {
    const std::optional<std::string> value = take(key);
    return value ? spec::parse_u64("ProblemSpec", *value, token_) : fallback;
  }

  double take_double(const std::string& key, double fallback) {
    const std::optional<std::string> value = take(key);
    return value ? spec::parse_double("ProblemSpec", *value, token_)
                 : fallback;
  }

  bool take_flag(const std::string& key, bool fallback) {
    const std::optional<std::string> value = take(key);
    if (!value) return fallback;
    if (*value == "on" || *value == "1") return true;
    if (*value == "off" || *value == "0") return false;
    spec::bad_token("ProblemSpec", token_,
                    "gen: flag '" + key + "' must be on|off");
  }

  /// Machines-per-stage vector: "3x2x3" -> {3, 2, 3}.
  std::vector<int> take_stages(const std::string& key,
                               std::vector<int> fallback) {
    const std::optional<std::string> value = take(key);
    if (!value) return fallback;
    std::vector<int> stages;
    std::size_t start = 0;
    for (;;) {
      const std::size_t x = value->find('x', start);
      stages.push_back(spec::parse_int(
          "ProblemSpec",
          value->substr(start, x == std::string::npos ? std::string::npos
                                                      : x - start),
          token_));
      if (x == std::string::npos) break;
      start = x + 1;
    }
    return stages;
  }

  /// Throws if any key was never consumed (unknown for this family).
  void finish() const {
    if (!pairs_.empty()) {
      spec::bad_token("ProblemSpec", token_,
                      "unknown gen: key '" + pairs_.front().first +
                          "' for problem '" + family_ + "'");
    }
  }

 private:
  std::optional<std::string> take(const std::string& key) {
    for (std::size_t i = 0; i < pairs_.size(); ++i) {
      if (pairs_[i].first == key) {
        std::string value = std::move(pairs_[i].second);
        pairs_.erase(pairs_.begin() + static_cast<std::ptrdiff_t>(i));
        return value;
      }
    }
    return std::nullopt;
  }

  std::string token_;
  std::string family_;
  std::vector<std::pair<std::string, std::string>> pairs_;
};

// --- per-family instance resolution ------------------------------------------

sched::FlowShopInstance flow_instance(const ProblemSpec& spec) {
  const std::string& instance = require_instance(spec);
  if (is_gen(instance)) {
    GenParams gen(instance, spec.problem);
    const int jobs = gen.take_int("jobs", 20);
    const int machines = gen.take_int("machines", 5);
    // Taillard's LCG needs 0 < seed < 2^31 - 1: 0 is a fixed point
    // (every duration collapses to `low`) and larger values would
    // silently truncate, so reject instead of degrading.
    const std::uint64_t seed = gen.take_u64("seed", 1);
    if (seed == 0 || seed >= 0x7FFFFFFFull) {
      spec_error("flow-shop gen: seed must be in [1, 2^31 - 2], got " +
                 std::to_string(seed));
    }
    gen.finish();
    return sched::taillard_flow_shop(jobs, machines,
                                     static_cast<std::int32_t>(seed));
  }
  if (instance.ends_with(".fsp")) return sched::load_flow_shop(instance);
  for (const sched::TaillardBenchmark& bench : sched::taillard_20x5()) {
    if (instance == bench.name) return sched::make_taillard(bench);
  }
  spec_error("unknown flow-shop instance '" + instance +
             "' (expected *.fsp, ta001..ta010 or gen:jobs=..,machines=..,"
             "seed=..)");
}

sched::JobShopInstance job_instance(const ProblemSpec& spec) {
  const std::string& instance = require_instance(spec);
  if (is_gen(instance)) {
    GenParams gen(instance, spec.problem);
    const int jobs = gen.take_int("jobs", 10);
    const int machines = gen.take_int("machines", 6);
    const std::uint64_t seed = gen.take_u64("seed", 1);
    gen.finish();
    return sched::random_job_shop(jobs, machines, seed);
  }
  if (instance.ends_with(".jsp")) return sched::load_job_shop(instance);
  for (const sched::ClassicInstance* classic : sched::classic_instances()) {
    if (instance == classic->name) return classic->instance;
  }
  spec_error("unknown job-shop instance '" + instance +
             "' (expected *.jsp, ft06/ft10/ft20/la01 or gen:jobs=..,"
             "machines=..,seed=..)");
}

sched::OpenShopInstance open_instance(const ProblemSpec& spec) {
  const std::string& instance = require_instance(spec);
  if (!is_gen(instance)) {
    spec_error("open-shop instances are generated: expected gen:jobs=..,"
               "machines=..,seed=.. , got '" + instance + "'");
  }
  GenParams gen(instance, spec.problem);
  const int jobs = gen.take_int("jobs", 10);
  const int machines = gen.take_int("machines", 5);
  const std::uint64_t seed = gen.take_u64("seed", 1);
  const auto lo = static_cast<sched::Time>(gen.take_int("lo", 1));
  const auto hi = static_cast<sched::Time>(gen.take_int("hi", 99));
  gen.finish();
  return sched::random_open_shop(jobs, machines, seed, lo, hi);
}

sched::HybridFlowShopInstance hybrid_instance(const ProblemSpec& spec) {
  const std::string& instance = require_instance(spec);
  if (!is_gen(instance)) {
    spec_error("hybrid-flow-shop instances are generated: expected "
               "gen:jobs=..,stages=AxBxC,seed=.. , got '" + instance + "'");
  }
  GenParams gen(instance, spec.problem);
  sched::HfsParams params;
  params.jobs = gen.take_int("jobs", params.jobs);
  params.machines_per_stage =
      gen.take_stages("stages", params.machines_per_stage);
  params.lo = static_cast<sched::Time>(
      gen.take_int("lo", static_cast<int>(params.lo)));
  params.hi = static_cast<sched::Time>(
      gen.take_int("hi", static_cast<int>(params.hi)));
  params.unrelatedness = gen.take_double("unrelated", params.unrelatedness);
  params.setup_hi = static_cast<sched::Time>(
      gen.take_int("setup", static_cast<int>(params.setup_hi)));
  params.blocking = gen.take_flag("blocking", params.blocking);
  const std::uint64_t seed = gen.take_u64("seed", 1);
  gen.finish();
  return sched::random_hybrid_flow_shop(params, seed);
}

sched::FlexibleJobShopInstance flexible_instance(const ProblemSpec& spec) {
  const std::string& instance = require_instance(spec);
  if (!is_gen(instance)) {
    spec_error("flexible-job-shop instances are generated: expected "
               "gen:jobs=..,machines=..,ops=..,seed=.. , got '" + instance +
               "'");
  }
  GenParams gen(instance, spec.problem);
  sched::FjsParams params;
  params.jobs = gen.take_int("jobs", params.jobs);
  params.machines = gen.take_int("machines", params.machines);
  params.ops_per_job = gen.take_int("ops", params.ops_per_job);
  params.eligible_machines = gen.take_int("eligible", params.eligible_machines);
  params.lo = static_cast<sched::Time>(
      gen.take_int("lo", static_cast<int>(params.lo)));
  params.hi = static_cast<sched::Time>(
      gen.take_int("hi", static_cast<int>(params.hi)));
  params.setup_hi = static_cast<sched::Time>(
      gen.take_int("setup", static_cast<int>(params.setup_hi)));
  params.detached_setup = !gen.take_flag("attached", !params.detached_setup);
  params.machine_release_hi = static_cast<sched::Time>(gen.take_int(
      "release", static_cast<int>(params.machine_release_hi)));
  params.max_lag = static_cast<sched::Time>(
      gen.take_int("lag", static_cast<int>(params.max_lag)));
  const std::uint64_t seed = gen.take_u64("seed", 1);
  gen.finish();
  return sched::random_flexible_job_shop(params, seed);
}

sched::LotStreamingInstance lot_instance(const ProblemSpec& spec) {
  const std::string& instance = require_instance(spec);
  if (!is_gen(instance)) {
    spec_error("lot-streaming instances are generated: expected "
               "gen:jobs=..,stages=AxB,sublots=..,seed=.. , got '" + instance +
               "'");
  }
  GenParams gen(instance, spec.problem);
  sched::LotStreamParams params;
  params.jobs = gen.take_int("jobs", params.jobs);
  params.machines_per_stage =
      gen.take_stages("stages", params.machines_per_stage);
  params.sublots = gen.take_int("sublots", params.sublots);
  params.batch_lo = gen.take_int("batch-lo", params.batch_lo);
  params.batch_hi = gen.take_int("batch-hi", params.batch_hi);
  params.unit_lo = static_cast<sched::Time>(
      gen.take_int("unit-lo", static_cast<int>(params.unit_lo)));
  params.unit_hi = static_cast<sched::Time>(
      gen.take_int("unit-hi", static_cast<int>(params.unit_hi)));
  const std::uint64_t seed = gen.take_u64("seed", 1);
  gen.finish();
  return sched::random_lot_streaming(params, seed);
}

// --- factory field validation ------------------------------------------------

/// Which optional ProblemSpec fields a factory consumes; everything a
/// factory does not consume is rejected with a structured error instead
/// of silently ignored.
struct FieldUse {
  bool criterion = false;
  bool encoding = false;
  bool decoder = false;
  bool instance_seed = false;
  bool fuzz = false;       ///< spread/slack/ramp
  bool scenarios = false;  ///< spread/scenarios
  bool downtimes = false;
  bool weights = false;  ///< w-makespan/w-energy/w-peak
};

void reject_unused(const ProblemSpec& spec, const FieldUse& use) {
  auto reject = [&spec](bool set, bool used, const char* key) {
    if (set && !used) {
      spec_error("problem '" + spec.problem + "' does not accept " + key +
                 "=");
    }
  };
  reject(spec.criterion.has_value(), use.criterion, "criterion");
  reject(spec.encoding.has_value(), use.encoding, "encoding");
  reject(spec.decoder.has_value(), use.decoder, "decoder");
  reject(spec.instance_seed.has_value(), use.instance_seed, "instance-seed");
  reject(spec.spread.has_value(), use.fuzz || use.scenarios, "spread");
  reject(spec.slack.has_value(), use.fuzz, "slack");
  reject(spec.ramp.has_value(), use.fuzz, "ramp");
  reject(spec.scenarios.has_value(), use.scenarios, "scenarios");
  reject(spec.downtimes.has_value(), use.downtimes, "downtimes");
  reject(spec.w_makespan.has_value(), use.weights, "w-makespan");
  reject(spec.w_energy.has_value(), use.weights, "w-energy");
  reject(spec.w_peak.has_value(), use.weights, "w-peak");
}

sched::Criterion criterion_or_makespan(const ProblemSpec& spec) {
  return spec.criterion.value_or(sched::Criterion::kMakespan);
}

// --- built-in factories ------------------------------------------------------

ProblemPtr build_flowshop(const ProblemSpec& spec) {
  reject_unused(spec, {.criterion = true, .encoding = true});
  const std::string encoding = spec.encoding.value_or("permutation");
  if (encoding == "permutation") {
    return std::make_shared<FlowShopProblem>(flow_instance(spec),
                                             criterion_or_makespan(spec));
  }
  if (encoding == "random-key" || encoding == "random_key") {
    return std::make_shared<RandomKeyFlowShopProblem>(
        flow_instance(spec), criterion_or_makespan(spec));
  }
  spec_error("unknown flowshop encoding '" + encoding +
             "' (permutation | random-key)");
}

ProblemPtr build_jobshop(const ProblemSpec& spec) {
  reject_unused(spec, {.criterion = true, .encoding = true, .decoder = true});
  const std::string encoding = spec.encoding.value_or("operation");
  if (encoding == "rules") {
    if (spec.decoder) {
      spec_error("encoding=rules always decodes with Giffler-Thompson; "
                 "decoder= does not apply");
    }
    return std::make_shared<RuleSequenceJobShopProblem>(
        job_instance(spec), criterion_or_makespan(spec));
  }
  if (encoding != "operation") {
    spec_error("unknown jobshop encoding '" + encoding +
               "' (operation | rules)");
  }
  const std::string decoder = spec.decoder.value_or("semi-active");
  JobShopProblem::Decoder which;
  if (decoder == "semi-active") {
    which = JobShopProblem::Decoder::kOperationBased;
  } else if (decoder == "active" || decoder == "giffler-thompson") {
    which = JobShopProblem::Decoder::kGifflerThompson;
  } else {
    spec_error("unknown jobshop decoder '" + decoder +
               "' (semi-active | active)");
  }
  return std::make_shared<JobShopProblem>(job_instance(spec), which,
                                          criterion_or_makespan(spec));
}

ProblemPtr build_openshop(const ProblemSpec& spec) {
  reject_unused(spec, {.criterion = true, .decoder = true});
  const std::string decoder = spec.decoder.value_or("lpt-task");
  sched::OpenShopDecoder which;
  if (decoder == "lpt-task") {
    which = sched::OpenShopDecoder::kLptTask;
  } else if (decoder == "lpt-machine") {
    which = sched::OpenShopDecoder::kLptMachine;
  } else {
    spec_error("unknown openshop decoder '" + decoder +
               "' (lpt-task | lpt-machine)");
  }
  return std::make_shared<OpenShopProblem>(open_instance(spec), which,
                                           criterion_or_makespan(spec));
}

ProblemPtr build_hybrid_flowshop(const ProblemSpec& spec) {
  reject_unused(spec, {.criterion = true});
  return std::make_shared<HybridFlowShopProblem>(
      hybrid_instance(spec),
      sched::CompositeObjective{{{criterion_or_makespan(spec), 1.0}}});
}

ProblemPtr build_flexible_jobshop(const ProblemSpec& spec) {
  reject_unused(spec, {.criterion = true});
  return std::make_shared<FlexibleJobShopProblem>(flexible_instance(spec),
                                                  criterion_or_makespan(spec));
}

ProblemPtr build_lot_streaming(const ProblemSpec& spec) {
  reject_unused(spec, {});
  return std::make_shared<LotStreamingProblem>(lot_instance(spec));
}

ProblemPtr build_fuzzy_flowshop(const ProblemSpec& spec) {
  reject_unused(spec, {.fuzz = true});
  const sched::FlowShopInstance crisp = flow_instance(spec);
  return std::make_shared<FuzzyFlowShopProblem>(
      sched::fuzzify(crisp.proc, spec.spread.value_or(0.2),
                     spec.slack.value_or(1.6), spec.ramp.value_or(0.8)));
}

ProblemPtr build_stochastic_jobshop(const ProblemSpec& spec) {
  reject_unused(spec, {.instance_seed = true, .scenarios = true});
  auto shop = std::make_shared<sched::StochasticJobShop>(
      job_instance(spec), spec.spread.value_or(0.25),
      spec.scenarios.value_or(8), spec.instance_seed.value_or(1));
  return std::make_shared<StochasticJobShopProblem>(std::move(shop));
}

ProblemPtr build_energy_flowshop(const ProblemSpec& spec) {
  reject_unused(spec, {.instance_seed = true, .weights = true});
  sched::FlowShopInstance instance = flow_instance(spec);
  std::vector<sched::PowerProfile> profiles = sched::random_power_profiles(
      instance.machines, spec.instance_seed.value_or(1));
  sched::EnergyObjectiveWeights weights;
  weights.makespan = spec.w_makespan.value_or(weights.makespan);
  weights.energy = spec.w_energy.value_or(weights.energy);
  weights.peak_power = spec.w_peak.value_or(weights.peak_power);
  return std::make_shared<EnergyFlowShopProblem>(sched::EnergyAwareFlowShop(
      std::move(instance), std::move(profiles), weights));
}

ProblemPtr build_dynamic_jobshop(const ProblemSpec& spec) {
  reject_unused(spec, {.instance_seed = true, .downtimes = true});
  auto instance =
      std::make_shared<const sched::JobShopInstance>(job_instance(spec));
  // Fresh plan: nothing dispatched yet, the whole operation multiset is
  // up for re-ordering under the breakdown windows.
  std::vector<int> remaining;
  remaining.reserve(static_cast<std::size_t>(instance->total_ops()));
  for (int job = 0; job < instance->jobs; ++job) {
    for (int op = 0; op < instance->ops_of(job); ++op) remaining.push_back(job);
  }
  // Windows land within the average machine load — the horizon any
  // reasonable schedule occupies.
  sched::Time work = 0;
  for (const auto& route : instance->ops) {
    for (const sched::JsOperation& op : route) work += op.duration;
  }
  const sched::Time horizon =
      std::max<sched::Time>(1, work / std::max(1, instance->machines));
  const int count = spec.downtimes.value_or(2);
  std::vector<sched::Downtime> windows = sched::random_downtimes(
      instance->machines, count, horizon,
      std::max<sched::Time>(1, horizon / 10),
      std::max<sched::Time>(1, horizon / 4),
      spec.instance_seed.value_or(1));
  return std::make_shared<DynamicSuffixProblem>(
      std::move(instance), std::vector<int>{}, std::move(remaining),
      std::move(windows));
}

// --- registry ----------------------------------------------------------------

struct ProblemEntry {
  ProblemFactory factory;
  std::string description;
};

std::map<std::string, ProblemEntry>& registry() {
  static std::map<std::string, ProblemEntry> problems = [] {
    std::map<std::string, ProblemEntry> map;
    map["flowshop"] = {build_flowshop,
                       "permutation flow shop; criterion=, "
                       "encoding=permutation|random-key"};
    map["jobshop"] = {build_jobshop,
                      "job shop; decoder=semi-active|active, "
                      "encoding=operation|rules, criterion="};
    map["openshop"] = {build_openshop,
                       "open shop; decoder=lpt-task|lpt-machine, criterion="};
    map["hybrid-flowshop"] = {build_hybrid_flowshop,
                              "hybrid flow shop (parallel machines per "
                              "stage, gen:stages=AxBxC); criterion="};
    map["flexible-jobshop"] = {build_flexible_jobshop,
                               "flexible job shop (assignment + sequencing "
                               "chromosomes); criterion="};
    map["lot-streaming"] = {build_lot_streaming,
                            "lot-streaming flexible flow shop (sublot "
                            "splits + sequencing, gen:sublots=)"};
    map["fuzzy-flowshop"] = {build_fuzzy_flowshop,
                             "fuzzy flow shop (agreement index; fuzzified "
                             "crisp instance, spread=/slack=/ramp=)"};
    map["stochastic-jobshop"] = {build_stochastic_jobshop,
                                 "stochastic job shop (expected makespan; "
                                 "spread=/scenarios=/instance-seed=)"};
    map["energy-flowshop"] = {build_energy_flowshop,
                              "energy-aware flow shop (w-makespan=/"
                              "w-energy=/w-peak=, instance-seed= profiles)"};
    map["dynamic-jobshop"] = {build_dynamic_jobshop,
                              "job shop under breakdown windows "
                              "(downtimes=/instance-seed=), suffix "
                              "re-optimization"};
    return map;
  }();
  return problems;
}

std::mutex& registry_mutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

void register_problem(const std::string& name, ProblemFactory factory,
                      std::string description) {
  std::lock_guard lock(registry_mutex());
  registry()[name] = {std::move(factory), std::move(description)};
}

std::vector<std::string> problem_names() {
  std::lock_guard lock(registry_mutex());
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, entry] : registry()) names.push_back(name);
  return names;
}

std::vector<RegistryEntry> problem_catalog() {
  std::lock_guard lock(registry_mutex());
  std::vector<RegistryEntry> catalog;
  catalog.reserve(registry().size());
  for (const auto& [name, entry] : registry()) {
    catalog.push_back({name, entry.description});
  }
  return catalog;
}

ProblemPtr ProblemSpec::build() const {
  ProblemFactory factory;
  {
    std::lock_guard lock(registry_mutex());
    const auto it = registry().find(problem);
    if (it == registry().end()) {
      std::string known;
      for (const auto& [name, entry] : registry()) {
        if (!known.empty()) known += ", ";
        known += name;
      }
      throw std::invalid_argument(
          "ProblemSpec: unknown problem '" + problem + "' (registered: " +
          known + ") [problem spec: " + to_string() + "]");
    }
    factory = it->second.factory;
  }
  try {
    ProblemPtr built = factory(*this);
    if (built == nullptr) {
      throw std::invalid_argument("ProblemSpec: factory for '" + problem +
                                  "' returned null");
    }
    return built;
  } catch (const std::exception& e) {
    // Every failure names the canonical spec, so fail-soft callers (the
    // sweep runner's cell errors) pinpoint which expansion failed.
    throw std::invalid_argument(std::string(e.what()) + " [problem spec: " +
                                to_string() + "]");
  }
}

// --- typed escape hatches ----------------------------------------------------

std::shared_ptr<const FlowShopProblem> make_problem(
    sched::FlowShopInstance inst, sched::Criterion criterion) {
  return std::make_shared<FlowShopProblem>(std::move(inst), criterion);
}

std::shared_ptr<const RandomKeyFlowShopProblem> make_random_key_problem(
    sched::FlowShopInstance inst, sched::Criterion criterion) {
  return std::make_shared<RandomKeyFlowShopProblem>(std::move(inst),
                                                    criterion);
}

std::shared_ptr<const JobShopProblem> make_problem(
    sched::JobShopInstance inst, JobShopProblem::Decoder decoder,
    sched::Criterion criterion) {
  return std::make_shared<JobShopProblem>(std::move(inst), decoder, criterion);
}

sched::JobShopInstance resolve_job_shop_instance(const std::string& instance) {
  ProblemSpec spec;
  spec.problem = "jobshop";
  spec.instance = instance;
  return job_instance(spec);
}

std::shared_ptr<const RuleSequenceJobShopProblem> make_rule_sequence_problem(
    sched::JobShopInstance inst, sched::Criterion criterion) {
  return std::make_shared<RuleSequenceJobShopProblem>(std::move(inst),
                                                      criterion);
}

std::shared_ptr<const OpenShopProblem> make_problem(
    sched::OpenShopInstance inst, sched::OpenShopDecoder decoder,
    sched::Criterion criterion) {
  return std::make_shared<OpenShopProblem>(std::move(inst), decoder,
                                           criterion);
}

std::shared_ptr<const HybridFlowShopProblem> make_problem(
    sched::HybridFlowShopInstance inst, sched::CompositeObjective objective) {
  return std::make_shared<HybridFlowShopProblem>(std::move(inst),
                                                 std::move(objective));
}

std::shared_ptr<const FlexibleJobShopProblem> make_problem(
    sched::FlexibleJobShopInstance inst, sched::Criterion criterion) {
  return std::make_shared<FlexibleJobShopProblem>(std::move(inst), criterion);
}

std::shared_ptr<const LotStreamingProblem> make_problem(
    sched::LotStreamingInstance inst) {
  return std::make_shared<LotStreamingProblem>(std::move(inst));
}

std::shared_ptr<const FuzzyFlowShopProblem> make_problem(
    sched::FuzzyFlowShopInstance inst) {
  return std::make_shared<FuzzyFlowShopProblem>(std::move(inst));
}

std::shared_ptr<const StochasticJobShopProblem> make_problem(
    std::shared_ptr<const sched::StochasticJobShop> shop) {
  return std::make_shared<StochasticJobShopProblem>(std::move(shop));
}

std::shared_ptr<const EnergyFlowShopProblem> make_problem(
    sched::EnergyAwareFlowShop shop) {
  return std::make_shared<EnergyFlowShopProblem>(std::move(shop));
}

std::shared_ptr<const DynamicSuffixProblem> make_dynamic_suffix_problem(
    const sched::JobShopInstance* inst, std::vector<int> frozen_prefix,
    std::vector<int> remaining, std::vector<sched::Downtime> downtimes) {
  return std::make_shared<DynamicSuffixProblem>(inst, std::move(frozen_prefix),
                                                std::move(remaining),
                                                std::move(downtimes));
}

}  // namespace psga::ga
