#include "src/ga/registry.h"

#include <stdexcept>

namespace psga::ga {

SelectionPtr make_selection(const std::string& name) {
  if (name == "roulette") return std::make_shared<RouletteSelection>();
  if (name == "sus") return std::make_shared<StochasticUniversalSelection>();
  if (name == "rank") return std::make_shared<RankSelection>();
  if (name == "elitist-roulette") {
    return std::make_shared<ElitistRouletteSelection>();
  }
  if (name.rfind("tournament", 0) == 0) {
    const std::string arg = name.substr(10);
    const int k = arg.empty() ? 2 : std::stoi(arg);
    return std::make_shared<TournamentSelection>(k);
  }
  throw std::invalid_argument("unknown selection: " + name);
}

CrossoverPtr make_crossover(const std::string& name) {
  if (name == "one-point") return std::make_shared<OnePointOrderCrossover>();
  if (name == "two-point") return std::make_shared<TwoPointOrderCrossover>();
  if (name == "pmx") return std::make_shared<PmxCrossover>();
  if (name == "ox") return std::make_shared<OxCrossover>();
  if (name == "cycle") return std::make_shared<CycleCrossover>();
  if (name == "position-based") return std::make_shared<PositionBasedCrossover>();
  if (name == "jox") return std::make_shared<JoxCrossover>();
  if (name == "ppx") return std::make_shared<PpxCrossover>();
  if (name == "thx") return std::make_shared<ThxCrossover>();
  if (name == "uniform-keys") return std::make_shared<UniformKeyCrossover>();
  if (name == "arithmetic-keys") {
    return std::make_shared<ArithmeticKeyCrossover>();
  }
  throw std::invalid_argument("unknown crossover: " + name);
}

MutationPtr make_mutation(const std::string& name) {
  if (name == "swap") return std::make_shared<SwapMutation>();
  if (name == "shift") return std::make_shared<ShiftMutation>();
  if (name == "inversion") return std::make_shared<InversionMutation>();
  if (name == "scramble") return std::make_shared<ScrambleMutation>();
  if (name == "assign") return std::make_shared<AssignMutation>();
  if (name == "key-creep") return std::make_shared<KeyCreepMutation>();
  if (name == "key-reset") return std::make_shared<KeyResetMutation>();
  throw std::invalid_argument("unknown mutation: " + name);
}

std::vector<std::string> crossover_names(SeqKind kind) {
  switch (kind) {
    case SeqKind::kPermutation:
      return {"one-point", "two-point", "pmx",           "ox",
              "cycle",     "jox",       "position-based", "ppx",
              "thx"};
    case SeqKind::kJobRepetition:
      return {"one-point", "two-point", "jox", "ppx", "thx"};
    case SeqKind::kNone:
      return {"uniform-keys", "arithmetic-keys"};
  }
  return {};
}

std::vector<std::string> sequence_mutation_names() {
  return {"swap", "shift", "inversion", "scramble"};
}

}  // namespace psga::ga
