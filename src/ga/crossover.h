// Crossover operators.
//
// Permutation operators: n-point with order repair, PMX, OX (linear
// order), CX (cycle), position-based, order-based — the classic set the
// survey lists, used by [18] (cycle), [26] (operation-based variants),
// [28] (cycle), [32] (linear order).
// Permutation-with-repetition operators: JOX, PPX and THX-lite (the
// time-horizon exchange of Lin et al. [21] reduced to its one-point
// multiset form) — all validity-preserving on job-repetition sequences.
// Key-channel operators: parameterized uniform ([24]) and arithmetic
// ([25]).
// Search-intensive operators: MSXF (multi-step crossover fusion,
// Bożejko & Wodecki [30]) and path relinking (Spanos et al. [29]); both
// consult the Problem to walk toward the second parent.
//
// Every operator recombines the auxiliary channels (assignment via uniform
// mix, keys via whole-arithmetic blend) so flexible-shop genomes stay
// complete regardless of which sequencing crossover is configured.
#pragma once

#include <memory>
#include <string>

#include "src/ga/genome.h"
#include "src/ga/problem.h"
#include "src/par/rng.h"

namespace psga::ga {

class Crossover {
 public:
  virtual ~Crossover() = default;

  virtual std::string name() const = 0;

  /// True if the operator keeps genomes of this sequencing kind valid.
  virtual bool supports(SeqKind kind) const = 0;

  /// Produces two children from two parents.
  void cross(const Genome& a, const Genome& b, const GenomeTraits& traits,
             Genome& child1, Genome& child2, par::Rng& rng) const;

 protected:
  /// Sequencing-channel recombination; children arrive as copies of the
  /// parents (child1 = a, child2 = b) and implementations rewrite seq.
  virtual void cross_seq(const Genome& a, const Genome& b,
                         const GenomeTraits& traits, Genome& child1,
                         Genome& child2, par::Rng& rng) const = 0;
};

using CrossoverPtr = std::shared_ptr<const Crossover>;

// --- permutation operators -------------------------------------------------

class OnePointOrderCrossover final : public Crossover {
 public:
  std::string name() const override { return "one-point"; }
  bool supports(SeqKind kind) const override;

 protected:
  void cross_seq(const Genome&, const Genome&, const GenomeTraits&, Genome&,
                 Genome&, par::Rng&) const override;
};

class TwoPointOrderCrossover final : public Crossover {
 public:
  std::string name() const override { return "two-point"; }
  bool supports(SeqKind kind) const override;

 protected:
  void cross_seq(const Genome&, const Genome&, const GenomeTraits&, Genome&,
                 Genome&, par::Rng&) const override;
};

class PmxCrossover final : public Crossover {
 public:
  std::string name() const override { return "pmx"; }
  bool supports(SeqKind kind) const override {
    return kind == SeqKind::kPermutation;
  }

 protected:
  void cross_seq(const Genome&, const Genome&, const GenomeTraits&, Genome&,
                 Genome&, par::Rng&) const override;
};

class OxCrossover final : public Crossover {
 public:
  std::string name() const override { return "ox"; }
  bool supports(SeqKind kind) const override {
    return kind == SeqKind::kPermutation;
  }

 protected:
  void cross_seq(const Genome&, const Genome&, const GenomeTraits&, Genome&,
                 Genome&, par::Rng&) const override;
};

class CycleCrossover final : public Crossover {
 public:
  std::string name() const override { return "cycle"; }
  bool supports(SeqKind kind) const override {
    return kind == SeqKind::kPermutation;
  }

 protected:
  void cross_seq(const Genome&, const Genome&, const GenomeTraits&, Genome&,
                 Genome&, par::Rng&) const override;
};

class PositionBasedCrossover final : public Crossover {
 public:
  std::string name() const override { return "position-based"; }
  bool supports(SeqKind kind) const override {
    return kind == SeqKind::kPermutation;
  }

 protected:
  void cross_seq(const Genome&, const Genome&, const GenomeTraits&, Genome&,
                 Genome&, par::Rng&) const override;
};

// --- permutation-with-repetition operators ----------------------------------

class JoxCrossover final : public Crossover {
 public:
  std::string name() const override { return "jox"; }
  bool supports(SeqKind kind) const override;

 protected:
  void cross_seq(const Genome&, const Genome&, const GenomeTraits&, Genome&,
                 Genome&, par::Rng&) const override;
};

class PpxCrossover final : public Crossover {
 public:
  std::string name() const override { return "ppx"; }
  bool supports(SeqKind kind) const override;

 protected:
  void cross_seq(const Genome&, const Genome&, const GenomeTraits&, Genome&,
                 Genome&, par::Rng&) const override;
};

class ThxCrossover final : public Crossover {
 public:
  std::string name() const override { return "thx"; }
  bool supports(SeqKind kind) const override;

 protected:
  void cross_seq(const Genome&, const Genome&, const GenomeTraits&, Genome&,
                 Genome&, par::Rng&) const override;
};

// --- key-channel operators ----------------------------------------------------

/// Parameterized uniform crossover on the keys channel (Bean's biased
/// coin; Huang et al. [24]). Sequencing channel is copied through.
class UniformKeyCrossover final : public Crossover {
 public:
  explicit UniformKeyCrossover(double bias = 0.7) : bias_(bias) {}
  std::string name() const override { return "uniform-keys"; }
  bool supports(SeqKind kind) const override { return kind == SeqKind::kNone; }

 protected:
  void cross_seq(const Genome&, const Genome&, const GenomeTraits&, Genome&,
                 Genome&, par::Rng&) const override;

 private:
  double bias_;
};

/// Arithmetic crossover on keys (Zajicek & Šucha [25]).
class ArithmeticKeyCrossover final : public Crossover {
 public:
  std::string name() const override { return "arithmetic-keys"; }
  bool supports(SeqKind kind) const override { return kind == SeqKind::kNone; }

 protected:
  void cross_seq(const Genome&, const Genome&, const GenomeTraits&, Genome&,
                 Genome&, par::Rng&) const override;
};

// --- search-intensive operators -------------------------------------------

/// Multi-Step Crossover Fusion ([30]): walk from parent A toward parent B
/// by swap moves that reduce distance, keeping the best objective seen.
class MsxfCrossover final : public Crossover {
 public:
  MsxfCrossover(ProblemPtr problem, int steps = 16)
      : problem_(std::move(problem)), steps_(steps) {}
  std::string name() const override { return "msxf"; }
  bool supports(SeqKind kind) const override {
    return kind == SeqKind::kPermutation || kind == SeqKind::kJobRepetition;
  }

 protected:
  void cross_seq(const Genome&, const Genome&, const GenomeTraits&, Genome&,
                 Genome&, par::Rng&) const override;

 private:
  ProblemPtr problem_;
  int steps_;
};

/// Path relinking ([29]): evaluate every intermediate on the swap path
/// from A to B at a sampling stride; child = best intermediate.
class PathRelinkCrossover final : public Crossover {
 public:
  PathRelinkCrossover(ProblemPtr problem, int samples = 8)
      : problem_(std::move(problem)), samples_(samples) {}
  std::string name() const override { return "path-relink"; }
  bool supports(SeqKind kind) const override {
    return kind == SeqKind::kPermutation || kind == SeqKind::kJobRepetition;
  }

 protected:
  void cross_seq(const Genome&, const Genome&, const GenomeTraits&, Genome&,
                 Genome&, par::Rng&) const override;

 private:
  ProblemPtr problem_;
  int samples_;
};

}  // namespace psga::ga
