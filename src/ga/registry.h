// String-keyed operator factories, so benches and examples can sweep
// operator sets by name (e.g. Bożejko's four-crossovers strategy grid).
#pragma once

#include <string>
#include <vector>

#include "src/ga/crossover.h"
#include "src/ga/mutation.h"
#include "src/ga/selection.h"

namespace psga::ga {

/// Creates a selection by name: "roulette", "sus", "tournament<k>",
/// "rank", "elitist-roulette". Throws std::invalid_argument on unknown.
SelectionPtr make_selection(const std::string& name);

/// Creates a crossover by name: "one-point", "two-point", "pmx", "ox",
/// "cycle", "position-based", "jox", "ppx", "thx", "uniform-keys",
/// "arithmetic-keys". (MSXF / path-relink need a Problem and are
/// constructed directly.) Throws std::invalid_argument on unknown.
CrossoverPtr make_crossover(const std::string& name);

/// Creates a mutation by name: "swap", "shift", "inversion", "scramble",
/// "assign", "key-creep", "key-reset". Throws on unknown.
MutationPtr make_mutation(const std::string& name);

/// Names usable with make_crossover for a given sequencing kind.
std::vector<std::string> crossover_names(SeqKind kind);

/// Names usable with make_mutation on sequencing chromosomes.
std::vector<std::string> sequence_mutation_names();

}  // namespace psga::ga
