#include "src/ga/master_slave_ga.h"

namespace psga::ga {

MasterSlaveGa::MasterSlaveGa(ProblemPtr problem, GaConfig config,
                             par::ThreadPool* pool)
    : problem_(std::move(problem)),
      config_(std::move(config)),
      pool_(pool != nullptr ? pool : &par::default_pool()) {
  if (config_.eval_backend == EvalBackend::kSerial) {
    config_.eval_backend = EvalBackend::kThreadPool;
  }
  obs::ensure_registry(config_.metrics);
  attach_obs(config_.metrics, config_.tracer);
}

void MasterSlaveGa::init() {
  inner_.emplace(problem_, config_, pool_);
  inner_->init();
}

void MasterSlaveGa::step() { inner_->step(); }

}  // namespace psga::ga
