#include "src/ga/master_slave_ga.h"

#include <limits>

#include "src/par/omp_backend.h"

namespace psga::ga {

MasterSlaveGa::MasterSlaveGa(ProblemPtr problem, GaConfig config,
                             par::ThreadPool* pool, Backend backend)
    : problem_(std::move(problem)),
      config_(std::move(config)),
      pool_(pool != nullptr ? pool : &par::default_pool()),
      backend_(backend) {}

SimpleGa MasterSlaveGa::make_engine(const GaConfig& config) const {
  SimpleGa engine(problem_, config);
  if (backend_ == Backend::kOpenMp) {
    engine.set_evaluator([](const Problem& p, std::span<const Genome> genomes,
                            std::span<double> objectives) {
      par::omp_parallel_for(genomes.size(), [&](std::size_t i) {
        objectives[i] = p.objective(genomes[i]);
      });
    });
    return engine;
  }
  par::ThreadPool* workers = pool_;
  engine.set_evaluator([workers](const Problem& p,
                                 std::span<const Genome> genomes,
                                 std::span<double> objectives) {
    workers->parallel_for(genomes.size(), [&](std::size_t i) {
      objectives[i] = p.objective(genomes[i]);
    });
  });
  return engine;
}

GaResult MasterSlaveGa::run() {
  SimpleGa engine = make_engine(config_);
  return engine.run();
}

GaResult MasterSlaveGa::run_time_budget(double seconds) {
  GaConfig patched = config_;
  patched.termination.max_generations = std::numeric_limits<int>::max();
  patched.termination.max_seconds = seconds;
  patched.termination.target_objective = -1.0;
  patched.termination.stagnation_generations = 0;
  SimpleGa engine = make_engine(patched);
  return engine.run();
}

}  // namespace psga::ga
