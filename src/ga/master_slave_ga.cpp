#include "src/ga/master_slave_ga.h"

#include <limits>

namespace psga::ga {

MasterSlaveGa::MasterSlaveGa(ProblemPtr problem, GaConfig config,
                             par::ThreadPool* pool)
    : problem_(std::move(problem)),
      config_(std::move(config)),
      pool_(pool != nullptr ? pool : &par::default_pool()) {
  if (config_.eval_backend == EvalBackend::kSerial) {
    config_.eval_backend = EvalBackend::kThreadPool;
  }
}

SimpleGa MasterSlaveGa::make_engine(const GaConfig& config) const {
  return SimpleGa(problem_, config, pool_);
}

GaResult MasterSlaveGa::run() {
  SimpleGa engine = make_engine(config_);
  return engine.run();
}

GaResult MasterSlaveGa::run_time_budget(double seconds) {
  GaConfig patched = config_;
  patched.termination.max_generations = std::numeric_limits<int>::max();
  patched.termination.max_seconds = seconds;
  patched.termination.target_objective = -1.0;
  patched.termination.stagnation_generations = 0;
  SimpleGa engine = make_engine(patched);
  return engine.run();
}

}  // namespace psga::ga
