// Universal stop condition shared by every engine and the Solver facade.
//
// Any satisfied condition terminates a run. This is the survey's whole
// budget vocabulary in one struct: generation counts (the usual GA
// budget), wall-clock budgets (the fixed-time CPU-vs-GPU comparisons of
// AitZai et al. [14]), explored-solutions budgets (fitness evaluations),
// target objectives (stop at a known optimum) and stagnation windows.
#pragma once

#include <limits>

namespace psga::ga {

struct StopCondition {
  int max_generations = 100;
  double max_seconds = 0.0;        ///< 0 = no wall-clock limit
  double target_objective = -1.0;  ///< stop when best <= target (if >= 0)
  int stagnation_generations = 0;  ///< 0 = disabled
  long long max_evaluations = 0;   ///< 0 = no evaluation budget

  bool operator==(const StopCondition&) const = default;

  /// Plain generation budget.
  static StopCondition generations(int n) {
    StopCondition stop;
    stop.max_generations = n;
    return stop;
  }

  /// Fixed wall-clock budget ([14]): run until `seconds` elapse,
  /// whatever the generation count.
  static StopCondition time_budget(double seconds) {
    StopCondition stop;
    stop.max_generations = std::numeric_limits<int>::max();
    stop.max_seconds = seconds;
    return stop;
  }

  /// Explored-solutions budget: stop once `n` fitness evaluations have
  /// been spent.
  static StopCondition evaluation_budget(long long n) {
    StopCondition stop;
    stop.max_generations = std::numeric_limits<int>::max();
    stop.max_evaluations = n;
    return stop;
  }

  /// Stop as soon as the best objective reaches `objective` (or after
  /// `max_generations` as a backstop).
  static StopCondition target(double objective,
                              int generation_backstop =
                                  std::numeric_limits<int>::max()) {
    StopCondition stop;
    stop.max_generations = generation_backstop;
    stop.target_objective = objective;
    return stop;
  }
};

/// Historical name, kept so GaConfig-based code reads naturally; the
/// config's termination IS the engine's default StopCondition.
using Termination = StopCondition;

}  // namespace psga::ga
