// The Problem interface binds a shop-scheduling instance + decoder +
// optimality criterion to the GA engines. Objectives are MINIMIZED; the
// engines convert them to fitness with one of the survey's transforms
// (objectives.h, Eq. 1/2).
//
// Evaluation is batched: engines hand whole populations to
// psga::ga::Evaluator, which calls objective_batch() once per worker lane
// with a lane-private Workspace. Heavy decoders keep their schedule
// scratch (matrices, frontier vectors, the decoded Schedule itself) inside
// the Workspace so it is allocated once per run instead of once per
// genome.
#pragma once

#include <memory>
#include <span>

#include "src/ga/genome.h"
#include "src/par/rng.h"

namespace psga::ga {

/// Reusable per-worker evaluation scratch. Problems with allocation-heavy
/// decoders subclass this; the base class is an empty tag for stateless
/// objectives. A Workspace is owned by exactly one evaluator lane and is
/// never shared across threads.
class Workspace {
 public:
  virtual ~Workspace() = default;
};

class Problem {
 public:
  virtual ~Problem() = default;

  /// Structural description of valid genomes (operators rely on it).
  virtual const GenomeTraits& traits() const = 0;

  /// Uniformly random valid genome.
  virtual Genome random_genome(par::Rng& rng) const = 0;

  /// Objective value to minimize. Must be pure (no RNG, no observable
  /// state): the evaluator runs batches concurrently and the engines
  /// promise identical results for any thread count.
  virtual double objective(const Genome& genome) const = 0;

  /// Fresh evaluation scratch for one worker lane. The default is the
  /// stateless tag; problems with reusable decode buffers override it.
  virtual std::unique_ptr<Workspace> make_workspace() const {
    return std::make_unique<Workspace>();
  }

  /// Objective with reusable scratch. `workspace` is always one obtained
  /// from this problem's make_workspace(). The default ignores it.
  virtual double objective(const Genome& genome, Workspace& workspace) const {
    (void)workspace;
    return objective(genome);
  }

  /// Batch entry point: fills objectives[i] = objective(genomes[i]) using
  /// one shared Workspace for the whole chunk. The default loop is correct
  /// for every problem; override only to exploit cross-genome structure.
  virtual void objective_batch(std::span<const Genome> genomes,
                               std::span<double> objectives,
                               Workspace& workspace) const {
    for (std::size_t i = 0; i < genomes.size(); ++i) {
      objectives[i] = objective(genomes[i], workspace);
    }
  }
};

using ProblemPtr = std::shared_ptr<const Problem>;

}  // namespace psga::ga
