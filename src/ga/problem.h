// The Problem interface binds a shop-scheduling instance + decoder +
// optimality criterion to the GA engines. Objectives are MINIMIZED; the
// engines convert them to fitness with one of the survey's transforms
// (objectives.h, Eq. 1/2).
#pragma once

#include <memory>

#include "src/ga/genome.h"
#include "src/par/rng.h"

namespace psga::ga {

class Problem {
 public:
  virtual ~Problem() = default;

  /// Structural description of valid genomes (operators rely on it).
  virtual const GenomeTraits& traits() const = 0;

  /// Uniformly random valid genome.
  virtual Genome random_genome(par::Rng& rng) const = 0;

  /// Objective value to minimize. Must be pure (no RNG, no state): the
  /// master-slave engine evaluates concurrently and the engines promise
  /// identical results for any thread count.
  virtual double objective(const Genome& genome) const = 0;
};

using ProblemPtr = std::shared_ptr<const Problem>;

}  // namespace psga::ga
