// The simple (serial) GA — Table II of the survey:
//   initialize(); while (!done) { Selection(); Crossover(); Mutation();
//   FitnessValueEvaluation(); }
//
// The class also exposes a stepwise API (init / step / population access)
// so the island engine can drive one SimpleGa per island, and an
// evaluator hook so the master-slave engine can farm evaluation out to
// the thread pool while provably keeping the evolutionary trace identical
// (evaluation is the only hooked stage and objectives are pure).
#pragma once

#include <functional>
#include <span>

#include "src/ga/config.h"
#include "src/ga/problem.h"
#include "src/ga/result.h"
#include "src/par/rng.h"

namespace psga::ga {

class SimpleGa {
 public:
  /// Batch evaluator: fills objectives[i] = problem.objective(genomes[i]).
  using Evaluator = std::function<void(
      const Problem&, std::span<const Genome>, std::span<double>)>;

  SimpleGa(ProblemPtr problem, GaConfig config);

  /// Replaces the serial evaluation stage (master-slave model).
  void set_evaluator(Evaluator evaluator);

  /// Full run honoring config.termination.
  GaResult run();

  // --- stepwise API (used by the island engine) ---------------------------
  void init();
  void step();  ///< one generation: selection, crossover, mutation, evaluation
  int generation() const { return generation_; }
  double best_objective() const { return best_objective_; }
  const Genome& best() const { return best_; }
  long long evaluations() const { return evaluations_; }
  const std::vector<Genome>& population() const { return population_; }
  const std::vector<double>& objectives() const { return objectives_; }
  const GenomeTraits& traits() const { return problem_->traits(); }
  const GaConfig& config() const { return config_; }

  /// Injects an individual, replacing index `slot` (migration support);
  /// `objective` must be the genome's objective value.
  void replace_individual(int slot, const Genome& genome, double objective);

  /// Index of the best / worst individual of the current population.
  int best_index() const;
  int worst_index() const;

  /// Grows the population with foreign individuals (island merging, [29]).
  void absorb(std::span<const Genome> genomes, std::span<const double> objectives);

  /// Stagnation measure of Spanos et al. [29]: fraction of individuals
  /// whose Hamming distance to the best is below `threshold`.
  double stagnation_fraction(int threshold) const;

  /// Current mutation rate (honors the variable-probability schedule).
  double current_mutation_rate() const;

 private:
  void evaluate_all();
  std::vector<double> fitness_values() const;

  ProblemPtr problem_;
  GaConfig config_;
  par::Rng rng_;
  Evaluator evaluator_;

  std::vector<Genome> population_;
  std::vector<double> objectives_;
  Genome best_;
  double best_objective_ = 0.0;
  bool has_best_ = false;
  int generation_ = 0;
  long long evaluations_ = 0;
};

}  // namespace psga::ga
