// The simple GA — Table II of the survey:
//   initialize(); while (!done) { Selection(); Crossover(); Mutation();
//   FitnessValueEvaluation(); }
//
// Implements the unified psga::ga::Engine interface; the island engine
// drives one SimpleGa per island through the same stepwise API. All
// fitness evaluation goes through a psga::ga::Evaluator whose backend
// comes from GaConfig::eval_backend; since objectives are pure and
// chunking is deterministic, the evolutionary trace is identical for
// every backend and thread count (the master-slave invariance of
// Table III).
#pragma once

#include <span>

#include "src/ga/config.h"
#include "src/ga/engine.h"
#include "src/ga/evaluator.h"
#include "src/ga/problem.h"
#include "src/ga/result.h"
#include "src/par/rng.h"

namespace psga::ga {

class SimpleGa : public Engine {
 public:
  /// `pool` may be null — the library default pool is used when the
  /// config selects the thread-pool backend.
  SimpleGa(ProblemPtr problem, GaConfig config,
           par::ThreadPool* pool = nullptr);

  // --- Engine interface ---------------------------------------------------
  void init() override;
  void step() override;  ///< one generation: selection, crossover, mutation, evaluation
  int generation() const override { return generation_; }
  double best_objective() const override { return best_objective_; }
  const Genome& best() const override { return best_; }
  /// Fitness evaluations since the last init() (counted by the Evaluator,
  /// the engine's single evaluation path).
  long long evaluations() const override {
    return evaluator_.evaluations() - evaluations_baseline_;
  }
  int population_size() const override {
    return static_cast<int>(population_.size());
  }
  const Genome& individual(int i) const override {
    return population_[static_cast<std::size_t>(i)];
  }
  double objective_of(int i) const override {
    return objectives_[static_cast<std::size_t>(i)];
  }
  EvalCachePtr eval_cache_shared() const override {
    return evaluator_.cache_ptr();
  }
  StopCondition stop_default() const override { return config_.termination; }
  bool seed_population(std::vector<Genome> genomes) override {
    config_.initial_population = std::move(genomes);
    return true;
  }

  /// Genomes actually decoded (cache misses); == evaluations() without a
  /// cache. Telemetry for benches and the cache tests.
  long long decode_calls() const { return evaluator_.decode_calls(); }

  /// The engine's evaluation path — the memetic engine routes its
  /// local-search climbs through it so they share the cache, the async
  /// fence and the evaluation count.
  Evaluator& evaluator() { return evaluator_; }

  const std::vector<Genome>& population() const { return population_; }
  const std::vector<double>& objectives() const { return objectives_; }
  const GenomeTraits& traits() const { return problem_->traits(); }
  const GaConfig& config() const { return config_; }

  /// Injects an individual, replacing index `slot` (migration support);
  /// `objective` must be the genome's objective value.
  void replace_individual(int slot, const Genome& genome, double objective);

  /// Index of the best / worst individual of the current population.
  int best_index() const;
  int worst_index() const;

  /// Grows the population with foreign individuals (island merging, [29]).
  void absorb(std::span<const Genome> genomes, std::span<const double> objectives);

  /// Stagnation measure of Spanos et al. [29]: fraction of individuals
  /// whose Hamming distance to the best is below `threshold`.
  double stagnation_fraction(int threshold) const;

  /// Current mutation rate (honors the variable-probability schedule).
  double current_mutation_rate() const;

  using Engine::run;

 protected:
  void prepare_run(const StopCondition& stop) override {
    config_.termination = stop;
  }

 private:
  void evaluate_all();
  void scan_population_best();
  std::vector<double> fitness_values() const;

  ProblemPtr problem_;
  GaConfig config_;
  par::Rng rng_;
  Evaluator evaluator_;

  std::vector<Genome> population_;
  std::vector<double> objectives_;
  /// Double buffers for the next generation: with the async pipeline the
  /// tail of generation g+1 is still being bred while its head is being
  /// evaluated, so both buffers must be stable until the generation
  /// fence — only then do they swap with population_/objectives_.
  std::vector<Genome> next_population_;
  std::vector<double> next_objectives_;
  Genome spare_child_;  ///< discarded second child of the last odd pair
  Genome best_;
  double best_objective_ = 0.0;
  bool has_best_ = false;
  int generation_ = 0;
  long long evaluations_baseline_ = 0;
};

}  // namespace psga::ga
