// Hybrid parallel GA models (Lin et al. [21]):
//   Model A — an island GA whose subpopulations are cellular (torus) GAs;
//             ring migration between islands, much less frequent than the
//             intra-torus diffusion.
//   Model B — an island GA whose islands are connected in a fine-grained
//             style topology (a torus with many small islands); covered by
//             IslandGa with Topology::kTorus, re-exported here as a
//             convenience constructor.
#pragma once

#include "src/ga/cellular_ga.h"
#include "src/ga/island_ga.h"

namespace psga::ga {

struct IslandsOfCellularConfig {
  int islands = 4;
  CellularConfig cell;       ///< per-island torus configuration
  int migration_interval = 20;
  int migrants = 1;
  std::uint64_t seed = 1;
  Termination termination;   ///< outer loop (generations = torus steps)
};

/// Model A: island-of-torus.
class IslandsOfCellularGa {
 public:
  IslandsOfCellularGa(ProblemPtr problem, IslandsOfCellularConfig config,
                      par::ThreadPool* pool = nullptr);
  GaResult run();

 private:
  ProblemPtr problem_;
  IslandsOfCellularConfig config_;
  par::ThreadPool* pool_;
};

/// Model B: a many-small-islands GA on a torus topology.
IslandGaConfig make_torus_island_config(int islands, GaConfig base,
                                        int migration_interval = 5);

}  // namespace psga::ga
