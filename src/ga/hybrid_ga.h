// Hybrid parallel GA models (Lin et al. [21]):
//   Model A — an island GA whose subpopulations are cellular (torus) GAs;
//             ring migration between islands, much less frequent than the
//             intra-torus diffusion.
//   Model B — an island GA whose islands are connected in a fine-grained
//             style topology (a torus with many small islands); covered by
//             IslandGa with Topology::kTorus, re-exported here as a
//             convenience constructor.
#pragma once

#include <vector>

#include "src/ga/cellular_ga.h"
#include "src/ga/engine.h"
#include "src/ga/island_ga.h"

namespace psga::ga {

struct IslandsOfCellularConfig {
  int islands = 4;
  CellularConfig cell;       ///< per-island torus configuration
  int migration_interval = 20;
  int migrants = 1;
  std::uint64_t seed = 1;
  Termination termination;   ///< outer loop (generations = torus steps)
};

/// Model A: island-of-torus.
class IslandsOfCellularGa : public Engine {
 public:
  IslandsOfCellularGa(ProblemPtr problem, IslandsOfCellularConfig config,
                      par::ThreadPool* pool = nullptr);

  void init() override;
  /// One torus step on every island (each internally parallel over
  /// cells), then ring migration when due.
  void step() override;
  int generation() const override { return generation_; }
  double best_objective() const override;
  const Genome& best() const override;
  long long evaluations() const override;
  /// Flat view over the islands' cell grids, island-major.
  int population_size() const override;
  const Genome& individual(int i) const override;
  double objective_of(int i) const override;
  /// One cache shared by every torus island (null when caching is off).
  EvalCachePtr eval_cache_shared() const override { return cache_; }
  StopCondition stop_default() const override { return config_.termination; }

  using Engine::run;

 protected:
  void prepare_run(const StopCondition& stop) override {
    config_.termination = stop;
  }
  void fill_sections(RunResult& result) const override;

 private:
  ProblemPtr problem_;
  IslandsOfCellularConfig config_;
  par::ThreadPool* pool_;

  // Run state (rebuilt by init()).
  std::vector<CellularGa> islands_;
  EvalCachePtr cache_;  ///< shared by all islands' evaluators
  obs::Counter* migrants_ = nullptr;  ///< engine.migrants (delivered)
  par::Rng migration_rng_;
  int generation_ = 0;
};

/// Model B: a many-small-islands GA on a torus topology.
IslandGaConfig make_torus_island_config(int islands, GaConfig base,
                                        int migration_interval = 5);

}  // namespace psga::ga
