#include "src/ga/crossover.h"

#include <algorithm>
#include <numeric>
#include <span>

namespace psga::ga {

namespace {

/// Fills `child` positions listed in `holes` with the multiset
/// `remaining` taken in `donor` order. `remaining` holds per-value counts.
void fill_in_donor_order(std::span<const int> donor, std::vector<int>& remaining,
                         const std::vector<std::size_t>& holes,
                         std::vector<int>& child) {
  std::size_t hole = 0;
  for (int v : donor) {
    if (hole >= holes.size()) break;
    auto& left = remaining[static_cast<std::size_t>(v)];
    if (left > 0) {
      --left;
      child[holes[hole++]] = v;
    }
  }
}

int max_value(const GenomeTraits& traits) {
  return traits.seq_kind == SeqKind::kJobRepetition
             ? traits.job_count()
             : traits.seq_length;
}

/// Per-value counts of the full chromosome multiset.
std::vector<int> full_multiset(const GenomeTraits& traits) {
  if (traits.seq_kind == SeqKind::kJobRepetition) return traits.repeats;
  return std::vector<int>(static_cast<std::size_t>(traits.seq_length), 1);
}

/// One-point "order" crossover on a multiset chromosome: child = parent's
/// prefix [0, cut) + the remaining multiset in donor order.
void one_point_multiset(const std::vector<int>& keep,
                        const std::vector<int>& donor,
                        const GenomeTraits& traits, std::size_t cut,
                        std::vector<int>& child) {
  child.assign(keep.begin(), keep.end());
  std::vector<int> remaining = full_multiset(traits);
  for (std::size_t i = 0; i < cut; ++i) {
    --remaining[static_cast<std::size_t>(keep[i])];
  }
  std::vector<std::size_t> holes;
  holes.reserve(keep.size() - cut);
  for (std::size_t i = cut; i < keep.size(); ++i) holes.push_back(i);
  fill_in_donor_order(donor, remaining, holes, child);
}

}  // namespace

void Crossover::cross(const Genome& a, const Genome& b,
                      const GenomeTraits& traits, Genome& child1,
                      Genome& child2, par::Rng& rng) const {
  child1 = a;
  child2 = b;
  // Auxiliary channels first (sequencing operators may overwrite them).
  if (!traits.assign_domain.empty()) {
    for (std::size_t i = 0; i < child1.assign.size(); ++i) {
      if (rng.chance(0.5)) std::swap(child1.assign[i], child2.assign[i]);
    }
  }
  if (traits.key_length > 0 && supports(traits.seq_kind) &&
      traits.seq_kind != SeqKind::kNone) {
    // Whole-arithmetic blend keeps keys in range for mixed-channel genomes
    // (e.g. lot streaming: permutation + split keys).
    const double alpha = rng.uniform();
    for (std::size_t i = 0; i < child1.keys.size(); ++i) {
      const double ka = a.keys[i];
      const double kb = b.keys[i];
      child1.keys[i] = alpha * ka + (1.0 - alpha) * kb;
      child2.keys[i] = alpha * kb + (1.0 - alpha) * ka;
    }
  }
  cross_seq(a, b, traits, child1, child2, rng);
}

// --- OnePointOrderCrossover ---------------------------------------------------

bool OnePointOrderCrossover::supports(SeqKind kind) const {
  return kind == SeqKind::kPermutation || kind == SeqKind::kJobRepetition;
}

void OnePointOrderCrossover::cross_seq(const Genome& a, const Genome& b,
                                       const GenomeTraits& traits,
                                       Genome& child1, Genome& child2,
                                       par::Rng& rng) const {
  const std::size_t n = a.seq.size();
  if (n < 2) return;
  const std::size_t cut = 1 + rng.below(n - 1);
  one_point_multiset(a.seq, b.seq, traits, cut, child1.seq);
  one_point_multiset(b.seq, a.seq, traits, cut, child2.seq);
}

// --- TwoPointOrderCrossover ---------------------------------------------------

bool TwoPointOrderCrossover::supports(SeqKind kind) const {
  return kind == SeqKind::kPermutation || kind == SeqKind::kJobRepetition;
}

void TwoPointOrderCrossover::cross_seq(const Genome& a, const Genome& b,
                                       const GenomeTraits& traits,
                                       Genome& child1, Genome& child2,
                                       par::Rng& rng) const {
  const std::size_t n = a.seq.size();
  if (n < 2) return;
  std::size_t lo = rng.below(n);
  std::size_t hi = rng.below(n);
  if (lo > hi) std::swap(lo, hi);
  if (lo == hi) return;  // degenerate window: children stay parent copies

  auto build = [&](const std::vector<int>& keep, const std::vector<int>& donor,
                   std::vector<int>& child) {
    child.assign(keep.begin(), keep.end());
    std::vector<int> remaining = full_multiset(traits);
    for (std::size_t i = 0; i < n; ++i) {
      if (i < lo || i >= hi) --remaining[static_cast<std::size_t>(keep[i])];
    }
    std::vector<std::size_t> holes;
    for (std::size_t i = lo; i < hi; ++i) holes.push_back(i);
    fill_in_donor_order(donor, remaining, holes, child);
  };
  build(a.seq, b.seq, child1.seq);
  build(b.seq, a.seq, child2.seq);
}

// --- PmxCrossover ---------------------------------------------------------

void PmxCrossover::cross_seq(const Genome& a, const Genome& b,
                             const GenomeTraits& traits, Genome& child1,
                             Genome& child2, par::Rng& rng) const {
  const std::size_t n = a.seq.size();
  if (n < 2) return;
  std::size_t lo = rng.below(n);
  std::size_t hi = rng.below(n);
  if (lo > hi) std::swap(lo, hi);
  ++hi;  // window [lo, hi)

  auto build = [&](const std::vector<int>& base, const std::vector<int>& window_src,
                   std::vector<int>& child) {
    child.assign(base.begin(), base.end());
    std::vector<int> mapped_to(static_cast<std::size_t>(traits.seq_length), -1);
    std::vector<bool> in_window(static_cast<std::size_t>(traits.seq_length), false);
    for (std::size_t i = lo; i < hi; ++i) {
      child[i] = window_src[i];
      in_window[static_cast<std::size_t>(window_src[i])] = true;
      mapped_to[static_cast<std::size_t>(window_src[i])] = base[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (i >= lo && i < hi) continue;
      int v = base[i];
      while (in_window[static_cast<std::size_t>(v)]) {
        v = mapped_to[static_cast<std::size_t>(v)];
      }
      child[i] = v;
    }
  };
  build(a.seq, b.seq, child1.seq);
  build(b.seq, a.seq, child2.seq);
}

// --- OxCrossover ---------------------------------------------------------

void OxCrossover::cross_seq(const Genome& a, const Genome& b,
                            const GenomeTraits& /*traits*/, Genome& child1,
                            Genome& child2, par::Rng& rng) const {
  const std::size_t n = a.seq.size();
  if (n < 2) return;
  std::size_t lo = rng.below(n);
  std::size_t hi = rng.below(n);
  if (lo > hi) std::swap(lo, hi);
  ++hi;  // window [lo, hi)

  auto build = [&](const std::vector<int>& keep, const std::vector<int>& donor,
                   std::vector<int>& child) {
    child.assign(keep.size(), -1);
    std::vector<bool> used(n, false);
    for (std::size_t i = lo; i < hi; ++i) {
      child[i] = keep[i];
      used[static_cast<std::size_t>(keep[i])] = true;
    }
    // Fill from donor starting after the window, wrapping around.
    std::size_t write = hi % n;
    for (std::size_t step = 0; step < n; ++step) {
      const int v = donor[(hi + step) % n];
      if (used[static_cast<std::size_t>(v)]) continue;
      child[write] = v;
      used[static_cast<std::size_t>(v)] = true;
      write = (write + 1) % n;
      if (write == lo) break;
    }
  };
  build(a.seq, b.seq, child1.seq);
  build(b.seq, a.seq, child2.seq);
}

// --- CycleCrossover ---------------------------------------------------------

void CycleCrossover::cross_seq(const Genome& a, const Genome& b,
                               const GenomeTraits& /*traits*/, Genome& child1,
                               Genome& child2, par::Rng& /*rng*/) const {
  const std::size_t n = a.seq.size();
  if (n < 2) return;
  std::vector<int> pos_in_a(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos_in_a[static_cast<std::size_t>(a.seq[i])] = static_cast<int>(i);
  }
  std::vector<int> cycle_of(n, -1);
  int cycles = 0;
  for (std::size_t start = 0; start < n; ++start) {
    if (cycle_of[start] >= 0) continue;
    std::size_t i = start;
    while (cycle_of[i] < 0) {
      cycle_of[i] = cycles;
      i = static_cast<std::size_t>(pos_in_a[static_cast<std::size_t>(b.seq[i])]);
    }
    ++cycles;
  }
  child1.seq.resize(n);
  child2.seq.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool even = (cycle_of[i] % 2) == 0;
    child1.seq[i] = even ? a.seq[i] : b.seq[i];
    child2.seq[i] = even ? b.seq[i] : a.seq[i];
  }
}

// --- PositionBasedCrossover -------------------------------------------------

void PositionBasedCrossover::cross_seq(const Genome& a, const Genome& b,
                                       const GenomeTraits& /*traits*/,
                                       Genome& child1, Genome& child2,
                                       par::Rng& rng) const {
  const std::size_t n = a.seq.size();
  if (n < 2) return;
  std::vector<bool> keep(n);
  for (std::size_t i = 0; i < n; ++i) keep[i] = rng.chance(0.5);

  auto build = [&](const std::vector<int>& base, const std::vector<int>& donor,
                   std::vector<int>& child) {
    child.assign(base.size(), -1);
    std::vector<bool> used(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      if (keep[i]) {
        child[i] = base[i];
        used[static_cast<std::size_t>(base[i])] = true;
      }
    }
    std::size_t write = 0;
    for (int v : donor) {
      if (used[static_cast<std::size_t>(v)]) continue;
      while (write < n && child[write] >= 0) ++write;
      if (write >= n) break;
      child[write] = v;
    }
  };
  build(a.seq, b.seq, child1.seq);
  build(b.seq, a.seq, child2.seq);
}

// --- JoxCrossover ---------------------------------------------------------

bool JoxCrossover::supports(SeqKind kind) const {
  return kind == SeqKind::kPermutation || kind == SeqKind::kJobRepetition;
}

void JoxCrossover::cross_seq(const Genome& a, const Genome& b,
                             const GenomeTraits& traits, Genome& child1,
                             Genome& child2, par::Rng& rng) const {
  const std::size_t n = a.seq.size();
  if (n < 2) return;
  const int values = max_value(traits);
  std::vector<bool> chosen(static_cast<std::size_t>(values));
  for (auto&& flag : chosen) flag = rng.chance(0.5);

  auto build = [&](const std::vector<int>& keep, const std::vector<int>& donor,
                   std::vector<int>& child) {
    child.assign(keep.size(), -1);
    std::vector<std::size_t> holes;
    for (std::size_t i = 0; i < n; ++i) {
      if (chosen[static_cast<std::size_t>(keep[i])]) {
        child[i] = keep[i];
      } else {
        holes.push_back(i);
      }
    }
    std::size_t hole = 0;
    for (int v : donor) {
      if (chosen[static_cast<std::size_t>(v)]) continue;
      child[holes[hole++]] = v;
      if (hole >= holes.size()) break;
    }
  };
  build(a.seq, b.seq, child1.seq);
  build(b.seq, a.seq, child2.seq);
}

// --- PpxCrossover ---------------------------------------------------------

bool PpxCrossover::supports(SeqKind kind) const {
  return kind == SeqKind::kPermutation || kind == SeqKind::kJobRepetition;
}

void PpxCrossover::cross_seq(const Genome& a, const Genome& b,
                             const GenomeTraits& traits, Genome& child1,
                             Genome& child2, par::Rng& rng) const {
  const std::size_t n = a.seq.size();
  if (n < 2) return;
  const int values = max_value(traits);
  std::vector<bool> mask(n);
  for (auto&& bit : mask) bit = rng.chance(0.5);

  // occ[i] = 1-based occurrence index of parent[i]'s value within the
  // parent, so "already emitted" can be checked in O(1) while cursors only
  // move forward.
  auto occurrence_index = [&](const std::vector<int>& parent) {
    std::vector<int> occ(n);
    std::vector<int> count(static_cast<std::size_t>(values), 0);
    for (std::size_t i = 0; i < n; ++i) {
      occ[i] = ++count[static_cast<std::size_t>(parent[i])];
    }
    return occ;
  };
  const std::vector<int> occ_a = occurrence_index(a.seq);
  const std::vector<int> occ_b = occurrence_index(b.seq);

  auto build = [&](bool flip, std::vector<int>& child) {
    child.clear();
    child.reserve(n);
    std::vector<int> consumed(static_cast<std::size_t>(values), 0);
    std::size_t pa = 0;
    std::size_t pb = 0;
    auto take_next = [&](const std::vector<int>& parent,
                         const std::vector<int>& occ, std::size_t& cursor) {
      while (cursor < n &&
             occ[cursor] <= consumed[static_cast<std::size_t>(parent[cursor])]) {
        ++cursor;
      }
      return cursor < n ? parent[cursor] : -1;
    };
    for (std::size_t i = 0; i < n; ++i) {
      const bool from_first = flip ? !mask[i] : mask[i];
      int v = from_first ? take_next(a.seq, occ_a, pa)
                         : take_next(b.seq, occ_b, pb);
      if (v < 0) {
        v = from_first ? take_next(b.seq, occ_b, pb)
                       : take_next(a.seq, occ_a, pa);
      }
      child.push_back(v);
      ++consumed[static_cast<std::size_t>(v)];
    }
  };
  build(/*flip=*/false, child1.seq);
  build(/*flip=*/true, child2.seq);
}

// --- ThxCrossover ---------------------------------------------------------

bool ThxCrossover::supports(SeqKind kind) const {
  return kind == SeqKind::kPermutation || kind == SeqKind::kJobRepetition;
}

void ThxCrossover::cross_seq(const Genome& a, const Genome& b,
                             const GenomeTraits& traits, Genome& child1,
                             Genome& child2, par::Rng& rng) const {
  const std::size_t n = a.seq.size();
  if (n < 3) return;
  // "Time horizon": a cut in the middle third of the chromosome — the
  // prefix approximates the early part of the schedule.
  const std::size_t third = n / 3;
  const std::size_t cut = third + rng.below(std::max<std::size_t>(third, 1));
  one_point_multiset(a.seq, b.seq, traits, cut, child1.seq);
  one_point_multiset(b.seq, a.seq, traits, cut, child2.seq);
}

// --- UniformKeyCrossover -------------------------------------------------------

void UniformKeyCrossover::cross_seq(const Genome& a, const Genome& b,
                                    const GenomeTraits& /*traits*/,
                                    Genome& child1, Genome& child2,
                                    par::Rng& rng) const {
  for (std::size_t i = 0; i < child1.keys.size(); ++i) {
    const bool from_a = rng.chance(bias_);
    child1.keys[i] = from_a ? a.keys[i] : b.keys[i];
    child2.keys[i] = from_a ? b.keys[i] : a.keys[i];
  }
}

// --- ArithmeticKeyCrossover -------------------------------------------------

void ArithmeticKeyCrossover::cross_seq(const Genome& a, const Genome& b,
                                       const GenomeTraits& /*traits*/,
                                       Genome& child1, Genome& child2,
                                       par::Rng& rng) const {
  const double alpha = rng.uniform();
  for (std::size_t i = 0; i < child1.keys.size(); ++i) {
    child1.keys[i] = alpha * a.keys[i] + (1.0 - alpha) * b.keys[i];
    child2.keys[i] = alpha * b.keys[i] + (1.0 - alpha) * a.keys[i];
  }
}

// --- MsxfCrossover ---------------------------------------------------------

namespace {

/// One guided walk from `from` toward `to` by distance-reducing swaps,
/// keeping the best objective seen. Shared by MSXF and path relinking.
void guided_walk(const Problem& problem, const Genome& from, const Genome& to,
                 int max_steps, int eval_stride, Genome& out, par::Rng& rng) {
  Genome current = from;
  out = from;
  double best_obj = problem.objective(from);
  int step = 0;
  const std::size_t n = current.seq.size();
  while (step < max_steps) {
    // Differing positions.
    std::vector<std::size_t> diff;
    for (std::size_t i = 0; i < n; ++i) {
      if (current.seq[i] != to.seq[i]) diff.push_back(i);
    }
    if (diff.empty()) break;
    const std::size_t i = diff[rng.below(diff.size())];
    // Swap in the value to.seq[i] from a later differing position that
    // holds it (guaranteed to exist: multisets are equal).
    std::size_t j = i;
    for (std::size_t cand : diff) {
      if (cand != i && current.seq[cand] == to.seq[i]) {
        j = cand;
        break;
      }
    }
    if (j == i) break;  // defensive: should not happen for equal multisets
    std::swap(current.seq[i], current.seq[j]);
    ++step;
    if (step % eval_stride == 0 || step == max_steps) {
      const double obj = problem.objective(current);
      if (obj < best_obj) {
        best_obj = obj;
        out = current;
      }
    }
  }
}

}  // namespace

void MsxfCrossover::cross_seq(const Genome& a, const Genome& b,
                              const GenomeTraits& /*traits*/, Genome& child1,
                              Genome& child2, par::Rng& rng) const {
  guided_walk(*problem_, a, b, steps_, /*eval_stride=*/1, child1, rng);
  guided_walk(*problem_, b, a, steps_, /*eval_stride=*/1, child2, rng);
}

// --- PathRelinkCrossover -----------------------------------------------------

void PathRelinkCrossover::cross_seq(const Genome& a, const Genome& b,
                                    const GenomeTraits& /*traits*/,
                                    Genome& child1, Genome& child2,
                                    par::Rng& rng) const {
  const int distance = hamming_distance(a, b);
  const int stride = std::max(1, distance / std::max(1, samples_));
  guided_walk(*problem_, a, b, distance, stride, child1, rng);
  guided_walk(*problem_, b, a, distance, stride, child2, rng);
}

}  // namespace psga::ga
