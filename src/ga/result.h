// Run records returned by every engine.
//
// One RunResult type covers all seven engine families: the common core
// (best genome, convergence curve, budgets) plus optional typed sections
// for engine-specific extras — per-island data for the island-structured
// engines (island, cluster, hybrid, quantum) and measurement/collapse
// statistics for the quantum engine. A section is engaged only when the
// engine that produced the result populates it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/ga/eval_cache.h"
#include "src/ga/genome.h"
#include "src/obs/metrics.h"

namespace psga::ga {

/// Per-island extras of the island-structured engines (island GA, cluster
/// island GA, islands-of-cellular, quantum). For the cluster engine the
/// "islands" are MPI-style ranks.
struct IslandSection {
  /// Final best objective per island.
  std::vector<double> best;
  /// Final best genome per island (the Pareto candidates in [38]). Empty
  /// for engines that only track objectives per island.
  std::vector<Genome> best_genome;
  /// Per-island best-so-far convergence curves, one inner vector per
  /// island (empty when the engine does not record them).
  std::vector<std::vector<double>> history;
  /// Islands still alive at the end of the run; smaller than best.size()
  /// when stagnation-triggered merging ([29]) is enabled.
  int surviving = 0;
};

/// A population checkpoint (genomes + objectives, sorted best-first).
/// Produced by Engine::population_snapshot(); consumed by
/// Engine::seed_population() — the warm-start seam that lets the session
/// layer (and sweep chaining) carry a population from one run into the
/// next. Engaged by callers that need it, not by Engine::run itself:
/// copying every population would tax the common one-shot run.
struct PopulationSection {
  std::vector<Genome> genomes;
  std::vector<double> objectives;  ///< parallel to genomes
};

/// Measurement/collapse statistics of the quantum-inspired engine [28].
struct QuantumSection {
  /// Exploration noise level at the final measurement (annealed).
  double final_noise = 0.0;
  /// Mean |θ - π/4| over all qubits at the end of the run: 0 = full
  /// superposition everywhere, π/4 = fully collapsed angles.
  double mean_collapse = 0.0;
};

struct RunResult {
  Genome best;
  double best_objective = 0.0;
  /// Canonical ProblemSpec string of the problem this run solved, for
  /// provenance in telemetry ("" when the problem was constructed
  /// programmatically rather than through a spec).
  std::string problem;
  /// Best-so-far objective after each generation (convergence curve).
  std::vector<double> history;
  long long evaluations = 0;  ///< fitness evaluations ("explored solutions")
  int generations = 0;
  double seconds = 0.0;

  /// Engine-specific sections (engaged by the engines that produce them).
  std::optional<IslandSection> islands;
  std::optional<QuantumSection> quantum;
  /// Final-population checkpoint for warm-start chaining. Engaged by
  /// callers that ask for it (Engine::population_snapshot() after a
  /// run — the session layer does this every replan), never by
  /// Engine::run itself.
  std::optional<PopulationSection> population;
  /// Evaluation-cache counters accrued by THIS run (a delta, not the
  /// cache's lifetime totals — a shared or reused cache reports clean
  /// per-run numbers). hits + misses == evaluations for the cached
  /// evaluation paths. Always engaged: all-zero when no cache is
  /// configured, so telemetry consumers never special-case the field.
  std::optional<EvalCacheStats> cache;
  /// Per-run observability snapshot (decode timing, batch sizes,
  /// generation latency, cache counters — see docs/observability.md for
  /// the catalog). A delta against the registry's pre-run state, so
  /// shared registries report clean per-run numbers.
  std::optional<obs::MetricsSnapshot> metrics;
};

/// Historical name from when every engine had its own result struct.
using GaResult = RunResult;

}  // namespace psga::ga
