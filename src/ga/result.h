// Run records returned by every engine.
#pragma once

#include <vector>

#include "src/ga/genome.h"

namespace psga::ga {

struct GaResult {
  Genome best;
  double best_objective = 0.0;
  /// Best-so-far objective after each generation (convergence curve).
  std::vector<double> history;
  long long evaluations = 0;  ///< fitness evaluations ("explored solutions")
  int generations = 0;
  double seconds = 0.0;
};

}  // namespace psga::ga
