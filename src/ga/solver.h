// The unified solver facade: declarative run specs, a string-keyed
// engine registry, and one entry point for every parallel GA model.
//
//   auto problem = std::make_shared<FlowShopProblem>(instance);
//   Solver solver = Solver::build(
//       SolverSpec::parse("engine=island topology=ring islands=8 xover=ox"),
//       problem);
//   RunResult r = solver.run(StopCondition::generations(200));
//
// SolverSpec mirrors make_crossover/make_mutation/make_selection in
// src/ga/registry.h one level up: engines are named, operators are named,
// and a whole experiment row (bench sweeps, scenario grids) is one short
// string. Fields are optional so an unset key keeps the engine's own
// default (e.g. the cellular engine's thread-pool evaluation backend).
//
// Spec-string cookbook (see docs/architecture.md for the full list):
//   engine=simple pop=100 seed=7 xover=ox mut=swap sel=tournament4
//   engine=master-slave pop=200 eval=omp
//   engine=cellular width=16 height=16 neighborhood=moore radius=2
//   engine=island islands=8 topology=hypercube policy=best-random interval=5
//   engine=islands-of-cellular islands=4 width=8 height=8 interval=20
//   engine=quantum islands=4 pop=20
//   engine=memetic pop=60 interval=5 refine=2 budget=150
//   engine=cluster ranks=6 interval=5 broadcast=25
//   engine=island eval_backend=async_pool eval_cache=lru:65536
//   engine=island eval=async_pool eval_cache=lru:65536 eval_batch=16
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/ga/cellular_ga.h"
#include "src/ga/engine.h"
#include "src/ga/hybrid_ga.h"
#include "src/ga/island_cluster.h"
#include "src/ga/island_ga.h"
#include "src/ga/master_slave_ga.h"
#include "src/ga/memetic.h"
#include "src/ga/problem_registry.h"
#include "src/ga/problem_spec.h"
#include "src/ga/quantum_ga.h"
#include "src/ga/simple_ga.h"

namespace psga::ga {

/// Declarative engine configuration parsed from "key=value ..." strings.
/// Unset fields keep the target engine's defaults.
struct SolverSpec {
  std::string engine = "simple";

  // Shared GA knobs.
  std::optional<int> population;       ///< pop= (per island for island engines)
  std::optional<int> elites;           ///< elites=
  std::optional<std::uint64_t> seed;   ///< seed=
  /// eval= (alias eval_backend=): serial|pool|omp|async_pool
  std::optional<EvalBackend> eval;
  /// eval_cache=off|unbounded|lru:<capacity> — both cached modes accept
  /// an optional trailing :<shards> (e.g. lru:65536:16)
  std::optional<EvalCacheConfig> eval_cache;
  /// eval_batch=auto|<N> — objective_batch chunk size on every backend
  /// (auto = 0 = the evaluator's lane-width-friendly default). Purely a
  /// throughput knob: it never changes any objective or trace.
  std::optional<int> eval_batch;
  std::optional<std::string> selection;  ///< sel= (make_selection names)
  std::optional<std::string> crossover;  ///< xover= (make_crossover names)
  std::optional<std::string> mutation;   ///< mut= (make_mutation names)
  std::optional<double> crossover_rate;  ///< xover-rate=
  std::optional<double> mutation_rate;   ///< mut-rate=
  std::optional<double> immigration;     ///< immigration= ([24]'s c%)
  std::optional<FitnessTransform> transform;  ///< transform=inverse|reference
  std::optional<double> reference;       ///< reference= (Fbar for Eq. (1))

  // Island-structured engines.
  std::optional<int> islands;            ///< islands=
  std::optional<Topology> topology;      ///< topology=ring|grid|torus|full|star|hypercube|random
  std::optional<MigrationPolicy> policy; ///< policy=best-worst|best-random|random-random
  std::optional<int> interval;  ///< interval= (migration / LS wave / GN period)
  std::optional<int> migrants;  ///< migrants= per edge per epoch
  std::optional<int> delay;     ///< delay= epochs (async migration model)

  // Cellular engines.
  std::optional<int> width;
  std::optional<int> height;
  std::optional<Neighborhood> neighborhood;  ///< neighborhood=von-neumann|moore
  std::optional<int> radius;

  // Memetic engine.
  std::optional<int> refine;  ///< refine= individuals per LS wave
  std::optional<int> budget;  ///< budget= objective evaluations per climb

  // Cluster engine.
  std::optional<int> ranks;      ///< ranks=
  std::optional<int> broadcast;  ///< broadcast= (LN period; 0 = off)

  /// trace=on|off — opt-in stage tracing: the built engine gets a
  /// psga::obs::Tracer and records begin/end spans (breed, decode,
  /// submit, fence, migration, ...) retrievable via
  /// Engine::tracer_shared() and exportable as Chrome trace JSON
  /// (psga_sweep --trace). Purely observational: traces never change a
  /// RunResult. Metrics need no token — they are always on.
  std::optional<bool> trace;

  /// Runtime-only: a pre-built cache shared across solver builds (the
  /// session layer's cross-replan memoization seam). Never parsed or
  /// printed — parse()/to_string() ignore it, and the defaulted
  /// operator== compares the pointer (all spec-string paths leave it
  /// null, so canonical round-trips are unaffected). When set, the built
  /// engine layers its configured eval_cache over this shared store.
  EvalCachePtr shared_cache;
  /// Runtime-only twin of shared_cache: cache-key namespace for the built
  /// engine (GaConfig::cache_salt). 0 = none.
  std::uint64_t cache_salt = 0;

  /// Parses a whitespace-separated "key=value ..." spec. Throws
  /// std::invalid_argument naming the offending token for unknown keys,
  /// malformed tokens, and unknown enum values.
  static SolverSpec parse(const std::string& text);

  /// Canonical spec string: parse(to_string()) reproduces this spec
  /// exactly (the round-trip the facade tests pin down). Unset fields are
  /// omitted; aliases and enum values render in canonical form.
  std::string to_string() const;

  bool operator==(const SolverSpec&) const = default;
};

/// A whole run in one string: the problem half (ProblemSpec keys) and
/// the engine half (SolverSpec keys) of a combined token stream.
///
///   Solver solver = Solver::build(RunSpec::parse(
///       "problem=flowshop instance=ta001 engine=island islands=4"));
///
/// Sweep cells are RunSpecs too: SweepSpec base/axis tokens may mix
/// problem and engine keys freely, so one sweep can span problem
/// families.
struct RunSpec {
  ProblemSpec problem;
  SolverSpec solver;

  /// Routes each "key=value" token to the owning spec language and
  /// parses both halves (either parser's structured errors propagate).
  static RunSpec parse(const std::string& text);

  /// Canonical form: problem tokens then solver tokens;
  /// parse(to_string()) reproduces this spec exactly.
  std::string to_string() const;

  bool operator==(const RunSpec&) const = default;
};

/// The facade: builds any registered engine from a spec and runs it.
class Solver {
 public:
  /// Looks the spec's engine up in the registry and configures it for
  /// `problem`. Throws std::invalid_argument for unknown engine names
  /// (the message lists the registered ones).
  static Solver build(const SolverSpec& spec, ProblemPtr problem,
                      par::ThreadPool* pool = nullptr);

  /// Builds problem and engine from a combined spec: the problem comes
  /// from the problem registry (spec.problem.build()), the engine from
  /// the engine registry. The run's RunResult records the canonical
  /// problem spec for provenance.
  static Solver build(const RunSpec& spec, par::ThreadPool* pool = nullptr);

  RunResult run(const StopCondition& stop) { return stamp(engine_->run(stop)); }
  RunResult run() { return stamp(engine_->run()); }

  /// Observer hooks for telemetry / early stopping / checkpoints.
  void set_observer(RunObserver* observer) { engine_->set_observer(observer); }

  Engine& engine() { return *engine_; }
  const Engine& engine() const { return *engine_; }

  /// The spec this solver was built from (empty default spec when the
  /// solver was constructed directly from an engine). Closes the
  /// spec → Solver → spec round-trip: spec() compares equal to the spec
  /// passed to build().
  const SolverSpec& spec() const { return spec_; }

  /// The canonical problem spec when built from a RunSpec ("" for
  /// problem pointers handed in directly).
  const std::string& problem_spec() const { return problem_spec_; }

  explicit Solver(EnginePtr engine, SolverSpec spec = {},
                  std::string problem_spec = {})
      : engine_(std::move(engine)),
        spec_(std::move(spec)),
        problem_spec_(std::move(problem_spec)) {}

 private:
  RunResult stamp(RunResult result) const {
    if (!problem_spec_.empty()) result.problem = problem_spec_;
    return result;
  }

  EnginePtr engine_;
  SolverSpec spec_;
  std::string problem_spec_;
};

// --- engine registry ---------------------------------------------------------

/// Factory signature: build an engine for `problem` from `spec`.
using EngineFactory =
    std::function<EnginePtr(ProblemPtr, const SolverSpec&, par::ThreadPool*)>;

/// Registers (or replaces) an engine factory under `name` with a
/// one-line description; the built-in engines are pre-registered. Lets
/// downstream code plug new models into SolverSpec strings without
/// touching this file.
void register_engine(const std::string& name, EngineFactory factory,
                     std::string description = {});

/// Sorted names currently registered (the legal `engine=` values).
std::vector<std::string> engine_names();

/// Sorted (name, description) rows of the engine registry — the engine
/// twin of problem_catalog() (psga_sweep --list-engines prints these).
std::vector<RegistryEntry> engine_catalog();

// --- typed escape hatches ----------------------------------------------------
// For configurations beyond what spec strings express (heterogeneous
// per-island operators, composite objectives, merge schedules), build the
// typed config and get the same Engine interface back. These are the only
// supported way to obtain an engine outside Solver::build.

EnginePtr make_engine(ProblemPtr problem, GaConfig config,
                      par::ThreadPool* pool = nullptr);  ///< simple GA
EnginePtr make_master_slave_engine(ProblemPtr problem, GaConfig config,
                                   par::ThreadPool* pool = nullptr);
EnginePtr make_engine(ProblemPtr problem, CellularConfig config,
                      par::ThreadPool* pool = nullptr);
EnginePtr make_engine(ProblemPtr problem, IslandGaConfig config,
                      par::ThreadPool* pool = nullptr);
EnginePtr make_engine(ProblemPtr problem, IslandsOfCellularConfig config,
                      par::ThreadPool* pool = nullptr);
EnginePtr make_engine(ProblemPtr problem, QuantumGaConfig config,
                      par::ThreadPool* pool = nullptr);
EnginePtr make_engine(ProblemPtr problem, MemeticConfig config);
EnginePtr make_engine(ProblemPtr problem, ClusterIslandConfig config);

}  // namespace psga::ga
