// Declarative problem construction — the problem-side twin of SolverSpec:
// one string names the shop model, the optimality criterion, the
// chromosome encoding/decoder and the instance source, and the registry
// (problem_registry.h) turns it into a ProblemPtr.
//
//   ProblemPtr p = ProblemSpec::parse(
//       "problem=flowshop criterion=total-flow instance=ta001").build();
//
// The `instance=` token unifies every instance source behind one value:
//
//   data/ta001.fsp            file path, format by extension (sched::io)
//   ta001 .. ta010            published Taillard 20x5 benchmarks,
//                             regenerated from the embedded generator
//   ft06 ft10 ft20 la01       embedded classic job-shop instances
//   gen:jobs=50,machines=10,seed=7
//                             seeded synthetic instance over
//                             sched::generators — deterministic in the
//                             embedded seed, so a gen: token is as
//                             reproducible as a file
//
// gen: keys by family (unknown keys throw, naming the family):
//   flow shop      jobs, machines, seed
//   job shop       jobs, machines, seed
//   open shop      jobs, machines, seed, lo, hi
//   hybrid flow    jobs, stages (e.g. 3x2x3), seed, lo, hi, unrelated,
//                  setup, blocking
//   flexible job   jobs, machines, ops, eligible, seed, setup, attached,
//                  release, lag
//   lot streaming  jobs, stages, sublots, seed, batch-lo, batch-hi,
//                  unit-lo, unit-hi
//
// When no `problem=` token is given, the family is inferred from the
// instance token (*.fsp / ta001..ta010 -> flowshop, *.jsp / classics ->
// jobshop, anything else -> flowshop), so pre-existing sweep files keep
// their meaning.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "src/ga/problem.h"
#include "src/sched/objectives.h"

namespace psga::ga {

/// Declarative problem configuration parsed from "key=value ..." strings.
/// Unset fields keep each factory's defaults.
struct ProblemSpec {
  /// Registry key (problem_names()); see parse() for inference rules.
  std::string problem = "flowshop";
  /// Instance source token (file path, benchmark name or gen: spec).
  std::string instance;

  std::optional<sched::Criterion> criterion;  ///< criterion=
  /// encoding= — chromosome representation where the family offers
  /// several: flowshop permutation|random-key, jobshop operation|rules.
  std::optional<std::string> encoding;
  /// decoder= — jobshop semi-active|active, openshop lpt-task|lpt-machine.
  std::optional<std::string> decoder;

  /// instance-seed= — seed for randomness *derived from* the instance
  /// (stochastic scenario sampling, breakdown windows, power profiles);
  /// the instance's own seed lives inside its gen: token.
  std::optional<std::uint64_t> instance_seed;

  // Fuzzy flow shop (fuzzify) / stochastic job shop parameters.
  std::optional<double> spread;  ///< spread= (fuzzy triangle / noise width)
  std::optional<double> slack;   ///< slack= (fuzzy due-date center factor)
  std::optional<double> ramp;    ///< ramp= (fuzzy due-date ramp width)
  std::optional<int> scenarios;  ///< scenarios= (stochastic sample count)

  // Dynamic job shop: number of random breakdown windows.
  std::optional<int> downtimes;  ///< downtimes=

  // Energy-aware flow shop objective weights.
  std::optional<double> w_makespan;  ///< w-makespan=
  std::optional<double> w_energy;    ///< w-energy=
  std::optional<double> w_peak;      ///< w-peak=

  /// Parses a whitespace-separated "key=value ..." spec. Throws
  /// std::invalid_argument naming the offending token for unknown keys,
  /// malformed tokens and unknown criterion values. Without a `problem=`
  /// token the family is inferred from `instance=` (see file comment).
  static ProblemSpec parse(const std::string& text);

  /// Canonical spec string: parse(to_string()) reproduces this spec
  /// exactly. Unset fields are omitted; aliases render canonically.
  std::string to_string() const;

  /// Looks `problem` up in the registry and builds the Problem. Errors
  /// (unknown problem, unresolvable instance, unsupported field) throw
  /// std::invalid_argument whose message carries the canonical spec
  /// string, so fail-soft callers (the sweep runner) can report exactly
  /// which expansion failed.
  ProblemPtr build() const;

  bool operator==(const ProblemSpec&) const = default;
};

/// True for keys owned by ProblemSpec — the token router for combined
/// "problem + engine" specs (RunSpec in solver.h, sweep cells).
bool is_problem_key(const std::string& key);

/// Splits a combined token string into its (problem, solver) halves by
/// key ownership, preserving token order inside each half. Tokens
/// without '=' land in the solver half (whose parser reports them).
std::pair<std::string, std::string> split_spec_tokens(
    const std::string& text);

/// Canonical criterion token ("makespan", "total-flow", ...).
const char* criterion_name(sched::Criterion criterion);

/// Parses a criterion token (canonical names plus the aliases cmax,
/// total_flow, total-completion, twt, tmax). Throws std::invalid_argument
/// on unknown values, naming `token`.
sched::Criterion parse_criterion(const std::string& value,
                                 const std::string& token);

}  // namespace psga::ga
