#include "src/ga/simple_ga.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace psga::ga {

OperatorConfig default_operators(const Problem& problem) {
  OperatorConfig ops;
  ops.selection = std::make_shared<TournamentSelection>(2);
  const GenomeTraits& traits = problem.traits();
  switch (traits.seq_kind) {
    case SeqKind::kPermutation:
      ops.crossover = std::make_shared<OxCrossover>();
      ops.mutation = std::make_shared<SwapMutation>();
      break;
    case SeqKind::kJobRepetition:
      ops.crossover = std::make_shared<JoxCrossover>();
      ops.mutation = std::make_shared<SwapMutation>();
      break;
    case SeqKind::kNone:
      ops.crossover = std::make_shared<UniformKeyCrossover>();
      ops.mutation = std::make_shared<KeyCreepMutation>();
      break;
  }
  if (!traits.assign_domain.empty()) {
    ops.mutation = std::make_shared<CompositeMutation>(
        ops.mutation, std::make_shared<AssignMutation>());
  }
  return ops;
}

GaConfig inner_engine_config(GaConfig base, EvalCachePtr shared_cache) {
  if (base.eval_backend == EvalBackend::kAsyncPool) {
    base.async_coordinator_only = true;
  } else {
    base.eval_backend = EvalBackend::kSerial;
  }
  base.shared_eval_cache = std::move(shared_cache);
  return base;
}

SimpleGa::SimpleGa(ProblemPtr problem, GaConfig config, par::ThreadPool* pool)
    : problem_(std::move(problem)),
      config_(std::move(config)),
      rng_(config_.seed),
      evaluator_(problem_, config_.eval_backend, pool,
                 config_.async_coordinator_only, config_.eval_batch) {
  if (!config_.ops.selection || !config_.ops.crossover || !config_.ops.mutation) {
    OperatorConfig defaults = default_operators(*problem_);
    if (!config_.ops.selection) config_.ops.selection = defaults.selection;
    if (!config_.ops.crossover) config_.ops.crossover = defaults.crossover;
    if (!config_.ops.mutation) config_.ops.mutation = defaults.mutation;
  }
  evaluator_.set_cache(
      EvalCache::make(config_.eval_cache, config_.shared_eval_cache));
  evaluator_.set_hash_salt(config_.cache_salt);
  obs::ensure_registry(config_.metrics);
  attach_obs(config_.metrics, config_.tracer);
  evaluator_.set_obs(config_.metrics, config_.tracer);
}

void SimpleGa::init() {
  population_.clear();
  population_.reserve(static_cast<std::size_t>(config_.population));
  // An injected whole population (the warm-start seam) wins slots before
  // the seed-genome hints; both truncate at the population size and the
  // remainder is drawn at random.
  for (const Genome& seed : config_.initial_population) {
    if (static_cast<int>(population_.size()) >= config_.population) break;
    population_.push_back(seed);
  }
  for (const Genome& seed : config_.seed_genomes) {
    if (static_cast<int>(population_.size()) >= config_.population) break;
    population_.push_back(seed);
  }
  while (static_cast<int>(population_.size()) < config_.population) {
    population_.push_back(problem_->random_genome(rng_));
  }
  objectives_.assign(population_.size(), 0.0);
  generation_ = 0;
  evaluations_baseline_ = evaluator_.evaluations();
  has_best_ = false;
  evaluate_all();
}

void SimpleGa::evaluate_all() {
  evaluator_.evaluate(population_, objectives_);
  scan_population_best();
}

void SimpleGa::scan_population_best() {
  for (std::size_t i = 0; i < population_.size(); ++i) {
    if (!has_best_ || objectives_[i] < best_objective_) {
      best_objective_ = objectives_[i];
      best_ = population_[i];
      has_best_ = true;
    }
  }
}

std::vector<double> SimpleGa::fitness_values() const {
  std::vector<double> fitness(objectives_.size());
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    fitness[i] =
        config_.transform == FitnessTransform::kReference
            ? std::max(config_.reference_objective - objectives_[i], 0.0)
            : 1.0 / std::max(objectives_[i], 1e-12);
  }
  if (config_.niche_radius > 0) {
    // Fitness sharing (niche penalty): divide by the niche count
    // m_i = sum_j sh(d_ij), sh(d) = 1 - (d/radius)^alpha for d < radius.
    const double radius = static_cast<double>(config_.niche_radius);
    for (std::size_t i = 0; i < population_.size(); ++i) {
      double niche = 0.0;
      for (std::size_t j = 0; j < population_.size(); ++j) {
        const int d = hamming_distance(population_[i], population_[j]);
        if (d < config_.niche_radius) {
          niche += 1.0 - std::pow(static_cast<double>(d) / radius,
                                  config_.niche_alpha);
        }
      }
      fitness[i] /= std::max(niche, 1.0);
    }
  }
  return fitness;
}

double SimpleGa::current_mutation_rate() const {
  const OperatorConfig& ops = config_.ops;
  if (ops.mutation_rate_final < 0.0) return ops.mutation_rate;
  const int span = std::max(1, config_.termination.max_generations - 1);
  const double t =
      std::min(1.0, static_cast<double>(generation_) / static_cast<double>(span));
  return ops.mutation_rate + t * (ops.mutation_rate_final - ops.mutation_rate);
}

void SimpleGa::step() {
  obs::Tracer* const tracer = tracer_.get();
  const std::uint64_t breed_start = tracer != nullptr ? tracer->now_ns() : 0;
  const std::vector<double> fitness = fitness_values();
  const GenomeTraits& traits = problem_->traits();
  // The generation size follows the CURRENT population, not the config:
  // island merging (absorb) grows a population permanently ([29]).
  const int population = static_cast<int>(population_.size());
  const int elites = std::min(config_.elites, population);
  const int immigrants = std::min(
      population - elites,
      static_cast<int>(config_.immigration_fraction * population));
  const int bred = population - elites - immigrants;

  // Double-buffered breeding: children land in fixed slots of the next
  // buffers, so with the async pipeline every flushed block is stable
  // memory the coordinator can evaluate while breeding continues below
  // it. Breeding and evaluation overlap *within* the generation; the
  // fence before the buffer swap is the generation fence — no objective
  // of generation g+1 is read before it, so traces stay bit-identical
  // to the synchronous backends.
  next_population_.resize(static_cast<std::size_t>(population));
  next_objectives_.assign(static_cast<std::size_t>(population), 0.0);
  const bool pipelined = evaluator_.pipelined();
  // Flush granularity: a handful of blocks per generation keeps the
  // coordinator busy without paying a queue round-trip per child — but
  // never smaller than the pipeline's decode width, or a wide pool gets
  // fork-joined over a sliver of genomes.
  const std::size_t block = std::max<std::size_t>(
      {4, static_cast<std::size_t>(population) / 8,
       2 * static_cast<std::size_t>(evaluator_.pipeline_width())});
  std::size_t filled = 0;
  std::size_t submitted = 0;
  auto flush = [&] {
    if (!pipelined || filled == submitted) return;
    evaluator_.submit(
        std::span<const Genome>(next_population_).subspan(submitted,
                                                          filled - submitted),
        std::span<double>(next_objectives_).subspan(submitted,
                                                    filled - submitted));
    submitted = filled;
  };

  // Elitism: best `elites` individuals survive unchanged (all cache hits
  // when memoization is on — they were decoded last generation).
  std::vector<int> order(population_.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(elites),
                    order.end(), [&](int a, int b) {
                      return objectives_[static_cast<std::size_t>(a)] <
                             objectives_[static_cast<std::size_t>(b)];
                    });
  for (int e = 0; e < elites; ++e) {
    next_population_[filled++] =
        population_[static_cast<std::size_t>(order[static_cast<std::size_t>(e)])];
  }
  flush();

  // Breeding: selection (possibly SUS batch), crossover, mutation.
  const int pairs = (bred + 1) / 2;
  const std::vector<int> parents =
      config_.ops.selection->pick_many(fitness, pairs * 2, rng_);
  const double mutation_rate = current_mutation_rate();
  const std::size_t last_bred_slot = static_cast<std::size_t>(elites + bred);
  for (int p = 0; p < pairs; ++p) {
    const Genome& a = population_[static_cast<std::size_t>(parents[static_cast<std::size_t>(2 * p)])];
    const Genome& b = population_[static_cast<std::size_t>(parents[static_cast<std::size_t>(2 * p + 1)])];
    // The odd-count tail pair still breeds (and draws for) a second
    // child; it just lands in the spare buffer instead of a slot.
    const bool has_room2 = filled + 1 < last_bred_slot;
    Genome& child1 = next_population_[filled];
    Genome& child2 = has_room2 ? next_population_[filled + 1] : spare_child_;
    if (rng_.chance(config_.ops.crossover_rate)) {
      config_.ops.crossover->cross(a, b, traits, child1, child2, rng_);
    } else {
      child1 = a;
      child2 = b;
    }
    if (rng_.chance(mutation_rate)) {
      config_.ops.mutation->mutate(child1, traits, rng_);
    }
    if (rng_.chance(mutation_rate)) {
      config_.ops.mutation->mutate(child2, traits, rng_);
    }
    filled += has_room2 ? 2 : 1;
    if (filled - submitted >= block) flush();
  }

  // Immigration ([24]): fresh random individuals.
  for (int i = 0; i < immigrants; ++i) {
    next_population_[filled++] = problem_->random_genome(rng_);
    if (filled - submitted >= block) flush();
  }
  flush();
  if (tracer != nullptr) {
    tracer->record("breed", breed_start, tracer->now_ns() - breed_start);
  }

  if (pipelined) {
    evaluator_.fence();  // the generation fence
  } else {
    evaluator_.evaluate(next_population_, next_objectives_);
  }
  population_.swap(next_population_);
  objectives_.swap(next_objectives_);
  ++generation_;
  scan_population_best();
}

void SimpleGa::replace_individual(int slot, const Genome& genome,
                                  double objective) {
  population_[static_cast<std::size_t>(slot)] = genome;
  objectives_[static_cast<std::size_t>(slot)] = objective;
  if (!has_best_ || objective < best_objective_) {
    best_objective_ = objective;
    best_ = genome;
    has_best_ = true;
  }
}

int SimpleGa::best_index() const {
  return static_cast<int>(std::distance(
      objectives_.begin(),
      std::min_element(objectives_.begin(), objectives_.end())));
}

int SimpleGa::worst_index() const {
  return static_cast<int>(std::distance(
      objectives_.begin(),
      std::max_element(objectives_.begin(), objectives_.end())));
}

void SimpleGa::absorb(std::span<const Genome> genomes,
                      std::span<const double> objectives) {
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    population_.push_back(genomes[i]);
    objectives_.push_back(objectives[i]);
    if (objectives[i] < best_objective_) {
      best_objective_ = objectives[i];
      best_ = genomes[i];
    }
  }
}

double SimpleGa::stagnation_fraction(int threshold) const {
  if (population_.empty()) return 0.0;
  int close = 0;
  for (const Genome& g : population_) {
    if (hamming_distance(g, best_) < threshold) ++close;
  }
  return static_cast<double>(close) / static_cast<double>(population_.size());
}

}  // namespace psga::ga
