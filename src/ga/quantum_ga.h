// Quantum-inspired island GA (Gu et al. [28]).
//
// Each individual is a vector of qubit rotation angles θ_i ∈ (0, π/2); a
// *measurement* collapses it to a classical priority vector (sin²θ plus
// uniform exploration noise) that decodes to a sequencing chromosome via
// the random-keys rule. Evolution follows [28]'s two-level island design:
//   lower level  — quantum rotation gates pull every individual's angles
//                  toward the island's best measured solution, a quantum
//                  segment crossover mixes angle blocks within an island,
//                  and a Not-gate mutation flips θ to π/2 − θ;
//   upper level  — penetration migration: at each epoch the global best
//                  island "penetrates" the others by blending its best
//                  angle vector into their worst individuals
//                  (star-shaped information flow).
#pragma once

#include <memory>
#include <vector>

#include "src/ga/config.h"
#include "src/ga/engine.h"
#include "src/ga/evaluator.h"
#include "src/ga/problem.h"
#include "src/ga/result.h"
#include "src/par/thread_pool.h"

namespace psga::ga {

struct QuantumGaConfig {
  int islands = 4;
  int population = 20;        ///< individuals per island
  int generations = 100;
  double rotation_delta = 0.05;  ///< rotation gate step (radians)
  double measure_noise = 0.35;   ///< initial exploration noise in measurement
  /// Final noise level; the effective noise anneals linearly from
  /// measure_noise to this over the run (exploration → exploitation).
  double measure_noise_final = 0.05;
  double not_gate_rate = 0.05;   ///< per-individual Not-gate probability
  double crossover_rate = 0.4;   ///< quantum segment crossover probability
  int migration_interval = 10;   ///< penetration migration period; 0 = off
  double penetration = 0.5;      ///< blend factor of the penetrating angles
  /// Backend for the per-generation batch evaluation of all measured
  /// individuals (k × population genomes at once).
  EvalBackend eval_backend = EvalBackend::kThreadPool;
  /// Objective memoization for the measured genomes (see eval_cache.h).
  EvalCacheConfig eval_cache;
  EvalCachePtr shared_eval_cache;  ///< pre-built cache to share
  /// objective_batch chunk size (0 = auto; see GaConfig::eval_batch).
  int eval_batch = 0;
  std::uint64_t seed = 1;
  /// Observability sinks (see GaConfig::metrics/tracer).
  obs::RegistryPtr metrics;
  std::shared_ptr<obs::Tracer> tracer;
};

class QuantumGa : public Engine {
 public:
  QuantumGa(ProblemPtr problem, QuantumGaConfig config,
            par::ThreadPool* pool = nullptr);
  ~QuantumGa() override;

  /// Sets up the qubit populations; no measurement happens until the
  /// first step() (evaluates_on_init is false).
  void init() override;
  /// One generation: anneal noise, measure every individual, evaluate the
  /// flat batch, apply rotation/crossover/Not-gate, migrate when due.
  void step() override;
  int generation() const override;
  double best_objective() const override;
  const Genome& best() const override;
  long long evaluations() const override;
  /// The previous generation's measured (collapsed) genomes, island-major.
  int population_size() const override;
  const Genome& individual(int i) const override;
  double objective_of(int i) const override;
  EvalCachePtr eval_cache_shared() const override;
  StopCondition stop_default() const override {
    return StopCondition::generations(config_.generations);
  }

  using Engine::run;

 protected:
  void prepare_run(const StopCondition& stop) override;
  bool evaluates_on_init() const override { return false; }
  void fill_sections(RunResult& result) const override;

 private:
  ProblemPtr problem_;
  QuantumGaConfig config_;
  par::ThreadPool* pool_;
  /// Planned horizon of the current run (noise-annealing schedule).
  int planned_generations_;

  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace psga::ga
