// Memetic (GA + local search) engine: several surveyed works hybridize
// the GA with a neighborhood search — Mui et al. [17] (neighborhood
// mutation), Spanos et al. [29] (path relinking), Rashidi et al. [38]
// (local search + Redirect after the GA operators). MemeticGa runs a
// SimpleGa and, every `interval` generations, hill-climbs the current
// elite individuals (optionally escaping via Redirect when a climb makes
// no progress).
#pragma once

#include "src/ga/local_search.h"
#include "src/ga/simple_ga.h"

namespace psga::ga {

struct MemeticConfig {
  GaConfig base;
  int interval = 5;           ///< generations between local-search waves
  int refine_count = 2;       ///< individuals refined per wave (best ones)
  int search_budget = 100;    ///< objective evaluations per climb
  bool use_redirect = true;   ///< Redirect-restart a stuck climb ([38])
};

class MemeticGa {
 public:
  MemeticGa(ProblemPtr problem, MemeticConfig config);

  GaResult run();

 private:
  ProblemPtr problem_;
  MemeticConfig config_;
};

}  // namespace psga::ga
