// Memetic (GA + local search) engine: several surveyed works hybridize
// the GA with a neighborhood search — Mui et al. [17] (neighborhood
// mutation), Spanos et al. [29] (path relinking), Rashidi et al. [38]
// (local search + Redirect after the GA operators). MemeticGa runs a
// SimpleGa and, every `interval` generations, hill-climbs the current
// elite individuals (optionally escaping via Redirect when a climb makes
// no progress).
#pragma once

#include <memory>
#include <optional>

#include "src/ga/engine.h"
#include "src/ga/local_search.h"
#include "src/ga/simple_ga.h"

namespace psga::ga {

struct MemeticConfig {
  GaConfig base;
  int interval = 5;           ///< generations between local-search waves
  int refine_count = 2;       ///< individuals refined per wave (best ones)
  int search_budget = 100;    ///< objective evaluations per climb
  bool use_redirect = true;   ///< Redirect-restart a stuck climb ([38])
};

class MemeticGa : public Engine {
 public:
  MemeticGa(ProblemPtr problem, MemeticConfig config);

  void init() override;
  /// One SimpleGa generation, plus a local-search wave when due.
  void step() override;
  int generation() const override {
    return inner_ ? inner_->generation() : 0;
  }
  double best_objective() const override {
    return inner_ ? inner_->best_objective() : 0.0;
  }
  const Genome& best() const override { return inner_->best(); }
  /// All evaluations — GA generations and local-search climbs — flow
  /// through the inner engine's Evaluator, so budgets and cache counters
  /// see one consistent number.
  long long evaluations() const override {
    return inner_ ? inner_->evaluations() : 0;
  }
  int population_size() const override {
    return inner_ ? inner_->population_size() : 0;
  }
  const Genome& individual(int i) const override {
    return inner_->individual(i);
  }
  double objective_of(int i) const override { return inner_->objective_of(i); }
  EvalCachePtr eval_cache_shared() const override {
    // Pre-init, a user-shared cache is already known from the config, so
    // the run loop can baseline its counters before init() attaches it.
    return inner_ ? inner_->eval_cache_shared()
                  : config_.base.shared_eval_cache;
  }
  StopCondition stop_default() const override {
    return config_.base.termination;
  }
  bool seed_population(std::vector<Genome> genomes) override {
    config_.base.initial_population = std::move(genomes);
    return true;
  }

  using Engine::run;

 protected:
  void prepare_run(const StopCondition& stop) override {
    config_.base.termination = stop;
  }

 private:
  ProblemPtr problem_;
  MemeticConfig config_;

  // Run state (rebuilt by init()).
  std::optional<SimpleGa> inner_;
  par::Rng rng_{0};
  obs::Counter* climbs_ = nullptr;  ///< engine.climbs (local-search waves)
};

}  // namespace psga::ga
