// Genome-keyed objective memoization shared by the evaluation engine.
//
// The parallel-GA models duplicate genomes constantly — elites copied
// unchanged into every generation, migrants cloned across islands and
// cluster ranks, crossover-skipped children that are verbatim parent
// copies. Each duplicate re-runs a full schedule decode today. EvalCache
// memoizes objective values by a well-mixed 64-bit genome hash so the
// Evaluator decodes each distinct genome once.
//
// Correctness over trust-the-hash: every entry stores the genome itself
// and a lookup only hits when the stored genome compares equal, so a
// 64-bit collision degrades to a miss (and the colliding insert replaces
// the entry) instead of silently returning a wrong objective. Cached
// values are produced by the same pure objective functions, so traces
// are bit-identical with the cache on or off.
//
// The table is sharded: each shard owns a mutex, an open hash map and an
// LRU list, so evaluator lanes, island threads and cluster ranks can
// share one cache with little contention. Counters are exact under any
// synchronous backend; with the async pipeline the hit/miss split of
// intra-batch duplicates depends on insert timing (the values never do).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/ga/genome.h"

namespace psga::ga {

/// Memoization policy (GaConfig::eval_cache, spec token `eval_cache=`).
enum class EvalCacheMode {
  kOff,        ///< no cache: every evaluation decodes
  kUnbounded,  ///< memoize everything, never evict
  kLru,        ///< bounded: evict the least-recently-used entries
};

struct EvalCacheConfig {
  EvalCacheMode mode = EvalCacheMode::kOff;
  /// Total entry budget across all shards (kLru only).
  std::size_t capacity = 1 << 16;
  /// Lock shards; clamped to >= 1. The default is plenty below ~32 lanes.
  int shards = 8;

  /// Semantic equality: fields that cannot affect behavior under `mode`
  /// (everything for kOff, capacity for kUnbounded) are ignored, so the
  /// SolverSpec round-trip contract holds for every reachable state.
  friend bool operator==(const EvalCacheConfig& a, const EvalCacheConfig& b) {
    if (a.mode != b.mode) return false;
    if (a.mode == EvalCacheMode::kOff) return true;
    if (a.shards != b.shards) return false;
    return a.mode != EvalCacheMode::kLru || a.capacity == b.capacity;
  }
};

/// Exact lifetime counters, aggregated over shards (RunResult::cache).
struct EvalCacheStats {
  long long hits = 0;       ///< lookups answered from the table
  long long misses = 0;     ///< lookups that had to decode
  long long inserts = 0;    ///< entries written (incl. collision rewrites)
  long long evictions = 0;  ///< entries dropped by the LRU bound

  /// Counter subtraction — per-run deltas from lifetime snapshots.
  EvalCacheStats& operator-=(const EvalCacheStats& other) {
    hits -= other.hits;
    misses -= other.misses;
    inserts -= other.inserts;
    evictions -= other.evictions;
    return *this;
  }
};

class EvalCache;
using EvalCachePtr = std::shared_ptr<EvalCache>;

class EvalCache {
 public:
  explicit EvalCache(EvalCacheConfig config);

  /// The one construction idiom every engine uses: a pre-built shared
  /// cache wins, otherwise `config` decides between a fresh cache and
  /// none at all.
  static EvalCachePtr make(const EvalCacheConfig& config,
                           EvalCachePtr shared = nullptr) {
    if (shared != nullptr) return shared;
    if (config.mode == EvalCacheMode::kOff) return nullptr;
    return std::make_shared<EvalCache>(config);
  }

  /// Memoized objective of `genome` (whose genome_hash() is `hash`), or
  /// nullopt. A hash match with a different stored genome is a miss.
  std::optional<double> lookup(std::uint64_t hash, const Genome& genome);

  /// Records `objective` for `genome`. A colliding entry (same hash,
  /// different genome) is replaced; an equal entry is refreshed in place.
  void insert(std::uint64_t hash, const Genome& genome, double objective);

  EvalCacheStats stats() const;
  /// Entries currently stored (sums the shards).
  std::size_t size() const;
  const EvalCacheConfig& config() const { return config_; }

 private:
  struct Entry {
    Genome genome;
    double objective = 0.0;
    /// Position in the shard's recency list (kLru only).
    std::list<std::uint64_t>::iterator lru;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, Entry> map;
    std::list<std::uint64_t> order;  ///< front = most recently used
    EvalCacheStats stats;
  };

  Shard& shard_for(std::uint64_t hash) {
    // High bits pick the shard; the map keys on the full hash, and
    // genome_hash mixes well enough that both stay uniform.
    return *shards_[static_cast<std::size_t>(hash >> 32) % shards_.size()];
  }

  EvalCacheConfig config_;
  std::size_t shard_capacity_;  ///< per-shard entry bound (kLru)
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace psga::ga
