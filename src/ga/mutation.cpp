#include "src/ga/mutation.h"

#include <algorithm>

namespace psga::ga {

void SwapMutation::mutate(Genome& genome, const GenomeTraits& /*traits*/,
                          par::Rng& rng) const {
  auto& seq = genome.seq;
  if (seq.size() < 2) return;
  const std::size_t i = rng.below(seq.size());
  std::size_t j = rng.below(seq.size() - 1);
  if (j >= i) ++j;
  std::swap(seq[i], seq[j]);
}

void ShiftMutation::mutate(Genome& genome, const GenomeTraits& /*traits*/,
                           par::Rng& rng) const {
  auto& seq = genome.seq;
  if (seq.size() < 2) return;
  const std::size_t from = rng.below(seq.size());
  std::size_t to = rng.below(seq.size() - 1);
  if (to >= from) ++to;
  const int value = seq[from];
  seq.erase(seq.begin() + static_cast<std::ptrdiff_t>(from));
  seq.insert(seq.begin() + static_cast<std::ptrdiff_t>(to), value);
}

void InversionMutation::mutate(Genome& genome, const GenomeTraits& /*traits*/,
                               par::Rng& rng) const {
  auto& seq = genome.seq;
  if (seq.size() < 2) return;
  std::size_t lo = rng.below(seq.size());
  std::size_t hi = rng.below(seq.size());
  if (lo > hi) std::swap(lo, hi);
  std::reverse(seq.begin() + static_cast<std::ptrdiff_t>(lo),
               seq.begin() + static_cast<std::ptrdiff_t>(hi) + 1);
}

void ScrambleMutation::mutate(Genome& genome, const GenomeTraits& /*traits*/,
                              par::Rng& rng) const {
  auto& seq = genome.seq;
  if (seq.size() < 2) return;
  std::size_t lo = rng.below(seq.size());
  std::size_t hi = rng.below(seq.size());
  if (lo > hi) std::swap(lo, hi);
  // Fisher–Yates on the segment [lo, hi].
  for (std::size_t i = hi; i > lo; --i) {
    const std::size_t j = lo + rng.below(i - lo + 1);
    std::swap(seq[i], seq[j]);
  }
}

void AssignMutation::mutate(Genome& genome, const GenomeTraits& traits,
                            par::Rng& rng) const {
  if (genome.assign.empty()) return;
  const std::size_t i = rng.below(genome.assign.size());
  const int domain = traits.assign_domain[i];
  if (domain <= 1) return;
  int next = static_cast<int>(rng.below(static_cast<std::uint64_t>(domain - 1)));
  if (next >= genome.assign[i]) ++next;
  genome.assign[i] = next;
}

void KeyCreepMutation::mutate(Genome& genome, const GenomeTraits& /*traits*/,
                              par::Rng& rng) const {
  if (genome.keys.empty()) return;
  const std::size_t i = rng.below(genome.keys.size());
  genome.keys[i] = std::clamp(genome.keys[i] + rng.normal(0.0, sigma_), 0.0, 1.0);
}

void KeyResetMutation::mutate(Genome& genome, const GenomeTraits& /*traits*/,
                              par::Rng& rng) const {
  if (genome.keys.empty()) return;
  const std::size_t i = rng.below(genome.keys.size());
  genome.keys[i] = rng.uniform();
}

}  // namespace psga::ga
