// The fine-grained (cellular / neighborhood / diffusion) GA — Table IV of
// the survey, the model of Tamaki et al. [20] and the torus component of
// Lin et al. [21].
//
// One individual per cell of a 2-D torus; selection and mating are
// restricted to a cell's neighborhood and good genes spread only through
// neighborhood overlap. The update is synchronous (double-buffered) and
// each cell owns a deterministic Rng stream, so results are identical for
// any worker-thread count.
#pragma once

#include <vector>

#include "src/ga/config.h"
#include "src/ga/engine.h"
#include "src/ga/evaluator.h"
#include "src/ga/problem.h"
#include "src/ga/result.h"
#include "src/par/thread_pool.h"

namespace psga::ga {

enum class Neighborhood {
  kVonNeumann,  ///< N/S/E/W at distance <= radius (diamond)
  kMoore,       ///< Chebyshev distance <= radius (square)
};

struct CellularConfig {
  int width = 16;
  int height = 16;
  Neighborhood neighborhood = Neighborhood::kVonNeumann;
  int radius = 1;
  /// Offspring replaces the cell only if strictly better ("replace if
  /// better" is the usual synchronous cellular rule); false = always.
  bool replace_if_better = true;
  double crossover_rate = 0.95;
  double mutation_rate = 0.2;
  CrossoverPtr crossover;  ///< defaults from the problem encoding
  MutationPtr mutation;
  /// Fitness batches for the whole grid; the torus is the survey's
  /// fine-grained parallel model, so the parallel pool is the default.
  EvalBackend eval_backend = EvalBackend::kThreadPool;
  /// Objective memoization (see eval_cache.h); off by default.
  EvalCacheConfig eval_cache;
  /// Pre-built cache shared across islands (islands-of-cellular).
  EvalCachePtr shared_eval_cache;
  /// Cache-key namespace (see GaConfig::cache_salt); 0 = none.
  std::uint64_t cache_salt = 0;
  /// Restrict a kAsyncPool pipeline to its coordinator thread (set by
  /// engines whose outer level owns the pool).
  bool async_coordinator_only = false;
  /// objective_batch chunk size (0 = auto; see GaConfig::eval_batch).
  int eval_batch = 0;
  Termination termination;
  std::uint64_t seed = 1;
  /// Injected initial individuals (warm start): they occupy the leading
  /// cells in row-major order, truncating at the grid size; the remaining
  /// cells draw random genomes as usual.
  std::vector<Genome> initial_population;
  /// Observability sinks (see GaConfig::metrics/tracer): the engine
  /// ensures a registry when null; outer engines share theirs here.
  obs::RegistryPtr metrics;
  std::shared_ptr<obs::Tracer> tracer;
};

class CellularGa : public Engine {
 public:
  CellularGa(ProblemPtr problem, CellularConfig config,
             par::ThreadPool* pool = nullptr);

  // Stepwise Engine API (also used by the hybrid island-of-torus
  // engine [21]).
  void init() override;
  void step() override;
  int generation() const override { return generation_; }
  double best_objective() const override { return best_objective_; }
  const Genome& best() const override { return best_; }
  /// Fitness evaluations since the last init() (counted by the Evaluator).
  long long evaluations() const override {
    return evaluator_.evaluations() - evaluations_baseline_;
  }
  int population_size() const override { return cells(); }
  const Genome& individual(int cell) const override {
    return grid_[static_cast<std::size_t>(cell)];
  }
  double objective_of(int cell) const override {
    return objectives_[static_cast<std::size_t>(cell)];
  }
  EvalCachePtr eval_cache_shared() const override {
    return evaluator_.cache_ptr();
  }
  StopCondition stop_default() const override { return config_.termination; }
  bool seed_population(std::vector<Genome> genomes) override {
    config_.initial_population = std::move(genomes);
    return true;
  }

  int cells() const { return config_.width * config_.height; }
  /// Replaces the individual at `cell` (hybrid-model migration).
  void replace_cell(int cell, const Genome& genome, double objective);
  double objective_at(int cell) const { return objective_of(cell); }

  using Engine::run;

 protected:
  void prepare_run(const StopCondition& stop) override {
    config_.termination = stop;
  }

 private:
  std::vector<int> neighbors_of(int cell) const;
  void update_best();

  ProblemPtr problem_;
  CellularConfig config_;
  par::ThreadPool* pool_;
  Evaluator evaluator_;

  std::vector<Genome> grid_;
  std::vector<double> objectives_;
  std::vector<Genome> next_grid_;
  std::vector<double> next_objectives_;
  std::vector<par::Rng> cell_rngs_;
  std::vector<std::vector<int>> neighbor_table_;
  Genome best_;
  double best_objective_ = 0.0;
  long long evaluations_baseline_ = 0;
  int generation_ = 0;
};

}  // namespace psga::ga
