#include "src/ga/eval_cache.h"

#include <algorithm>

namespace psga::ga {

EvalCache::EvalCache(EvalCacheConfig config) : config_(config) {
  const std::size_t shards =
      static_cast<std::size_t>(std::max(1, config_.shards));
  shard_capacity_ = std::max<std::size_t>(1, config_.capacity / shards);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::optional<double> EvalCache::lookup(std::uint64_t hash,
                                        const Genome& genome) {
  Shard& shard = shard_for(hash);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.map.find(hash);
  if (it == shard.map.end() || !(it->second.genome == genome)) {
    ++shard.stats.misses;
    return std::nullopt;
  }
  if (config_.mode == EvalCacheMode::kLru && it->second.lru != shard.order.begin()) {
    shard.order.splice(shard.order.begin(), shard.order, it->second.lru);
  }
  ++shard.stats.hits;
  return it->second.objective;
}

void EvalCache::insert(std::uint64_t hash, const Genome& genome,
                       double objective) {
  Shard& shard = shard_for(hash);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.map.find(hash);
  if (it != shard.map.end()) {
    // Same hash already present: refresh an equal genome, replace a
    // colliding one (either way the table keeps one entry per hash).
    it->second.genome = genome;
    it->second.objective = objective;
    ++shard.stats.inserts;
    if (config_.mode == EvalCacheMode::kLru &&
        it->second.lru != shard.order.begin()) {
      shard.order.splice(shard.order.begin(), shard.order, it->second.lru);
    }
    return;
  }
  Entry entry;
  entry.genome = genome;
  entry.objective = objective;
  if (config_.mode == EvalCacheMode::kLru) {
    shard.order.push_front(hash);
    entry.lru = shard.order.begin();
  }
  shard.map.emplace(hash, std::move(entry));
  ++shard.stats.inserts;
  if (config_.mode == EvalCacheMode::kLru &&
      shard.map.size() > shard_capacity_) {
    const std::uint64_t victim = shard.order.back();
    shard.order.pop_back();
    shard.map.erase(victim);
    ++shard.stats.evictions;
  }
}

EvalCacheStats EvalCache::stats() const {
  EvalCacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.inserts += shard->stats.inserts;
    total.evictions += shard->stats.evictions;
  }
  return total;
}

std::size_t EvalCache::size() const {
  std::size_t size = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    size += shard->map.size();
  }
  return size;
}

}  // namespace psga::ga
