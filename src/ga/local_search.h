// Local search helpers for the hybrid/memetic variants: the swap/insert
// hill climber and the Redirect perturbation of Rashidi et al. [38].
#pragma once

#include "src/ga/evaluator.h"
#include "src/ga/genome.h"
#include "src/ga/problem.h"
#include "src/par/rng.h"

namespace psga::ga {

/// First-improvement hill climbing over the swap neighborhood of the
/// sequencing chromosome, bounded by `max_evaluations`. Returns the final
/// objective; `genome` is updated in place. `workspace` is an optional
/// reusable evaluation scratch from problem.make_workspace() (one is
/// created for the climb when null).
double local_search_swap(const Problem& problem, Genome& genome,
                         int max_evaluations, par::Rng& rng,
                         Workspace* workspace = nullptr);

/// Same climb, but every objective goes through `evaluator` — so climbs
/// are counted toward evaluation budgets exactly like GA evaluations,
/// memoized by the evaluation cache, and fenced against an async
/// pipeline. The memetic engine uses this overload.
double local_search_swap(Evaluator& evaluator, Genome& genome,
                         int max_evaluations, par::Rng& rng);

/// Redirect procedure ([38]): a strong perturbation that re-aims the
/// search — scrambles a random quarter of the sequencing chromosome.
void redirect(Genome& genome, par::Rng& rng);

}  // namespace psga::ga
