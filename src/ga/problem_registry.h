// String-keyed problem factories — the problem-side twin of the engine
// registry in solver.h. Every concrete shop model in problems.h is
// registered under a short name, so a ProblemSpec (problem_spec.h) can
// build any of them, and downstream code can plug new models into spec
// strings without touching this file.
//
// Registered built-ins (problem_catalog() for the one-line descriptions):
//
//   flowshop            permutation flow shop (encoding=random-key for
//                       the Bean-style random-key variant)
//   jobshop             job shop (decoder=semi-active|active,
//                       encoding=rules for dispatching-rule chromosomes)
//   openshop            open shop (decoder=lpt-task|lpt-machine)
//   hybrid-flowshop     hybrid flow shop (parallel machines per stage)
//   flexible-jobshop    flexible job shop (assignment + sequencing)
//   lot-streaming       lot-streaming flexible flow shop
//   fuzzy-flowshop      fuzzy flow shop (agreement-index objective)
//   stochastic-jobshop  expected makespan over sampled scenarios
//   energy-flowshop     weighted makespan + energy + peak power
//   dynamic-jobshop     suffix re-optimization under breakdown windows
//
// Configurations beyond spec strings (composite objectives, replan
// contexts mid-simulation) use the typed make_problem escape hatches
// below and get the same ProblemPtr back.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/ga/problem.h"
#include "src/ga/problem_spec.h"
#include "src/ga/problems.h"

namespace psga::ga {

/// Factory signature: build a Problem from a validated spec. Factories
/// throw std::invalid_argument for values they cannot honor (unknown
/// encoding/decoder, unsupported criterion, unresolvable instance).
using ProblemFactory = std::function<ProblemPtr(const ProblemSpec&)>;

/// Registers (or replaces) a problem factory under `name` with a
/// one-line description; the built-in problems are pre-registered.
/// (Same parameter order as register_engine in solver.h.)
void register_problem(const std::string& name, ProblemFactory factory,
                      std::string description = {});

/// Sorted names currently registered (the legal `problem=` values).
std::vector<std::string> problem_names();

/// One registry row: the spec key and its one-line description
/// (psga_sweep --list-problems prints these).
struct RegistryEntry {
  std::string name;
  std::string description;
};

/// Sorted (name, description) rows of the problem registry.
std::vector<RegistryEntry> problem_catalog();

// --- typed escape hatches ----------------------------------------------------
// For problems beyond what spec strings express. They return the concrete
// problem type (implicitly convertible to ProblemPtr) so callers keep
// access to decode()/instance() introspection.

std::shared_ptr<const FlowShopProblem> make_problem(
    sched::FlowShopInstance inst,
    sched::Criterion criterion = sched::Criterion::kMakespan);

std::shared_ptr<const RandomKeyFlowShopProblem> make_random_key_problem(
    sched::FlowShopInstance inst,
    sched::Criterion criterion = sched::Criterion::kMakespan);

std::shared_ptr<const JobShopProblem> make_problem(
    sched::JobShopInstance inst,
    JobShopProblem::Decoder decoder = JobShopProblem::Decoder::kOperationBased,
    sched::Criterion criterion = sched::Criterion::kMakespan);

std::shared_ptr<const RuleSequenceJobShopProblem> make_rule_sequence_problem(
    sched::JobShopInstance inst,
    sched::Criterion criterion = sched::Criterion::kMakespan);

std::shared_ptr<const OpenShopProblem> make_problem(
    sched::OpenShopInstance inst,
    sched::OpenShopDecoder decoder = sched::OpenShopDecoder::kLptTask,
    sched::Criterion criterion = sched::Criterion::kMakespan);

std::shared_ptr<const HybridFlowShopProblem> make_problem(
    sched::HybridFlowShopInstance inst,
    sched::CompositeObjective objective = {
        {{sched::Criterion::kMakespan, 1.0}}});

std::shared_ptr<const FlexibleJobShopProblem> make_problem(
    sched::FlexibleJobShopInstance inst,
    sched::Criterion criterion = sched::Criterion::kMakespan);

std::shared_ptr<const LotStreamingProblem> make_problem(
    sched::LotStreamingInstance inst);

std::shared_ptr<const FuzzyFlowShopProblem> make_problem(
    sched::FuzzyFlowShopInstance inst);

std::shared_ptr<const StochasticJobShopProblem> make_problem(
    std::shared_ptr<const sched::StochasticJobShop> shop);

std::shared_ptr<const EnergyFlowShopProblem> make_problem(
    sched::EnergyAwareFlowShop shop);

/// Resolves a job-shop instance token exactly as `problem=jobshop
/// instance=...` would: classics (ft06/ft10/ft20/la01), *.jsp files, or
/// gen:jobs=..,machines=..,seed=.. synthetic instances. Throws
/// std::invalid_argument for anything else. The session layer uses this
/// so `psgactl session open ft06` speaks the same instance language as
/// every other surface.
sched::JobShopInstance resolve_job_shop_instance(const std::string& instance);

/// Reactive suffix re-optimization mid-simulation: the caller's replan
/// context cannot come from a spec string. `inst` is borrowed (not
/// owned) and must outlive the problem.
std::shared_ptr<const DynamicSuffixProblem> make_dynamic_suffix_problem(
    const sched::JobShopInstance* inst, std::vector<int> frozen_prefix,
    std::vector<int> remaining, std::vector<sched::Downtime> downtimes);

}  // namespace psga::ga
