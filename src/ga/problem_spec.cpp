#include "src/ga/problem_spec.h"

#include <array>
#include <sstream>

#include "src/ga/spec_util.h"
#include "src/sched/classics.h"

namespace psga::ga {

namespace {

[[noreturn]] void bad_token(const std::string& token,
                            const std::string& reason) {
  spec::bad_token("ProblemSpec", token, reason);
}

/// The problem family implied by a bare instance token (used when no
/// problem= token names one): Taillard-format files and the ta001..ta010
/// benchmarks are flow shops, standard-format files and the embedded
/// classics are job shops; everything else (incl. gen:) defaults to
/// flowshop.
std::string infer_problem(const std::string& instance) {
  if (instance.ends_with(".jsp")) return "jobshop";
  for (const sched::ClassicInstance* classic : sched::classic_instances()) {
    if (instance == classic->name) return "jobshop";
  }
  return "flowshop";
}

constexpr std::array<const char*, 14> kProblemKeys = {
    "problem",    "instance",  "criterion",  "encoding",   "decoder",
    "instance-seed", "spread", "slack",      "ramp",       "scenarios",
    "downtimes",  "w-makespan", "w-energy",  "w-peak"};

}  // namespace

bool is_problem_key(const std::string& key) {
  for (const char* known : kProblemKeys) {
    if (key == known) return true;
  }
  return false;
}

std::pair<std::string, std::string> split_spec_tokens(
    const std::string& text) {
  std::string problem_half;
  std::string solver_half;
  std::istringstream stream(text);
  std::string token;
  while (stream >> token) {
    const std::size_t eq = token.find('=');
    std::string& half =
        (eq != std::string::npos && eq > 0 && is_problem_key(token.substr(0, eq)))
            ? problem_half
            : solver_half;
    if (!half.empty()) half += ' ';
    half += token;
  }
  return {std::move(problem_half), std::move(solver_half)};
}

const char* criterion_name(sched::Criterion criterion) {
  switch (criterion) {
    case sched::Criterion::kMakespan: return "makespan";
    case sched::Criterion::kTotalWeightedCompletion: return "total-flow";
    case sched::Criterion::kTotalWeightedTardiness: return "total-tardiness";
    case sched::Criterion::kWeightedUnitPenalty: return "unit-penalty";
    case sched::Criterion::kMaxTardiness: return "max-tardiness";
  }
  return "makespan";
}

sched::Criterion parse_criterion(const std::string& value,
                                 const std::string& token) {
  if (value == "makespan" || value == "cmax") {
    return sched::Criterion::kMakespan;
  }
  if (value == "total-flow" || value == "total_flow" ||
      value == "total-completion") {
    return sched::Criterion::kTotalWeightedCompletion;
  }
  if (value == "total-tardiness" || value == "twt") {
    return sched::Criterion::kTotalWeightedTardiness;
  }
  if (value == "unit-penalty") {
    return sched::Criterion::kWeightedUnitPenalty;
  }
  if (value == "max-tardiness" || value == "tmax") {
    return sched::Criterion::kMaxTardiness;
  }
  bad_token(token, "unknown criterion");
}

ProblemSpec ProblemSpec::parse(const std::string& text) {
  ProblemSpec spec;
  bool problem_named = false;
  std::istringstream stream(text);
  std::string token;
  while (stream >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
      bad_token(token, "expected key=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "problem") {
      spec.problem = value;
      problem_named = true;
    } else if (key == "instance") {
      spec.instance = value;
    } else if (key == "criterion") {
      spec.criterion = parse_criterion(value, token);
    } else if (key == "encoding") {
      // Canonicalize known aliases at parse time so equivalent specs
      // render the same canonical string (one sweep cache key, one
      // provenance form). Unknown values pass through for the factory
      // (or a downstream-registered problem) to judge.
      spec.encoding = value == "random_key" ? "random-key" : value;
    } else if (key == "decoder") {
      spec.decoder = value == "giffler-thompson" ? "active" : value;
    } else if (key == "instance-seed") {
      spec.instance_seed = spec::parse_u64("ProblemSpec", value, token);
    } else if (key == "spread") {
      spec.spread = spec::parse_double("ProblemSpec", value, token);
    } else if (key == "slack") {
      spec.slack = spec::parse_double("ProblemSpec", value, token);
    } else if (key == "ramp") {
      spec.ramp = spec::parse_double("ProblemSpec", value, token);
    } else if (key == "scenarios") {
      spec.scenarios = spec::parse_int("ProblemSpec", value, token);
    } else if (key == "downtimes") {
      spec.downtimes = spec::parse_int("ProblemSpec", value, token);
    } else if (key == "w-makespan") {
      spec.w_makespan = spec::parse_double("ProblemSpec", value, token);
    } else if (key == "w-energy") {
      spec.w_energy = spec::parse_double("ProblemSpec", value, token);
    } else if (key == "w-peak") {
      spec.w_peak = spec::parse_double("ProblemSpec", value, token);
    } else {
      bad_token(token, "unknown key");
    }
  }
  if (!problem_named && !spec.instance.empty()) {
    spec.problem = infer_problem(spec.instance);
  }
  return spec;
}

std::string ProblemSpec::to_string() const {
  std::ostringstream out;
  out.precision(17);  // max_digits10: doubles survive a parse round-trip
  out << "problem=" << problem;
  if (!instance.empty()) out << " instance=" << instance;
  if (criterion) out << " criterion=" << criterion_name(*criterion);
  auto put = [&out](const char* key, const auto& value) {
    if (value) out << ' ' << key << '=' << *value;
  };
  put("encoding", encoding);
  put("decoder", decoder);
  put("instance-seed", instance_seed);
  put("spread", spread);
  put("slack", slack);
  put("ramp", ramp);
  put("scenarios", scenarios);
  put("downtimes", downtimes);
  put("w-makespan", w_makespan);
  put("w-energy", w_energy);
  put("w-peak", w_peak);
  return out.str();
}

}  // namespace psga::ga
