// Renders sweep telemetry JSONL into human-facing artifacts: a flat CSV
// (one row per cell, axes unpacked into columns) and a self-contained
// HTML dashboard (summary tables with RPD and cache hit rates, SVG
// convergence curves per axis value — no external assets, openable from
// a file:// URL on an air-gapped box).
//
// The parser consumes the schema documented in docs/sweeps.md: it keys
// on `sweep_begin` sections, folds generation events into per-cell
// convergence curves, and treats duplicate cell indices (a resumed
// file whose kill left partial lines, or a re-run) last-wins, so the
// report of a resumed telemetry file equals the report of one
// uninterrupted run. Unknown events and malformed lines (the tail a
// SIGKILL leaves) are skipped, not fatal — a report over a live or
// truncated file renders whatever has landed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/ga/eval_cache.h"

namespace psga::exp {

/// One finished cell as reported by its final `cell` record, plus the
/// convergence samples collected from its `generation` events.
struct ReportCell {
  int index = 0;
  int config = 0;
  int rep = 0;
  std::uint64_t seed = 0;
  std::string hash;
  std::string instance;
  std::string spec;
  std::string problem;
  bool ok = false;
  std::string error;
  double best_objective = 0.0;
  int generations = 0;
  long long evaluations = 0;
  double seconds = 0.0;
  /// (label, value) per axis, sweep axis order.
  std::vector<std::pair<std::string, std::string>> axes;
  std::optional<ga::EvalCacheStats> cache;
  /// (generation, best) samples, generation order.
  std::vector<std::pair<long long, double>> curve;
  /// Decode-side numbers joined from the cell's `metrics` record
  /// (in-process sweeps emit one right after each cell record;
  /// dispatched or pre-schema files leave has_metrics false).
  bool has_metrics = false;
  std::uint64_t decoded_genomes = 0;
  double decode_p50_ns = 0.0;
  double decode_p95_ns = 0.0;
  double decode_p99_ns = 0.0;
};

/// Everything one sweep section contributed to the telemetry file.
/// A resumed file holds two `sweep_begin` records for the same sweep;
/// they merge into one report.
struct SweepReport {
  std::string sweep;
  long long declared_cells = 0;  ///< from sweep_begin
  double reference = -1.0;       ///< best-known objective; < 0 = unset
  /// Axis labels and display values, declaration order.
  std::vector<std::pair<std::string, std::vector<std::string>>> axes;
  /// Finished cells sorted by index (duplicates last-wins).
  std::vector<ReportCell> cells;
};

/// Parses a telemetry JSONL stream into per-sweep reports.
std::vector<SweepReport> parse_telemetry(std::istream& in);

/// One CSV block per sweep (separated by a `# sweep <name>` comment
/// line): cell rows with the axes unpacked into columns. RFC-4180
/// quoting — gen: instance names contain commas.
std::string render_csv(const std::vector<SweepReport>& reports);

/// A single self-contained HTML document: per-sweep summary tables
/// (best/mean/stddev over reps, mean RPD when a reference is declared,
/// cache hit rates when cells ran with a cache) and an SVG convergence
/// chart with one mean curve per configuration. Deterministic output —
/// no timestamps — so artifacts diff cleanly across runs.
std::string render_html(const std::vector<SweepReport>& reports);

}  // namespace psga::exp
