#include "src/exp/sweep_spec.h"

#include <glob.h>

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "src/ga/spec_util.h"

namespace psga::exp {

namespace {

[[noreturn]] void bad_token(const std::string& token,
                            const std::string& reason) {
  ga::spec::bad_token("SweepSpec", token, reason);
}

std::string trim(const std::string& text) {
  const std::size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const std::size_t end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

/// Splits brace content on commas, trimming each value.
std::vector<std::string> split_values(const std::string& body,
                                      const std::string& token) {
  std::vector<std::string> values;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = body.find(',', start);
    const std::string value = trim(body.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start));
    if (value.empty()) bad_token(token, "empty axis value");
    values.push_back(value);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

/// The keys of a token group ("islands=2 pop=60" -> "islands+pop").
std::string group_label(const std::string& group, const std::string& token) {
  std::istringstream stream(group);
  std::string label;
  std::string part;
  while (stream >> part) {
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos || eq == 0) {
      bad_token(token, "group axis values must be key=value tokens");
    }
    if (!label.empty()) label += '+';
    label += part.substr(0, eq);
  }
  if (label.empty()) bad_token(token, "empty axis value");
  return label;
}

int parse_int(const std::string& value, const std::string& token) {
  return ga::spec::parse_int("SweepSpec", value, token);
}

double parse_double(const std::string& value, const std::string& token) {
  return ga::spec::parse_double("SweepSpec", value, token);
}

std::uint64_t parse_u64(const std::string& value, const std::string& token) {
  return ga::spec::parse_u64("SweepSpec", value, token);
}

std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Strips comments and splits `text` into raw tokens; a balanced `{...}`
/// region keeps its internal whitespace (group axes).
std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  int depth = 0;
  bool in_comment = false;
  for (const char c : text) {
    if (in_comment) {
      if (c == '\n') in_comment = false;
      if (c != '\n') continue;
    }
    // '#' comments out the rest of the line even inside a brace region
    // (a multi-line group axis with an inline comment).
    if (c == '#') {
      in_comment = true;
      continue;
    }
    if (c == '{') ++depth;
    if (c == '}') {
      if (depth == 0) bad_token(current + "}", "unbalanced '}'");
      --depth;
    }
    if ((c == ' ' || c == '\t' || c == '\r' || c == '\n') && depth == 0) {
      if (!current.empty()) tokens.push_back(current);
      current.clear();
      continue;
    }
    current += c;
  }
  if (depth != 0) bad_token(current, "unbalanced '{'");
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

/// Expands brace groups inside a `key=gen:...` token into a grouped
/// axis: `instance=gen:jobs={20,50},machines=5` yields one axis
/// labelled "jobs" whose values are full `instance=gen:...` tokens and
/// whose display strings are the brace variants ("20", "50"). Several
/// brace groups cross-product within the token (label "jobs+machines",
/// display "20/2"), first group slowest — matching axis order rules.
SweepAxis expand_gen_axis(const std::string& token, std::size_t eq) {
  struct Group {
    std::size_t begin = 0;  ///< position of '{'
    std::size_t end = 0;    ///< position of '}'
    std::string key;
    std::vector<std::string> variants;
  };
  std::vector<Group> groups;
  for (std::size_t pos = token.find('{', eq); pos != std::string::npos;
       pos = token.find('{', pos + 1)) {
    Group group;
    group.begin = pos;
    group.end = token.find('}', pos);
    if (group.end == std::string::npos) bad_token(token, "unbalanced '{'");
    if (token.find('{', pos + 1) < group.end) {
      bad_token(token, "nested braces in gen: value");
    }
    // The braced group must be the value of a gen: subkey — scan back to
    // the enclosing ':' or ',' for the `key=` it belongs to.
    if (pos == 0 || token[pos - 1] != '=') {
      bad_token(token, "gen: brace groups must follow a subkey=");
    }
    std::size_t key_begin = token.find_last_of(":,", pos - 1);
    key_begin = key_begin == std::string::npos ? eq + 1 : key_begin + 1;
    group.key = token.substr(key_begin, pos - 1 - key_begin);
    if (group.key.empty()) {
      bad_token(token, "gen: brace groups must follow a subkey=");
    }
    group.variants =
        split_values(token.substr(pos + 1, group.end - pos - 1), token);
    pos = group.end;
    groups.push_back(std::move(group));
  }
  if (groups.empty()) bad_token(token, "malformed gen: brace expansion");
  SweepAxis axis;
  axis.grouped = true;
  long long total = 1;
  for (const Group& group : groups) {
    if (!axis.label.empty()) axis.label += '+';
    axis.label += group.key;
    total *= static_cast<long long>(group.variants.size());
  }
  for (long long combo = 0; combo < total; ++combo) {
    // Decompose into per-group picks, first group slowest.
    std::vector<std::size_t> pick(groups.size(), 0);
    long long rest = combo;
    for (std::size_t g = groups.size(); g-- > 0;) {
      const long long size = static_cast<long long>(groups[g].variants.size());
      pick[g] = static_cast<std::size_t>(rest % size);
      rest /= size;
    }
    // Substitute each brace group with its picked variant, back to front
    // so earlier offsets stay valid.
    std::string value = token;
    std::string display;
    for (std::size_t g = groups.size(); g-- > 0;) {
      const Group& group = groups[g];
      value.replace(group.begin, group.end - group.begin + 1,
                    group.variants[pick[g]]);
      display = display.empty()
                    ? group.variants[pick[g]]
                    : group.variants[pick[g]] + "/" + display;
    }
    axis.values.push_back(std::move(value));
    axis.display.push_back(std::move(display));
  }
  return axis;
}

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = value.find(',', start);
    const std::string part = trim(value.substr(
        start,
        comma == std::string::npos ? std::string::npos : comma - start));
    if (!part.empty()) parts.push_back(part);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

}  // namespace

SweepSpec SweepSpec::parse(const std::string& text) {
  SweepSpec spec;
  int generations = -1;
  double seconds = -1.0;
  long long evals = -1;
  double target = -1.0;
  for (const std::string& token : tokenize(text)) {
    if (token[0] == '@') {
      // Sweep-level directive.
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos || eq + 1 >= token.size()) {
        bad_token(token, "expected @key=value");
      }
      const std::string key = token.substr(1, eq - 1);
      const std::string value = token.substr(eq + 1);
      if (key == "instances") {
        spec.instances = split_list(value);
        if (spec.instances.empty()) bad_token(token, "empty instance list");
      } else if (key == "reps") {
        spec.reps = parse_int(value, token);
        if (spec.reps < 1) bad_token(token, "reps must be positive");
      } else if (key == "seed") {
        spec.seed = parse_u64(value, token);
      } else if (key == "crn") {
        if (value == "on") {
          spec.crn = true;
        } else if (value == "off") {
          spec.crn = false;
        } else {
          bad_token(token, "expected @crn=on|off");
        }
      } else if (key == "generations") {
        generations = parse_int(value, token);
        if (generations < 1) bad_token(token, "generations must be positive");
      } else if (key == "seconds") {
        seconds = parse_double(value, token);
        if (seconds <= 0) bad_token(token, "seconds must be positive");
      } else if (key == "evals") {
        evals = static_cast<long long>(parse_u64(value, token));
        if (evals < 1) bad_token(token, "evals must be positive");
      } else if (key == "target") {
        target = parse_double(value, token);
        if (target < 0) bad_token(token, "target must be >= 0");
      } else if (key == "reference") {
        spec.reference = parse_double(value, token);
        if (spec.reference <= 0) bad_token(token, "reference must be positive");
      } else {
        bad_token(token, "unknown sweep directive");
      }
      continue;
    }
    if (token[0] == '{') {
      // Zipped group axis: {islands=2 pop=60,islands=3 pop=40,...}.
      if (token.back() != '}') bad_token(token, "malformed group axis");
      SweepAxis axis;
      axis.grouped = true;
      axis.values = split_values(token.substr(1, token.size() - 2), token);
      axis.label = group_label(axis.values.front(), token);
      spec.axes.push_back(std::move(axis));
      continue;
    }
    const std::size_t eq = token.find('=');
    const std::size_t brace = token.find("={");
    if (brace != std::string::npos && brace == eq) {
      // Keyed axis: topology={ring,grid,...}.
      if (brace == 0) bad_token(token, "missing axis key");
      if (token.back() != '}') bad_token(token, "malformed axis");
      SweepAxis axis;
      axis.label = token.substr(0, brace);
      axis.values = split_values(
          token.substr(brace + 2, token.size() - brace - 3), token);
      spec.axes.push_back(std::move(axis));
      continue;
    }
    if (token.find('{') != std::string::npos) {
      // Braces past the first '=': brace expansion inside a gen:
      // instance value (instance=gen:jobs={20,50,100}) — the token
      // grammar's only other legal use of braces.
      if (eq == std::string::npos || eq == 0 ||
          token.compare(eq + 1, 4, "gen:") != 0) {
        bad_token(token,
                  "braces only declare axes (key={...}, {...}) or expand "
                  "inside key=gen:... values");
      }
      spec.axes.push_back(expand_gen_axis(token, eq));
      continue;
    }
    // Fixed SolverSpec token (validated by SolverSpec::parse per cell,
    // fail-soft at run time).
    if (token.find('=') == std::string::npos) {
      bad_token(token, "expected key=value, key={...}, {...} or @key=value");
    }
    if (!spec.base.empty()) spec.base += ' ';
    spec.base += token;
  }
  // Assemble the stop condition: an explicit generation budget wins;
  // otherwise any other budget lifts the default generation cap.
  if (generations > 0) {
    spec.stop.max_generations = generations;
  } else if (seconds > 0 || evals > 0 || target >= 0) {
    spec.stop.max_generations = std::numeric_limits<int>::max();
  }
  if (seconds > 0) spec.stop.max_seconds = seconds;
  if (evals > 0) spec.stop.max_evaluations = evals;
  if (target >= 0) spec.stop.target_objective = target;
  return spec;
}

std::vector<SweepSpec> SweepSpec::parse_file(const std::string& text) {
  std::vector<SweepSpec> sweeps;
  std::string section_name = "sweep";
  std::string section_text;
  auto flush = [&] {
    if (trim(section_text).empty()) return;
    SweepSpec spec = parse(section_text);
    // A comment-only section (e.g. a file-level banner before the first
    // [header]) declares nothing runnable — skip it.
    if (spec.base.empty() && spec.axes.empty() && spec.instances.empty()) {
      return;
    }
    spec.name = section_name;
    sweeps.push_back(std::move(spec));
  };
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    const std::string trimmed = trim(line);
    if (trimmed.size() >= 2 && trimmed.front() == '[' &&
        trimmed.back() == ']') {
      flush();
      section_name = trim(trimmed.substr(1, trimmed.size() - 2));
      if (section_name.empty()) {
        throw std::invalid_argument("SweepSpec: empty section name '[]'");
      }
      section_text.clear();
      continue;
    }
    section_text += line;
    section_text += '\n';
  }
  flush();
  return sweeps;
}

long long SweepSpec::configs() const {
  long long n = 1;
  for (const SweepAxis& axis : axes) {
    n *= static_cast<long long>(axis.values.size());
  }
  return n;
}

std::vector<std::string> SweepSpec::expand_instances() const {
  if (instances.empty()) return {""};
  std::vector<std::string> expanded;
  for (const std::string& entry : instances) {
    if (entry.find_first_of("*?[") == std::string::npos) {
      expanded.push_back(entry);
      continue;
    }
    ::glob_t matches;
    const int rc = ::glob(entry.c_str(), 0, nullptr, &matches);
    if (rc != 0) {
      ::globfree(&matches);
      throw std::invalid_argument(
          "SweepSpec: instance glob '" + entry + "' " +
          (rc == GLOB_NOMATCH ? "matched nothing"
                              : "failed (I/O error while expanding)"));
    }
    // glob() sorts by default; order is deterministic.
    for (std::size_t i = 0; i < matches.gl_pathc; ++i) {
      expanded.emplace_back(matches.gl_pathv[i]);
    }
    ::globfree(&matches);
  }
  return expanded;
}

std::vector<SweepCell> SweepSpec::expand() const {
  // parse() validates @reps, but programmatic/CLI overrides can zero it.
  if (reps < 1) {
    throw std::invalid_argument("SweepSpec '" + name +
                                "': reps must be positive");
  }
  const std::vector<std::string> insts = expand_instances();
  const long long n_configs = configs();
  std::vector<SweepCell> cells;
  cells.reserve(static_cast<std::size_t>(n_configs) * insts.size() *
                static_cast<std::size_t>(reps));
  for (long long config = 0; config < n_configs; ++config) {
    // Decompose config into per-axis indices, first axis slowest.
    std::vector<std::size_t> pick(axes.size(), 0);
    long long rest = config;
    for (std::size_t a = axes.size(); a-- > 0;) {
      const long long size = static_cast<long long>(axes[a].values.size());
      pick[a] = static_cast<std::size_t>(rest % size);
      rest /= size;
    }
    std::string config_spec = base;
    std::vector<std::string> axis_values;
    axis_values.reserve(axes.size());
    for (std::size_t a = 0; a < axes.size(); ++a) {
      if (!config_spec.empty()) config_spec += ' ';
      config_spec += axes[a].token(pick[a]);
      axis_values.push_back(axes[a].value_label(pick[a]));
    }
    for (std::size_t inst = 0; inst < insts.size(); ++inst) {
      for (int rep = 0; rep < reps; ++rep) {
        SweepCell cell;
        cell.config = static_cast<int>(config);
        cell.instance_index = static_cast<int>(inst);
        cell.rep = rep;
        cell.index = static_cast<int>(
            (config * static_cast<long long>(insts.size()) +
             static_cast<long long>(inst)) *
                reps +
            rep);
        // Under @crn=on the hashed index drops the configuration, so
        // every config replays the same per-(instance, rep) seed series.
        const std::uint64_t seed_index =
            crn ? static_cast<std::uint64_t>(inst) * static_cast<std::uint64_t>(
                                                         reps) +
                      static_cast<std::uint64_t>(rep)
                : static_cast<std::uint64_t>(cell.index);
        cell.seed = derive_seed(seed, seed_index,
                                static_cast<std::uint64_t>(rep));
        // The derived seed is appended last so it overrides any seed=
        // token in the base (later assignments win in SolverSpec::parse).
        cell.spec = config_spec.empty()
                        ? "seed=" + std::to_string(cell.seed)
                        : config_spec + " seed=" + std::to_string(cell.seed);
        cell.instance = insts[inst];
        cell.axis_values = axis_values;
        cells.push_back(std::move(cell));
      }
    }
  }
  return cells;
}

std::uint64_t derive_seed(std::uint64_t sweep_seed, std::uint64_t cell_index,
                          std::uint64_t rep) {
  // Absorb the three words through chained SplitMix64 finalizers; any
  // change to one input avalanches the result.
  return splitmix64(sweep_seed ^ splitmix64(cell_index ^ splitmix64(rep)));
}

std::uint64_t sweep_cell_hash(const std::string& sweep_name,
                              const SweepCell& cell) {
  // FNV-1a over the identity fields with an out-of-band separator after
  // each (so ("ab","c") and ("a","bc") differ), SplitMix64-finished.
  // Stable across platforms and releases — resume files stay usable.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](const std::string& text) {
    for (const char c : text) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
    h ^= 0x1fU;  // unit separator, never appears in spec tokens
    h *= 0x100000001b3ULL;
  };
  mix(sweep_name);
  mix(cell.spec);
  mix(cell.instance);
  mix(std::to_string(cell.rep));
  mix(std::to_string(cell.seed));
  return splitmix64(h);
}

std::string sweep_cell_hash_hex(const std::string& sweep_name,
                                const SweepCell& cell) {
  const std::uint64_t hash = sweep_cell_hash(sweep_name, cell);
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace psga::exp
