// MetricsSnapshot <-> Json bridging for telemetry records and the svc
// `stats` protocol op.
//
// Layout (stable; see docs/observability.md):
//   {"counters":{"eval.decoded_genomes":123,...},
//    "gauges":{"svc.queue.depth":2,...},
//    "histograms":{"eval.decode_ns":{"count":N,"sum":S,"mean":M,
//                  "p50":...,"p95":...,"p99":...,
//                  "buckets":[[bucket_index,count],...]},...}}
// Histogram buckets are emitted sparsely (non-zero only) so a snapshot
// line stays small; from_json rebuilds the full bucket array, and the
// derived mean/p50/p95/p99 fields are recomputed on re-snapshot (they
// are convenience output, not round-trip state).
#pragma once

#include "src/exp/json.h"
#include "src/obs/metrics.h"

namespace psga::exp {

Json metrics_to_json(const obs::MetricsSnapshot& snapshot);
obs::MetricsSnapshot metrics_from_json(const Json& json);

}  // namespace psga::exp
