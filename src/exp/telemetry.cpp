#include "src/exp/telemetry.h"

namespace psga::exp {

void TelemetrySink::write(const Json& line) {
  const std::string text = line.dump();
  std::lock_guard lock(mutex_);
  *out_ << text << '\n';
  ++lines_;
}

long long TelemetrySink::lines() const {
  std::lock_guard lock(mutex_);
  return lines_;
}

bool CellObserver::on_generation(const ga::Engine& engine,
                                 const ga::GenerationEvent& event) {
  (void)engine;
  if (every_ > 0 && event.generation % every_ == 0) {
    sink_->write(Json::object()
                     .set("event", Json::string("generation"))
                     .set("cell", Json::integer(cell_))
                     .set("generation", Json::integer(event.generation))
                     .set("best", Json::number(event.best_objective))
                     .set("evaluations", Json::integer(event.evaluations))
                     .set("seconds", Json::number(event.seconds)));
  }
  return true;
}

void CellObserver::on_improvement(const ga::Engine& engine,
                                  const ga::GenerationEvent& event) {
  (void)engine;
  sink_->write(Json::object()
                   .set("event", Json::string("improvement"))
                   .set("cell", Json::integer(cell_))
                   .set("generation", Json::integer(event.generation))
                   .set("best", Json::number(event.best_objective)));
}

void CellObserver::on_migration(const ga::MigrationEvent& event) {
  sink_->write(Json::object()
                   .set("event", Json::string("migration"))
                   .set("cell", Json::integer(cell_))
                   .set("epoch", Json::integer(event.epoch))
                   .set("from", Json::integer(event.from))
                   .set("to", Json::integer(event.to))
                   .set("objective", Json::number(event.objective)));
}

}  // namespace psga::exp
