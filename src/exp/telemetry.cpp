#include "src/exp/telemetry.h"

namespace psga::exp {

void TelemetrySink::write(const Json& line) {
  std::string text;
  if (line.is_object() && line.find("schema_version") == nullptr) {
    // schema_version leads every record so consumers can dispatch on it
    // before touching any other field.
    Json stamped = Json::object();
    stamped.set("schema_version", Json::integer(kTelemetrySchemaVersion));
    for (const Json::Member& member : line.members()) {
      stamped.set(member.first, member.second);
    }
    text = stamped.dump();
  } else {
    text = line.dump();
  }
  std::lock_guard lock(mutex_);
  emit(text);
  ++lines_;
}

void TelemetrySink::emit(const std::string& text) { *out_ << text << '\n'; }

long long TelemetrySink::lines() const {
  std::lock_guard lock(mutex_);
  return lines_;
}

bool CellObserver::on_generation(const ga::Engine& engine,
                                 const ga::GenerationEvent& event) {
  (void)engine;
  if (every_ > 0 && event.generation % every_ == 0) {
    sink_->write(Json::object()
                     .set("event", Json::string("generation"))
                     .set("cell", Json::integer(cell_))
                     .set("generation", Json::integer(event.generation))
                     .set("best", Json::number(event.best_objective))
                     .set("evaluations", Json::integer(event.evaluations))
                     .set("seconds", Json::number(event.seconds)));
  }
  return true;
}

void CellObserver::on_improvement(const ga::Engine& engine,
                                  const ga::GenerationEvent& event) {
  (void)engine;
  sink_->write(Json::object()
                   .set("event", Json::string("improvement"))
                   .set("cell", Json::integer(cell_))
                   .set("generation", Json::integer(event.generation))
                   .set("best", Json::number(event.best_objective)));
}

void CellObserver::on_migration(const ga::MigrationEvent& event) {
  sink_->write(Json::object()
                   .set("event", Json::string("migration"))
                   .set("cell", Json::integer(cell_))
                   .set("epoch", Json::integer(event.epoch))
                   .set("from", Json::integer(event.from))
                   .set("to", Json::integer(event.to))
                   .set("objective", Json::number(event.objective)));
}

}  // namespace psga::exp
