#include "src/exp/sweep_runner.h"

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "src/ga/problems.h"
#include "src/ga/solver.h"
#include "src/par/thread_pool.h"
#include "src/sched/io.h"
#include "src/sched/taillard.h"

namespace psga::exp {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Json axes_object(const SweepSpec& spec, const SweepCell& cell) {
  Json axes = Json::object();
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    axes.set(spec.axes[a].label, Json::string(cell.axis_values[a]));
  }
  return axes;
}

Json cell_record(const SweepSpec& spec, const CellResult& result) {
  const SweepCell& cell = result.cell;
  Json line = Json::object();
  line.set("event", Json::string("cell"))
      .set("cell", Json::integer(cell.index))
      .set("config", Json::integer(cell.config))
      .set("instance", Json::string(cell.instance))
      .set("rep", Json::integer(cell.rep))
      .set("seed", Json::uinteger(cell.seed))
      .set("spec", Json::string(cell.spec))
      .set("axes", axes_object(spec, cell))
      .set("ok", Json::boolean(result.ok));
  if (!result.ok) {
    line.set("error", Json::string(result.error));
    return line;
  }
  line.set("best_objective", Json::number(result.result.best_objective))
      .set("generations", Json::integer(result.result.generations))
      .set("evaluations", Json::integer(result.result.evaluations))
      .set("seconds", Json::number(result.seconds));
  if (result.result.cache) {
    line.set("cache",
             Json::object()
                 .set("hits", Json::integer(result.result.cache->hits))
                 .set("misses", Json::integer(result.result.cache->misses))
                 .set("inserts", Json::integer(result.result.cache->inserts))
                 .set("evictions",
                      Json::integer(result.result.cache->evictions)));
  }
  return line;
}

}  // namespace

ga::ProblemPtr default_resolver(const std::string& name) {
  if (name.empty()) {
    throw std::invalid_argument(
        "sweep has no @instances and no custom resolver");
  }
  if (ends_with(name, ".fsp")) {
    return std::make_shared<ga::FlowShopProblem>(sched::load_flow_shop(name));
  }
  if (ends_with(name, ".jsp")) {
    return std::make_shared<ga::JobShopProblem>(sched::load_job_shop(name));
  }
  for (const sched::TaillardBenchmark& bench : sched::taillard_20x5()) {
    if (name == bench.name) {
      return std::make_shared<ga::FlowShopProblem>(sched::make_taillard(bench));
    }
  }
  throw std::invalid_argument("unknown instance '" + name +
                              "' (expected *.fsp, *.jsp or ta001..ta010)");
}

SweepRunner::SweepRunner(SweepSpec spec, SweepOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {}

SweepResult SweepRunner::run() {
  const double sweep_start = now_seconds();
  SweepResult out;
  out.spec = spec_;
  std::vector<SweepCell> cells = spec_.expand();
  if (cells.empty()) {
    throw std::invalid_argument("SweepSpec '" + spec_.name +
                                "' expands to zero cells");
  }
  const ProblemResolver resolve =
      options_.resolve ? options_.resolve : ProblemResolver(default_resolver);

  // Resolve each distinct instance once, up front and serially. A failed
  // resolution poisons only that instance's cells (fail-soft).
  std::map<std::string, ga::ProblemPtr> problems;
  std::map<std::string, std::string> resolve_errors;
  for (const SweepCell& cell : cells) {
    if (problems.count(cell.instance) || resolve_errors.count(cell.instance)) {
      continue;
    }
    try {
      problems[cell.instance] = resolve(cell.instance);
      if (problems[cell.instance] == nullptr) {
        throw std::invalid_argument("resolver returned null for instance '" +
                                    cell.instance + "'");
      }
    } catch (const std::exception& e) {
      problems.erase(cell.instance);
      resolve_errors[cell.instance] = e.what();
    }
  }

  TelemetrySink* sink = options_.telemetry;
  if (sink != nullptr) {
    Json axes = Json::array();
    for (const SweepAxis& axis : spec_.axes) {
      Json values = Json::array();
      for (const std::string& value : axis.values) {
        values.push(Json::string(value));
      }
      axes.push(Json::object()
                    .set("label", Json::string(axis.label))
                    .set("values", std::move(values)));
    }
    Json instances = Json::array();
    // From the expanded cells (the authoritative list), not a second
    // expand_instances() glob that could disagree with the grid run.
    for (const SweepCell& cell : cells) {
      if (cell.instance_index ==
          static_cast<int>(instances.items().size())) {
        instances.push(Json::string(cell.instance));
      }
    }
    sink->write(Json::object()
                    .set("event", Json::string("sweep_begin"))
                    .set("sweep", Json::string(spec_.name))
                    .set("cells", Json::integer(static_cast<long long>(
                                      cells.size())))
                    .set("configs", Json::integer(spec_.configs()))
                    .set("reps", Json::integer(spec_.reps))
                    .set("seed", Json::uinteger(spec_.seed))
                    .set("base", Json::string(spec_.base))
                    .set("axes", std::move(axes))
                    .set("instances", std::move(instances)));
  }

  out.cells.resize(cells.size());
  std::mutex progress_mutex;
  int done = 0;  // guarded by progress_mutex: callbacks see monotonic counts
  const int total = static_cast<int>(cells.size());

  auto run_cell = [&](const SweepCell& cell) {
    CellResult result;
    result.cell = cell;
    if (sink != nullptr) {
      sink->write(Json::object()
                      .set("event", Json::string("run_begin"))
                      .set("cell", Json::integer(cell.index))
                      .set("config", Json::integer(cell.config))
                      .set("instance", Json::string(cell.instance))
                      .set("rep", Json::integer(cell.rep))
                      .set("seed", Json::uinteger(cell.seed))
                      .set("spec", Json::string(cell.spec)));
    }
    const double start = now_seconds();
    try {
      const auto poisoned = resolve_errors.find(cell.instance);
      if (poisoned != resolve_errors.end()) {
        throw std::invalid_argument(poisoned->second);
      }
      // A private single-lane pool: engine-level parallelism runs inline
      // on this lane, so pool regions never nest inside the sweep pool.
      par::ThreadPool cell_pool(1);
      ga::Solver solver =
          ga::Solver::build(ga::SolverSpec::parse(cell.spec),
                            problems.at(cell.instance), &cell_pool);
      std::optional<CellObserver> observer;
      if (sink != nullptr) {
        observer.emplace(*sink, cell.index, options_.telemetry_every);
        solver.set_observer(&*observer);
      }
      result.result = solver.run(spec_.stop);
      result.ok = true;
    } catch (const std::exception& e) {
      result.ok = false;
      result.error = e.what();
    }
    result.seconds = now_seconds() - start;
    if (sink != nullptr) sink->write(cell_record(spec_, result));
    {
      std::lock_guard lock(progress_mutex);
      ++done;
      if (options_.progress) options_.progress(result, done, total);
    }
    out.cells[static_cast<std::size_t>(cell.index)] = std::move(result);
  };

  const int lanes = options_.threads > 1 ? options_.threads : 1;
  if (lanes == 1) {
    for (const SweepCell& cell : cells) run_cell(cell);
  } else {
    // Dynamic dealing: cells are uneven, so lanes pull from an atomic
    // cursor instead of taking static chunks.
    par::ThreadPool pool(lanes);
    std::atomic<std::size_t> next{0};
    pool.parallel_for(static_cast<std::size_t>(lanes),
                      [&](std::size_t /*lane*/) {
                        for (;;) {
                          const std::size_t i = next.fetch_add(1);
                          if (i >= cells.size()) break;
                          run_cell(cells[i]);
                        }
                      });
  }

  for (const CellResult& result : out.cells) {
    if (!result.ok) ++out.failed;
  }
  out.seconds = now_seconds() - sweep_start;
  if (sink != nullptr) {
    sink->write(Json::object()
                    .set("event", Json::string("sweep_end"))
                    .set("sweep", Json::string(spec_.name))
                    .set("ok", Json::integer(total - out.failed))
                    .set("failed", Json::integer(out.failed))
                    .set("seconds", Json::number(out.seconds)));
  }
  return out;
}

SweepResult run_sweep(SweepSpec spec, SweepOptions options) {
  return SweepRunner(std::move(spec), std::move(options)).run();
}

}  // namespace psga::exp
