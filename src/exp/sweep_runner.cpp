#include "src/exp/sweep_runner.h"

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "src/ga/problem_spec.h"
#include "src/ga/solver.h"
#include "src/par/thread_pool.h"

namespace psga::exp {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Json axes_object(const SweepSpec& spec, const SweepCell& cell) {
  Json axes = Json::object();
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    axes.set(spec.axes[a].label, Json::string(cell.axis_values[a]));
  }
  return axes;
}

Json cell_record(const SweepSpec& spec, const CellResult& result,
                 const std::string& problem) {
  const SweepCell& cell = result.cell;
  Json line = Json::object();
  line.set("event", Json::string("cell"))
      .set("cell", Json::integer(cell.index))
      .set("config", Json::integer(cell.config))
      .set("instance", Json::string(cell.instance))
      .set("rep", Json::integer(cell.rep))
      .set("seed", Json::uinteger(cell.seed))
      .set("spec", Json::string(cell.spec));
  if (!problem.empty()) line.set("problem", Json::string(problem));
  line.set("axes", axes_object(spec, cell)).set("ok", Json::boolean(result.ok));
  if (!result.ok) {
    line.set("error", Json::string(result.error));
    return line;
  }
  line.set("best_objective", Json::number(result.result.best_objective))
      .set("generations", Json::integer(result.result.generations))
      .set("evaluations", Json::integer(result.result.evaluations))
      .set("seconds", Json::number(result.seconds));
  if (result.result.cache) {
    line.set("cache",
             Json::object()
                 .set("hits", Json::integer(result.result.cache->hits))
                 .set("misses", Json::integer(result.result.cache->misses))
                 .set("inserts", Json::integer(result.result.cache->inserts))
                 .set("evictions",
                      Json::integer(result.result.cache->evictions)));
  }
  return line;
}

/// How one cell resolves: the canonical problem spec (the cache key and
/// provenance string), the solver half of the cell tokens, or the
/// structured error that poisoned the cell at plan time.
struct CellPlan {
  bool ok = false;
  std::string error;
  /// Key into the shared problem map: the canonical ProblemSpec string,
  /// or the raw instance name under a custom resolver.
  std::string problem_key;
  /// Canonical ProblemSpec for provenance ("" under a custom resolver).
  std::string canonical;
  std::string solver_text;               ///< SolverSpec tokens of the cell
  std::optional<ga::ProblemSpec> pspec;  ///< parsed problem half
};

/// Splits a cell's combined tokens and folds the @instances entry into
/// the problem half. Throws for malformed halves, for an instance=
/// token fighting the @instances entry, and for problem tokens under a
/// custom resolver (which owns instance semantics entirely — silently
/// dropping them would let a criterion=/decoder= axis report a
/// fabricated effect while every cell solves the same problem).
CellPlan plan_cell(const SweepCell& cell, bool custom_resolver) {
  CellPlan plan;
  auto [problem_text, solver_text] = ga::split_spec_tokens(cell.spec);
  plan.solver_text = std::move(solver_text);
  if (custom_resolver) {
    if (!problem_text.empty()) {
      throw std::invalid_argument(
          "SweepSpec: problem tokens '" + problem_text +
          "' do not apply under a custom resolver");
    }
    plan.problem_key = cell.instance;
    plan.ok = true;
    return plan;
  }
  if (!cell.instance.empty()) {
    if (problem_text.find("instance=") != std::string::npos) {
      throw std::invalid_argument(
          "SweepSpec: instance= token '" + problem_text +
          "' conflicts with @instances entry '" + cell.instance + "'");
    }
    if (!problem_text.empty()) problem_text += ' ';
    problem_text += "instance=" + cell.instance;
  }
  plan.pspec = ga::ProblemSpec::parse(problem_text);
  plan.canonical = plan.pspec->to_string();
  plan.problem_key = plan.canonical;
  plan.ok = true;
  return plan;
}

}  // namespace

ga::ProblemPtr default_resolver(const std::string& name) {
  if (name.empty()) {
    throw std::invalid_argument(
        "sweep has no @instances and no custom resolver");
  }
  // One source of truth for instance tokens: the problem registry
  // (family inferred from the token, see ProblemSpec::parse).
  return ga::ProblemSpec::parse("instance=" + name).build();
}

SweepRunner::SweepRunner(SweepSpec spec, SweepOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {}

SweepResult SweepRunner::run() {
  const double sweep_start = now_seconds();
  SweepResult out;
  out.spec = spec_;
  std::vector<SweepCell> cells = spec_.expand();
  if (cells.empty()) {
    throw std::invalid_argument("SweepSpec '" + spec_.name +
                                "' expands to zero cells");
  }
  const bool custom_resolver = static_cast<bool>(options_.resolve);

  // Plan every cell (split the combined problem+solver tokens, fold in
  // the @instances entry), then resolve each distinct problem once, up
  // front and serially. Distinct means distinct canonical ProblemSpec —
  // cells varying only engine tokens share one Problem, cells varying
  // problem tokens each get their own. A failed plan or resolution
  // poisons only the affected cells (fail-soft); resolution errors carry
  // the canonical problem spec so telemetry pinpoints which expansion
  // failed.
  std::vector<CellPlan> plans(cells.size());
  std::map<std::string, ga::ProblemPtr> problems;
  std::map<std::string, std::string> resolve_errors;
  for (const SweepCell& cell : cells) {
    CellPlan& plan = plans[static_cast<std::size_t>(cell.index)];
    try {
      plan = plan_cell(cell, custom_resolver);
    } catch (const std::exception& e) {
      plan.ok = false;
      plan.error = e.what();
      continue;
    }
    if (problems.count(plan.problem_key) ||
        resolve_errors.count(plan.problem_key)) {
      continue;
    }
    try {
      ga::ProblemPtr problem = custom_resolver
                                   ? options_.resolve(cell.instance)
                                   : plan.pspec->build();
      if (problem == nullptr) {
        throw std::invalid_argument("resolver returned null for instance '" +
                                    cell.instance + "'");
      }
      problems[plan.problem_key] = std::move(problem);
    } catch (const std::exception& e) {
      resolve_errors[plan.problem_key] = e.what();
    }
  }

  TelemetrySink* sink = options_.telemetry;
  if (sink != nullptr) {
    Json axes = Json::array();
    for (const SweepAxis& axis : spec_.axes) {
      Json values = Json::array();
      for (const std::string& value : axis.values) {
        values.push(Json::string(value));
      }
      axes.push(Json::object()
                    .set("label", Json::string(axis.label))
                    .set("values", std::move(values)));
    }
    Json instances = Json::array();
    // From the expanded cells (the authoritative list), not a second
    // expand_instances() glob that could disagree with the grid run.
    for (const SweepCell& cell : cells) {
      if (cell.instance_index ==
          static_cast<int>(instances.items().size())) {
        instances.push(Json::string(cell.instance));
      }
    }
    sink->write(Json::object()
                    .set("event", Json::string("sweep_begin"))
                    .set("sweep", Json::string(spec_.name))
                    .set("cells", Json::integer(static_cast<long long>(
                                      cells.size())))
                    .set("configs", Json::integer(spec_.configs()))
                    .set("reps", Json::integer(spec_.reps))
                    .set("seed", Json::uinteger(spec_.seed))
                    .set("base", Json::string(spec_.base))
                    .set("axes", std::move(axes))
                    .set("instances", std::move(instances)));
  }

  out.cells.resize(cells.size());
  std::mutex progress_mutex;
  int done = 0;  // guarded by progress_mutex: callbacks see monotonic counts
  const int total = static_cast<int>(cells.size());

  auto run_cell = [&](const SweepCell& cell) {
    const CellPlan& plan = plans[static_cast<std::size_t>(cell.index)];
    CellResult result;
    result.cell = cell;
    if (sink != nullptr) {
      Json begin = Json::object();
      begin.set("event", Json::string("run_begin"))
          .set("cell", Json::integer(cell.index))
          .set("config", Json::integer(cell.config))
          .set("instance", Json::string(cell.instance))
          .set("rep", Json::integer(cell.rep))
          .set("seed", Json::uinteger(cell.seed))
          .set("spec", Json::string(cell.spec));
      if (!plan.canonical.empty()) {
        begin.set("problem", Json::string(plan.canonical));
      }
      sink->write(std::move(begin));
    }
    const double start = now_seconds();
    try {
      if (!plan.ok) throw std::invalid_argument(plan.error);
      const auto poisoned = resolve_errors.find(plan.problem_key);
      if (poisoned != resolve_errors.end()) {
        throw std::invalid_argument(poisoned->second);
      }
      // A private single-lane pool: engine-level parallelism runs inline
      // on this lane, so pool regions never nest inside the sweep pool.
      par::ThreadPool cell_pool(1);
      ga::Solver solver =
          ga::Solver::build(ga::SolverSpec::parse(plan.solver_text),
                            problems.at(plan.problem_key), &cell_pool);
      std::optional<CellObserver> observer;
      if (sink != nullptr) {
        observer.emplace(*sink, cell.index, options_.telemetry_every);
        solver.set_observer(&*observer);
      }
      result.result = solver.run(spec_.stop);
      result.result.problem = plan.canonical;
      result.ok = true;
    } catch (const std::exception& e) {
      result.ok = false;
      result.error = e.what();
    }
    result.seconds = now_seconds() - start;
    if (sink != nullptr) sink->write(cell_record(spec_, result, plan.canonical));
    {
      std::lock_guard lock(progress_mutex);
      ++done;
      if (options_.progress) options_.progress(result, done, total);
    }
    out.cells[static_cast<std::size_t>(cell.index)] = std::move(result);
  };

  const int lanes = options_.threads > 1 ? options_.threads : 1;
  if (lanes == 1) {
    for (const SweepCell& cell : cells) run_cell(cell);
  } else {
    // Dynamic dealing: cells are uneven, so lanes pull from an atomic
    // cursor instead of taking static chunks.
    par::ThreadPool pool(lanes);
    std::atomic<std::size_t> next{0};
    pool.parallel_for(static_cast<std::size_t>(lanes),
                      [&](std::size_t /*lane*/) {
                        for (;;) {
                          const std::size_t i = next.fetch_add(1);
                          if (i >= cells.size()) break;
                          run_cell(cells[i]);
                        }
                      });
  }

  for (const CellResult& result : out.cells) {
    if (!result.ok) ++out.failed;
  }
  out.seconds = now_seconds() - sweep_start;
  if (sink != nullptr) {
    sink->write(Json::object()
                    .set("event", Json::string("sweep_end"))
                    .set("sweep", Json::string(spec_.name))
                    .set("ok", Json::integer(total - out.failed))
                    .set("failed", Json::integer(out.failed))
                    .set("seconds", Json::number(out.seconds)));
  }
  return out;
}

SweepResult run_sweep(SweepSpec spec, SweepOptions options) {
  return SweepRunner(std::move(spec), std::move(options)).run();
}

}  // namespace psga::exp
