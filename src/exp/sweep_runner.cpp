#include "src/exp/sweep_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <istream>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "src/exp/obs_json.h"
#include "src/ga/problem_spec.h"
#include "src/ga/solver.h"
#include "src/par/thread_pool.h"

namespace psga::exp {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Json axes_object(const SweepSpec& spec, const SweepCell& cell) {
  Json axes = Json::object();
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    axes.set(spec.axes[a].label, Json::string(cell.axis_values[a]));
  }
  return axes;
}

/// How one cell resolves: the canonical problem spec (the cache key and
/// provenance string), the solver half of the cell tokens, or the
/// structured error that poisoned the cell at plan time.
struct CellPlan {
  bool ok = false;
  std::string error;
  /// Key into the shared problem map: the canonical ProblemSpec string,
  /// or the raw instance name under a custom resolver.
  std::string problem_key;
  /// Canonical ProblemSpec for provenance ("" under a custom resolver).
  std::string canonical;
  std::string solver_text;               ///< SolverSpec tokens of the cell
  std::optional<ga::ProblemSpec> pspec;  ///< parsed problem half
};

/// Splits a cell's combined tokens and folds the @instances entry into
/// the problem half. Throws for malformed halves, for an instance=
/// token fighting the @instances entry, and for problem tokens under a
/// custom resolver (which owns instance semantics entirely — silently
/// dropping them would let a criterion=/decoder= axis report a
/// fabricated effect while every cell solves the same problem).
CellPlan plan_cell(const SweepCell& cell, bool custom_resolver) {
  CellPlan plan;
  auto [problem_text, solver_text] = ga::split_spec_tokens(cell.spec);
  plan.solver_text = std::move(solver_text);
  if (custom_resolver) {
    if (!problem_text.empty()) {
      throw std::invalid_argument(
          "SweepSpec: problem tokens '" + problem_text +
          "' do not apply under a custom resolver");
    }
    plan.problem_key = cell.instance;
    plan.ok = true;
    return plan;
  }
  if (!cell.instance.empty()) {
    if (problem_text.find("instance=") != std::string::npos) {
      throw std::invalid_argument(
          "SweepSpec: instance= token '" + problem_text +
          "' conflicts with @instances entry '" + cell.instance + "'");
    }
    if (!problem_text.empty()) problem_text += ' ';
    problem_text += "instance=" + cell.instance;
  }
  plan.pspec = ga::ProblemSpec::parse(problem_text);
  plan.canonical = plan.pspec->to_string();
  plan.problem_key = plan.canonical;
  plan.ok = true;
  return plan;
}

}  // namespace

ga::ProblemPtr default_resolver(const std::string& name) {
  if (name.empty()) {
    throw std::invalid_argument(
        "sweep has no @instances and no custom resolver");
  }
  // One source of truth for instance tokens: the problem registry
  // (family inferred from the token, see ProblemSpec::parse).
  return ga::ProblemSpec::parse("instance=" + name).build();
}

Json sweep_begin_record(const SweepSpec& spec,
                        const std::vector<SweepCell>& cells) {
  Json axes = Json::array();
  for (const SweepAxis& axis : spec.axes) {
    Json values = Json::array();
    for (std::size_t i = 0; i < axis.values.size(); ++i) {
      values.push(Json::string(axis.value_label(i)));
    }
    axes.push(Json::object()
                  .set("label", Json::string(axis.label))
                  .set("values", std::move(values)));
  }
  Json instances = Json::array();
  // From the expanded cells (the authoritative list), not a second
  // expand_instances() glob that could disagree with the grid run.
  for (const SweepCell& cell : cells) {
    if (cell.instance_index == static_cast<int>(instances.items().size())) {
      instances.push(Json::string(cell.instance));
    }
  }
  Json line = Json::object();
  line.set("event", Json::string("sweep_begin"))
      .set("sweep", Json::string(spec.name))
      .set("cells", Json::integer(static_cast<long long>(cells.size())))
      .set("configs", Json::integer(spec.configs()))
      .set("reps", Json::integer(spec.reps))
      .set("seed", Json::uinteger(spec.seed))
      .set("base", Json::string(spec.base));
  if (spec.reference > 0) line.set("reference", Json::number(spec.reference));
  line.set("axes", std::move(axes)).set("instances", std::move(instances));
  return line;
}

Json run_begin_record(const SweepCell& cell, const std::string& problem) {
  Json begin = Json::object();
  begin.set("event", Json::string("run_begin"))
      .set("cell", Json::integer(cell.index))
      .set("config", Json::integer(cell.config))
      .set("instance", Json::string(cell.instance))
      .set("rep", Json::integer(cell.rep))
      .set("seed", Json::uinteger(cell.seed))
      .set("spec", Json::string(cell.spec));
  if (!problem.empty()) begin.set("problem", Json::string(problem));
  return begin;
}

Json cell_record(const SweepSpec& spec, const CellResult& result,
                 const std::string& problem) {
  const SweepCell& cell = result.cell;
  Json line = Json::object();
  line.set("event", Json::string("cell"))
      .set("cell", Json::integer(cell.index))
      .set("config", Json::integer(cell.config))
      .set("instance", Json::string(cell.instance))
      .set("rep", Json::integer(cell.rep))
      .set("seed", Json::uinteger(cell.seed))
      .set("hash", Json::string(sweep_cell_hash_hex(spec.name, cell)))
      .set("spec", Json::string(cell.spec));
  if (!problem.empty()) line.set("problem", Json::string(problem));
  line.set("axes", axes_object(spec, cell)).set("ok", Json::boolean(result.ok));
  if (!result.ok) {
    line.set("error", Json::string(result.error));
    return line;
  }
  line.set("best_objective", Json::number(result.result.best_objective))
      .set("generations", Json::integer(result.result.generations))
      .set("evaluations", Json::integer(result.result.evaluations))
      .set("seconds", Json::number(result.seconds));
  // Cache counters are always engaged (Engine::run fills all-zero stats
  // when no cache is configured), so downstream consumers never branch
  // on their presence. value_or covers results resumed from pre-schema
  // telemetry files, which may predate the unconditional field.
  const ga::EvalCacheStats cache =
      result.result.cache.value_or(ga::EvalCacheStats{});
  line.set("cache", Json::object()
                        .set("hits", Json::integer(cache.hits))
                        .set("misses", Json::integer(cache.misses))
                        .set("inserts", Json::integer(cache.inserts))
                        .set("evictions", Json::integer(cache.evictions)));
  return line;
}

Json cell_metrics_record(const SweepSpec& spec, const SweepCell& cell,
                         const obs::MetricsSnapshot& metrics) {
  return Json::object()
      .set("event", Json::string("metrics"))
      .set("cell", Json::integer(cell.index))
      .set("hash", Json::string(sweep_cell_hash_hex(spec.name, cell)))
      .set("metrics", metrics_to_json(metrics));
}

Json sweep_end_record(const SweepSpec& spec, int ok, int failed,
                      double seconds) {
  return Json::object()
      .set("event", Json::string("sweep_end"))
      .set("sweep", Json::string(spec.name))
      .set("ok", Json::integer(ok))
      .set("failed", Json::integer(failed))
      .set("seconds", Json::number(seconds));
}

FinishedCells scan_finished_cells(std::istream& in) {
  FinishedCells finished;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Json record;
    try {
      record = Json::parse(line);
    } catch (const std::exception&) {
      // The truncated tail a SIGKILL leaves mid-write — not a finished
      // cell, so the resumed run simply re-runs whatever it described.
      continue;
    }
    if (!record.is_object()) continue;
    if (record.string_or("event", "") != "cell") continue;
    const Json* hash = record.find("hash");
    if (hash == nullptr || hash->kind() != Json::Kind::kString) continue;
    finished[hash->as_string()] = std::move(record);
  }
  return finished;
}

CellResult cell_result_from_record(const SweepCell& cell, const Json& record) {
  CellResult result;
  result.cell = cell;
  result.resumed = true;
  const Json* ok = record.find("ok");
  result.ok = ok != nullptr && ok->kind() == Json::Kind::kBool && ok->as_bool();
  result.seconds = record.number_or("seconds", 0.0);
  if (!result.ok) {
    result.error = record.string_or("error", "unknown error (resumed)");
    return result;
  }
  result.result.best_objective = record.number_or("best_objective", 0.0);
  result.result.generations =
      static_cast<int>(record.number_or("generations", 0.0));
  if (const Json* evals = record.find("evaluations")) {
    result.result.evaluations = evals->as_i64();
  }
  result.result.problem = record.string_or("problem", "");
  if (const Json* cache = record.find("cache")) {
    ga::EvalCacheStats stats;
    stats.hits = static_cast<long long>(cache->number_or("hits", 0.0));
    stats.misses = static_cast<long long>(cache->number_or("misses", 0.0));
    stats.inserts = static_cast<long long>(cache->number_or("inserts", 0.0));
    stats.evictions =
        static_cast<long long>(cache->number_or("evictions", 0.0));
    result.result.cache = stats;
  }
  return result;
}

SweepRunner::SweepRunner(SweepSpec spec, SweepOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {}

SweepResult SweepRunner::run() {
  const double sweep_start = now_seconds();
  SweepResult out;
  out.spec = spec_;
  std::vector<SweepCell> cells = spec_.expand();
  if (cells.empty()) {
    throw std::invalid_argument("SweepSpec '" + spec_.name +
                                "' expands to zero cells");
  }
  const bool custom_resolver = static_cast<bool>(options_.resolve);

  // Resume: match each cell against the finished records of a previous
  // run by stable cell hash. Matched cells skip planning, problem
  // resolution and execution entirely — a cell whose instance no longer
  // resolves still resumes cleanly.
  std::vector<const Json*> resumed(cells.size(), nullptr);
  if (options_.resume != nullptr && !options_.resume->empty()) {
    for (const SweepCell& cell : cells) {
      const auto it =
          options_.resume->find(sweep_cell_hash_hex(spec_.name, cell));
      if (it != options_.resume->end()) {
        resumed[static_cast<std::size_t>(cell.index)] = &it->second;
      }
    }
  }

  // Plan every cell (split the combined problem+solver tokens, fold in
  // the @instances entry), then resolve each distinct problem once, up
  // front and serially. Distinct means distinct canonical ProblemSpec —
  // cells varying only engine tokens share one Problem, cells varying
  // problem tokens each get their own. A failed plan or resolution
  // poisons only the affected cells (fail-soft); resolution errors carry
  // the canonical problem spec so telemetry pinpoints which expansion
  // failed.
  std::vector<CellPlan> plans(cells.size());
  std::map<std::string, ga::ProblemPtr> problems;
  std::map<std::string, std::string> resolve_errors;
  for (const SweepCell& cell : cells) {
    if (resumed[static_cast<std::size_t>(cell.index)] != nullptr) continue;
    CellPlan& plan = plans[static_cast<std::size_t>(cell.index)];
    try {
      plan = plan_cell(cell, custom_resolver);
    } catch (const std::exception& e) {
      plan.ok = false;
      plan.error = e.what();
      continue;
    }
    if (problems.count(plan.problem_key) ||
        resolve_errors.count(plan.problem_key)) {
      continue;
    }
    try {
      ga::ProblemPtr problem = custom_resolver
                                   ? options_.resolve(cell.instance)
                                   : plan.pspec->build();
      if (problem == nullptr) {
        throw std::invalid_argument("resolver returned null for instance '" +
                                    cell.instance + "'");
      }
      problems[plan.problem_key] = std::move(problem);
    } catch (const std::exception& e) {
      resolve_errors[plan.problem_key] = e.what();
    }
  }

  TelemetrySink* sink = options_.telemetry;
  if (sink != nullptr) sink->write(sweep_begin_record(spec_, cells));

  out.cells.resize(cells.size());
  std::mutex progress_mutex;
  int done = 0;  // guarded by progress_mutex: callbacks see monotonic counts
  const int total = static_cast<int>(cells.size());
  std::mutex trace_mutex;  // guards out.trace across lanes

  auto run_cell = [&](const SweepCell& cell) {
    if (const Json* record = resumed[static_cast<std::size_t>(cell.index)]) {
      // Reconstructed from the resume file: no execution, and no new
      // telemetry — the file already holds this cell's records, so the
      // appended stream unions to one uninterrupted run's.
      CellResult result = cell_result_from_record(cell, *record);
      {
        std::lock_guard lock(progress_mutex);
        ++done;
        if (options_.progress) options_.progress(result, done, total);
      }
      out.cells[static_cast<std::size_t>(cell.index)] = std::move(result);
      return;
    }
    const CellPlan& plan = plans[static_cast<std::size_t>(cell.index)];
    CellResult result;
    result.cell = cell;
    if (sink != nullptr) sink->write(run_begin_record(cell, plan.canonical));
    const double start = now_seconds();
    try {
      if (!plan.ok) throw std::invalid_argument(plan.error);
      const auto poisoned = resolve_errors.find(plan.problem_key);
      if (poisoned != resolve_errors.end()) {
        throw std::invalid_argument(poisoned->second);
      }
      // A private single-lane pool: engine-level parallelism runs inline
      // on this lane, so pool regions never nest inside the sweep pool.
      par::ThreadPool cell_pool(1);
      ga::SolverSpec sspec = ga::SolverSpec::parse(plan.solver_text);
      // The trace overlay touches only the spec handed to build: the
      // recorded cell spec and resume hash stay the sweep's own tokens,
      // so traced and untraced runs of one sweep resume each other.
      if (options_.trace) sspec.trace = true;
      ga::Solver solver = ga::Solver::build(
          std::move(sspec), problems.at(plan.problem_key), &cell_pool);
      std::optional<CellObserver> observer;
      if (sink != nullptr) {
        observer.emplace(*sink, cell.index, options_.telemetry_every);
        solver.set_observer(&*observer);
      }
      result.result = solver.run(spec_.stop);
      result.result.problem = plan.canonical;
      result.ok = true;
      if (options_.trace) {
        if (const auto tracer = solver.engine().tracer_shared()) {
          obs::TraceProcess process;
          process.pid = cell.index;
          process.name = "cell " + std::to_string(cell.index) + ": " +
                         cell.spec +
                         (cell.instance.empty() ? "" : " @" + cell.instance);
          process.events = tracer->events();
          std::lock_guard lock(trace_mutex);
          out.trace.push_back(std::move(process));
        }
      }
    } catch (const std::exception& e) {
      result.ok = false;
      result.error = e.what();
    }
    result.seconds = now_seconds() - start;
    if (sink != nullptr) {
      sink->write(cell_record(spec_, result, plan.canonical));
      if (result.ok && result.result.metrics) {
        sink->write(
            cell_metrics_record(spec_, cell, *result.result.metrics));
      }
    }
    {
      std::lock_guard lock(progress_mutex);
      ++done;
      if (options_.progress) options_.progress(result, done, total);
    }
    out.cells[static_cast<std::size_t>(cell.index)] = std::move(result);
  };

  const int lanes = options_.threads > 1 ? options_.threads : 1;
  if (lanes == 1) {
    for (const SweepCell& cell : cells) run_cell(cell);
  } else {
    // Dynamic dealing: cells are uneven, so lanes pull from an atomic
    // cursor instead of taking static chunks.
    par::ThreadPool pool(lanes);
    std::atomic<std::size_t> next{0};
    pool.parallel_for(static_cast<std::size_t>(lanes),
                      [&](std::size_t /*lane*/) {
                        for (;;) {
                          const std::size_t i = next.fetch_add(1);
                          if (i >= cells.size()) break;
                          run_cell(cells[i]);
                        }
                      });
  }

  for (const CellResult& result : out.cells) {
    if (!result.ok) ++out.failed;
  }
  // Lanes push trace processes in completion order; present them by cell.
  std::sort(out.trace.begin(), out.trace.end(),
            [](const obs::TraceProcess& a, const obs::TraceProcess& b) {
              return a.pid < b.pid;
            });
  out.seconds = now_seconds() - sweep_start;
  if (sink != nullptr) {
    sink->write(sweep_end_record(spec_, total - out.failed, out.failed,
                                 out.seconds));
  }
  return out;
}

SweepResult run_sweep(SweepSpec spec, SweepOptions options) {
  return SweepRunner(std::move(spec), std::move(options)).run();
}

}  // namespace psga::exp
