// Reduces sweep results into the study tables the experiment benches and
// examples print: per-(configuration, instance) descriptive statistics
// over replications, keyed by axis values, via stats::descriptive and
// stats::Table.
//
// Everything here is a pure function of the CellResults (timing fields
// are deliberately excluded from the tables), so a parallel sweep's
// summary table is byte-identical to a serial one.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/exp/sweep_runner.h"
#include "src/stats/table.h"

namespace psga::exp {

/// Statistics of one (configuration, instance) group over its reps.
struct GroupSummary {
  int config = 0;
  std::string instance;
  std::vector<std::string> axis_values;  ///< one per axis
  /// Final best objectives of the successful reps, rep order.
  std::vector<double> best_objectives;
  int failed = 0;  ///< reps that recorded an error
  double best = 0.0;
  double mean = 0.0;
  double stddev = 0.0;      ///< sample stddev; 0 when fewer than 2 reps
  double mean_rpd = 0.0;    ///< vs SweepSpec::reference (when set)
  double mean_evaluations = 0.0;
  /// Mean best-so-far convergence curve over the successful reps,
  /// truncated to the shortest rep history.
  std::vector<double> mean_history;
};

struct SweepSummary {
  /// Groups in config-major, instance-minor order (table row order).
  std::vector<GroupSummary> groups;
  int failed_cells = 0;
};

/// Groups `result`'s cells and computes the per-group statistics.
SweepSummary summarize(const SweepResult& result);

/// Renders the summary as a study table: one row per group with the axis
/// values, the instance (when more than one), rep counts and the
/// best/mean/stddev columns — plus "mean RPD (%)" when the spec set
/// @reference. Deterministic across thread counts.
stats::Table summary_table(const SweepSpec& spec, const SweepSummary& summary);

/// Prints a sweep heading, the summary table and a failure note (if any)
/// to `out` — the one rendering shared by psga_sweep and the ported
/// examples/benches, so the CLI reproduces their tables byte-for-byte.
void print_summary(const SweepResult& result, std::ostream& out);

}  // namespace psga::exp
