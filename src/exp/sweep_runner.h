// Executes an expanded SweepSpec: schedules cells across a thread pool,
// runs each cell's Solver, streams telemetry and captures per-cell
// errors without aborting the sweep.
//
// Parallel model: cells are the unit of parallelism. The runner owns a
// par::ThreadPool of `threads` lanes and deals cells to lanes through an
// atomic cursor (cells are wildly uneven — static chunks would idle
// lanes), and every cell runs its engine on a private single-thread pool
// so engine-level pool parallelism never nests inside the sweep pool.
// Because each cell's seed derives from its index alone, per-cell
// results are bit-identical between serial and parallel sweeps and
// across thread counts; only telemetry line order and timing fields
// differ.
//
// Fail-soft: a cell whose SolverSpec fails to parse, whose engine name
// is unknown or whose instance cannot be resolved records a structured
// error (CellResult::error + an ok=false telemetry record) and the sweep
// carries on.
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/exp/sweep_spec.h"
#include "src/exp/telemetry.h"
#include "src/ga/problem.h"
#include "src/ga/result.h"
#include "src/obs/trace.h"

namespace psga::exp {

/// Maps an @instances entry to a Problem. Implementations throw
/// std::exception subclasses to report unresolvable names (captured as
/// the cell error). Called once per distinct instance, before cells run;
/// the resolved Problem is shared by every cell of that instance
/// (Problem::objective is const and pure, so concurrent cells are safe).
/// When a custom resolver is installed it owns instance semantics
/// entirely — problem-side tokens in the sweep do not apply.
using ProblemResolver = std::function<ga::ProblemPtr(const std::string&)>;

/// The spec-driven fallback used when no custom resolver is set: builds
/// `ga::ProblemSpec::parse("instance=" + name)` through the problem
/// registry, so files load by extension, canonical benchmark names
/// (ta001..ta010, ft06..la01) regenerate from the embedded sources, and
/// gen: tokens hit sched::generators. Without a resolver the runner goes
/// further than this helper: each cell's problem-side tokens (problem=,
/// criterion=, encoding=, ...) combine with its @instances entry into a
/// full ProblemSpec, so one sweep can span problem families; problems
/// are cached per canonical spec string, and unresolvable cells fail
/// soft with errors that carry that canonical spec.
ga::ProblemPtr default_resolver(const std::string& name);

struct CellResult {
  SweepCell cell;
  bool ok = false;
  std::string error;      ///< when !ok: what failed (parse/build/run)
  ga::RunResult result;   ///< when ok
  double seconds = 0.0;   ///< wall-clock of this cell
  /// True when the result was reconstructed from a resume file instead
  /// of running (history is then empty; final fields are exact).
  bool resumed = false;
};

struct SweepResult {
  SweepSpec spec;
  /// One entry per cell, indexed by SweepCell::index regardless of
  /// execution order.
  std::vector<CellResult> cells;
  double seconds = 0.0;
  int failed = 0;
  /// When SweepOptions::trace is set: one trace process per executed
  /// cell (pid = cell index, sorted), ready for obs::write_chrome_trace.
  /// Resumed and failed cells contribute no process.
  std::vector<obs::TraceProcess> trace;
};

/// Finished cells recovered from a previous run's telemetry, keyed by
/// the cell-hash hex string stamped into every final `cell` record.
using FinishedCells = std::map<std::string, Json>;

/// Scans a telemetry JSONL stream (typically the `--telemetry` file of a
/// killed run) for final `cell` records and returns them keyed by cell
/// hash. Malformed or truncated lines — the tail a SIGKILL leaves — are
/// skipped, as are records of other events and pre-hash schema files.
FinishedCells scan_finished_cells(std::istream& in);

/// Reconstructs a CellResult (resumed=true, empty history) from the
/// final `cell` telemetry record of a previous run. Final fields
/// (best_objective, generations, evaluations, cache, error) round-trip
/// exactly — summary tables over resumed results match the original run
/// byte for byte; only `seconds` is the old run's wall clock.
CellResult cell_result_from_record(const SweepCell& cell, const Json& record);

struct SweepOptions {
  /// Cells in flight; <= 1 runs the sweep serially on the caller.
  int threads = 1;
  /// Optional JSONL sink (see telemetry.h for the schema).
  TelemetrySink* telemetry = nullptr;
  /// Generation-event stride (1 = every generation, 0 = final records
  /// only). Improvement/migration events always stream when a sink is set.
  int telemetry_every = 1;
  /// Instance resolver; default_resolver when unset.
  ProblemResolver resolve;
  /// Finished cells from a previous run (scan_finished_cells): matching
  /// cells are reconstructed instead of re-run and write no telemetry —
  /// append new lines to the same file and the union of cell records
  /// equals one uninterrupted run's. Not owned; may be null.
  const FinishedCells* resume = nullptr;
  /// Called after every finished cell (any lane, serialized by the
  /// runner): the cell's result plus done/total progress.
  std::function<void(const CellResult&, int done, int total)> progress;
  /// Stage tracing: overlays `trace=on` onto each cell's solver spec at
  /// build time only — the recorded cell spec and resume hash are the
  /// sweep's own tokens, so traced and untraced runs resume each other.
  /// Collected spans land in SweepResult::trace.
  bool trace = false;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepSpec spec, SweepOptions options = {});

  /// Expands and runs the whole grid. Throws only for unrunnable sweeps
  /// (empty grid, glob matching nothing) — per-cell failures are
  /// captured in the results.
  SweepResult run();

 private:
  SweepSpec spec_;
  SweepOptions options_;
};

/// Convenience: expand + run in one call.
SweepResult run_sweep(SweepSpec spec, SweepOptions options = {});

// --- telemetry record builders ----------------------------------------------
// One source of truth for the sweep telemetry line layouts: the runner
// writes these in-process and svc::dispatch_sweep writes the *same*
// records around the daemon's watch stream, so dispatched telemetry is
// byte-compatible with in-process telemetry (see docs/sweeps.md).

/// `sweep_begin`: grid shape, axes (display values) and instance list.
Json sweep_begin_record(const SweepSpec& spec,
                        const std::vector<SweepCell>& cells);

/// `run_begin` for one cell; `problem` is the canonical ProblemSpec
/// ("" omits the field — custom resolvers, unplannable cells).
Json run_begin_record(const SweepCell& cell, const std::string& problem);

/// Final `cell` record incl. the stable cell hash (resume key). Cache
/// counters are always present on ok records — all-zero when the cell
/// ran without an EvalCache — so downstream consumers never branch on
/// their existence.
Json cell_record(const SweepSpec& spec, const CellResult& result,
                 const std::string& problem);

/// `metrics`: the per-run MetricsSnapshot of one cell (obs_json layout
/// under the "metrics" key). Written by the in-process runner right
/// after the `cell` record; keyed by the same cell index/hash so report
/// tooling can join the two lines.
Json cell_metrics_record(const SweepSpec& spec, const SweepCell& cell,
                         const obs::MetricsSnapshot& metrics);

/// `sweep_end` with ok/failed counts.
Json sweep_end_record(const SweepSpec& spec, int ok, int failed,
                      double seconds);

}  // namespace psga::exp
