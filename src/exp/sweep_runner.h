// Executes an expanded SweepSpec: schedules cells across a thread pool,
// runs each cell's Solver, streams telemetry and captures per-cell
// errors without aborting the sweep.
//
// Parallel model: cells are the unit of parallelism. The runner owns a
// par::ThreadPool of `threads` lanes and deals cells to lanes through an
// atomic cursor (cells are wildly uneven — static chunks would idle
// lanes), and every cell runs its engine on a private single-thread pool
// so engine-level pool parallelism never nests inside the sweep pool.
// Because each cell's seed derives from its index alone, per-cell
// results are bit-identical between serial and parallel sweeps and
// across thread counts; only telemetry line order and timing fields
// differ.
//
// Fail-soft: a cell whose SolverSpec fails to parse, whose engine name
// is unknown or whose instance cannot be resolved records a structured
// error (CellResult::error + an ok=false telemetry record) and the sweep
// carries on.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/exp/sweep_spec.h"
#include "src/exp/telemetry.h"
#include "src/ga/problem.h"
#include "src/ga/result.h"

namespace psga::exp {

/// Maps an @instances entry to a Problem. Implementations throw
/// std::exception subclasses to report unresolvable names (captured as
/// the cell error). Called once per distinct instance, before cells run;
/// the resolved Problem is shared by every cell of that instance
/// (Problem::objective is const and pure, so concurrent cells are safe).
/// When a custom resolver is installed it owns instance semantics
/// entirely — problem-side tokens in the sweep do not apply.
using ProblemResolver = std::function<ga::ProblemPtr(const std::string&)>;

/// The spec-driven fallback used when no custom resolver is set: builds
/// `ga::ProblemSpec::parse("instance=" + name)` through the problem
/// registry, so files load by extension, canonical benchmark names
/// (ta001..ta010, ft06..la01) regenerate from the embedded sources, and
/// gen: tokens hit sched::generators. Without a resolver the runner goes
/// further than this helper: each cell's problem-side tokens (problem=,
/// criterion=, encoding=, ...) combine with its @instances entry into a
/// full ProblemSpec, so one sweep can span problem families; problems
/// are cached per canonical spec string, and unresolvable cells fail
/// soft with errors that carry that canonical spec.
ga::ProblemPtr default_resolver(const std::string& name);

struct CellResult {
  SweepCell cell;
  bool ok = false;
  std::string error;      ///< when !ok: what failed (parse/build/run)
  ga::RunResult result;   ///< when ok
  double seconds = 0.0;   ///< wall-clock of this cell
};

struct SweepResult {
  SweepSpec spec;
  /// One entry per cell, indexed by SweepCell::index regardless of
  /// execution order.
  std::vector<CellResult> cells;
  double seconds = 0.0;
  int failed = 0;
};

struct SweepOptions {
  /// Cells in flight; <= 1 runs the sweep serially on the caller.
  int threads = 1;
  /// Optional JSONL sink (see telemetry.h for the schema).
  TelemetrySink* telemetry = nullptr;
  /// Generation-event stride (1 = every generation, 0 = final records
  /// only). Improvement/migration events always stream when a sink is set.
  int telemetry_every = 1;
  /// Instance resolver; default_resolver when unset.
  ProblemResolver resolve;
  /// Called after every finished cell (any lane, serialized by the
  /// runner): the cell's result plus done/total progress.
  std::function<void(const CellResult&, int done, int total)> progress;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepSpec spec, SweepOptions options = {});

  /// Expands and runs the whole grid. Throws only for unrunnable sweeps
  /// (empty grid, glob matching nothing) — per-cell failures are
  /// captured in the results.
  SweepResult run();

 private:
  SweepSpec spec_;
  SweepOptions options_;
};

/// Convenience: expand + run in one call.
SweepResult run_sweep(SweepSpec spec, SweepOptions options = {});

}  // namespace psga::exp
