// Declarative sweep descriptions: a grid of SolverSpec configurations ×
// problem instances × replications, expanded into a deterministic list
// of cells.
//
// The compact grid syntax is the SolverSpec token language plus braces
// and @-directives:
//
//   engine=island pop=20 islands=6 policy=best-random interval=8
//   topology={ring,grid,torus,full,star,hypercube,random}
//   @instances=data/ta00*.fsp
//   @reps=10
//   @generations=80
//   @seed=42
//
// Plain `key=value` tokens are the fixed base of every cell.
// `key={a,b,c}` declares an axis: the sweep crosses every axis value
// with every other axis (first-declared axis varies slowest). A bare
// braced group `{islands=2 pop=60,islands=3 pop=40,...}` declares a
// *zipped* axis whose values are whole token groups — the way to move
// several keys together (e.g. island count at fixed total population).
// Braces may also appear *inside* a `gen:` instance value
// (`instance=gen:jobs={20,50,100},machines=5`): each braced subvalue
// expands into a grouped axis of full instance tokens (instance-size
// scaling axes), labelled by the braced subkey(s) and displayed as the
// brace variants.
// `@`-directives configure the sweep itself, not the solver:
//
//   @instances=  comma-separated instance names; entries containing
//                `*`/`?`/`[` are filesystem globs expanded (sorted) at
//                expand() time, other entries pass through verbatim and
//                are resolved by the runner (paths by extension,
//                `ta001`..`ta010` from the Taillard generator, or a
//                custom resolver for generated instances)
//   @reps=       replications per (configuration, instance) cell
//   @seed=       sweep master seed (default 1)
//   @crn=on      common random numbers: pair configurations on the same
//                per-(instance, rep) seed series (study tables compare
//                rows under identical randomness)
//   @generations= / @seconds= / @evals= / @target=   the StopCondition
//   @reference=  best-known objective: summaries gain a mean-RPD column
//
// A spec file may hold several sweeps: a `[name]` line starts a new
// section (text before the first header is the sweep "sweep"). `#`
// starts a comment; newlines and spaces both separate tokens.
//
// Every cell's seed derives from hash(sweep_seed, cell_index, rep), so
// results are a pure function of the spec — independent of scheduling,
// thread count and execution order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/ga/stop.h"

namespace psga::exp {

/// One swept dimension. A keyed axis (`topology={ring,grid}`) stores the
/// bare values and renders cell tokens as `key=value`; a group axis
/// (`{islands=2 pop=60,...}`) stores whole token groups used verbatim.
struct SweepAxis {
  std::string label;                ///< key, or keys joined with '+'
  std::vector<std::string> values;  ///< value strings or token groups
  bool grouped = false;
  /// Human-facing value strings for tables/telemetry when the raw value
  /// is unwieldy (a gen: brace axis stores full `instance=gen:...`
  /// tokens in `values` and just the brace variants — "20", "50" — here).
  /// Empty = display `values` directly.
  std::vector<std::string> display;

  /// The SolverSpec token(s) contributed by `values[i]`.
  std::string token(std::size_t i) const {
    return grouped ? values[i] : label + "=" + values[i];
  }

  /// The value rendered into axis_values / summaries for `values[i]`.
  const std::string& value_label(std::size_t i) const {
    return display.empty() ? values[i] : display[i];
  }

  bool operator==(const SweepAxis&) const = default;
};

/// One expanded experiment cell: a fully resolved SolverSpec string, an
/// instance name and a replication, with a deterministic derived seed.
struct SweepCell {
  int index = 0;           ///< flat index: ((config·I)+instance)·reps+rep
  int config = 0;          ///< index into the axis cross-product
  int instance_index = 0;  ///< index into the expanded instance list
  int rep = 0;
  std::uint64_t seed = 0;  ///< derive_seed(sweep seed, index, rep)
  std::string spec;        ///< SolverSpec tokens incl. trailing seed=
  std::string instance;
  /// One value per axis (the group labels for aggregation), config-order.
  std::vector<std::string> axis_values;
};

struct SweepSpec {
  std::string name = "sweep";
  /// Fixed SolverSpec tokens shared by every cell.
  std::string base;
  std::vector<SweepAxis> axes;
  /// Raw @instances entries (globs not yet expanded).
  std::vector<std::string> instances;
  int reps = 1;
  std::uint64_t seed = 1;
  /// Common random numbers (`@crn=on`): derive cell seeds from the
  /// (instance, rep) pair only, so every configuration of a study runs
  /// the same seed series and row-vs-row differences isolate the
  /// configuration effect (the variance-reduction pairing the hand-rolled
  /// bench loops used). Off by default: seeds then hash the full cell
  /// index, making every cell an independent stream.
  bool crn = false;
  ga::StopCondition stop;   ///< from @generations/@seconds/@evals/@target
  double reference = -1.0;  ///< best-known objective; < 0 = unset

  /// Parses one sweep (no section headers). Throws std::invalid_argument
  /// naming the offending token for malformed axes, unknown
  /// @-directives and unbalanced braces.
  static SweepSpec parse(const std::string& text);

  /// Parses a whole spec file (sections split on `[name]` lines).
  static std::vector<SweepSpec> parse_file(const std::string& text);

  /// Number of axis combinations (product of axis sizes; 1 when no axes).
  long long configs() const;

  /// Expands the grid into cells, config-major then instance then rep;
  /// glob instance entries are expanded (sorted) here. Throws
  /// std::invalid_argument when a glob matches nothing or the grid is
  /// empty (reps < 1). A sweep without @instances yields one unnamed
  /// instance ("") for resolver-based callers.
  std::vector<SweepCell> expand() const;

  /// The expanded instance list (globs resolved, order preserved).
  std::vector<std::string> expand_instances() const;

  bool operator==(const SweepSpec&) const = default;
};

/// SplitMix64-style mix of (sweep_seed, cell_index, rep): the per-cell
/// engine seed. Stable across platforms and releases — telemetry files
/// stay comparable.
std::uint64_t derive_seed(std::uint64_t sweep_seed, std::uint64_t cell_index,
                          std::uint64_t rep);

/// Stable identity hash of one cell: FNV-1a over (sweep name, spec,
/// instance, rep, seed) with field separators, SplitMix64-finished. The
/// same cell hashes identically whether run in-process or dispatched,
/// and across resumes — telemetry `cell` records carry it (as
/// `sweep_cell_hash_hex`) so `--resume` can skip finished cells.
std::uint64_t sweep_cell_hash(const std::string& sweep_name,
                              const SweepCell& cell);

/// The hash as the 16-digit lowercase hex string stamped into telemetry.
std::string sweep_cell_hash_hex(const std::string& sweep_name,
                                const SweepCell& cell);

}  // namespace psga::exp
