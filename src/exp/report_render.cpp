#include "src/exp/report_render.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <map>
#include <span>
#include <sstream>

#include "src/exp/json.h"
#include "src/stats/descriptive.h"

namespace psga::exp {

namespace {

std::string fmt_double(double value) {
  std::ostringstream stream;
  stream.precision(std::numeric_limits<double>::max_digits10);
  stream << value;
  return stream.str();
}

/// Short fixed-precision rendering for the HTML tables.
std::string fmt_fixed(double value, int precision) {
  if (!(value == value)) return "nan";
  std::ostringstream stream;
  stream.setf(std::ios::fixed);
  stream.precision(precision);
  stream << value;
  return stream.str();
}

std::string csv_escape(const std::string& raw) {
  if (raw.find_first_of(",\"\n\r") == std::string::npos) return raw;
  std::string out = "\"";
  for (const char c : raw) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string html_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

ReportCell parse_cell(const Json& record) {
  ReportCell cell;
  cell.index = static_cast<int>(record.number_or("cell", 0));
  cell.config = static_cast<int>(record.number_or("config", 0));
  cell.rep = static_cast<int>(record.number_or("rep", 0));
  if (const Json* seed = record.find("seed")) cell.seed = seed->as_u64();
  cell.hash = record.string_or("hash", "");
  cell.instance = record.string_or("instance", "");
  cell.spec = record.string_or("spec", "");
  cell.problem = record.string_or("problem", "");
  const Json* ok = record.find("ok");
  cell.ok = ok != nullptr && ok->kind() == Json::Kind::kBool && ok->as_bool();
  cell.error = record.string_or("error", "");
  cell.best_objective = record.number_or("best_objective", 0.0);
  cell.generations = static_cast<int>(record.number_or("generations", 0));
  if (const Json* evals = record.find("evaluations")) {
    cell.evaluations = evals->as_i64();
  }
  cell.seconds = record.number_or("seconds", 0.0);
  if (const Json* axes = record.find("axes"); axes != nullptr) {
    for (const Json::Member& member : axes->members()) {
      cell.axes.emplace_back(member.first, member.second.as_string());
    }
  }
  if (const Json* cache = record.find("cache"); cache != nullptr) {
    ga::EvalCacheStats stats;
    stats.hits = static_cast<long long>(cache->number_or("hits", 0));
    stats.misses = static_cast<long long>(cache->number_or("misses", 0));
    stats.inserts = static_cast<long long>(cache->number_or("inserts", 0));
    stats.evictions = static_cast<long long>(cache->number_or("evictions", 0));
    cell.cache = stats;
  }
  return cell;
}

/// Interpolated percentile over a copy (the latency tiles; src/stats
/// keeps only median, and these are a handful of values per sweep).
double percentile_of(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank =
      p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

/// One (config, instance) row of the HTML summary table.
struct ReportGroup {
  int config = 0;
  std::string instance;
  std::vector<std::string> axis_values;
  std::vector<double> best_objectives;  ///< ok reps only
  int failed = 0;
  double mean_evaluations = 0.0;
  double cache_hits = 0.0;
  double cache_lookups = 0.0;
  bool any_cache = false;
  /// Mean best-by-generation over the ok reps, truncated to the
  /// shortest rep curve.
  std::vector<std::pair<long long, double>> mean_curve;
};

std::vector<ReportGroup> group_cells(const SweepReport& report) {
  std::vector<ReportGroup> groups;
  std::map<std::pair<int, std::string>, std::size_t> index_of;
  for (const ReportCell& cell : report.cells) {
    const std::pair<int, std::string> key{cell.config, cell.instance};
    auto it = index_of.find(key);
    if (it == index_of.end()) {
      it = index_of.emplace(key, groups.size()).first;
      ReportGroup group;
      group.config = cell.config;
      group.instance = cell.instance;
      for (const auto& [label, value] : cell.axes) {
        group.axis_values.push_back(value);
      }
      groups.push_back(std::move(group));
    }
    ReportGroup& group = groups[it->second];
    if (!cell.ok) {
      ++group.failed;
      continue;
    }
    group.best_objectives.push_back(cell.best_objective);
    group.mean_evaluations += static_cast<double>(cell.evaluations);
    if (cell.cache) {
      group.any_cache = true;
      group.cache_hits += static_cast<double>(cell.cache->hits);
      group.cache_lookups +=
          static_cast<double>(cell.cache->hits + cell.cache->misses);
    }
    if (!cell.curve.empty()) {
      if (group.mean_curve.empty() && group.best_objectives.size() == 1) {
        group.mean_curve = cell.curve;
      } else if (!group.mean_curve.empty()) {
        if (cell.curve.size() < group.mean_curve.size()) {
          group.mean_curve.resize(cell.curve.size());
        }
        for (std::size_t i = 0; i < group.mean_curve.size(); ++i) {
          group.mean_curve[i].second += cell.curve[i].second;
        }
      }
    } else {
      // A rep without generation samples (resumed cell, --every 0):
      // the averaged curve would misrepresent the group, so drop it.
      group.mean_curve.clear();
    }
  }
  for (ReportGroup& group : groups) {
    const double n = static_cast<double>(group.best_objectives.size());
    if (n > 0) {
      group.mean_evaluations /= n;
      for (auto& [generation, best] : group.mean_curve) best /= n;
    }
  }
  return groups;
}

/// The axis-value legend name of one group ("topology=ring · ta001").
std::string group_name(const SweepReport& report, const ReportGroup& group,
                       bool many_instances) {
  std::string name;
  for (std::size_t a = 0; a < group.axis_values.size(); ++a) {
    if (!name.empty()) name += ' ';
    name += (a < report.axes.size() ? report.axes[a].first : "axis") + "=" +
            group.axis_values[a];
  }
  if (many_instances && !group.instance.empty()) {
    if (!name.empty()) name += " · ";
    name += group.instance;
  }
  if (name.empty()) name = "config " + std::to_string(group.config);
  return name;
}

const char* kPalette[] = {"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728",
                         "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
                         "#bcbd22", "#17becf"};
constexpr std::size_t kPaletteSize = sizeof kPalette / sizeof kPalette[0];

/// SVG convergence chart: one mean best-by-generation polyline per
/// group that has curve samples. Returns "" when nothing is plottable.
std::string render_chart(const SweepReport& report,
                         const std::vector<ReportGroup>& groups,
                         bool many_instances) {
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min;
  double y_min = x_min;
  double y_max = -x_min;
  bool any = false;
  for (const ReportGroup& group : groups) {
    for (const auto& [generation, best] : group.mean_curve) {
      any = true;
      x_min = std::min(x_min, static_cast<double>(generation));
      x_max = std::max(x_max, static_cast<double>(generation));
      y_min = std::min(y_min, best);
      y_max = std::max(y_max, best);
    }
  }
  if (!any) return "";
  if (x_max <= x_min) x_max = x_min + 1;
  if (y_max <= y_min) y_max = y_min + 1;
  const double width = 720, height = 300;
  const double left = 64, right = 12, top = 12, bottom = 32;
  const auto sx = [&](double x) {
    return left + (x - x_min) / (x_max - x_min) * (width - left - right);
  };
  const auto sy = [&](double y) {
    return height - bottom -
           (y - y_min) / (y_max - y_min) * (height - top - bottom);
  };
  std::ostringstream svg;
  svg << "<svg viewBox=\"0 0 " << width << " " << height
      << "\" xmlns=\"http://www.w3.org/2000/svg\" role=\"img\">\n";
  svg << "<rect x=\"" << left << "\" y=\"" << top << "\" width=\""
      << width - left - right << "\" height=\"" << height - top - bottom
      << "\" fill=\"none\" stroke=\"#ccc\"/>\n";
  // Min/max tick labels on both axes.
  svg << "<text x=\"" << left - 6 << "\" y=\"" << sy(y_max) + 4
      << "\" text-anchor=\"end\" class=\"tick\">" << fmt_fixed(y_max, 1)
      << "</text>\n";
  svg << "<text x=\"" << left - 6 << "\" y=\"" << sy(y_min) + 4
      << "\" text-anchor=\"end\" class=\"tick\">" << fmt_fixed(y_min, 1)
      << "</text>\n";
  svg << "<text x=\"" << sx(x_min) << "\" y=\"" << height - bottom + 16
      << "\" text-anchor=\"middle\" class=\"tick\">"
      << static_cast<long long>(x_min) << "</text>\n";
  svg << "<text x=\"" << sx(x_max) << "\" y=\"" << height - bottom + 16
      << "\" text-anchor=\"middle\" class=\"tick\">"
      << static_cast<long long>(x_max) << "</text>\n";
  svg << "<text x=\"" << (left + width - right) / 2 << "\" y=\""
      << height - 4 << "\" text-anchor=\"middle\" class=\"tick\">"
      << "generation</text>\n";
  std::size_t color = 0;
  for (const ReportGroup& group : groups) {
    if (group.mean_curve.empty()) continue;
    svg << "<polyline fill=\"none\" stroke=\""
        << kPalette[color % kPaletteSize] << "\" stroke-width=\"1.5\" points=\"";
    for (const auto& [generation, best] : group.mean_curve) {
      svg << fmt_fixed(sx(static_cast<double>(generation)), 1) << ','
          << fmt_fixed(sy(best), 1) << ' ';
    }
    svg << "\"><title>" << html_escape(group_name(report, group,
                                                  many_instances))
        << "</title></polyline>\n";
    ++color;
  }
  svg << "</svg>\n";
  // Legend: one swatch per plotted group.
  std::ostringstream legend;
  legend << "<p class=\"legend\">";
  color = 0;
  for (const ReportGroup& group : groups) {
    if (group.mean_curve.empty()) continue;
    legend << "<span><span class=\"swatch\" style=\"background:"
           << kPalette[color % kPaletteSize] << "\"></span>"
           << html_escape(group_name(report, group, many_instances))
           << "</span> ";
    ++color;
  }
  legend << "</p>\n";
  return svg.str() + legend.str();
}

}  // namespace

std::vector<SweepReport> parse_telemetry(std::istream& in) {
  std::vector<SweepReport> reports;
  // Index, not pointer: reports reallocates as sections appear.
  std::size_t current = static_cast<std::size_t>(-1);
  std::map<int, std::vector<std::pair<long long, double>>> curves;
  const auto section = [&](const std::string& name) {
    for (std::size_t i = 0; i < reports.size(); ++i) {
      if (reports[i].sweep == name) return i;
    }
    SweepReport report;
    report.sweep = name;
    reports.push_back(std::move(report));
    return reports.size() - 1;
  };
  const auto ensure_current = [&] {
    if (current == static_cast<std::size_t>(-1)) current = section("sweep");
  };
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Json record;
    try {
      record = Json::parse(line);
    } catch (const std::exception&) {
      continue;  // SIGKILL tail or foreign line — skip, don't fail
    }
    if (!record.is_object()) continue;
    const std::string event = record.string_or("event", "");
    if (event == "sweep_begin") {
      // A resumed file re-begins the same sweep: merge, don't duplicate.
      current = section(record.string_or("sweep", "sweep"));
      curves.clear();
      SweepReport& report = reports[current];
      report.declared_cells =
          static_cast<long long>(record.number_or("cells", 0));
      report.reference = record.number_or("reference", report.reference);
      if (const Json* axes = record.find("axes"); axes != nullptr) {
        report.axes.clear();
        for (const Json& axis : axes->items()) {
          std::vector<std::string> values;
          if (const Json* vs = axis.find("values"); vs != nullptr) {
            for (const Json& v : vs->items()) values.push_back(v.as_string());
          }
          report.axes.emplace_back(axis.string_or("label", ""),
                                   std::move(values));
        }
      }
    } else if (event == "generation") {
      const Json* cell = record.find("cell");
      if (cell == nullptr) continue;  // job-keyed service stream
      ensure_current();
      curves[static_cast<int>(cell->as_i64())].emplace_back(
          static_cast<long long>(record.number_or("generation", 0)),
          record.number_or("best", 0.0));
    } else if (event == "metrics") {
      // Joined to the already-parsed cell record (the runner writes the
      // metrics line right after it, from the same lane).
      const Json* cell_index = record.find("cell");
      const Json* metrics = record.find("metrics");
      if (cell_index == nullptr || metrics == nullptr) continue;
      ensure_current();
      SweepReport& report = reports[current];
      const int index = static_cast<int>(cell_index->as_i64());
      const auto it = std::find_if(
          report.cells.begin(), report.cells.end(),
          [&](const ReportCell& c) { return c.index == index; });
      if (it == report.cells.end()) continue;
      it->has_metrics = true;
      if (const Json* counters = metrics->find("counters")) {
        if (const Json* decoded = counters->find("eval.decoded_genomes")) {
          it->decoded_genomes = decoded->as_u64();
        }
      }
      if (const Json* histograms = metrics->find("histograms")) {
        if (const Json* decode = histograms->find("eval.decode_ns")) {
          it->decode_p50_ns = decode->number_or("p50", 0.0);
          it->decode_p95_ns = decode->number_or("p95", 0.0);
          it->decode_p99_ns = decode->number_or("p99", 0.0);
        }
      }
    } else if (event == "cell") {
      ensure_current();
      ReportCell cell = parse_cell(record);
      if (const auto it = curves.find(cell.index); it != curves.end()) {
        cell.curve = std::move(it->second);
        curves.erase(it);
      }
      SweepReport& report = reports[current];
      const auto existing = std::find_if(
          report.cells.begin(), report.cells.end(),
          [&](const ReportCell& c) { return c.index == cell.index; });
      if (existing != report.cells.end()) {
        *existing = std::move(cell);  // last record wins
      } else {
        report.cells.push_back(std::move(cell));
      }
    }
  }
  for (SweepReport& report : reports) {
    std::sort(report.cells.begin(), report.cells.end(),
              [](const ReportCell& a, const ReportCell& b) {
                return a.index < b.index;
              });
  }
  return reports;
}

std::string render_csv(const std::vector<SweepReport>& reports) {
  std::ostringstream out;
  bool first = true;
  for (const SweepReport& report : reports) {
    if (!first) out << "\n";
    first = false;
    out << "# sweep " << report.sweep << "\n";
    out << "sweep,cell,config,instance,rep,seed,hash";
    for (const auto& [label, values] : report.axes) {
      out << ',' << csv_escape(label);
    }
    out << ",ok,best_objective,generations,evaluations,seconds"
           ",cache_hits,cache_misses,cache_hit_rate,error,spec\n";
    for (const ReportCell& cell : report.cells) {
      out << csv_escape(report.sweep) << ',' << cell.index << ','
          << cell.config << ',' << csv_escape(cell.instance) << ','
          << cell.rep << ',' << cell.seed << ',' << cell.hash;
      // Axis columns follow the sweep_begin axis order; the cell's own
      // axes{} map is keyed by label, so look each one up.
      for (const auto& [label, values] : report.axes) {
        std::string value;
        for (const auto& [cell_label, cell_value] : cell.axes) {
          if (cell_label == label) value = cell_value;
        }
        out << ',' << csv_escape(value);
      }
      out << ',' << (cell.ok ? "true" : "false") << ','
          << fmt_double(cell.best_objective) << ',' << cell.generations
          << ',' << cell.evaluations << ',' << fmt_double(cell.seconds);
      if (cell.cache) {
        const double lookups =
            static_cast<double>(cell.cache->hits + cell.cache->misses);
        out << ',' << cell.cache->hits << ',' << cell.cache->misses << ','
            << (lookups > 0
                    ? fmt_fixed(static_cast<double>(cell.cache->hits) /
                                    lookups,
                                4)
                    : "0");
      } else {
        out << ",,,";
      }
      out << ',' << csv_escape(cell.error) << ',' << csv_escape(cell.spec)
          << "\n";
    }
  }
  return out.str();
}

std::string render_html(const std::vector<SweepReport>& reports) {
  std::ostringstream out;
  out << "<!doctype html>\n<html lang=\"en\">\n<head>\n"
         "<meta charset=\"utf-8\">\n<title>psga sweep report</title>\n"
         "<style>\n"
         "body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;"
         "max-width:60rem;padding:0 1rem;color:#222}\n"
         "h1{font-size:1.4rem}h2{font-size:1.15rem;margin-top:2rem;"
         "border-bottom:1px solid #ddd;padding-bottom:.25rem}\n"
         "table{border-collapse:collapse;margin:.75rem 0}\n"
         "th,td{border:1px solid #ddd;padding:.25rem .6rem;"
         "text-align:right}\n"
         "th{background:#f5f5f5}td.t,th.t{text-align:left}\n"
         "p.meta{color:#555}\n"
         ".tiles{display:flex;gap:.6rem;flex-wrap:wrap;margin:.75rem 0}\n"
         ".tile{border:1px solid #ddd;border-radius:4px;"
         "padding:.4rem .7rem;background:#fafafa;text-align:center}\n"
         ".tile b{display:block;font-size:1.15rem}\n"
         ".tile span{color:#555;font-size:12px}\n"
         ".tick{font-size:11px;fill:#555}\n"
         ".legend span{margin-right:1rem;white-space:nowrap}\n"
         ".swatch{display:inline-block;width:.8em;height:.8em;"
         "margin-right:.3em;border-radius:2px}\n"
         ".fail{color:#b00}\n"
         "</style>\n</head>\n<body>\n<h1>psga sweep report</h1>\n";
  for (const SweepReport& report : reports) {
    const std::vector<ReportGroup> groups = group_cells(report);
    bool many_instances = false;
    bool any_cache = false;
    bool any_failed = false;
    for (const ReportGroup& group : groups) {
      if (group.instance != groups.front().instance) many_instances = true;
      if (group.any_cache) any_cache = true;
      if (group.failed > 0) any_failed = true;
    }
    const bool with_rpd = report.reference > 0;
    out << "<section>\n<h2>" << html_escape(report.sweep) << "</h2>\n";
    out << "<p class=\"meta\">" << report.cells.size() << " finished cell"
        << (report.cells.size() == 1 ? "" : "s");
    if (report.declared_cells > 0) {
      out << " of " << report.declared_cells << " declared";
    }
    if (with_rpd) out << ", reference " << fmt_double(report.reference);
    out << "</p>\n";
    // Latency and throughput tiles over the ok cells: cell wall-clock
    // percentiles, evaluation/decode totals (decodes = evaluations minus
    // cache hits — a hit returns the memoized objective without a
    // decode), cache hit rate, and decode-kernel percentiles when the
    // telemetry carries `metrics` records.
    {
      std::vector<double> cell_seconds;
      long long evaluations = 0, hits = 0, lookups = 0;
      std::vector<double> decode_p95;
      for (const ReportCell& cell : report.cells) {
        if (!cell.ok) continue;
        cell_seconds.push_back(cell.seconds);
        evaluations += cell.evaluations;
        if (cell.cache) {
          hits += cell.cache->hits;
          lookups += cell.cache->hits + cell.cache->misses;
        }
        if (cell.has_metrics && cell.decode_p95_ns > 0) {
          decode_p95.push_back(cell.decode_p95_ns);
        }
      }
      if (!cell_seconds.empty()) {
        const auto tile = [&](const std::string& value, const char* label) {
          out << "<div class=\"tile\"><b>" << value << "</b><span>" << label
              << "</span></div>\n";
        };
        out << "<div class=\"tiles\">\n";
        tile(fmt_fixed(percentile_of(cell_seconds, 50.0), 3) + " s",
             "cell p50");
        tile(fmt_fixed(percentile_of(cell_seconds, 95.0), 3) + " s",
             "cell p95");
        tile(fmt_fixed(percentile_of(cell_seconds, 99.0), 3) + " s",
             "cell p99");
        tile(std::to_string(evaluations), "evaluations");
        tile(std::to_string(evaluations - hits), "decodes");
        tile(lookups > 0
                 ? fmt_fixed(100.0 * static_cast<double>(hits) /
                                 static_cast<double>(lookups),
                             1) +
                       " %"
                 : std::string("-"),
             "cache hit rate");
        if (!decode_p95.empty()) {
          tile(fmt_fixed(stats::mean(std::span<const double>(decode_p95)) /
                             1000.0,
                         1) +
                   " µs",
               "decode p95 (mean)");
        }
        out << "</div>\n";
      }
    }
    out << "<table>\n<tr>";
    for (const auto& [label, values] : report.axes) {
      out << "<th class=\"t\">" << html_escape(label) << "</th>";
    }
    if (many_instances) out << "<th class=\"t\">instance</th>";
    out << "<th>reps</th><th>best</th><th>mean</th><th>stddev</th>";
    if (with_rpd) out << "<th>mean RPD (%)</th>";
    out << "<th>mean evals</th>";
    if (any_cache) out << "<th>cache hit %</th>";
    if (any_failed) out << "<th>failed</th>";
    out << "</tr>\n";
    for (const ReportGroup& group : groups) {
      out << "<tr>";
      for (const std::string& value : group.axis_values) {
        out << "<td class=\"t\">" << html_escape(value) << "</td>";
      }
      if (many_instances) {
        out << "<td class=\"t\">" << html_escape(group.instance) << "</td>";
      }
      const std::span<const double> xs(group.best_objectives);
      const std::size_t n = group.best_objectives.size();
      out << "<td>" << n << "</td>";
      if (n == 0) {
        out << "<td>-</td><td>-</td><td>-</td>";
        if (with_rpd) out << "<td>-</td>";
        out << "<td>-</td>";
      } else {
        out << "<td>" << fmt_fixed(stats::min_of(xs), 0) << "</td>"
            << "<td>" << fmt_fixed(stats::mean(xs), 1) << "</td>"
            << "<td>" << (n > 1 ? fmt_fixed(stats::stddev(xs), 1) : "-")
            << "</td>";
        if (with_rpd) {
          out << "<td>" << fmt_fixed(stats::mean_rpd(xs, report.reference), 3)
              << "</td>";
        }
        out << "<td>" << fmt_fixed(group.mean_evaluations, 0) << "</td>";
      }
      if (any_cache) {
        out << "<td>"
            << (group.cache_lookups > 0
                    ? fmt_fixed(100.0 * group.cache_hits /
                                    group.cache_lookups,
                                1)
                    : std::string("-"))
            << "</td>";
      }
      if (any_failed) {
        out << "<td class=\"fail\">" << group.failed << "</td>";
      }
      out << "</tr>\n";
    }
    out << "</table>\n";
    out << render_chart(report, groups, many_instances);
    out << "</section>\n";
  }
  out << "</body>\n</html>\n";
  return out.str();
}

}  // namespace psga::exp
