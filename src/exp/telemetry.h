// JSONL telemetry for sweeps: a thread-safe line sink plus the
// RunObserver that streams per-generation / improvement / migration
// events and final cell records.
//
// Schema (one JSON object per line, `event` discriminates):
//
//   sweep_begin  sweep, cells, configs, reps, seed, base, axes[],
//                instances[]
//   run_begin    cell, config, instance, rep, seed, spec
//   generation   cell, generation, best, evaluations, seconds
//   improvement  cell, generation, best
//   migration    cell, epoch, from, to, objective
//   cell         cell, config, instance, rep, seed, spec, axes{},
//                ok, best_objective, generations, evaluations, seconds
//                [, cache{hits,misses,inserts,evictions}]
//                — or ok=false with `error` instead of the result fields
//   sweep_end    sweep, ok, failed, seconds
//
// Cell seeds are full-range uint64 and render as exact JSON integers.
// Lines from concurrent cells interleave, but each line is written
// atomically under the sink's mutex; per-cell event order is preserved
// because each cell runs on one thread. Timing fields (`seconds`) are
// wall-clock and therefore not reproducible run-to-run — everything
// else is a pure function of the spec.
#pragma once

#include <mutex>
#include <ostream>

#include "src/exp/json.h"
#include "src/ga/engine.h"

namespace psga::exp {

/// Thread-safe JSONL writer over a caller-owned stream.
class TelemetrySink {
 public:
  /// The stream is not owned and must outlive the sink.
  explicit TelemetrySink(std::ostream& out) : out_(&out) {}

  /// Serializes `line` and appends it (plus '\n') atomically.
  void write(const Json& line);

  /// Lines written so far.
  long long lines() const;

 private:
  std::ostream* out_;
  mutable std::mutex mutex_;
  long long lines_ = 0;
};

/// RunObserver streaming one cell's events into a sink. `every` thins the
/// per-generation stream (1 = every generation, 0 = none; improvements
/// and migrations always stream).
class CellObserver final : public ga::RunObserver {
 public:
  CellObserver(TelemetrySink& sink, int cell_index, int every = 1)
      : sink_(&sink), cell_(cell_index), every_(every) {}

  bool on_generation(const ga::Engine& engine,
                     const ga::GenerationEvent& event) override;
  void on_improvement(const ga::Engine& engine,
                      const ga::GenerationEvent& event) override;
  void on_migration(const ga::MigrationEvent& event) override;

 private:
  TelemetrySink* sink_;
  int cell_;
  int every_;
};

}  // namespace psga::exp
