// JSONL telemetry for sweeps and the solver service: a thread-safe line
// sink plus the RunObserver that streams per-generation / improvement /
// migration events and final cell records.
//
// Schema (one JSON object per line, `event` discriminates; every line
// carries `schema_version` so the wire protocol and on-disk telemetry
// can evolve compatibly):
//
//   sweep_begin  sweep, cells, configs, reps, seed, base, axes[],
//                instances[]
//   run_begin    cell, config, instance, rep, seed, spec
//   generation   cell, generation, best, evaluations, seconds
//   improvement  cell, generation, best
//   migration    cell, epoch, from, to, objective
//   cell         cell, config, instance, rep, seed, spec, axes{},
//                ok, best_objective, generations, evaluations, seconds
//                [, cache{hits,misses,inserts,evictions}]
//                — or ok=false with `error` instead of the result fields
//   sweep_end    sweep, ok, failed, seconds
//
// The solver service (src/svc) reuses the same record shapes with `job`
// in place of `cell` and a final `job_end` record (docs/service.md).
//
// Cell seeds are full-range uint64 and render as exact JSON integers.
// Lines from concurrent cells interleave, but each line is written
// atomically under the sink's mutex; per-cell event order is preserved
// because each cell runs on one thread. Timing fields (`seconds`) are
// wall-clock and therefore not reproducible run-to-run — everything
// else is a pure function of the spec.
#pragma once

#include <mutex>
#include <ostream>

#include "src/exp/json.h"
#include "src/ga/engine.h"

namespace psga::exp {

/// Version stamped into every telemetry line (and, via the service
/// protocol, every wire message). Bump when a record's meaning changes
/// incompatibly; consumers assert on it (ci.sh smoke validations do).
inline constexpr int kTelemetrySchemaVersion = 1;

/// Thread-safe JSONL writer. The default transport appends to a
/// caller-owned stream; subclasses override emit() to carry lines
/// elsewhere (the service's socket-backed job sink in src/svc/server.cpp).
class TelemetrySink {
 public:
  /// The stream is not owned and must outlive the sink.
  explicit TelemetrySink(std::ostream& out) : out_(&out) {}
  virtual ~TelemetrySink() = default;

  /// Stamps `schema_version` onto object lines, serializes, and emits
  /// the line atomically (one lock covers the count and the transport).
  void write(const Json& line);

  /// Lines written so far.
  long long lines() const;

 protected:
  /// For transport subclasses that do not write to a stream.
  TelemetrySink() = default;

  /// Delivers one serialized line (no trailing newline). Called under
  /// the sink mutex — implementations need no further serialization.
  virtual void emit(const std::string& text);

 private:
  std::ostream* out_ = nullptr;
  mutable std::mutex mutex_;
  long long lines_ = 0;
};

/// RunObserver streaming one cell's events into a sink. `every` thins the
/// per-generation stream (1 = every generation, 0 = none; improvements
/// and migrations always stream).
class CellObserver final : public ga::RunObserver {
 public:
  CellObserver(TelemetrySink& sink, int cell_index, int every = 1)
      : sink_(&sink), cell_(cell_index), every_(every) {}

  bool on_generation(const ga::Engine& engine,
                     const ga::GenerationEvent& event) override;
  void on_improvement(const ga::Engine& engine,
                      const ga::GenerationEvent& event) override;
  void on_migration(const ga::MigrationEvent& event) override;

 private:
  TelemetrySink* sink_;
  int cell_;
  int every_;
};

}  // namespace psga::exp
