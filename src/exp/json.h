// Minimal JSON value type for the sweep telemetry layer (JSONL lines).
//
// This is deliberately a subset of JSON sized for telemetry records:
// objects keep insertion order (stable line layout), numbers carry an
// exact 64-bit integer twin when they were written/parsed as integers
// (cell seeds are full-range uint64 and must round-trip losslessly), and
// doubles render with max_digits10 so parse(dump()) is the identity on
// every value the sink emits. Non-finite doubles (±inf best objectives
// of failed/degenerate cells, NaN stats) are not valid JSON numbers, so
// dump() writes the sentinel strings "inf"/"-inf"/"nan" and parse()
// maps exactly those strings back to non-finite numbers — the one
// deliberate asymmetry: a *string* value spelled "inf" does not survive
// a round-trip (telemetry never emits one). Not a general-purpose JSON
// library — no \uXXXX escapes beyond what escaping our own strings
// needs, no streaming — just enough for the telemetry schema and its
// tests.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace psga::exp {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Member = std::pair<std::string, Json>;
  using Array = std::vector<Json>;
  using Object = std::vector<Member>;

  Json() = default;

  // --- constructors -------------------------------------------------------
  static Json null() { return Json(); }
  static Json boolean(bool value);
  static Json number(double value);
  /// Exact 64-bit integer (renders as plain digits, parses back exactly).
  static Json integer(std::int64_t value);
  static Json uinteger(std::uint64_t value);
  static Json string(std::string value);
  static Json array();
  static Json object();

  // --- builders -----------------------------------------------------------
  /// Appends a member (objects) — returns *this for chaining.
  Json& set(const std::string& key, Json value);
  /// Appends an element (arrays).
  Json& push(Json value);

  // --- accessors ----------------------------------------------------------
  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  /// The exact unsigned integer twin; valid when the value was built via
  /// integer()/uinteger() or parsed from undecorated digits.
  std::uint64_t as_u64() const { return u64_; }
  std::int64_t as_i64() const {
    // -1 - (u64_ - 1) avoids signed overflow at INT64_MIN (u64_ = 2^63).
    return negative_ ? -1 - static_cast<std::int64_t>(u64_ - 1)
                     : static_cast<std::int64_t>(u64_);
  }
  const std::string& as_string() const { return string_; }
  const Array& items() const { return array_; }
  const Object& members() const { return object_; }

  /// Member lookup on objects; nullptr when absent (or not an object).
  const Json* find(const std::string& key) const;
  /// Convenience lookups with fallbacks.
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;

  // --- serialization ------------------------------------------------------
  /// Compact single-line rendering (the JSONL line format).
  std::string dump() const;

  /// Indented pretty-printing (`indent` spaces per level, newlines
  /// between members/elements). Semantically identical to the compact
  /// form: parse(dump(n)) == parse(dump()) for every value. Used by
  /// psgactl for human-readable stats/info output.
  std::string dump(int indent) const;

  /// Parses one JSON document; throws std::invalid_argument (with a byte
  /// offset) on malformed input or trailing garbage.
  static Json parse(const std::string& text);

  /// JSON string escaping (exposed for tests).
  static std::string escape(const std::string& raw);

 private:
  void dump_to(std::string& out) const;
  void dump_pretty_to(std::string& out, int indent, int depth) const;
  std::string number_text() const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::uint64_t u64_ = 0;
  bool exact_int_ = false;  ///< render from u64_ (negative flag in neg_)
  bool negative_ = false;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace psga::exp
