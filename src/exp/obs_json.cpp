#include "src/exp/obs_json.h"

namespace psga::exp {

Json metrics_to_json(const obs::MetricsSnapshot& snapshot) {
  Json counters = Json::object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.set(name, Json::uinteger(value));
  }
  Json gauges = Json::object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.set(name, Json::integer(value));
  }
  Json histograms = Json::object();
  for (const auto& [name, histogram] : snapshot.histograms) {
    Json buckets = Json::array();
    for (int b = 0; b < obs::HistogramSnapshot::kBuckets; ++b) {
      const std::uint64_t n = histogram.buckets[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      buckets.push(Json::array()
                       .push(Json::integer(b))
                       .push(Json::uinteger(n)));
    }
    histograms.set(name,
                   Json::object()
                       .set("count", Json::uinteger(histogram.count))
                       .set("sum", Json::uinteger(histogram.sum))
                       .set("mean", Json::number(histogram.mean()))
                       .set("p50", Json::number(histogram.percentile(50.0)))
                       .set("p95", Json::number(histogram.percentile(95.0)))
                       .set("p99", Json::number(histogram.percentile(99.0)))
                       .set("buckets", std::move(buckets)));
  }
  return Json::object()
      .set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("histograms", std::move(histograms));
}

obs::MetricsSnapshot metrics_from_json(const Json& json) {
  obs::MetricsSnapshot snapshot;
  if (const Json* counters = json.find("counters")) {
    for (const auto& [name, value] : counters->members()) {
      snapshot.counters.emplace_back(name, value.as_u64());
    }
  }
  if (const Json* gauges = json.find("gauges")) {
    for (const auto& [name, value] : gauges->members()) {
      snapshot.gauges.emplace_back(name, value.as_i64());
    }
  }
  if (const Json* histograms = json.find("histograms")) {
    for (const auto& [name, value] : histograms->members()) {
      obs::HistogramSnapshot histogram;
      histogram.count = value.find("count") ? value.find("count")->as_u64() : 0;
      histogram.sum = value.find("sum") ? value.find("sum")->as_u64() : 0;
      if (const Json* buckets = value.find("buckets")) {
        for (const Json& entry : buckets->items()) {
          const auto b =
              static_cast<std::size_t>(entry.items().at(0).as_i64());
          if (b < histogram.buckets.size()) {
            histogram.buckets[b] = entry.items().at(1).as_u64();
          }
        }
      }
      snapshot.histograms.emplace_back(name, histogram);
    }
  }
  return snapshot;
}

}  // namespace psga::exp
