#include "src/exp/aggregate.h"

#include <map>
#include <ostream>
#include <utility>

#include "src/stats/descriptive.h"

namespace psga::exp {

SweepSummary summarize(const SweepResult& result) {
  SweepSummary summary;
  // Cells are stored by flat index, which is already config-major then
  // instance then rep — group boundaries are contiguous runs.
  std::map<std::pair<int, std::string>, std::size_t> index_of;
  for (const CellResult& cell : result.cells) {
    const std::pair<int, std::string> key{cell.cell.config,
                                          cell.cell.instance};
    auto it = index_of.find(key);
    if (it == index_of.end()) {
      it = index_of.emplace(key, summary.groups.size()).first;
      GroupSummary group;
      group.config = cell.cell.config;
      group.instance = cell.cell.instance;
      group.axis_values = cell.cell.axis_values;
      summary.groups.push_back(std::move(group));
    }
    GroupSummary& group = summary.groups[it->second];
    if (!cell.ok) {
      ++group.failed;
      ++summary.failed_cells;
      continue;
    }
    group.best_objectives.push_back(cell.result.best_objective);
    group.mean_evaluations += static_cast<double>(cell.result.evaluations);
    // Truncate the mean curve to the shortest history so every entry
    // averages the same number of reps.
    const std::vector<double>& history = cell.result.history;
    if (group.best_objectives.size() == 1) {
      group.mean_history = history;
    } else {
      if (history.size() < group.mean_history.size()) {
        group.mean_history.resize(history.size());
      }
      for (std::size_t g = 0; g < group.mean_history.size(); ++g) {
        group.mean_history[g] += history[g];
      }
    }
  }
  for (GroupSummary& group : summary.groups) {
    const std::span<const double> xs(group.best_objectives);
    group.best = stats::min_of(xs);
    group.mean = stats::mean(xs);
    group.stddev = stats::stddev(xs);
    if (!group.best_objectives.empty()) {
      const double n = static_cast<double>(group.best_objectives.size());
      group.mean_evaluations /= n;
      for (double& g : group.mean_history) g /= n;
      if (result.spec.reference > 0) {
        group.mean_rpd = stats::mean_rpd(xs, result.spec.reference);
      }
    }
  }
  return summary;
}

stats::Table summary_table(const SweepSpec& spec,
                           const SweepSummary& summary) {
  // Multiplicity from the groups actually run — not from re-expanding
  // the spec, which would hit the filesystem again at report time.
  bool many_instances = false;
  for (const GroupSummary& group : summary.groups) {
    if (group.instance != summary.groups.front().instance) {
      many_instances = true;
    }
  }
  const bool with_rpd = spec.reference > 0;
  bool with_failures = false;
  for (const GroupSummary& group : summary.groups) {
    if (group.failed > 0) with_failures = true;
  }

  std::vector<std::string> headers;
  for (const SweepAxis& axis : spec.axes) headers.push_back(axis.label);
  if (many_instances) headers.push_back("instance");
  headers.push_back("reps");
  headers.push_back("best");
  headers.push_back("mean");
  headers.push_back("stddev");
  if (with_rpd) headers.push_back("mean RPD (%)");
  headers.push_back("mean evals");
  if (with_failures) headers.push_back("failed");

  stats::Table table(std::move(headers));
  for (const GroupSummary& group : summary.groups) {
    std::vector<std::string> row = group.axis_values;
    if (many_instances) row.push_back(group.instance);
    const std::size_t n = group.best_objectives.size();
    row.push_back(std::to_string(n));
    if (n == 0) {
      row.push_back("-");
      row.push_back("-");
      row.push_back("-");
      if (with_rpd) row.push_back("-");
      row.push_back("-");
    } else {
      row.push_back(stats::Table::num(group.best, 0));
      row.push_back(stats::Table::num(group.mean, 1));
      row.push_back(n > 1 ? stats::Table::num(group.stddev, 1) : "-");
      if (with_rpd) row.push_back(stats::Table::num(group.mean_rpd, 3));
      row.push_back(stats::Table::num(group.mean_evaluations, 0));
    }
    if (with_failures) row.push_back(std::to_string(group.failed));
    table.add_row(std::move(row));
  }
  return table;
}

void print_summary(const SweepResult& result, std::ostream& out) {
  const SweepSummary summary = summarize(result);
  out << "-- sweep '" << result.spec.name << "': "
      << result.cells.size() - static_cast<std::size_t>(result.failed) << "/"
      << result.cells.size() << " cells ok\n";
  out << summary_table(result.spec, summary).to_string();
  if (result.failed > 0) {
    for (const CellResult& cell : result.cells) {
      if (!cell.ok) {
        out << "!! cell " << cell.cell.index << " (" << cell.cell.spec
            << " @ " << cell.cell.instance << "): " << cell.error << "\n";
      }
    }
  }
}

}  // namespace psga::exp
