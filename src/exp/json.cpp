#include "src/exp/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace psga::exp {

Json Json::boolean(bool value) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = value;
  return j;
}

Json Json::number(double value) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = value;
  return j;
}

Json Json::integer(std::int64_t value) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = static_cast<double>(value);
  j.exact_int_ = true;
  j.negative_ = value < 0;
  j.u64_ = j.negative_ ? static_cast<std::uint64_t>(-(value + 1)) + 1
                       : static_cast<std::uint64_t>(value);
  return j;
}

Json Json::uinteger(std::uint64_t value) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = static_cast<double>(value);
  j.exact_int_ = true;
  j.u64_ = value;
  return j;
}

Json Json::string(std::string value) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(value);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json& Json::set(const std::string& key, Json value) {
  object_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  array_.push_back(std::move(value));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double Json::number_or(const std::string& key, double fallback) const {
  const Json* value = find(key);
  return value != nullptr && value->kind_ == Kind::kNumber ? value->number_
                                                           : fallback;
}

std::string Json::string_or(const std::string& key,
                            const std::string& fallback) const {
  const Json* value = find(key);
  return value != nullptr && value->kind_ == Kind::kString ? value->string_
                                                           : fallback;
}

std::string Json::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Json::number_text() const {
  // Exact integers render as digits (u64 seeds stay lossless).
  if (exact_int_) {
    return (negative_ ? "-" : "") + std::to_string(u64_);
  }
  // max_digits10 keeps doubles exact through a dump/parse round-trip;
  // infinities/NaNs are not valid JSON numbers, so they render as the
  // sentinel strings "inf"/"-inf"/"nan" and the parser maps those exact
  // strings back to non-finite numbers (failed/degenerate cells keep
  // their ±inf best objectives through the round-trip).
  if (!(number_ == number_)) return "\"nan\"";
  if (number_ == std::numeric_limits<double>::infinity()) return "\"inf\"";
  if (number_ == -std::numeric_limits<double>::infinity()) return "\"-inf\"";
  std::ostringstream stream;
  stream.precision(std::numeric_limits<double>::max_digits10);
  stream << number_;
  return stream.str();
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

void Json::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      out += number_text();
      break;
    case Kind::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out += ',';
        first = false;
        item.dump_to(out);
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : object_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape(key);
        out += "\":";
        member.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  if (indent <= 0) return dump();
  std::string out;
  dump_pretty_to(out, indent, 0);
  return out;
}

void Json::dump_pretty_to(std::string& out, int indent, int depth) const {
  auto pad = [&out, indent](int level) {
    out.append(static_cast<std::size_t>(indent * level), ' ');
  };
  switch (kind_) {
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out += ",\n";
        first = false;
        pad(depth + 1);
        item.dump_pretty_to(out, indent, depth + 1);
      }
      out += '\n';
      pad(depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      bool first = true;
      for (const auto& [key, member] : object_) {
        if (!first) out += ",\n";
        first = false;
        pad(depth + 1);
        out += '"';
        out += escape(key);
        out += "\": ";
        member.dump_pretty_to(out, indent, depth + 1);
      }
      out += '\n';
      pad(depth);
      out += '}';
      return;
    }
    default:
      dump_to(out);  // scalars render exactly as the compact form
      return;
  }
}

// --- parser -----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("Json::parse: " + what + " at byte " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  bool consume_word(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      std::string s = parse_string();
      // The non-finite sentinels dump() emits parse back as numbers so
      // parse(dump()) stays the identity on every value the sink emits.
      if (s == "inf") {
        return Json::number(std::numeric_limits<double>::infinity());
      }
      if (s == "-inf") {
        return Json::number(-std::numeric_limits<double>::infinity());
      }
      if (s == "nan") {
        return Json::number(std::numeric_limits<double>::quiet_NaN());
      }
      return Json::string(std::move(s));
    }
    if (consume_word("true")) return Json::boolean(true);
    if (consume_word("false")) return Json::boolean(false);
    if (consume_word("null")) return Json::null();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) return obj;
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (consume('}')) return obj;
      expect(',');
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) return arr;
    for (;;) {
      arr.push(parse_value());
      skip_ws();
      if (consume(']')) return arr;
      expect(',');
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          for (const char h : hex) {
            if (!std::isxdigit(static_cast<unsigned char>(h))) {
              fail("malformed \\u escape");
            }
          }
          pos_ += 4;
          const unsigned long code = std::strtoul(hex.c_str(), nullptr, 16);
          // Telemetry only ever escapes control characters; anything in
          // the BMP below 0x80 maps straight to one byte.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else {
            fail("unsupported \\u escape");
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    const bool integral =
        token.find_first_of(".eE") == std::string::npos;
    if (integral) {
      errno = 0;
      if (token[0] == '-') {
        char* end = nullptr;
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          return Json::integer(v);
        }
      } else {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          return Json::uinteger(v);
        }
      }
    }
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return Json::number(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace psga::exp
