// Shared experiment-report helpers: the bench header banner, wall-clock
// timing and the PSGA_BENCH_SCALE budget multiplier.
//
// These lived as copies in bench/bench_util.h; the sweep subsystem and
// the ported experiment benches use them from here (bench_util.h
// forwards for the not-yet-ported benches).
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "src/par/env.h"

namespace psga::exp {

/// Experiment banner: id, source paper and the reported finding the
/// bench reproduces, plus the active PSGA_BENCH_SCALE.
inline void bench_header(const char* id, const char* source,
                         const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, source);
  std::printf("Paper-reported finding: %s\n", claim);
  std::printf("Scale: %s (PSGA_BENCH_SCALE)\n",
              par::env_string("PSGA_BENCH_SCALE", "small").c_str());
  std::printf("==============================================================\n");
}

/// Wall-clock seconds of a callable.
template <typename Fn>
double time_seconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Budget multiplier from PSGA_BENCH_SCALE (small|medium|large).
inline int bench_scale() { return par::bench_scale(); }

}  // namespace psga::exp
