// Stochastic job shop (Gu et al. [28]): processing times are random; the
// objective is the *expected* makespan, estimated by sample average over a
// fixed scenario set generated once from a seed (common random numbers, so
// two chromosomes are always compared on identical scenarios and the
// fitness landscape is deterministic).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/sched/job_shop.h"

namespace psga::sched {

struct StochasticJobShop {
  /// Builds `scenarios` deterministic samples; each duration is drawn
  /// uniformly from [ (1-spread)·p, (1+spread)·p ] around the nominal.
  StochasticJobShop(JobShopInstance nominal, double spread, int scenarios,
                    std::uint64_t seed);

  const JobShopInstance& nominal() const { return nominal_; }
  int scenario_count() const { return static_cast<int>(samples_.size()); }
  const JobShopInstance& scenario(int i) const {
    return samples_[static_cast<std::size_t>(i)];
  }

  /// Sample-average expected makespan of an operation-based chromosome
  /// (decoded per scenario with the semi-active decoder).
  double expected_makespan(std::span<const int> op_sequence) const;

 private:
  JobShopInstance nominal_;
  std::vector<JobShopInstance> samples_;
};

}  // namespace psga::sched
