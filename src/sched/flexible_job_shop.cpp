#include "src/sched/flexible_job_shop.h"

#include <algorithm>
#include <optional>

namespace psga::sched {

int FlexibleJobShopInstance::total_ops() const {
  int acc = 0;
  for (const auto& route : ops) acc += static_cast<int>(route.size());
  return acc;
}

Time FlexibleJobShopInstance::setup_time(int machine, int prev_job,
                                         int next_job) const {
  if (setup.empty()) return 0;
  return setup[static_cast<std::size_t>(machine)]
              [static_cast<std::size_t>(prev_job + 1)]
              [static_cast<std::size_t>(next_job)];
}

Time FlexibleJobShopInstance::machine_release_of(int machine) const {
  return machine < static_cast<int>(machine_release.size())
             ? machine_release[static_cast<std::size_t>(machine)]
             : 0;
}

namespace {

std::optional<Time> fjs_duration(const void* ctx, int job, int index,
                                 int machine) {
  const auto& inst = *static_cast<const FlexibleJobShopInstance*>(ctx);
  for (const auto& choice : inst.op(job, index).choices) {
    if (choice.machine == machine) return choice.duration;
  }
  return std::nullopt;
}

Time fjs_gap(const void* ctx, int machine, int prev_job, int next_job) {
  const auto& inst = *static_cast<const FlexibleJobShopInstance*>(ctx);
  return inst.setup_time(machine, prev_job, next_job);
}

}  // namespace

ValidationSpec FlexibleJobShopInstance::validation_spec() const {
  ValidationSpec spec;
  spec.jobs = jobs;
  spec.machines = machines;
  spec.ops_per_job.reserve(static_cast<std::size_t>(jobs));
  for (const auto& route : ops) {
    spec.ops_per_job.push_back(static_cast<int>(route.size()));
  }
  spec.ordered_stages = true;
  spec.release = attrs.release;
  spec.duration = &fjs_duration;
  spec.ctx = this;
  if (!setup.empty()) spec.machine_gap = &fjs_gap;
  return spec;
}

int fjs_flat_op(const FlexibleJobShopInstance& inst, int job, int index) {
  int flat = 0;
  for (int j = 0; j < job; ++j) flat += inst.ops_of(j);
  return flat + index;
}

const Schedule& decode_flexible_job_shop(const FlexibleJobShopInstance& inst,
                                         std::span<const int> assignment,
                                         std::span<const int> op_sequence,
                                         FlexibleJobShopScratch& scratch) {
  Schedule& schedule = scratch.schedule;
  schedule.ops.clear();
  schedule.ops.reserve(op_sequence.size());
  std::vector<int>& next_op = scratch.next_op;
  next_op.assign(static_cast<std::size_t>(inst.jobs), 0);
  std::vector<int>& flat_base = scratch.flat_base;
  flat_base.assign(static_cast<std::size_t>(inst.jobs), 0);
  for (int j = 1; j < inst.jobs; ++j) {
    flat_base[static_cast<std::size_t>(j)] =
        flat_base[static_cast<std::size_t>(j - 1)] + inst.ops_of(j - 1);
  }
  std::vector<Time>& job_free = scratch.job_free;
  job_free.resize(static_cast<std::size_t>(inst.jobs));
  for (int j = 0; j < inst.jobs; ++j) {
    job_free[static_cast<std::size_t>(j)] = inst.attrs.release_of(j);
  }
  std::vector<Time>& machine_free = scratch.machine_free;
  machine_free.resize(static_cast<std::size_t>(inst.machines));
  for (int m = 0; m < inst.machines; ++m) {
    machine_free[static_cast<std::size_t>(m)] = inst.machine_release_of(m);
  }
  std::vector<int>& last_job = scratch.last_job;
  last_job.assign(static_cast<std::size_t>(inst.machines), -1);

  for (int job : op_sequence) {
    const int index = next_op[static_cast<std::size_t>(job)]++;
    const FjsOperation& op = inst.op(job, index);
    const int flat = flat_base[static_cast<std::size_t>(job)] + index;
    const int choice_raw = assignment[static_cast<std::size_t>(flat)];
    const int choice =
        choice_raw % static_cast<int>(op.choices.size());  // defensive wrap
    const auto& [machine, duration] = op.choices[static_cast<std::size_t>(choice)];

    const Time setup =
        inst.setup_time(machine, last_job[static_cast<std::size_t>(machine)], job);
    const Time job_ready = job_free[static_cast<std::size_t>(job)];
    const Time mach_free = machine_free[static_cast<std::size_t>(machine)];
    Time start;
    if (inst.detached_setup) {
      // Setup may run while the job is still upstream.
      start = std::max(job_ready, mach_free + setup);
    } else {
      // Attached: setup begins once both machine and job are ready.
      start = std::max(job_ready, mach_free) + setup;
    }
    const Time end = start + duration;
    schedule.ops.push_back(ScheduledOp{job, index, machine, start, end});
    job_free[static_cast<std::size_t>(job)] = end + op.min_lag_after;
    machine_free[static_cast<std::size_t>(machine)] = end;
    last_job[static_cast<std::size_t>(machine)] = job;
  }
  return schedule;
}

Schedule decode_flexible_job_shop(const FlexibleJobShopInstance& inst,
                                  std::span<const int> assignment,
                                  std::span<const int> op_sequence) {
  FlexibleJobShopScratch scratch;
  return decode_flexible_job_shop(inst, assignment, op_sequence, scratch);
}

double flexible_job_shop_objective(const FlexibleJobShopInstance& inst,
                                   const Schedule& schedule,
                                   Criterion criterion,
                                   FlexibleJobShopScratch& scratch) {
  schedule.job_completion_times(inst.jobs, scratch.completion);
  return evaluate_criterion(criterion, scratch.completion, inst.attrs);
}

double flexible_job_shop_objective(const FlexibleJobShopInstance& inst,
                                   const Schedule& schedule,
                                   Criterion criterion) {
  FlexibleJobShopScratch scratch;
  return flexible_job_shop_objective(inst, schedule, criterion, scratch);
}

std::vector<int> random_fjs_assignment(const FlexibleJobShopInstance& inst,
                                       par::Rng& rng) {
  std::vector<int> assign;
  assign.reserve(static_cast<std::size_t>(inst.total_ops()));
  for (int j = 0; j < inst.jobs; ++j) {
    for (int k = 0; k < inst.ops_of(j); ++k) {
      assign.push_back(static_cast<int>(
          rng.below(inst.op(j, k).choices.size())));
    }
  }
  return assign;
}

std::vector<int> random_fjs_sequence(const FlexibleJobShopInstance& inst,
                                     par::Rng& rng) {
  std::vector<int> seq;
  seq.reserve(static_cast<std::size_t>(inst.total_ops()));
  for (int j = 0; j < inst.jobs; ++j) {
    for (int k = 0; k < inst.ops_of(j); ++k) seq.push_back(j);
  }
  rng.shuffle(seq);
  return seq;
}

}  // namespace psga::sched
