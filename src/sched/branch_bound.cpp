#include "src/sched/branch_bound.h"

#include <algorithm>
#include <limits>
#include <mutex>

#include "src/sched/heuristics.h"

namespace psga::sched {

namespace {

/// Search node: a partial active schedule, stored compactly as the prefix
/// of the operation-based chromosome plus the derived machine/job clocks.
struct Node {
  std::vector<int> prefix;       // job ids of scheduled ops, in order
  std::vector<int> next_op;      // per job
  std::vector<Time> job_free;    // per job
  std::vector<Time> machine_free;  // per machine
  Time makespan = 0;
};

Node root_node(const JobShopInstance& inst) {
  Node node;
  node.next_op.assign(static_cast<std::size_t>(inst.jobs), 0);
  node.job_free.resize(static_cast<std::size_t>(inst.jobs));
  for (int j = 0; j < inst.jobs; ++j) {
    node.job_free[static_cast<std::size_t>(j)] = inst.attrs.release_of(j);
  }
  node.machine_free.assign(static_cast<std::size_t>(inst.machines), 0);
  node.prefix.reserve(static_cast<std::size_t>(inst.total_ops()));
  return node;
}

/// Remaining processing time of job j from its next operation on.
Time job_tail(const JobShopInstance& inst, const Node& node, int j) {
  Time tail = 0;
  for (int k = node.next_op[static_cast<std::size_t>(j)]; k < inst.ops_of(j);
       ++k) {
    tail += inst.op(j, k).duration;
  }
  return tail;
}

/// Lower bound: max of (a) the partial makespan, (b) per-job
/// release-plus-tail, (c) per-machine available-plus-remaining-load.
Time lower_bound(const JobShopInstance& inst, const Node& node) {
  Time bound = node.makespan;
  std::vector<Time> machine_load(static_cast<std::size_t>(inst.machines), 0);
  for (int j = 0; j < inst.jobs; ++j) {
    Time at = node.job_free[static_cast<std::size_t>(j)];
    Time tail = 0;
    for (int k = node.next_op[static_cast<std::size_t>(j)]; k < inst.ops_of(j);
         ++k) {
      const JsOperation& op = inst.op(j, k);
      tail += op.duration;
      machine_load[static_cast<std::size_t>(op.machine)] += op.duration;
    }
    bound = std::max(bound, at + tail);
  }
  for (int m = 0; m < inst.machines; ++m) {
    bound = std::max(bound, node.machine_free[static_cast<std::size_t>(m)] +
                                machine_load[static_cast<std::size_t>(m)]);
  }
  return bound;
}

/// Giffler–Thompson conflict set of a node: jobs whose next op runs on the
/// earliest-completing machine and could start before that completion.
std::vector<int> conflict_set(const JobShopInstance& inst, const Node& node) {
  Time best_completion = std::numeric_limits<Time>::max();
  int conflict_machine = -1;
  for (int j = 0; j < inst.jobs; ++j) {
    const int k = node.next_op[static_cast<std::size_t>(j)];
    if (k >= inst.ops_of(j)) continue;
    const JsOperation& op = inst.op(j, k);
    const Time start =
        std::max(node.job_free[static_cast<std::size_t>(j)],
                 node.machine_free[static_cast<std::size_t>(op.machine)]);
    if (start + op.duration < best_completion) {
      best_completion = start + op.duration;
      conflict_machine = op.machine;
    }
  }
  std::vector<int> jobs;
  if (conflict_machine < 0) return jobs;
  for (int j = 0; j < inst.jobs; ++j) {
    const int k = node.next_op[static_cast<std::size_t>(j)];
    if (k >= inst.ops_of(j)) continue;
    const JsOperation& op = inst.op(j, k);
    if (op.machine != conflict_machine) continue;
    const Time start =
        std::max(node.job_free[static_cast<std::size_t>(j)],
                 node.machine_free[static_cast<std::size_t>(op.machine)]);
    if (start < best_completion) jobs.push_back(j);
  }
  return jobs;
}

Node schedule_job(const JobShopInstance& inst, const Node& node, int j) {
  Node child = node;
  const int k = child.next_op[static_cast<std::size_t>(j)]++;
  const JsOperation& op = inst.op(j, k);
  const Time start =
      std::max(child.job_free[static_cast<std::size_t>(j)],
               child.machine_free[static_cast<std::size_t>(op.machine)]);
  const Time end = start + op.duration;
  child.job_free[static_cast<std::size_t>(j)] = end;
  child.machine_free[static_cast<std::size_t>(op.machine)] = end;
  child.makespan = std::max(child.makespan, end);
  child.prefix.push_back(j);
  return child;
}

struct SharedSearchState {
  std::atomic<Time> incumbent;
  std::atomic<long long> nodes{0};
  long long max_nodes = 0;
  std::mutex best_mutex;
  std::vector<int> best_sequence;
  std::atomic<bool> budget_exhausted{false};
};

void dfs(const JobShopInstance& inst, const Node& node, int total_ops,
         SharedSearchState& state) {
  if (state.nodes.fetch_add(1, std::memory_order_relaxed) >= state.max_nodes) {
    state.budget_exhausted.store(true, std::memory_order_relaxed);
    return;
  }
  if (static_cast<int>(node.prefix.size()) == total_ops) {
    Time seen = state.incumbent.load(std::memory_order_relaxed);
    while (node.makespan < seen &&
           !state.incumbent.compare_exchange_weak(seen, node.makespan,
                                                  std::memory_order_relaxed)) {
    }
    if (node.makespan <= state.incumbent.load(std::memory_order_relaxed)) {
      std::lock_guard lock(state.best_mutex);
      if (state.best_sequence.empty() ||
          node.makespan <= state.incumbent.load(std::memory_order_relaxed)) {
        state.best_sequence = node.prefix;
      }
    }
    return;
  }
  if (lower_bound(inst, node) >=
      state.incumbent.load(std::memory_order_relaxed)) {
    return;
  }
  // Branch on the conflict set, most promising (earliest finishing) first.
  std::vector<int> jobs = conflict_set(inst, node);
  std::vector<Node> children;
  children.reserve(jobs.size());
  for (int j : jobs) children.push_back(schedule_job(inst, node, j));
  std::sort(children.begin(), children.end(),
            [](const Node& a, const Node& b) { return a.makespan < b.makespan; });
  for (const Node& child : children) {
    if (state.budget_exhausted.load(std::memory_order_relaxed)) return;
    if (lower_bound(inst, child) <
        state.incumbent.load(std::memory_order_relaxed)) {
      dfs(inst, child, total_ops, state);
    }
  }
}

BranchBoundResult finish(const JobShopInstance& inst,
                         SharedSearchState& state) {
  BranchBoundResult result;
  result.best_makespan = state.incumbent.load();
  result.nodes_explored = state.nodes.load();
  result.proven_optimal = !state.budget_exhausted.load();
  result.best_sequence = std::move(state.best_sequence);
  if (result.best_sequence.empty()) {
    // Incumbent came from the heuristic: reconstruct a witness sequence.
    par::Rng rng(1);
    Time best = std::numeric_limits<Time>::max();
    for (PriorityRule rule : {PriorityRule::kSpt, PriorityRule::kLpt,
                              PriorityRule::kMostWorkRemaining,
                              PriorityRule::kFcfs}) {
      const Schedule s = giffler_thompson(inst, rule, rng);
      if (s.makespan() < best) {
        best = s.makespan();
        auto ops = s.ops;
        std::sort(ops.begin(), ops.end(),
                  [](const ScheduledOp& a, const ScheduledOp& b) {
                    if (a.start != b.start) return a.start < b.start;
                    return a.machine < b.machine;
                  });
        result.best_sequence.clear();
        for (const auto& op : ops) result.best_sequence.push_back(op.job);
      }
    }
  }
  return result;
}

Time initial_incumbent(const JobShopInstance& inst,
                       const BranchBoundConfig& config) {
  if (config.initial_upper_bound > 0) return config.initial_upper_bound;
  return best_dispatch_makespan(inst) + 1;
}

}  // namespace

BranchBoundResult branch_and_bound(const JobShopInstance& inst,
                                   const BranchBoundConfig& config) {
  SharedSearchState state;
  state.incumbent.store(initial_incumbent(inst, config));
  state.max_nodes = config.max_nodes;
  dfs(inst, root_node(inst), inst.total_ops(), state);
  return finish(inst, state);
}

BranchBoundResult parallel_branch_and_bound(const JobShopInstance& inst,
                                            const BranchBoundConfig& config,
                                            par::ThreadPool* pool) {
  par::ThreadPool* workers = pool != nullptr ? pool : &par::default_pool();
  SharedSearchState state;
  state.incumbent.store(initial_incumbent(inst, config));
  state.max_nodes = config.max_nodes;
  const int total_ops = inst.total_ops();

  // Expand a breadth-first frontier of subtree roots.
  std::vector<Node> frontier = {root_node(inst)};
  const std::size_t target = static_cast<std::size_t>(
      std::max(4 * workers->thread_count(), 32));
  while (frontier.size() < target) {
    // Expand the shallowest node (front); stop if any is complete.
    std::vector<Node> next;
    bool expanded = false;
    for (const Node& node : frontier) {
      if (static_cast<int>(node.prefix.size()) == total_ops) {
        next.push_back(node);
        continue;
      }
      for (int j : conflict_set(inst, node)) {
        next.push_back(schedule_job(inst, node, j));
      }
      expanded = true;
    }
    frontier = std::move(next);
    if (!expanded) break;
  }
  // Best-first ordering of subtrees helps the incumbent drop early.
  std::sort(frontier.begin(), frontier.end(), [&](const Node& a, const Node& b) {
    return lower_bound(inst, a) < lower_bound(inst, b);
  });
  workers->parallel_for(frontier.size(), [&](std::size_t i) {
    const Node& node = frontier[i];
    if (lower_bound(inst, node) <
        state.incumbent.load(std::memory_order_relaxed)) {
      dfs(inst, node, total_ops, state);
    }
  });
  return finish(inst, state);
}

}  // namespace psga::sched
