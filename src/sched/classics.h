// Embedded classic job-shop benchmark instances.
//
// Park et al. [26] evaluate on the MT (Fisher–Thompson), ABZ and ORB
// families. The FT (MT) instances and LA01 are embedded verbatim below —
// they are short and universally reproduced in the literature, each with
// its proven optimal makespan. The ABZ/ORB data files are not available
// offline; experiments that would use them substitute additional Taillard
// generator instances (documented in DESIGN.md §2) rather than ship
// unverifiable data.
#pragma once

#include "src/sched/job_shop.h"

namespace psga::sched {

struct ClassicInstance {
  const char* name;
  Time optimum;  ///< proven optimal makespan
  JobShopInstance instance;
};

/// ft06 — Fisher & Thompson 6×6, optimum 55.
const ClassicInstance& ft06();
/// ft10 — Fisher & Thompson 10×10 ("mt10"), optimum 930.
const ClassicInstance& ft10();
/// ft20 — Fisher & Thompson 20×5 ("mt20"), optimum 1165.
const ClassicInstance& ft20();
/// la01 — Lawrence 10×5, optimum 666.
const ClassicInstance& la01();

/// All embedded classics.
const std::vector<const ClassicInstance*>& classic_instances();

}  // namespace psga::sched
