#include "src/sched/fuzzy.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace psga::sched {

TriFuzzy TriFuzzy::fmax(const TriFuzzy& x, const TriFuzzy& y) {
  return {std::max(x.a, y.a), std::max(x.b, y.b), std::max(x.c, y.c)};
}

double TriFuzzy::membership(double t) const {
  if (t <= a || t >= c) return (t == b) ? 1.0 : 0.0;  // degenerate spikes
  if (t <= b) {
    return (b > a) ? (t - a) / (b - a) : 1.0;
  }
  return (c > b) ? (c - t) / (c - b) : 1.0;
}

double FuzzyDueDate::satisfaction(double t) const {
  if (t <= d1) return 1.0;
  if (t >= d2) return 0.0;
  return (d2 - t) / (d2 - d1);
}

double agreement_index(const TriFuzzy& completion, const FuzzyDueDate& due) {
  const double area = completion.area();
  if (area <= 1e-12) return due.satisfaction(completion.b);
  // Numeric integration of min(C(t), D(t)) over the support; 256 samples
  // keep the error far below what the GA can perceive.
  const int samples = 256;
  const double width = completion.c - completion.a;
  const double dt = width / samples;
  double acc = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double t = completion.a + (i + 0.5) * dt;
    acc += std::min(completion.membership(t), due.satisfaction(t)) * dt;
  }
  return std::clamp(acc / area, 0.0, 1.0);
}

const std::vector<TriFuzzy>& fuzzy_completion_times(
    const FuzzyFlowShopInstance& inst, std::span<const int> perm,
    FuzzyFlowShopScratch& scratch) {
  std::vector<TriFuzzy>& ready = scratch.ready;
  std::vector<TriFuzzy>& completion = scratch.completion;
  ready.assign(static_cast<std::size_t>(inst.machines), TriFuzzy{});
  completion.assign(static_cast<std::size_t>(inst.jobs), TriFuzzy{});
  for (int job : perm) {
    TriFuzzy prev{};
    for (int m = 0; m < inst.machines; ++m) {
      const TriFuzzy start =
          TriFuzzy::fmax(prev, ready[static_cast<std::size_t>(m)]);
      prev = start +
             inst.proc[static_cast<std::size_t>(m)][static_cast<std::size_t>(job)];
      ready[static_cast<std::size_t>(m)] = prev;
    }
    completion[static_cast<std::size_t>(job)] = prev;
  }
  return completion;
}

std::vector<TriFuzzy> fuzzy_completion_times(const FuzzyFlowShopInstance& inst,
                                             std::span<const int> perm) {
  FuzzyFlowShopScratch scratch;
  fuzzy_completion_times(inst, perm, scratch);
  return std::move(scratch.completion);
}

double mean_agreement(const FuzzyFlowShopInstance& inst,
                      std::span<const int> perm,
                      FuzzyFlowShopScratch& scratch) {
  const auto& completion = fuzzy_completion_times(inst, perm, scratch);
  double acc = 0.0;
  for (int j = 0; j < inst.jobs; ++j) {
    acc += agreement_index(completion[static_cast<std::size_t>(j)],
                           inst.due[static_cast<std::size_t>(j)]);
  }
  return inst.jobs > 0 ? acc / inst.jobs : 0.0;
}

double mean_agreement(const FuzzyFlowShopInstance& inst,
                      std::span<const int> perm) {
  FuzzyFlowShopScratch scratch;
  return mean_agreement(inst, perm, scratch);
}

FuzzyFlowShopInstance fuzzify(const std::vector<std::vector<Time>>& crisp_proc,
                              double spread, double slack, double ramp) {
  FuzzyFlowShopInstance inst;
  inst.machines = static_cast<int>(crisp_proc.size());
  inst.jobs = inst.machines > 0 ? static_cast<int>(crisp_proc[0].size()) : 0;
  inst.proc.resize(static_cast<std::size_t>(inst.machines));
  for (int m = 0; m < inst.machines; ++m) {
    auto& row = inst.proc[static_cast<std::size_t>(m)];
    row.reserve(static_cast<std::size_t>(inst.jobs));
    for (int j = 0; j < inst.jobs; ++j) {
      const double p =
          static_cast<double>(crisp_proc[static_cast<std::size_t>(m)]
                                        [static_cast<std::size_t>(j)]);
      row.push_back(TriFuzzy{p * (1.0 - spread), p, p * (1.0 + spread)});
    }
  }
  inst.due.resize(static_cast<std::size_t>(inst.jobs));
  for (int j = 0; j < inst.jobs; ++j) {
    double total = 0.0;
    for (int m = 0; m < inst.machines; ++m) {
      total += static_cast<double>(
          crisp_proc[static_cast<std::size_t>(m)][static_cast<std::size_t>(j)]);
    }
    const double d1 = slack * total;
    inst.due[static_cast<std::size_t>(j)] =
        FuzzyDueDate{d1, d1 + ramp * total};
  }
  return inst;
}

}  // namespace psga::sched
