// Taillard's benchmark instance generator (E. Taillard, "Benchmarks for
// basic scheduling problems", EJOR 64, 1993). The surveyed flow-shop
// papers ([18][24][25][30][31]) evaluate on Taillard instances; the
// original data files are not shipped here, but the paper publishes the
// *generator* — a specific linear congruential RNG plus seeds — so the
// instances are regenerated bit-exactly from the published time seeds.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sched/flow_shop.h"
#include "src/sched/job_shop.h"

namespace psga::sched {

/// Taillard's portable uniform generator: x <- (16807·x) mod (2^31 - 1)
/// via Schrage's trick; yields an integer in [low, high].
class TaillardRng {
 public:
  explicit TaillardRng(std::int32_t seed) : seed_(seed) {}

  int next(int low, int high);

  std::int32_t state() const { return seed_; }

 private:
  std::int32_t seed_;
};

/// Flow shop: d[machine][job] = unif(1, 99), generated job-major exactly
/// as in the published pseudo-code.
FlowShopInstance taillard_flow_shop(int jobs, int machines,
                                    std::int32_t time_seed);

/// Job shop: durations unif(1, 99) + machine orders produced by Taillard's
/// swap procedure from a second seed.
JobShopInstance taillard_job_shop(int jobs, int machines,
                                  std::int32_t time_seed,
                                  std::int32_t machine_seed);

/// A published Taillard flow-shop benchmark entry: its generator seed and
/// the best-known makespan from the literature (used as the RPD reference;
/// see DESIGN.md — we reproduce shapes, not absolute records).
struct TaillardBenchmark {
  const char* name;
  int jobs;
  int machines;
  std::int32_t time_seed;
  Time best_known;
};

/// The ta001..ta010 (20 jobs × 5 machines) entries.
const std::vector<TaillardBenchmark>& taillard_20x5();

/// Instantiates a benchmark entry.
FlowShopInstance make_taillard(const TaillardBenchmark& bench);

}  // namespace psga::sched
