#include "src/sched/job_shop.h"

#include <algorithm>
#include <limits>
#include <optional>

namespace psga::sched {

int JobShopInstance::total_ops() const {
  int acc = 0;
  for (const auto& route : ops) acc += static_cast<int>(route.size());
  return acc;
}

namespace {

std::optional<Time> js_duration(const void* ctx, int job, int index,
                                int machine) {
  const auto& inst = *static_cast<const JobShopInstance*>(ctx);
  const JsOperation& op = inst.op(job, index);
  if (machine != op.machine) return std::nullopt;
  return op.duration;
}

}  // namespace

ValidationSpec JobShopInstance::validation_spec() const {
  ValidationSpec spec;
  spec.jobs = jobs;
  spec.machines = machines;
  spec.ops_per_job.reserve(static_cast<std::size_t>(jobs));
  for (const auto& route : ops) {
    spec.ops_per_job.push_back(static_cast<int>(route.size()));
  }
  spec.ordered_stages = true;
  spec.release = attrs.release;
  spec.duration = &js_duration;
  spec.ctx = this;
  return spec;
}

const Schedule& decode_operation_based(const JobShopInstance& inst,
                                       std::span<const int> op_sequence,
                                       JobShopScratch& scratch) {
  Schedule& schedule = scratch.schedule;
  schedule.ops.clear();
  schedule.ops.reserve(op_sequence.size());
  std::vector<int>& next_op = scratch.next_op;
  next_op.assign(static_cast<std::size_t>(inst.jobs), 0);
  std::vector<Time>& job_free = scratch.job_free;
  job_free.resize(static_cast<std::size_t>(inst.jobs));
  for (int j = 0; j < inst.jobs; ++j) {
    job_free[static_cast<std::size_t>(j)] = inst.attrs.release_of(j);
  }
  std::vector<Time>& machine_free = scratch.machine_free;
  machine_free.assign(static_cast<std::size_t>(inst.machines), 0);
  for (int job : op_sequence) {
    const int index = next_op[static_cast<std::size_t>(job)]++;
    const JsOperation& op = inst.op(job, index);
    const Time start = std::max(job_free[static_cast<std::size_t>(job)],
                                machine_free[static_cast<std::size_t>(op.machine)]);
    const Time end = start + op.duration;
    schedule.ops.push_back(ScheduledOp{job, index, op.machine, start, end});
    job_free[static_cast<std::size_t>(job)] = end;
    machine_free[static_cast<std::size_t>(op.machine)] = end;
  }
  return schedule;
}

Schedule decode_operation_based(const JobShopInstance& inst,
                                std::span<const int> op_sequence) {
  JobShopScratch scratch;
  return decode_operation_based(inst, op_sequence, scratch);
}

namespace {

/// Shared Giffler–Thompson scaffold. `pick` chooses the winner among the
/// conflict set (indices into `candidates`). Decodes into
/// scratch.schedule; all working vectors live in the scratch.
template <typename Pick>
const Schedule& giffler_thompson_impl(const JobShopInstance& inst,
                                      JobShopScratch& scratch, Pick&& pick) {
  Schedule& schedule = scratch.schedule;
  schedule.ops.clear();
  schedule.ops.reserve(static_cast<std::size_t>(inst.total_ops()));
  std::vector<int>& next_op = scratch.next_op;
  std::vector<Time>& job_free = scratch.job_free;
  std::vector<Time>& work_left = scratch.work_left;
  std::vector<Time>& machine_free = scratch.machine_free;
  next_op.assign(static_cast<std::size_t>(inst.jobs), 0);
  job_free.resize(static_cast<std::size_t>(inst.jobs));
  work_left.assign(static_cast<std::size_t>(inst.jobs), 0);
  for (int j = 0; j < inst.jobs; ++j) {
    job_free[static_cast<std::size_t>(j)] = inst.attrs.release_of(j);
    for (const auto& op : inst.ops[static_cast<std::size_t>(j)]) {
      work_left[static_cast<std::size_t>(j)] += op.duration;
    }
  }
  machine_free.assign(static_cast<std::size_t>(inst.machines), 0);

  const int total = inst.total_ops();
  for (int scheduled = 0; scheduled < total; ++scheduled) {
    // Earliest-completing candidate determines the conflict machine.
    Time best_completion = std::numeric_limits<Time>::max();
    int conflict_machine = -1;
    for (int j = 0; j < inst.jobs; ++j) {
      const int k = next_op[static_cast<std::size_t>(j)];
      if (k >= inst.ops_of(j)) continue;
      const JsOperation& op = inst.op(j, k);
      const Time start =
          std::max(job_free[static_cast<std::size_t>(j)],
                   machine_free[static_cast<std::size_t>(op.machine)]);
      const Time completion = start + op.duration;
      if (completion < best_completion) {
        best_completion = completion;
        conflict_machine = op.machine;
      }
    }
    // Conflict set: schedulable ops on that machine that would start
    // before the earliest completion.
    std::vector<int>& conflict_jobs = scratch.conflict_jobs;
    conflict_jobs.clear();
    for (int j = 0; j < inst.jobs; ++j) {
      const int k = next_op[static_cast<std::size_t>(j)];
      if (k >= inst.ops_of(j)) continue;
      const JsOperation& op = inst.op(j, k);
      if (op.machine != conflict_machine) continue;
      const Time start =
          std::max(job_free[static_cast<std::size_t>(j)],
                   machine_free[static_cast<std::size_t>(op.machine)]);
      if (start < best_completion) conflict_jobs.push_back(j);
    }
    const int winner = pick(conflict_jobs, next_op, work_left);
    const int k = next_op[static_cast<std::size_t>(winner)]++;
    const JsOperation& op = inst.op(winner, k);
    const Time start =
        std::max(job_free[static_cast<std::size_t>(winner)],
                 machine_free[static_cast<std::size_t>(op.machine)]);
    const Time end = start + op.duration;
    schedule.ops.push_back(ScheduledOp{winner, k, op.machine, start, end});
    job_free[static_cast<std::size_t>(winner)] = end;
    machine_free[static_cast<std::size_t>(op.machine)] = end;
    work_left[static_cast<std::size_t>(winner)] -= op.duration;
  }
  return schedule;
}

}  // namespace

Schedule giffler_thompson(const JobShopInstance& inst, PriorityRule rule,
                          par::Rng& rng) {
  JobShopScratch scratch;
  int tick = 0;  // FCFS tiebreak counter
  return giffler_thompson_impl(
      inst, scratch,
      [&](const std::vector<int>& jobs, const std::vector<int>& next_op,
          const std::vector<Time>& work_left) {
        ++tick;
        int best = jobs.front();
        auto duration_of = [&](int j) {
          return inst.op(j, next_op[static_cast<std::size_t>(j)]).duration;
        };
        switch (rule) {
          case PriorityRule::kSpt:
            for (int j : jobs) {
              if (duration_of(j) < duration_of(best)) best = j;
            }
            break;
          case PriorityRule::kLpt:
            for (int j : jobs) {
              if (duration_of(j) > duration_of(best)) best = j;
            }
            break;
          case PriorityRule::kMostWorkRemaining:
            for (int j : jobs) {
              if (work_left[static_cast<std::size_t>(j)] >
                  work_left[static_cast<std::size_t>(best)]) {
                best = j;
              }
            }
            break;
          case PriorityRule::kFcfs:
            // Conflict set is already in job-id order; keep the first.
            break;
          case PriorityRule::kRandom:
            best = jobs[static_cast<std::size_t>(rng.below(jobs.size()))];
            break;
        }
        return best;
      });
}

const Schedule& giffler_thompson_sequence(const JobShopInstance& inst,
                                          std::span<const int> op_sequence,
                                          JobShopScratch& scratch) {
  // For each job, the positions of its genes in the chromosome; the
  // conflict winner is the job whose next unconsumed gene occurs earliest.
  std::vector<std::vector<int>>& positions = scratch.positions;
  positions.resize(static_cast<std::size_t>(inst.jobs));
  for (auto& p : positions) p.clear();
  for (int pos = 0; pos < static_cast<int>(op_sequence.size()); ++pos) {
    positions[static_cast<std::size_t>(op_sequence[static_cast<std::size_t>(pos)])]
        .push_back(pos);
  }
  return giffler_thompson_impl(
      inst, scratch,
      [&](const std::vector<int>& jobs, const std::vector<int>& next_op,
          const std::vector<Time>& /*work_left*/) {
        int best = jobs.front();
        int best_pos = std::numeric_limits<int>::max();
        for (int j : jobs) {
          const auto& pos_list = positions[static_cast<std::size_t>(j)];
          const int k = next_op[static_cast<std::size_t>(j)];
          const int pos = pos_list[static_cast<std::size_t>(k)];
          if (pos < best_pos) {
            best_pos = pos;
            best = j;
          }
        }
        return best;
      });
}

Schedule giffler_thompson_sequence(const JobShopInstance& inst,
                                   std::span<const int> op_sequence) {
  JobShopScratch scratch;
  return giffler_thompson_sequence(inst, op_sequence, scratch);
}

Schedule giffler_thompson_rules(const JobShopInstance& inst,
                                std::span<const int> rule_per_step) {
  JobShopScratch scratch;
  int step = 0;
  return giffler_thompson_impl(
      inst, scratch,
      [&](const std::vector<int>& jobs, const std::vector<int>& next_op,
          const std::vector<Time>& work_left) {
        const int raw =
            step < static_cast<int>(rule_per_step.size())
                ? rule_per_step[static_cast<std::size_t>(step)]
                : 0;
        ++step;
        const int rule = ((raw % kDispatchRuleCount) + kDispatchRuleCount) %
                         kDispatchRuleCount;
        int best = jobs.front();
        auto duration_of = [&](int j) {
          return inst.op(j, next_op[static_cast<std::size_t>(j)]).duration;
        };
        switch (rule) {
          case 0:  // SPT
            for (int j : jobs) {
              if (duration_of(j) < duration_of(best)) best = j;
            }
            break;
          case 1:  // LPT
            for (int j : jobs) {
              if (duration_of(j) > duration_of(best)) best = j;
            }
            break;
          case 2:  // MWR
            for (int j : jobs) {
              if (work_left[static_cast<std::size_t>(j)] >
                  work_left[static_cast<std::size_t>(best)]) {
                best = j;
              }
            }
            break;
          default:  // FCFS: first job id in the conflict set
            break;
        }
        return best;
      });
}

double job_shop_objective(const JobShopInstance& inst,
                          const Schedule& schedule, Criterion criterion,
                          JobShopScratch& scratch) {
  schedule.job_completion_times(inst.jobs, scratch.completion);
  return evaluate_criterion(criterion, scratch.completion, inst.attrs);
}

double job_shop_objective(const JobShopInstance& inst,
                          const Schedule& schedule, Criterion criterion) {
  JobShopScratch scratch;
  return job_shop_objective(inst, schedule, criterion, scratch);
}

std::vector<int> random_operation_sequence(const JobShopInstance& inst,
                                           par::Rng& rng) {
  std::vector<int> seq;
  seq.reserve(static_cast<std::size_t>(inst.total_ops()));
  for (int j = 0; j < inst.jobs; ++j) {
    for (int k = 0; k < inst.ops_of(j); ++k) seq.push_back(j);
  }
  rng.shuffle(seq);
  return seq;
}

}  // namespace psga::sched
