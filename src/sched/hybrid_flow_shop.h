// Hybrid (flexible) flow shop: jobs traverse stages in the same order, but
// a stage holds several parallel machines — possibly unrelated (per-machine
// processing times), with optional sequence-dependent setup times and
// processor blocking, matching the models of Belkadi et al. [37] and
// Rashidi et al. [38].
#pragma once

#include <span>
#include <vector>

#include "src/sched/objectives.h"
#include "src/sched/schedule.h"

namespace psga::sched {

struct HybridFlowShopInstance {
  int jobs = 0;
  /// machines_per_stage[s] = parallel machine count at stage s.
  std::vector<int> machines_per_stage;
  /// proc[stage][job][machine-in-stage] — unrelated parallel machines.
  /// Identical machines simply repeat the same duration.
  std::vector<std::vector<std::vector<Time>>> proc;
  /// Optional sequence-dependent setups:
  /// setup[stage][machine-in-stage][prev_job + 1][next_job]; prev_job = -1
  /// (index 0) is the initial setup. Empty = no setups.
  std::vector<std::vector<std::vector<std::vector<Time>>>> setup;
  /// Blocking: no intermediate buffers — a finished job occupies its
  /// machine until a machine at the next stage frees up ([38]).
  bool blocking = false;
  JobAttributes attrs;

  int stages() const { return static_cast<int>(machines_per_stage.size()); }
  int total_machines() const;
  /// Global machine id of machine `k` at stage `s` (Schedule needs one
  /// flat machine namespace).
  int global_machine(int stage, int k) const;

  Time processing(int stage, int job, int k) const {
    return proc[static_cast<std::size_t>(stage)][static_cast<std::size_t>(job)]
               [static_cast<std::size_t>(k)];
  }
  Time setup_time(int stage, int k, int prev_job, int next_job) const;

  ValidationSpec validation_spec() const;
};

/// Reusable evaluation scratch for the HFS decoders (one per worker).
struct HybridFlowShopScratch {
  Schedule schedule;
  std::vector<Time> ready;
  std::vector<Time> machine_free;
  std::vector<int> last_job;
  std::vector<int> order;
  std::vector<Time> completion;
};

/// Decodes a job permutation: stage 0 is sequenced in chromosome order;
/// each later stage processes jobs in order of their completion at the
/// previous stage (FIFO list scheduling); within a stage each job takes
/// the machine that completes it earliest (setup-aware).
Schedule decode_hybrid_flow_shop(const HybridFlowShopInstance& inst,
                                 std::span<const int> perm);

/// Allocation-free variant: the returned reference points into `scratch`.
const Schedule& decode_hybrid_flow_shop(const HybridFlowShopInstance& inst,
                                        std::span<const int> perm,
                                        HybridFlowShopScratch& scratch);

double hybrid_flow_shop_objective(const HybridFlowShopInstance& inst,
                                  const Schedule& schedule,
                                  Criterion criterion);

double hybrid_flow_shop_objective(const HybridFlowShopInstance& inst,
                                  const Schedule& schedule,
                                  const CompositeObjective& objective);

/// Allocation-free variants (reuse scratch.completion).
double hybrid_flow_shop_objective(const HybridFlowShopInstance& inst,
                                  const Schedule& schedule, Criterion criterion,
                                  HybridFlowShopScratch& scratch);

double hybrid_flow_shop_objective(const HybridFlowShopInstance& inst,
                                  const Schedule& schedule,
                                  const CompositeObjective& objective,
                                  HybridFlowShopScratch& scratch);

}  // namespace psga::sched
