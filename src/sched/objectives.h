// Optimality criteria of Section II of the survey, plus the two fitness
// transforms of Section III.A (Eq. 1 and Eq. 2).
//
// Given job completion times C_j and per-job due dates D_j / weights w_j:
//   tardiness      T_j = max(0, C_j - D_j)
//   unit penalty   U_j = 1 if C_j > D_j else 0
// Criteria: Cmax, sum w_j C_j, sum w_j T_j, sum w_j U_j, Tmax, or a
// weighted combination of any of them.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/sched/schedule.h"

namespace psga::sched {

/// Per-job data needed by the due-date criteria. Weights default to 1 and
/// due dates to "never late" when empty.
struct JobAttributes {
  std::vector<Time> due;
  std::vector<double> weight;
  std::vector<Time> release;

  double weight_of(int job) const {
    return job < static_cast<int>(weight.size())
               ? weight[static_cast<std::size_t>(job)]
               : 1.0;
  }
  Time due_of(int job) const {
    return job < static_cast<int>(due.size())
               ? due[static_cast<std::size_t>(job)]
               : kNoDueDate;
  }
  Time release_of(int job) const {
    return job < static_cast<int>(release.size())
               ? release[static_cast<std::size_t>(job)]
               : 0;
  }

  static constexpr Time kNoDueDate = (1LL << 62);
};

enum class Criterion {
  kMakespan,                ///< C_max
  kTotalWeightedCompletion, ///< sum w_j C_j
  kTotalWeightedTardiness,  ///< sum w_j T_j
  kWeightedUnitPenalty,     ///< sum w_j U_j
  kMaxTardiness,            ///< T_max (used by Rashidi et al. [38])
};

std::string to_string(Criterion c);

/// Evaluates one criterion from completion times.
double evaluate_criterion(Criterion c, std::span<const Time> completion,
                          const JobAttributes& attrs);

/// Weighted combination of criteria (Section II: "any combination among
/// them"; Rashidi et al. combine makespan and max tardiness).
struct CompositeObjective {
  std::vector<std::pair<Criterion, double>> terms;

  double evaluate(std::span<const Time> completion,
                  const JobAttributes& attrs) const;
};

// --- Fitness transforms (Section III.A) -----------------------------------

/// Eq. (1): FIT(i) = max(Fbar - F_i, 0), with Fbar the objective value of
/// some heuristic solution. Larger is fitter.
double fitness_eq1(double objective, double heuristic_reference);

/// Eq. (2): FIT(i) = 1 / F_i. Larger is fitter; objective must be > 0
/// (guards to a large finite value at 0).
double fitness_eq2(double objective);

}  // namespace psga::sched
