#include "src/sched/stochastic.h"

#include <algorithm>

#include "src/par/rng.h"

namespace psga::sched {

StochasticJobShop::StochasticJobShop(JobShopInstance nominal, double spread,
                                     int scenarios, std::uint64_t seed)
    : nominal_(std::move(nominal)) {
  par::Rng root(seed);
  samples_.reserve(static_cast<std::size_t>(scenarios));
  for (int s = 0; s < scenarios; ++s) {
    par::Rng rng = root.split(static_cast<std::uint64_t>(s));
    JobShopInstance sample = nominal_;
    for (auto& route : sample.ops) {
      for (auto& op : route) {
        const double factor = rng.uniform(1.0 - spread, 1.0 + spread);
        op.duration = std::max<Time>(
            1, static_cast<Time>(static_cast<double>(op.duration) * factor + 0.5));
      }
    }
    samples_.push_back(std::move(sample));
  }
}

double StochasticJobShop::expected_makespan(
    std::span<const int> op_sequence) const {
  if (samples_.empty()) {
    return static_cast<double>(
        decode_operation_based(nominal_, op_sequence).makespan());
  }
  double acc = 0.0;
  for (const auto& sample : samples_) {
    acc += static_cast<double>(
        decode_operation_based(sample, op_sequence).makespan());
  }
  return acc / static_cast<double>(samples_.size());
}

}  // namespace psga::sched
