// Batch-first decode kernels: the genome batch is the processing unit,
// the way BESS modules process a PacketBatch instead of one packet.
//
// The scalar decoders in flow_shop.h / job_shop.h walk one chromosome at
// a time through cache-cold instance matrices. These kernels amortize
// that walk over a whole evaluation chunk:
//
//   * flow shop — a structure-of-arrays completion front C[machine][lane]
//     in contiguous block-major layout advances permutations in lockstep
//     blocks of fixed SIMD width. Per machine step the kernel gathers one
//     block-wide duration row out of a machine-major matrix packed once
//     per instance, then runs a unit-stride max+add recurrence over the
//     lanes (explicit vector code on GCC/Clang).
//   * job shop — semi-active and active (Giffler–Thompson) decoders that
//     compute completion times directly into reused frontier arrays,
//     never materializing a Schedule, and optionally stop a lane early
//     once its partial makespan already reaches a caller-supplied
//     incumbent (legal only when the caller treats "≥ incumbent" as
//     "discard": the returned value is then a lower bound, not exact).
//
// Determinism contract: with no incumbent, every lane performs exactly
// the arithmetic of its scalar twin in the same order, so results are
// bit-identical to flow_shop_objective / job_shop_objective for any
// batch size and any batch composition. Scratch structs carry capacity
// only, never state (see docs/architecture.md, "Workspace = capacity").
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "src/sched/flow_shop.h"
#include "src/sched/job_shop.h"

namespace psga::sched {

/// Reusable scratch for the flow-shop batch kernels. The machine-major
/// processing-time matrix is packed on first use per instance (keyed on
/// instance address) and reused for every subsequent batch; the front
/// array is block-major [machine * block + lane-in-block] for the
/// fixed-width lane block the kernel advances at a time, so every inner
/// loop is unit-stride with a compile-time trip count.
struct FlowShopBatchScratch {
  const void* packed_instance = nullptr;  ///< identity tag of the pack
  /// Every completion time of this instance provably fits std::int32_t
  /// (max release + total processing <= INT32_MAX, all values >= 0), so
  /// the kernels run the 32-bit twins below. Baseline x86-64 has packed
  /// int32 max but no packed int64 max (that needs AVX-512), so the
  /// narrow recurrence is the one the auto-vectorizer can actually turn
  /// into SIMD — and int32 arithmetic without overflow is bit-identical
  /// to the scalar int64 recurrence.
  bool narrow = false;
  std::vector<Time> mproc;      ///< machine-major flatten: [m * jobs + job]
  std::vector<Time> release;    ///< per-job release times
  std::vector<Time> front;      ///< completion front, [m * block + lane]
  std::vector<Time> completion;  ///< [lane * jobs + job] (criteria paths)
  std::vector<Time> makespans;   ///< per-lane makespans (objective entry)
  // 32-bit twins of the packed matrix and working rows (narrow path).
  std::vector<std::int32_t> mproc32;
  std::vector<std::int32_t> release32;
  std::vector<std::int32_t> front32;
};

/// Makespans of B full permutations in lockstep: out[l] is bit-identical
/// to flow_shop_makespan(inst, perms[l]). Throws std::invalid_argument
/// when any perms[l].size() != inst.jobs (shared length check — the same
/// contract the scalar entry points enforce).
void flow_shop_makespan_batch(const FlowShopInstance& inst,
                              std::span<const std::span<const int>> perms,
                              std::span<Time> out,
                              FlowShopBatchScratch& scratch);

/// Criterion values of B full permutations; equals
/// flow_shop_objective(inst, perms[l], criterion) per lane bit-for-bit.
void flow_shop_objective_batch(const FlowShopInstance& inst,
                               std::span<const std::span<const int>> perms,
                               Criterion criterion, std::span<double> out,
                               FlowShopBatchScratch& scratch);

/// Reusable scratch for the job-shop batch decoders: the instance routes
/// are flattened once per instance into machine/duration arrays, and all
/// frontier vectors are shared across every lane of every batch.
struct JobShopBatchScratch {
  const void* packed_instance = nullptr;
  std::vector<int> job_offset;    ///< [jobs + 1] into the flat op arrays
  std::vector<int> op_machine;    ///< flat, route order
  std::vector<Time> op_duration;  ///< flat, route order
  std::vector<Time> release;      ///< per-job release times
  // Per-lane decode frontiers, reused across the batch.
  std::vector<int> next_op;
  std::vector<Time> job_free;
  std::vector<Time> machine_free;
  std::vector<Time> completion;
  std::vector<int> conflict_jobs;
  std::vector<std::vector<int>> positions;  ///< per-job gene positions (G&T)
};

/// Which decoder the batch kernel mirrors (JobShopProblem::Decoder twin).
enum class JobShopBatchDecoder { kSemiActive, kActive };

/// Sentinel: no incumbent, decode every lane exactly.
inline constexpr double kNoIncumbent = std::numeric_limits<double>::infinity();

/// Criterion values of B operation sequences; without an incumbent each
/// lane equals job_shop_objective(inst, decode(seq_l), criterion)
/// bit-for-bit. With a finite `incumbent` AND criterion == kMakespan, a
/// lane whose partial schedule horizon already reaches the incumbent
/// stops decoding and reports that horizon — a lower bound that is
/// itself >= incumbent. Lanes strictly below the incumbent stay exact,
/// so the early exit is legal exactly when the caller discards any value
/// >= its current best (elitist replacement, branch-and-bound style
/// probes). Throws std::invalid_argument when a sequence length is not
/// inst.total_ops().
void job_shop_objective_batch(const JobShopInstance& inst,
                              std::span<const std::span<const int>> seqs,
                              JobShopBatchDecoder decoder, Criterion criterion,
                              std::span<double> out,
                              JobShopBatchScratch& scratch,
                              double incumbent = kNoIncumbent);

}  // namespace psga::sched
