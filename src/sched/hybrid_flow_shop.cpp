#include "src/sched/hybrid_flow_shop.h"

#include <algorithm>
#include <numeric>
#include <optional>

namespace psga::sched {

int HybridFlowShopInstance::total_machines() const {
  return std::accumulate(machines_per_stage.begin(), machines_per_stage.end(), 0);
}

int HybridFlowShopInstance::global_machine(int stage, int k) const {
  int base = 0;
  for (int s = 0; s < stage; ++s) base += machines_per_stage[static_cast<std::size_t>(s)];
  return base + k;
}

Time HybridFlowShopInstance::setup_time(int stage, int k, int prev_job,
                                        int next_job) const {
  if (setup.empty()) return 0;
  return setup[static_cast<std::size_t>(stage)][static_cast<std::size_t>(k)]
              [static_cast<std::size_t>(prev_job + 1)]
              [static_cast<std::size_t>(next_job)];
}

namespace {

struct HfsStageOfMachine {
  int stage;
  int k;  // machine index within the stage
};

HfsStageOfMachine locate_machine(const HybridFlowShopInstance& inst,
                                 int global) {
  int stage = 0;
  while (global >= inst.machines_per_stage[static_cast<std::size_t>(stage)]) {
    global -= inst.machines_per_stage[static_cast<std::size_t>(stage)];
    ++stage;
  }
  return {stage, global};
}

std::optional<Time> hfs_duration(const void* ctx, int job, int index,
                                 int machine) {
  const auto& inst = *static_cast<const HybridFlowShopInstance*>(ctx);
  const auto loc = locate_machine(inst, machine);
  // Operation `index` of a job is its stage-`index` pass; it may run on
  // any machine of that stage.
  if (loc.stage != index) return std::nullopt;
  return inst.processing(loc.stage, job, loc.k);
}

Time hfs_gap(const void* ctx, int machine, int prev_job, int next_job) {
  const auto& inst = *static_cast<const HybridFlowShopInstance*>(ctx);
  const auto loc = locate_machine(inst, machine);
  return inst.setup_time(loc.stage, loc.k, prev_job, next_job);
}

}  // namespace

ValidationSpec HybridFlowShopInstance::validation_spec() const {
  ValidationSpec spec;
  spec.jobs = jobs;
  spec.machines = total_machines();
  spec.ops_per_job.assign(static_cast<std::size_t>(jobs), stages());
  spec.ordered_stages = true;
  spec.release = attrs.release;
  spec.duration = &hfs_duration;
  spec.ctx = this;
  if (!setup.empty()) spec.machine_gap = &hfs_gap;
  return spec;
}

namespace {

/// Non-blocking decode: stage 0 in chromosome order, stage s > 0 in FIFO
/// order of completion at stage s-1; earliest-completion machine choice.
const Schedule& decode_hfs_fifo(const HybridFlowShopInstance& inst,
                                std::span<const int> perm,
                                HybridFlowShopScratch& scratch) {
  Schedule& schedule = scratch.schedule;
  schedule.ops.clear();
  schedule.ops.reserve(static_cast<std::size_t>(inst.jobs) *
                       static_cast<std::size_t>(inst.stages()));
  std::vector<Time>& ready = scratch.ready;
  ready.resize(static_cast<std::size_t>(inst.jobs));
  for (int j = 0; j < inst.jobs; ++j) {
    ready[static_cast<std::size_t>(j)] = inst.attrs.release_of(j);
  }
  std::vector<Time>& machine_free = scratch.machine_free;
  machine_free.assign(static_cast<std::size_t>(inst.total_machines()), 0);
  std::vector<int>& last_job = scratch.last_job;
  last_job.assign(static_cast<std::size_t>(inst.total_machines()), -1);
  std::vector<int>& order = scratch.order;
  order.assign(perm.begin(), perm.end());

  for (int s = 0; s < inst.stages(); ++s) {
    const int machines = inst.machines_per_stage[static_cast<std::size_t>(s)];
    for (int job : order) {
      int best_k = 0;
      Time best_start = 0;
      Time best_end = -1;
      for (int k = 0; k < machines; ++k) {
        const int gm = inst.global_machine(s, k);
        const Time setup =
            inst.setup_time(s, k, last_job[static_cast<std::size_t>(gm)], job);
        const Time start =
            std::max(ready[static_cast<std::size_t>(job)],
                     machine_free[static_cast<std::size_t>(gm)] + setup);
        const Time end = start + inst.processing(s, job, k);
        if (best_end < 0 || end < best_end) {
          best_k = k;
          best_start = start;
          best_end = end;
        }
      }
      const int gm = inst.global_machine(s, best_k);
      schedule.ops.push_back(ScheduledOp{job, s, gm, best_start, best_end});
      machine_free[static_cast<std::size_t>(gm)] = best_end;
      last_job[static_cast<std::size_t>(gm)] = job;
      ready[static_cast<std::size_t>(job)] = best_end;
    }
    // Next stage processes jobs in completion order at this stage.
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return ready[static_cast<std::size_t>(a)] < ready[static_cast<std::size_t>(b)];
    });
  }
  return schedule;
}

/// Blocking decode: jobs are dispatched one at a time through all stages
/// (job-major), so a job's stage-(s-1) machine stays occupied until its
/// stage-s operation starts — later jobs in the permutation observe the
/// extended occupancy, which is exactly the no-intermediate-buffer rule of
/// Rashidi et al. [38].
const Schedule& decode_hfs_blocking(const HybridFlowShopInstance& inst,
                                    std::span<const int> perm,
                                    HybridFlowShopScratch& scratch) {
  Schedule& schedule = scratch.schedule;
  schedule.ops.clear();
  schedule.ops.reserve(static_cast<std::size_t>(inst.jobs) *
                       static_cast<std::size_t>(inst.stages()));
  std::vector<Time>& machine_free = scratch.machine_free;
  machine_free.assign(static_cast<std::size_t>(inst.total_machines()), 0);
  std::vector<int>& last_job = scratch.last_job;
  last_job.assign(static_cast<std::size_t>(inst.total_machines()), -1);

  for (int job : perm) {
    Time ready = inst.attrs.release_of(job);
    int held_machine = -1;  // machine blocked by this job's previous op
    for (int s = 0; s < inst.stages(); ++s) {
      const int machines = inst.machines_per_stage[static_cast<std::size_t>(s)];
      int best_k = 0;
      Time best_start = 0;
      Time best_end = -1;
      for (int k = 0; k < machines; ++k) {
        const int gm = inst.global_machine(s, k);
        const Time setup =
            inst.setup_time(s, k, last_job[static_cast<std::size_t>(gm)], job);
        const Time start =
            std::max(ready, machine_free[static_cast<std::size_t>(gm)] + setup);
        const Time end = start + inst.processing(s, job, k);
        if (best_end < 0 || end < best_end) {
          best_k = k;
          best_start = start;
          best_end = end;
        }
      }
      const int gm = inst.global_machine(s, best_k);
      schedule.ops.push_back(ScheduledOp{job, s, gm, best_start, best_end});
      if (held_machine >= 0) {
        // Release the previous stage's machine only now.
        machine_free[static_cast<std::size_t>(held_machine)] = std::max(
            machine_free[static_cast<std::size_t>(held_machine)], best_start);
      }
      machine_free[static_cast<std::size_t>(gm)] = best_end;
      last_job[static_cast<std::size_t>(gm)] = job;
      ready = best_end;
      held_machine = gm;
    }
  }
  return schedule;
}

}  // namespace

const Schedule& decode_hybrid_flow_shop(const HybridFlowShopInstance& inst,
                                        std::span<const int> perm,
                                        HybridFlowShopScratch& scratch) {
  return inst.blocking ? decode_hfs_blocking(inst, perm, scratch)
                       : decode_hfs_fifo(inst, perm, scratch);
}

Schedule decode_hybrid_flow_shop(const HybridFlowShopInstance& inst,
                                 std::span<const int> perm) {
  HybridFlowShopScratch scratch;
  return decode_hybrid_flow_shop(inst, perm, scratch);
}

double hybrid_flow_shop_objective(const HybridFlowShopInstance& inst,
                                  const Schedule& schedule, Criterion criterion,
                                  HybridFlowShopScratch& scratch) {
  schedule.job_completion_times(inst.jobs, scratch.completion);
  return evaluate_criterion(criterion, scratch.completion, inst.attrs);
}

double hybrid_flow_shop_objective(const HybridFlowShopInstance& inst,
                                  const Schedule& schedule,
                                  Criterion criterion) {
  HybridFlowShopScratch scratch;
  return hybrid_flow_shop_objective(inst, schedule, criterion, scratch);
}

double hybrid_flow_shop_objective(const HybridFlowShopInstance& inst,
                                  const Schedule& schedule,
                                  const CompositeObjective& objective,
                                  HybridFlowShopScratch& scratch) {
  schedule.job_completion_times(inst.jobs, scratch.completion);
  return objective.evaluate(scratch.completion, inst.attrs);
}

double hybrid_flow_shop_objective(const HybridFlowShopInstance& inst,
                                  const Schedule& schedule,
                                  const CompositeObjective& objective) {
  HybridFlowShopScratch scratch;
  return hybrid_flow_shop_objective(inst, schedule, objective, scratch);
}

}  // namespace psga::sched
