// Job shop: each job has its own machine route. Two decoders, matching the
// survey's Section III.A "direct way" and the Giffler–Thompson-style active
// schedule builders several surveyed works use ([17] prior-rule active
// schedules, [21] G&T-inspired operators, [26] operation-based
// representation).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "src/par/rng.h"
#include "src/sched/objectives.h"
#include "src/sched/schedule.h"

namespace psga::sched {

struct JsOperation {
  int machine = 0;
  Time duration = 0;
};

struct JobShopInstance {
  int jobs = 0;
  int machines = 0;
  /// ops[job] = the job's route, in processing order.
  std::vector<std::vector<JsOperation>> ops;
  JobAttributes attrs;

  int total_ops() const;
  const JsOperation& op(int job, int index) const {
    return ops[static_cast<std::size_t>(job)][static_cast<std::size_t>(index)];
  }
  int ops_of(int job) const {
    return static_cast<int>(ops[static_cast<std::size_t>(job)].size());
  }

  ValidationSpec validation_spec() const;
};

/// Reusable evaluation scratch for the job-shop decoders: one per worker,
/// reused for every genome, so the schedule matrix and frontier vectors
/// are allocated once per run instead of once per decode.
struct JobShopScratch {
  Schedule schedule;  ///< decode output (ops vector reused)
  std::vector<int> next_op;
  std::vector<Time> job_free;
  std::vector<Time> machine_free;
  std::vector<Time> work_left;
  std::vector<int> conflict_jobs;
  std::vector<std::vector<int>> positions;  ///< per-job gene positions (G&T)
  std::vector<Time> completion;
};

/// Decodes an operation-based chromosome (permutation with repetition: job
/// j appears once per operation; the k-th occurrence of j is its k-th
/// operation) into a semi-active schedule.
Schedule decode_operation_based(const JobShopInstance& inst,
                                std::span<const int> op_sequence);

/// Allocation-free variant: the returned reference points into `scratch`
/// and is valid until the next decode with the same scratch.
const Schedule& decode_operation_based(const JobShopInstance& inst,
                                       std::span<const int> op_sequence,
                                       JobShopScratch& scratch);

/// Priority rules for the Giffler–Thompson active schedule builder.
enum class PriorityRule { kSpt, kLpt, kMostWorkRemaining, kFcfs, kRandom };

/// Giffler–Thompson active schedule generation driven by a priority rule.
/// `rng` is only used by PriorityRule::kRandom.
Schedule giffler_thompson(const JobShopInstance& inst, PriorityRule rule,
                          par::Rng& rng);

/// Giffler–Thompson where conflicts are resolved by an operation-based
/// chromosome: among the conflict set, the operation whose gene occurs
/// earliest (among not-yet-consumed genes) wins. Always yields an active
/// schedule for any permutation-with-repetition.
Schedule giffler_thompson_sequence(const JobShopInstance& inst,
                                   std::span<const int> op_sequence);

/// Allocation-free variant (see decode_operation_based overload).
const Schedule& giffler_thompson_sequence(const JobShopInstance& inst,
                                          std::span<const int> op_sequence,
                                          JobShopScratch& scratch);

/// Giffler–Thompson where the k-th conflict is resolved by the k-th entry
/// of `rule_per_step` (indices into {SPT, LPT, MWR, FCFS}) — the survey's
/// "indirect way" chromosome: "a sequence of dispatching rules for job
/// assignment" [12].
Schedule giffler_thompson_rules(const JobShopInstance& inst,
                                std::span<const int> rule_per_step);

/// Number of distinct rules giffler_thompson_rules understands.
constexpr int kDispatchRuleCount = 4;

/// Criterion value of a decoded schedule.
double job_shop_objective(const JobShopInstance& inst,
                          const Schedule& schedule, Criterion criterion);

/// Allocation-free variant (reuses scratch.completion).
double job_shop_objective(const JobShopInstance& inst,
                          const Schedule& schedule, Criterion criterion,
                          JobShopScratch& scratch);

/// A valid operation-based chromosome drawn uniformly at random.
std::vector<int> random_operation_sequence(const JobShopInstance& inst,
                                           par::Rng& rng);

}  // namespace psga::sched
