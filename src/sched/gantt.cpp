#include "src/sched/gantt.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace psga::sched {

namespace {

char job_symbol(int job) {
  if (job < 10) return static_cast<char>('0' + job);
  if (job < 36) return static_cast<char>('a' + job - 10);
  if (job < 62) return static_cast<char>('A' + job - 36);
  return '*';
}

}  // namespace

std::string render_gantt(const Schedule& schedule, int machines,
                         const GanttOptions& options) {
  const Time makespan = schedule.makespan();
  const int width = std::max(10, options.width);
  std::vector<std::string> rows(static_cast<std::size_t>(machines),
                                std::string(static_cast<std::size_t>(width), '.'));
  // Half-open scaling: time t maps to column t·width/makespan, so op
  // [start, end) paints [col(start), col(end)) and adjacent ops tile the
  // row without gaps or overlap.
  auto column = [&](Time t) {
    if (makespan <= 0) return 0LL;
    const long long c = static_cast<long long>(t) * width / makespan;
    return std::clamp<long long>(c, 0, width);
  };
  for (const auto& op : schedule.ops) {
    if (op.machine < 0 || op.machine >= machines) continue;
    auto& row = rows[static_cast<std::size_t>(op.machine)];
    const int from =
        static_cast<int>(std::min<long long>(column(op.start), width - 1));
    // Paint at least one cell so scaling never hides an op.
    const int to = std::max(from, static_cast<int>(column(op.end)) - 1);
    for (int c = from; c <= to && c < width; ++c) {
      row[static_cast<std::size_t>(c)] = job_symbol(op.job);
    }
  }
  std::ostringstream out;
  for (int m = 0; m < machines; ++m) {
    out << "M" << m << (m < 10 ? "  |" : " |")
        << rows[static_cast<std::size_t>(m)] << "|\n";
  }
  if (options.show_axis) {
    out << "    |0" << std::string(static_cast<std::size_t>(width - 2), ' ')
        << makespan << "\n";
  }
  return out.str();
}

}  // namespace psga::sched
