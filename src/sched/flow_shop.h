// Permutation flow shop: every job visits machines 0..m-1 in the same
// order; a genome is a permutation of jobs (the standard chromosome of
// Section III.A: "a string of length n, the i-th gene contains the index
// of the job at position i").
#pragma once

#include <span>
#include <vector>

#include "src/sched/objectives.h"
#include "src/sched/schedule.h"

namespace psga::sched {

struct FlowShopInstance {
  int jobs = 0;
  int machines = 0;
  /// proc[machine][job] — Taillard's layout.
  std::vector<std::vector<Time>> proc;
  JobAttributes attrs;

  Time processing(int machine, int job) const {
    return proc[static_cast<std::size_t>(machine)][static_cast<std::size_t>(job)];
  }
  Time total_processing(int job) const;

  ValidationSpec validation_spec() const;
};

/// Reusable evaluation scratch: allocate once per worker, reuse for every
/// genome (the buffers are resized on first use and only grow).
struct FlowShopScratch {
  std::vector<Time> ready;       ///< per-machine frontier
  std::vector<Time> completion;  ///< per-job completion times
};

/// Makespan of a job permutation — O(n·m) critical-path recurrence.
/// Throws std::invalid_argument when perm.size() != inst.jobs (a short
/// read here would silently score a partial schedule).
Time flow_shop_makespan(const FlowShopInstance& inst, std::span<const int> perm);

/// Allocation-free variant for hot loops.
Time flow_shop_makespan(const FlowShopInstance& inst, std::span<const int> perm,
                        FlowShopScratch& scratch);

/// Makespan of a *partial* permutation (at most inst.jobs entries) — the
/// escape hatch for constructive heuristics like NEH that legitimately
/// evaluate growing prefixes. Throws when prefix.size() > inst.jobs.
Time flow_shop_makespan_prefix(const FlowShopInstance& inst,
                               std::span<const int> prefix,
                               FlowShopScratch& scratch);

/// Completion time of every job on the last machine (indexed by job id),
/// for the weighted-completion / tardiness criteria.
std::vector<Time> flow_shop_completion_times(const FlowShopInstance& inst,
                                             std::span<const int> perm);

/// Allocation-free variant: fills scratch.completion and returns it.
const std::vector<Time>& flow_shop_completion_times(
    const FlowShopInstance& inst, std::span<const int> perm,
    FlowShopScratch& scratch);

/// Full explicit schedule (for validation and Gantt-style inspection).
Schedule flow_shop_schedule(const FlowShopInstance& inst,
                            std::span<const int> perm);

/// Criterion value of a permutation.
double flow_shop_objective(const FlowShopInstance& inst,
                           std::span<const int> perm, Criterion criterion);

/// Allocation-free variant for hot loops.
double flow_shop_objective(const FlowShopInstance& inst,
                           std::span<const int> perm, Criterion criterion,
                           FlowShopScratch& scratch);

}  // namespace psga::sched
