// Energy-aware shop scheduling — the "new integrated factors" of the
// survey's Section II: Xu et al. [8] trade peak power against production
// efficiency; Tang et al. [9] minimize energy consumption together with
// makespan. This module computes energy metrics of any explicit Schedule
// from per-machine power profiles and exposes an energy-aware flow-shop
// Problem for the GA engines.
#pragma once

#include <vector>

#include "src/sched/flow_shop.h"
#include "src/sched/schedule.h"

namespace psga::sched {

/// Power draw of one machine (arbitrary power units).
struct PowerProfile {
  double processing = 10.0;  ///< while an operation runs
  double idle = 2.0;         ///< powered on but waiting (between ops)
};

struct EnergyReport {
  double processing_energy = 0.0;  ///< sum over ops: duration x proc power
  double idle_energy = 0.0;  ///< gaps between a machine's first/last op
  double total_energy() const { return processing_energy + idle_energy; }
  /// Maximum instantaneous power: the largest sum of processing powers of
  /// machines that are busy simultaneously ([8]'s peak power).
  double peak_power = 0.0;
};

/// Computes the energy report of a schedule. `profiles[m]` describes
/// machine m; machines absent from the schedule draw nothing.
EnergyReport energy_report(const Schedule& schedule,
                           const std::vector<PowerProfile>& profiles);

/// Weights of the scalarized energy-aware objective
/// (makespan, total energy, peak power).
struct EnergyObjectiveWeights {
  double makespan = 1.0;
  double energy = 0.0;
  double peak_power = 0.0;
};

/// Flow shop whose objective is a weighted combination of makespan, total
/// energy and peak power — the trade-off studied by [8]/[9].
class EnergyAwareFlowShop {
 public:
  EnergyAwareFlowShop(FlowShopInstance inst, std::vector<PowerProfile> profiles,
                      EnergyObjectiveWeights weights);

  const FlowShopInstance& instance() const { return inst_; }
  const EnergyObjectiveWeights& weights() const { return weights_; }

  /// Scalarized objective of a permutation.
  double objective(std::span<const int> perm) const;

  /// Component metrics of a permutation.
  EnergyReport report(std::span<const int> perm) const;
  Time makespan(std::span<const int> perm) const;

 private:
  FlowShopInstance inst_;
  std::vector<PowerProfile> profiles_;
  EnergyObjectiveWeights weights_;
};

/// Uniform power profiles in [proc_lo, proc_hi] x [idle_lo, idle_hi].
std::vector<PowerProfile> random_power_profiles(int machines,
                                                std::uint64_t seed,
                                                double proc_lo = 5.0,
                                                double proc_hi = 20.0,
                                                double idle_lo = 0.5,
                                                double idle_hi = 4.0);

}  // namespace psga::sched
