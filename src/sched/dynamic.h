// Dynamic shop scheduling — the second "new integrated factor" of the
// survey's Section II (Tang et al. [9]: predictive-reactive rescheduling
// under a dynamic environment). The model here: machine breakdowns as
// unavailability windows hitting a job shop mid-execution.
//
// Two repair strategies are provided:
//   * right-shift repair — keep the predictive operation order, push
//     affected operations past the downtime (the standard passive
//     baseline);
//   * predictive-reactive — at each disruption, freeze everything already
//     started, and re-optimize the ordering of the remaining operations
//     (the survey's "predictive reactive approach"; the re-optimizer is a
//     pluggable callback so benches can run a GA there).
#pragma once

#include <functional>
#include <vector>

#include "src/sched/job_shop.h"

namespace psga::sched {

/// Machine m is unusable during [start, end).
struct Downtime {
  int machine = 0;
  Time start = 0;
  Time end = 0;
};

/// Semi-active list decode honoring downtime windows: a non-preemptive
/// operation is pushed past every window it would overlap.
Schedule decode_with_downtime(const JobShopInstance& inst,
                              std::span<const int> op_sequence,
                              std::span<const Downtime> downtimes);

/// The state handed to a reactive re-optimizer at a disruption instant.
struct ReplanContext {
  Time now = 0;  ///< disruption time: ops starting earlier are frozen
  /// The frozen prefix of the current sequence (genes already dispatched).
  std::vector<int> frozen_prefix;
  /// Multiset of job ids still to dispatch, in current planned order.
  std::vector<int> remaining;
};

/// Returns a (possibly re-ordered) replacement for context.remaining. The
/// returned vector must be a permutation of it.
using Replanner = std::function<std::vector<int>(const ReplanContext&)>;

/// Splits `sequence` at disruption instant `now`: decodes it against
/// `downtimes` and freezes the maximal gene-order prefix whose decoded
/// start is strictly before `now` (the genes already dispatched); the
/// rest is the re-optimizable remainder. This is the single freeze rule
/// shared by simulate_dynamic and the online session layer, so both
/// agree on what a replanner may touch.
ReplanContext split_at(const JobShopInstance& inst,
                       std::span<const int> sequence,
                       std::span<const Downtime> downtimes, Time now);

struct DynamicRunResult {
  Time predictive_makespan = 0;   ///< makespan ignoring the disruptions
  Time realized_makespan = 0;     ///< makespan actually achieved
  Schedule realized_schedule;
  int replans = 0;
};

/// Executes a predictive sequence against the given downtimes with
/// right-shift repair only (replanner == nullptr), or re-planning the
/// remaining operations at the start of each downtime window.
DynamicRunResult simulate_dynamic(const JobShopInstance& inst,
                                  std::span<const int> predictive_sequence,
                                  std::span<const Downtime> downtimes,
                                  const Replanner& replanner = nullptr);

/// Random downtime generator: `count` windows on random machines, start
/// uniform in [0, horizon], length uniform in [len_lo, len_hi].
std::vector<Downtime> random_downtimes(int machines, int count, Time horizon,
                                       Time len_lo, Time len_hi,
                                       std::uint64_t seed);

/// Objective wrapper used by a reactive GA: the realized makespan of
/// (frozen prefix + candidate suffix) under the downtimes.
Time realized_makespan_with_prefix(const JobShopInstance& inst,
                                   std::span<const int> frozen_prefix,
                                   std::span<const int> suffix,
                                   std::span<const Downtime> downtimes);

}  // namespace psga::sched
