#include "src/sched/energy.h"

#include <algorithm>
#include <map>

#include "src/par/rng.h"

namespace psga::sched {

EnergyReport energy_report(const Schedule& schedule,
                           const std::vector<PowerProfile>& profiles) {
  EnergyReport report;
  auto profile_of = [&](int machine) {
    return machine < static_cast<int>(profiles.size())
               ? profiles[static_cast<std::size_t>(machine)]
               : PowerProfile{};
  };

  // Processing energy + per-machine busy spans for idle accounting.
  std::map<int, std::pair<Time, Time>> machine_span;  // first start, last end
  std::map<int, Time> machine_busy;
  for (const auto& op : schedule.ops) {
    const Time duration = op.end - op.start;
    report.processing_energy +=
        static_cast<double>(duration) * profile_of(op.machine).processing;
    machine_busy[op.machine] += duration;
    auto [it, inserted] =
        machine_span.try_emplace(op.machine, op.start, op.end);
    if (!inserted) {
      it->second.first = std::min(it->second.first, op.start);
      it->second.second = std::max(it->second.second, op.end);
    }
  }
  for (const auto& [machine, span] : machine_span) {
    const Time idle = (span.second - span.first) - machine_busy[machine];
    report.idle_energy +=
        static_cast<double>(idle) * profile_of(machine).idle;
  }

  // Peak power: sweep start/end events, accumulating processing power.
  std::vector<std::pair<Time, double>> events;  // (time, delta power)
  events.reserve(schedule.ops.size() * 2);
  for (const auto& op : schedule.ops) {
    const double p = profile_of(op.machine).processing;
    events.emplace_back(op.start, p);
    events.emplace_back(op.end, -p);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;  // ends before starts at same t
            });
  double current = 0.0;
  for (const auto& [time, delta] : events) {
    current += delta;
    report.peak_power = std::max(report.peak_power, current);
  }
  return report;
}

EnergyAwareFlowShop::EnergyAwareFlowShop(FlowShopInstance inst,
                                         std::vector<PowerProfile> profiles,
                                         EnergyObjectiveWeights weights)
    : inst_(std::move(inst)),
      profiles_(std::move(profiles)),
      weights_(weights) {}

double EnergyAwareFlowShop::objective(std::span<const int> perm) const {
  const Schedule schedule = flow_shop_schedule(inst_, perm);
  const EnergyReport r = energy_report(schedule, profiles_);
  return weights_.makespan * static_cast<double>(schedule.makespan()) +
         weights_.energy * r.total_energy() +
         weights_.peak_power * r.peak_power;
}

EnergyReport EnergyAwareFlowShop::report(std::span<const int> perm) const {
  return energy_report(flow_shop_schedule(inst_, perm), profiles_);
}

Time EnergyAwareFlowShop::makespan(std::span<const int> perm) const {
  return flow_shop_makespan(inst_, perm);
}

std::vector<PowerProfile> random_power_profiles(int machines,
                                                std::uint64_t seed,
                                                double proc_lo, double proc_hi,
                                                double idle_lo,
                                                double idle_hi) {
  par::Rng rng(seed);
  std::vector<PowerProfile> profiles(static_cast<std::size_t>(machines));
  for (auto& p : profiles) {
    p.processing = rng.uniform(proc_lo, proc_hi);
    p.idle = rng.uniform(idle_lo, idle_hi);
  }
  return profiles;
}

}  // namespace psga::sched
