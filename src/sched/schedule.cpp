#include "src/sched/schedule.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace psga::sched {

Time Schedule::makespan() const {
  Time best = 0;
  for (const auto& op : ops) best = std::max(best, op.end);
  return best;
}

std::vector<Time> Schedule::job_completion_times(int jobs) const {
  std::vector<Time> done;
  job_completion_times(jobs, done);
  return done;
}

void Schedule::job_completion_times(int jobs, std::vector<Time>& out) const {
  out.assign(static_cast<std::size_t>(jobs), 0);
  for (const auto& op : ops) {
    auto& slot = out.at(static_cast<std::size_t>(op.job));
    slot = std::max(slot, op.end);
  }
}

namespace {

std::string describe(const ScheduledOp& op) {
  std::ostringstream os;
  os << "op(job=" << op.job << ", index=" << op.index << ", machine="
     << op.machine << ", [" << op.start << ", " << op.end << "))";
  return os.str();
}

}  // namespace

std::optional<std::string> validate(const Schedule& schedule,
                                    const ValidationSpec& spec) {
  // --- Condition 1: each (job, index) appears exactly once, on exactly
  // one machine, with the duration the instance prescribes.
  std::vector<std::vector<const ScheduledOp*>> by_job(
      static_cast<std::size_t>(spec.jobs));
  for (const auto& op : schedule.ops) {
    if (op.job < 0 || op.job >= spec.jobs) {
      return "job id out of range: " + describe(op);
    }
    if (op.machine < 0 || op.machine >= spec.machines) {
      return "machine id out of range: " + describe(op);
    }
    if (op.end < op.start) return "negative duration: " + describe(op);
    by_job[static_cast<std::size_t>(op.job)].push_back(&op);
  }
  for (int j = 0; j < spec.jobs; ++j) {
    auto& ops = by_job[static_cast<std::size_t>(j)];
    const int expected =
        j < static_cast<int>(spec.ops_per_job.size()) ? spec.ops_per_job[j] : 0;
    if (static_cast<int>(ops.size()) != expected) {
      std::ostringstream os;
      os << "job " << j << " has " << ops.size() << " ops, expected "
         << expected;
      return os.str();
    }
    std::sort(ops.begin(), ops.end(),
              [](const ScheduledOp* a, const ScheduledOp* b) {
                return a->index < b->index;
              });
    for (int k = 0; k < expected; ++k) {
      const ScheduledOp& op = *ops[static_cast<std::size_t>(k)];
      if (op.index != k) {
        std::ostringstream os;
        os << "job " << j << " is missing operation index " << k;
        return os.str();
      }
      if (spec.duration != nullptr) {
        const auto want = spec.duration(spec.ctx, j, k, op.machine);
        if (!want.has_value()) {
          return "ineligible machine: " + describe(op);
        }
        if (op.end - op.start != *want) {
          std::ostringstream os;
          os << "wrong duration (want " << *want << "): " << describe(op);
          return os.str();
        }
      }
    }
    // --- Condition 3: release times.
    if (!spec.release.empty() && expected > 0) {
      const Time release = spec.release[static_cast<std::size_t>(j)];
      for (const ScheduledOp* op : ops) {
        if (op->start < release) {
          std::ostringstream os;
          os << "job starts before release " << release << ": "
             << describe(*op);
          return os.str();
        }
      }
    }
    // --- Job-internal sequencing. Ordered shops need op k to finish
    // before op k+1 starts; open shops only forbid overlap (a job is on
    // at most one machine at a time).
    if (spec.ordered_stages) {
      for (int k = 0; k + 1 < expected; ++k) {
        if (ops[static_cast<std::size_t>(k)]->end >
            ops[static_cast<std::size_t>(k + 1)]->start) {
          std::ostringstream os;
          os << "job " << j << " stage order violated between index " << k
             << " and " << k + 1;
          return os.str();
        }
      }
    } else {
      auto in_time = ops;
      std::sort(in_time.begin(), in_time.end(),
                [](const ScheduledOp* a, const ScheduledOp* b) {
                  return a->start < b->start;
                });
      for (std::size_t k = 0; k + 1 < in_time.size(); ++k) {
        if (in_time[k]->end > in_time[k + 1]->start) {
          std::ostringstream os;
          os << "job " << j << " runs on two machines simultaneously";
          return os.str();
        }
      }
    }
  }
  // --- Condition 2 (+ setup gaps): no machine overlap.
  std::map<int, std::vector<const ScheduledOp*>> by_machine;
  for (const auto& op : schedule.ops) by_machine[op.machine].push_back(&op);
  for (auto& [machine, ops] : by_machine) {
    std::sort(ops.begin(), ops.end(),
              [](const ScheduledOp* a, const ScheduledOp* b) {
                if (a->start != b->start) return a->start < b->start;
                return a->end < b->end;
              });
    for (std::size_t k = 0; k + 1 < ops.size(); ++k) {
      Time gap = 0;
      if (spec.machine_gap != nullptr) {
        gap = spec.machine_gap(spec.ctx, machine, ops[k]->job, ops[k + 1]->job);
      }
      if (ops[k]->end + gap > ops[k + 1]->start) {
        std::ostringstream os;
        os << "machine " << machine << " overlap (required gap " << gap
           << ") between " << describe(*ops[k]) << " and "
           << describe(*ops[k + 1]);
        return os.str();
      }
    }
  }
  return std::nullopt;
}

}  // namespace psga::sched
