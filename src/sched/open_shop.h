// Open shop: no imposed route — any job/machine order is feasible as long
// as a job is on one machine at a time. Chromosomes are permutations with
// repetition of job indices (each job appears once per machine); the
// decoders follow Kokosiński & Studzienny [32]: the LPT-Task decoder picks
// the longest remaining operation of the gene's job, the LPT-Machine
// decoder picks the operation whose machine frees earliest.
#pragma once

#include <span>
#include <vector>

#include "src/par/rng.h"
#include "src/sched/objectives.h"
#include "src/sched/schedule.h"

namespace psga::sched {

struct OpenShopInstance {
  int jobs = 0;
  int machines = 0;
  /// proc[job][machine].
  std::vector<std::vector<Time>> proc;
  JobAttributes attrs;

  Time processing(int job, int machine) const {
    return proc[static_cast<std::size_t>(job)][static_cast<std::size_t>(machine)];
  }

  ValidationSpec validation_spec() const;
};

enum class OpenShopDecoder { kLptTask, kLptMachine };

/// Reusable evaluation scratch for the open-shop decoder (one per worker).
struct OpenShopScratch {
  Schedule schedule;
  std::vector<unsigned char> done;  ///< jobs × machines, row-major
  std::vector<int> next_index;
  std::vector<Time> job_free;
  std::vector<Time> machine_free;
  std::vector<Time> completion;
};

/// Decodes a permutation-with-repetition of job indices (job j appears
/// `machines` times). For each gene the decoder chooses which of the job's
/// unscheduled machines to run next, per the chosen greedy heuristic, and
/// list-schedules the op at max(job free, machine free).
Schedule decode_open_shop(const OpenShopInstance& inst,
                          std::span<const int> job_sequence,
                          OpenShopDecoder decoder);

/// Allocation-free variant: the returned reference points into `scratch`.
const Schedule& decode_open_shop(const OpenShopInstance& inst,
                                 std::span<const int> job_sequence,
                                 OpenShopDecoder decoder,
                                 OpenShopScratch& scratch);

/// Pure greedy LPT list schedule (all ops sorted by duration descending):
/// the constructive reference heuristic.
Schedule open_shop_lpt_schedule(const OpenShopInstance& inst);

/// Criterion value of a decoded schedule.
double open_shop_objective(const OpenShopInstance& inst,
                           const Schedule& schedule, Criterion criterion);

/// Allocation-free variant (reuses scratch.completion).
double open_shop_objective(const OpenShopInstance& inst,
                           const Schedule& schedule, Criterion criterion,
                           OpenShopScratch& scratch);

/// Random permutation-with-repetition chromosome.
std::vector<int> random_job_repetition_sequence(const OpenShopInstance& inst,
                                                par::Rng& rng);

/// Trivial lower bound: max(max machine load, max job load).
Time open_shop_lower_bound(const OpenShopInstance& inst);

}  // namespace psga::sched
