#include "src/sched/flow_shop.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace psga::sched {

namespace {

void check_full_permutation(const FlowShopInstance& inst,
                            std::span<const int> perm) {
  if (perm.size() != static_cast<std::size_t>(inst.jobs)) {
    throw std::invalid_argument("flow-shop permutation length " +
                                std::to_string(perm.size()) + " != jobs " +
                                std::to_string(inst.jobs));
  }
}

Time makespan_of_prefix(const FlowShopInstance& inst, std::span<const int> perm,
                        FlowShopScratch& scratch) {
  // ready[m] = completion time of the previous permutation job on machine m.
  std::vector<Time>& ready = scratch.ready;
  ready.assign(static_cast<std::size_t>(inst.machines), 0);
  for (int job : perm) {
    Time prev = inst.attrs.release_of(job);
    for (int m = 0; m < inst.machines; ++m) {
      const Time start = std::max(prev, ready[static_cast<std::size_t>(m)]);
      prev = start + inst.processing(m, job);
      ready[static_cast<std::size_t>(m)] = prev;
    }
  }
  return ready.empty() ? 0 : ready.back();
}

}  // namespace

Time FlowShopInstance::total_processing(int job) const {
  Time acc = 0;
  for (int m = 0; m < machines; ++m) acc += processing(m, job);
  return acc;
}

namespace {

std::optional<Time> fs_duration(const void* ctx, int job, int index,
                                int machine) {
  const auto& inst = *static_cast<const FlowShopInstance*>(ctx);
  // Flow shop: operation `index` of every job runs on machine `index`.
  if (machine != index) return std::nullopt;
  return inst.processing(machine, job);
}

}  // namespace

ValidationSpec FlowShopInstance::validation_spec() const {
  ValidationSpec spec;
  spec.jobs = jobs;
  spec.machines = machines;
  spec.ops_per_job.assign(static_cast<std::size_t>(jobs), machines);
  spec.ordered_stages = true;
  spec.release = attrs.release;
  spec.duration = &fs_duration;
  spec.ctx = this;
  return spec;
}

Time flow_shop_makespan(const FlowShopInstance& inst, std::span<const int> perm,
                        FlowShopScratch& scratch) {
  check_full_permutation(inst, perm);
  return makespan_of_prefix(inst, perm, scratch);
}

Time flow_shop_makespan_prefix(const FlowShopInstance& inst,
                               std::span<const int> prefix,
                               FlowShopScratch& scratch) {
  if (prefix.size() > static_cast<std::size_t>(inst.jobs)) {
    throw std::invalid_argument("flow-shop prefix length " +
                                std::to_string(prefix.size()) + " > jobs " +
                                std::to_string(inst.jobs));
  }
  return makespan_of_prefix(inst, prefix, scratch);
}

Time flow_shop_makespan(const FlowShopInstance& inst,
                        std::span<const int> perm) {
  FlowShopScratch scratch;
  return flow_shop_makespan(inst, perm, scratch);
}

const std::vector<Time>& flow_shop_completion_times(
    const FlowShopInstance& inst, std::span<const int> perm,
    FlowShopScratch& scratch) {
  check_full_permutation(inst, perm);
  std::vector<Time>& ready = scratch.ready;
  std::vector<Time>& completion = scratch.completion;
  ready.assign(static_cast<std::size_t>(inst.machines), 0);
  completion.assign(static_cast<std::size_t>(inst.jobs), 0);
  for (int job : perm) {
    Time prev = inst.attrs.release_of(job);
    for (int m = 0; m < inst.machines; ++m) {
      const Time start = std::max(prev, ready[static_cast<std::size_t>(m)]);
      prev = start + inst.processing(m, job);
      ready[static_cast<std::size_t>(m)] = prev;
    }
    completion[static_cast<std::size_t>(job)] = prev;
  }
  return completion;
}

std::vector<Time> flow_shop_completion_times(const FlowShopInstance& inst,
                                             std::span<const int> perm) {
  FlowShopScratch scratch;
  flow_shop_completion_times(inst, perm, scratch);
  return std::move(scratch.completion);
}

Schedule flow_shop_schedule(const FlowShopInstance& inst,
                            std::span<const int> perm) {
  check_full_permutation(inst, perm);
  Schedule schedule;
  schedule.ops.reserve(static_cast<std::size_t>(inst.jobs) *
                       static_cast<std::size_t>(inst.machines));
  std::vector<Time> ready(static_cast<std::size_t>(inst.machines), 0);
  for (int job : perm) {
    Time prev = inst.attrs.release_of(job);
    for (int m = 0; m < inst.machines; ++m) {
      const Time start = std::max(prev, ready[static_cast<std::size_t>(m)]);
      const Time end = start + inst.processing(m, job);
      schedule.ops.push_back(ScheduledOp{job, m, m, start, end});
      ready[static_cast<std::size_t>(m)] = end;
      prev = end;
    }
  }
  return schedule;
}

double flow_shop_objective(const FlowShopInstance& inst,
                           std::span<const int> perm, Criterion criterion,
                           FlowShopScratch& scratch) {
  if (criterion == Criterion::kMakespan) {
    return static_cast<double>(flow_shop_makespan(inst, perm, scratch));
  }
  return evaluate_criterion(
      criterion, flow_shop_completion_times(inst, perm, scratch), inst.attrs);
}

double flow_shop_objective(const FlowShopInstance& inst,
                           std::span<const int> perm, Criterion criterion) {
  FlowShopScratch scratch;
  return flow_shop_objective(inst, perm, criterion, scratch);
}

}  // namespace psga::sched
