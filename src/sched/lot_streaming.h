// Lot streaming for the flexible flow shop (Defersha & Chen [35]): each
// job is a batch of identical items split into a fixed number of unequal,
// *consistent* sublots (same split at every stage). Each sublot travels
// the stages independently, so downstream stages can start before the
// whole batch finishes upstream. A genome contributes (a) continuous keys
// that determine the sublot size split and (b) a sublot sequencing
// permutation.
#pragma once

#include <span>
#include <vector>

#include "src/sched/hybrid_flow_shop.h"

namespace psga::sched {

struct LotStreamingInstance {
  /// Per-item processing times: unit_proc[stage][job][machine-in-stage].
  /// Machine structure (stages, parallel machines) mirrors
  /// HybridFlowShopInstance.
  std::vector<int> machines_per_stage;
  std::vector<std::vector<std::vector<Time>>> unit_proc;
  /// batch[job] = number of identical items in the job's batch.
  std::vector<int> batch;
  /// sublots[job] = number of consistent sublots the batch splits into.
  std::vector<int> sublots;
  JobAttributes attrs;

  int jobs() const { return static_cast<int>(batch.size()); }
  int stages() const { return static_cast<int>(machines_per_stage.size()); }
  int total_sublots() const;
};

/// Converts continuous split keys (one per sublot, any positive values)
/// into integer sublot sizes that sum to the batch size; every sublot gets
/// at least one item when the batch allows it.
std::vector<int> sublot_sizes_from_keys(int batch_size,
                                        std::span<const double> keys);

/// Expands the lot-streaming instance into a hybrid flow shop over sublots
/// (each sublot becomes a sub-job whose stage duration = size × unit time)
/// using `keys` (concatenated per job, inst.sublots[j] keys each).
/// `sublot_of_job` maps expanded job id -> original job id.
HybridFlowShopInstance expand_lot_streaming(const LotStreamingInstance& inst,
                                            std::span<const double> keys,
                                            std::vector<int>* sublot_of_job);

/// Decodes keys + a sublot permutation into a schedule of the expanded
/// shop and returns the original-job makespan.
Time lot_streaming_makespan(const LotStreamingInstance& inst,
                            std::span<const double> keys,
                            std::span<const int> sublot_perm);

/// Reusable evaluation scratch: the expanded hybrid-flow-shop instance's
/// *structure* (sublot counts, machine layout, attrs) does not depend on
/// the genome — only the durations do — so it is built once on first use
/// and every later evaluation just overwrites processing times in place.
struct LotStreamingScratch {
  /// Fingerprint of the instance the cached expansion was built from
  /// (everything that shapes the expansion except unit durations, which
  /// are rewritten on every call). A mismatch triggers a rebuild, so one
  /// scratch may serve several instances (re-expanding on each switch).
  /// Value-based on purpose: instance addresses can be reused.
  bool expanded_ready = false;
  std::vector<int> sig_machines_per_stage;
  std::vector<int> sig_batch;
  std::vector<int> sig_sublots;
  JobAttributes sig_attrs;
  HybridFlowShopInstance expanded;
  std::vector<int> sizes;  ///< per-sublot sizes, job-concatenated
  HybridFlowShopScratch hfs;
};

/// Allocation-free (after first use) variant of lot_streaming_makespan.
Time lot_streaming_makespan(const LotStreamingInstance& inst,
                            std::span<const double> keys,
                            std::span<const int> sublot_perm,
                            LotStreamingScratch& scratch);

}  // namespace psga::sched
