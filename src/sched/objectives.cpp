#include "src/sched/objectives.h"

#include <algorithm>

namespace psga::sched {

std::string to_string(Criterion c) {
  switch (c) {
    case Criterion::kMakespan:
      return "Cmax";
    case Criterion::kTotalWeightedCompletion:
      return "sum wjCj";
    case Criterion::kTotalWeightedTardiness:
      return "sum wjTj";
    case Criterion::kWeightedUnitPenalty:
      return "sum wjUj";
    case Criterion::kMaxTardiness:
      return "Tmax";
  }
  return "?";
}

double evaluate_criterion(Criterion c, std::span<const Time> completion,
                          const JobAttributes& attrs) {
  switch (c) {
    case Criterion::kMakespan: {
      Time best = 0;
      for (Time t : completion) best = std::max(best, t);
      return static_cast<double>(best);
    }
    case Criterion::kTotalWeightedCompletion: {
      double acc = 0.0;
      for (int j = 0; j < static_cast<int>(completion.size()); ++j) {
        acc += attrs.weight_of(j) *
               static_cast<double>(completion[static_cast<std::size_t>(j)]);
      }
      return acc;
    }
    case Criterion::kTotalWeightedTardiness: {
      double acc = 0.0;
      for (int j = 0; j < static_cast<int>(completion.size()); ++j) {
        const Time late = completion[static_cast<std::size_t>(j)] - attrs.due_of(j);
        if (late > 0) acc += attrs.weight_of(j) * static_cast<double>(late);
      }
      return acc;
    }
    case Criterion::kWeightedUnitPenalty: {
      double acc = 0.0;
      for (int j = 0; j < static_cast<int>(completion.size()); ++j) {
        if (completion[static_cast<std::size_t>(j)] > attrs.due_of(j)) {
          acc += attrs.weight_of(j);
        }
      }
      return acc;
    }
    case Criterion::kMaxTardiness: {
      Time worst = 0;
      for (int j = 0; j < static_cast<int>(completion.size()); ++j) {
        worst = std::max(worst,
                         completion[static_cast<std::size_t>(j)] - attrs.due_of(j));
      }
      return static_cast<double>(std::max<Time>(worst, 0));
    }
  }
  return 0.0;
}

double CompositeObjective::evaluate(std::span<const Time> completion,
                                    const JobAttributes& attrs) const {
  double acc = 0.0;
  for (const auto& [criterion, weight] : terms) {
    acc += weight * evaluate_criterion(criterion, completion, attrs);
  }
  return acc;
}

double fitness_eq1(double objective, double heuristic_reference) {
  return std::max(heuristic_reference - objective, 0.0);
}

double fitness_eq2(double objective) {
  if (objective <= 0.0) return 1e18;
  return 1.0 / objective;
}

}  // namespace psga::sched
