#include "src/sched/lot_streaming.h"

#include <algorithm>
#include <numeric>

namespace psga::sched {

int LotStreamingInstance::total_sublots() const {
  return std::accumulate(sublots.begin(), sublots.end(), 0);
}

std::vector<int> sublot_sizes_from_keys(int batch_size,
                                        std::span<const double> keys) {
  const int lots = static_cast<int>(keys.size());
  std::vector<int> sizes(static_cast<std::size_t>(lots), 0);
  if (lots == 0) return sizes;
  double total = 0.0;
  for (double k : keys) total += std::max(k, 1e-9);
  // Largest-remainder apportionment of batch_size items over the keys.
  std::vector<double> exact(static_cast<std::size_t>(lots));
  int assigned = 0;
  for (int i = 0; i < lots; ++i) {
    exact[static_cast<std::size_t>(i)] =
        static_cast<double>(batch_size) * std::max(keys[static_cast<std::size_t>(i)], 1e-9) / total;
    sizes[static_cast<std::size_t>(i)] =
        static_cast<int>(exact[static_cast<std::size_t>(i)]);
    assigned += sizes[static_cast<std::size_t>(i)];
  }
  std::vector<int> order(static_cast<std::size_t>(lots));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double ra = exact[static_cast<std::size_t>(a)] -
                      static_cast<double>(sizes[static_cast<std::size_t>(a)]);
    const double rb = exact[static_cast<std::size_t>(b)] -
                      static_cast<double>(sizes[static_cast<std::size_t>(b)]);
    if (ra != rb) return ra > rb;
    return a < b;
  });
  for (int i = 0; assigned < batch_size; ++i, ++assigned) {
    ++sizes[static_cast<std::size_t>(order[static_cast<std::size_t>(i % lots)])];
  }
  // Consistent sublots should all be non-empty when the batch allows it:
  // steal items from the largest sublot for any empty one.
  if (batch_size >= lots) {
    for (int i = 0; i < lots; ++i) {
      if (sizes[static_cast<std::size_t>(i)] > 0) continue;
      const auto biggest = std::max_element(sizes.begin(), sizes.end());
      --*biggest;
      ++sizes[static_cast<std::size_t>(i)];
    }
  }
  return sizes;
}

HybridFlowShopInstance expand_lot_streaming(const LotStreamingInstance& inst,
                                            std::span<const double> keys,
                                            std::vector<int>* sublot_of_job) {
  HybridFlowShopInstance hfs;
  hfs.machines_per_stage = inst.machines_per_stage;
  const int expanded_jobs = inst.total_sublots();
  hfs.jobs = expanded_jobs;
  hfs.proc.assign(static_cast<std::size_t>(inst.stages()), {});
  if (sublot_of_job != nullptr) sublot_of_job->clear();

  // Sublot sizes per original job.
  std::vector<std::vector<int>> sizes(static_cast<std::size_t>(inst.jobs()));
  std::size_t key_cursor = 0;
  for (int j = 0; j < inst.jobs(); ++j) {
    const int lots = inst.sublots[static_cast<std::size_t>(j)];
    sizes[static_cast<std::size_t>(j)] = sublot_sizes_from_keys(
        inst.batch[static_cast<std::size_t>(j)],
        keys.subspan(key_cursor, static_cast<std::size_t>(lots)));
    key_cursor += static_cast<std::size_t>(lots);
  }

  for (int s = 0; s < inst.stages(); ++s) {
    auto& stage_proc = hfs.proc[static_cast<std::size_t>(s)];
    stage_proc.reserve(static_cast<std::size_t>(expanded_jobs));
    for (int j = 0; j < inst.jobs(); ++j) {
      for (int size : sizes[static_cast<std::size_t>(j)]) {
        std::vector<Time> per_machine;
        const auto& unit =
            inst.unit_proc[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)];
        per_machine.reserve(unit.size());
        for (Time u : unit) per_machine.push_back(u * size);
        stage_proc.push_back(std::move(per_machine));
        if (s == 0 && sublot_of_job != nullptr) sublot_of_job->push_back(j);
      }
    }
  }
  // Release/due/weight propagate from the owning job.
  if (!inst.attrs.release.empty() || !inst.attrs.due.empty() ||
      !inst.attrs.weight.empty()) {
    for (int j = 0; j < inst.jobs(); ++j) {
      for (int l = 0; l < inst.sublots[static_cast<std::size_t>(j)]; ++l) {
        if (!inst.attrs.release.empty()) {
          hfs.attrs.release.push_back(inst.attrs.release_of(j));
        }
        if (!inst.attrs.due.empty()) hfs.attrs.due.push_back(inst.attrs.due_of(j));
        if (!inst.attrs.weight.empty()) {
          hfs.attrs.weight.push_back(inst.attrs.weight_of(j));
        }
      }
    }
  }
  return hfs;
}

Time lot_streaming_makespan(const LotStreamingInstance& inst,
                            std::span<const double> keys,
                            std::span<const int> sublot_perm,
                            LotStreamingScratch& scratch) {
  const bool cache_hit =
      scratch.expanded_ready &&
      scratch.sig_machines_per_stage == inst.machines_per_stage &&
      scratch.sig_batch == inst.batch && scratch.sig_sublots == inst.sublots &&
      scratch.sig_attrs.release == inst.attrs.release &&
      scratch.sig_attrs.due == inst.attrs.due &&
      scratch.sig_attrs.weight == inst.attrs.weight;
  if (!cache_hit) {
    // The structure (stage layout, sublot counts, attrs) is genome
    // independent; build it once per instance and only rewrite durations
    // afterwards.
    scratch.expanded = expand_lot_streaming(inst, keys, nullptr);
    scratch.expanded_ready = true;
    scratch.sig_machines_per_stage = inst.machines_per_stage;
    scratch.sig_batch = inst.batch;
    scratch.sig_sublots = inst.sublots;
    scratch.sig_attrs = inst.attrs;
  } else {
    // Recompute sublot sizes and overwrite the expanded durations.
    std::vector<int>& sizes = scratch.sizes;
    sizes.clear();
    std::size_t key_cursor = 0;
    for (int j = 0; j < inst.jobs(); ++j) {
      const int lots = inst.sublots[static_cast<std::size_t>(j)];
      const std::vector<int> job_sizes = sublot_sizes_from_keys(
          inst.batch[static_cast<std::size_t>(j)],
          keys.subspan(key_cursor, static_cast<std::size_t>(lots)));
      sizes.insert(sizes.end(), job_sizes.begin(), job_sizes.end());
      key_cursor += static_cast<std::size_t>(lots);
    }
    for (int s = 0; s < inst.stages(); ++s) {
      auto& stage_proc = scratch.expanded.proc[static_cast<std::size_t>(s)];
      std::size_t expanded_job = 0;
      for (int j = 0; j < inst.jobs(); ++j) {
        const auto& unit = inst.unit_proc[static_cast<std::size_t>(s)]
                                         [static_cast<std::size_t>(j)];
        for (int l = 0; l < inst.sublots[static_cast<std::size_t>(j)]; ++l) {
          auto& per_machine = stage_proc[expanded_job];
          const int size = sizes[expanded_job];
          for (std::size_t m = 0; m < unit.size(); ++m) {
            per_machine[m] = unit[m] * size;
          }
          ++expanded_job;
        }
      }
    }
  }
  const Schedule& schedule =
      decode_hybrid_flow_shop(scratch.expanded, sublot_perm, scratch.hfs);
  return schedule.makespan();
}

Time lot_streaming_makespan(const LotStreamingInstance& inst,
                            std::span<const double> keys,
                            std::span<const int> sublot_perm) {
  LotStreamingScratch scratch;
  return lot_streaming_makespan(inst, keys, sublot_perm, scratch);
}

}  // namespace psga::sched
