#include "src/sched/generators.h"

#include <algorithm>
#include <numeric>

#include "src/par/rng.h"

namespace psga::sched {

OpenShopInstance random_open_shop(int jobs, int machines, std::uint64_t seed,
                                  Time lo, Time hi) {
  par::Rng rng(seed);
  OpenShopInstance inst;
  inst.jobs = jobs;
  inst.machines = machines;
  inst.proc.assign(static_cast<std::size_t>(jobs),
                   std::vector<Time>(static_cast<std::size_t>(machines), 0));
  for (auto& row : inst.proc) {
    for (auto& p : row) {
      p = rng.range(static_cast<int>(lo), static_cast<int>(hi));
    }
  }
  return inst;
}

HybridFlowShopInstance random_hybrid_flow_shop(const HfsParams& params,
                                               std::uint64_t seed) {
  par::Rng rng(seed);
  HybridFlowShopInstance inst;
  inst.jobs = params.jobs;
  inst.machines_per_stage = params.machines_per_stage;
  inst.blocking = params.blocking;
  const int stages = inst.stages();
  inst.proc.assign(static_cast<std::size_t>(stages), {});
  for (int s = 0; s < stages; ++s) {
    const int machines = params.machines_per_stage[static_cast<std::size_t>(s)];
    // Per-machine speed multipliers model unrelated machines.
    std::vector<double> factor(static_cast<std::size_t>(machines), 1.0);
    if (params.unrelatedness > 1.0) {
      for (auto& f : factor) f = rng.uniform(1.0, params.unrelatedness);
    }
    auto& stage_proc = inst.proc[static_cast<std::size_t>(s)];
    stage_proc.assign(static_cast<std::size_t>(params.jobs), {});
    for (int j = 0; j < params.jobs; ++j) {
      const Time base =
          rng.range(static_cast<int>(params.lo), static_cast<int>(params.hi));
      auto& row = stage_proc[static_cast<std::size_t>(j)];
      row.reserve(static_cast<std::size_t>(machines));
      for (int k = 0; k < machines; ++k) {
        row.push_back(std::max<Time>(
            1, static_cast<Time>(static_cast<double>(base) *
                                     factor[static_cast<std::size_t>(k)] +
                                 0.5)));
      }
    }
  }
  if (params.setup_hi > 0) {
    inst.setup.assign(static_cast<std::size_t>(stages), {});
    for (int s = 0; s < stages; ++s) {
      const int machines = params.machines_per_stage[static_cast<std::size_t>(s)];
      auto& stage_setup = inst.setup[static_cast<std::size_t>(s)];
      stage_setup.assign(static_cast<std::size_t>(machines), {});
      for (int k = 0; k < machines; ++k) {
        auto& by_prev = stage_setup[static_cast<std::size_t>(k)];
        by_prev.assign(static_cast<std::size_t>(params.jobs + 1),
                       std::vector<Time>(static_cast<std::size_t>(params.jobs), 0));
        for (auto& row : by_prev) {
          for (auto& t : row) {
            t = rng.range(1, static_cast<int>(params.setup_hi));
          }
        }
      }
    }
  }
  return inst;
}

FlexibleJobShopInstance random_flexible_job_shop(const FjsParams& params,
                                                 std::uint64_t seed) {
  par::Rng rng(seed);
  FlexibleJobShopInstance inst;
  inst.jobs = params.jobs;
  inst.machines = params.machines;
  inst.detached_setup = params.detached_setup;
  inst.ops.assign(static_cast<std::size_t>(params.jobs), {});
  std::vector<int> machine_pool(static_cast<std::size_t>(params.machines));
  std::iota(machine_pool.begin(), machine_pool.end(), 0);
  for (int j = 0; j < params.jobs; ++j) {
    auto& route = inst.ops[static_cast<std::size_t>(j)];
    route.resize(static_cast<std::size_t>(params.ops_per_job));
    for (auto& op : route) {
      rng.shuffle(machine_pool);
      const int eligible =
          std::clamp(params.eligible_machines, 1, params.machines);
      op.choices.reserve(static_cast<std::size_t>(eligible));
      for (int e = 0; e < eligible; ++e) {
        op.choices.push_back(FjsChoice{
            machine_pool[static_cast<std::size_t>(e)],
            rng.range(static_cast<int>(params.lo), static_cast<int>(params.hi))});
      }
      // Keep choices machine-sorted so decode is order-stable.
      std::sort(op.choices.begin(), op.choices.end(),
                [](const FjsChoice& a, const FjsChoice& b) {
                  return a.machine < b.machine;
                });
      if (params.max_lag > 0) {
        op.min_lag_after = rng.range(0, static_cast<int>(params.max_lag));
      }
    }
  }
  if (params.setup_hi > 0) {
    inst.setup.assign(static_cast<std::size_t>(params.machines), {});
    for (auto& by_prev : inst.setup) {
      by_prev.assign(static_cast<std::size_t>(params.jobs + 1),
                     std::vector<Time>(static_cast<std::size_t>(params.jobs), 0));
      for (auto& row : by_prev) {
        for (auto& t : row) t = rng.range(1, static_cast<int>(params.setup_hi));
      }
    }
  }
  if (params.machine_release_hi > 0) {
    inst.machine_release.resize(static_cast<std::size_t>(params.machines));
    for (auto& r : inst.machine_release) {
      r = rng.range(0, static_cast<int>(params.machine_release_hi));
    }
  }
  return inst;
}

LotStreamingInstance random_lot_streaming(const LotStreamParams& params,
                                          std::uint64_t seed) {
  par::Rng rng(seed);
  LotStreamingInstance inst;
  inst.machines_per_stage = params.machines_per_stage;
  inst.batch.resize(static_cast<std::size_t>(params.jobs));
  inst.sublots.assign(static_cast<std::size_t>(params.jobs), params.sublots);
  for (auto& b : inst.batch) b = rng.range(params.batch_lo, params.batch_hi);
  const int stages = inst.stages();
  inst.unit_proc.assign(static_cast<std::size_t>(stages), {});
  for (int s = 0; s < stages; ++s) {
    auto& stage = inst.unit_proc[static_cast<std::size_t>(s)];
    stage.assign(static_cast<std::size_t>(params.jobs), {});
    const int machines = params.machines_per_stage[static_cast<std::size_t>(s)];
    for (auto& row : stage) {
      const Time unit = rng.range(static_cast<int>(params.unit_lo),
                                  static_cast<int>(params.unit_hi));
      row.assign(static_cast<std::size_t>(machines), unit);
    }
  }
  return inst;
}

JobShopInstance random_job_shop(int jobs, int machines, std::uint64_t seed,
                                Time lo, Time hi) {
  par::Rng rng(seed);
  JobShopInstance inst;
  inst.jobs = jobs;
  inst.machines = machines;
  inst.ops.assign(static_cast<std::size_t>(jobs), {});
  std::vector<int> order(static_cast<std::size_t>(machines));
  for (auto& route : inst.ops) {
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    route.reserve(order.size());
    for (int m : order) {
      route.push_back(
          JsOperation{m, rng.range(static_cast<int>(lo), static_cast<int>(hi))});
    }
  }
  return inst;
}

void assign_due_dates(JobAttributes& attrs, const std::vector<Time>& work,
                      double slack_factor, int max_weight, std::uint64_t seed) {
  par::Rng rng(seed);
  const int jobs = static_cast<int>(work.size());
  attrs.due.resize(static_cast<std::size_t>(jobs));
  attrs.weight.resize(static_cast<std::size_t>(jobs));
  for (int j = 0; j < jobs; ++j) {
    const Time release = attrs.release_of(j);
    attrs.due[static_cast<std::size_t>(j)] =
        release + static_cast<Time>(
                      slack_factor *
                      static_cast<double>(work[static_cast<std::size_t>(j)]));
    attrs.weight[static_cast<std::size_t>(j)] =
        static_cast<double>(rng.range(1, max_weight));
  }
}

}  // namespace psga::sched
