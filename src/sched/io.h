// Instance file I/O in the community's standard text formats, so psga can
// exchange instances with the OR-Library / Taillard ecosystems the
// surveyed papers evaluate on.
//
//   * Job shop ("standard" / OR-Library format):
//       <jobs> <machines>
//       then one line per job: machine duration machine duration ...
//   * Flow shop (Taillard's format):
//       <jobs> <machines>
//       then <machines> lines of <jobs> processing times each.
//
// Lines starting with '#' are skipped in both formats.
#pragma once

#include <string>

#include "src/sched/flow_shop.h"
#include "src/sched/job_shop.h"

namespace psga::sched {

/// Parses a job shop from standard-format text. Throws
/// std::invalid_argument on malformed input.
JobShopInstance parse_job_shop(const std::string& text);

/// Serializes a job shop to standard format.
std::string format_job_shop(const JobShopInstance& inst);

/// Parses a flow shop from Taillard-format text. Throws
/// std::invalid_argument on malformed input.
FlowShopInstance parse_flow_shop(const std::string& text);

/// Serializes a flow shop to Taillard format.
std::string format_flow_shop(const FlowShopInstance& inst);

/// File helpers (throw std::runtime_error on I/O failure).
JobShopInstance load_job_shop(const std::string& path);
void save_job_shop(const JobShopInstance& inst, const std::string& path);
FlowShopInstance load_flow_shop(const std::string& path);
void save_flow_shop(const FlowShopInstance& inst, const std::string& path);

}  // namespace psga::sched
