#include "src/sched/io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace psga::sched {

namespace {

/// Strips '#' comment lines and concatenates the rest for token reading.
std::istringstream tokens_of(const std::string& text) {
  std::istringstream lines(text);
  std::ostringstream kept;
  std::string line;
  while (std::getline(lines, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    kept << line << '\n';
  }
  return std::istringstream(kept.str());
}

long next_long(std::istringstream& in, const char* what) {
  long value = 0;
  if (!(in >> value)) {
    throw std::invalid_argument(std::string("expected ") + what);
  }
  return value;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << content;
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace

JobShopInstance parse_job_shop(const std::string& text) {
  std::istringstream in = tokens_of(text);
  JobShopInstance inst;
  inst.jobs = static_cast<int>(next_long(in, "job count"));
  inst.machines = static_cast<int>(next_long(in, "machine count"));
  if (inst.jobs <= 0 || inst.machines <= 0) {
    throw std::invalid_argument("non-positive dimensions");
  }
  inst.ops.assign(static_cast<std::size_t>(inst.jobs), {});
  for (int j = 0; j < inst.jobs; ++j) {
    auto& route = inst.ops[static_cast<std::size_t>(j)];
    route.reserve(static_cast<std::size_t>(inst.machines));
    for (int k = 0; k < inst.machines; ++k) {
      JsOperation op;
      op.machine = static_cast<int>(next_long(in, "machine id"));
      op.duration = next_long(in, "duration");
      if (op.machine < 0 || op.machine >= inst.machines) {
        throw std::invalid_argument("machine id out of range");
      }
      if (op.duration < 0) throw std::invalid_argument("negative duration");
      route.push_back(op);
    }
  }
  return inst;
}

std::string format_job_shop(const JobShopInstance& inst) {
  std::ostringstream out;
  out << inst.jobs << ' ' << inst.machines << '\n';
  for (const auto& route : inst.ops) {
    for (std::size_t k = 0; k < route.size(); ++k) {
      if (k > 0) out << ' ';
      out << route[k].machine << ' ' << route[k].duration;
    }
    out << '\n';
  }
  return out.str();
}

FlowShopInstance parse_flow_shop(const std::string& text) {
  std::istringstream in = tokens_of(text);
  FlowShopInstance inst;
  inst.jobs = static_cast<int>(next_long(in, "job count"));
  inst.machines = static_cast<int>(next_long(in, "machine count"));
  if (inst.jobs <= 0 || inst.machines <= 0) {
    throw std::invalid_argument("non-positive dimensions");
  }
  inst.proc.assign(static_cast<std::size_t>(inst.machines),
                   std::vector<Time>(static_cast<std::size_t>(inst.jobs), 0));
  for (int m = 0; m < inst.machines; ++m) {
    for (int j = 0; j < inst.jobs; ++j) {
      const long p = next_long(in, "processing time");
      if (p < 0) throw std::invalid_argument("negative processing time");
      inst.proc[static_cast<std::size_t>(m)][static_cast<std::size_t>(j)] = p;
    }
  }
  return inst;
}

std::string format_flow_shop(const FlowShopInstance& inst) {
  std::ostringstream out;
  out << inst.jobs << ' ' << inst.machines << '\n';
  for (int m = 0; m < inst.machines; ++m) {
    for (int j = 0; j < inst.jobs; ++j) {
      if (j > 0) out << ' ';
      out << inst.processing(m, j);
    }
    out << '\n';
  }
  return out.str();
}

JobShopInstance load_job_shop(const std::string& path) {
  return parse_job_shop(read_file(path));
}

void save_job_shop(const JobShopInstance& inst, const std::string& path) {
  write_file(path, format_job_shop(inst));
}

FlowShopInstance load_flow_shop(const std::string& path) {
  return parse_flow_shop(read_file(path));
}

void save_flow_shop(const FlowShopInstance& inst, const std::string& path) {
  write_file(path, format_flow_shop(inst));
}

}  // namespace psga::sched
