// Fuzzy flow shop scheduling (Huang et al. [24]): triangular fuzzy
// processing times, fuzzy due dates, and the agreement index between a
// job's fuzzy completion time and its fuzzy due date. The GA maximizes
// total agreement (we expose 1 - mean agreement as a minimized objective).
//
// Fuzzy arithmetic follows the standard scheduling approximations
// (Sakawa-style): addition is component-wise; the max of two triangular
// numbers is approximated component-wise (exact for the support ends,
// approximate for the kernel).
#pragma once

#include <span>
#include <vector>

#include "src/sched/schedule.h"

namespace psga::sched {

/// Triangular fuzzy number (a <= b <= c): support [a, c], kernel b.
struct TriFuzzy {
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;

  TriFuzzy operator+(const TriFuzzy& o) const {
    return {a + o.a, b + o.b, c + o.c};
  }

  /// Component-wise max approximation.
  static TriFuzzy fmax(const TriFuzzy& x, const TriFuzzy& y);

  /// Membership value at t.
  double membership(double t) const;

  /// Area under the membership triangle ((c - a) / 2); 0 for crisp values.
  double area() const { return (c - a) / 2.0; }
};

/// Fuzzy due date: full satisfaction up to `d1`, linearly falling to zero
/// at `d2` (a non-increasing ramp).
struct FuzzyDueDate {
  double d1 = 0.0;
  double d2 = 0.0;

  double satisfaction(double t) const;
};

/// Agreement index of Sakawa/Huang: area(C ∩ D) / area(C), where C is the
/// fuzzy completion time and D the due-date satisfaction ramp. In [0, 1];
/// 1 = certainly on time. Crisp completion (zero area) degenerates to
/// D.satisfaction(kernel).
double agreement_index(const TriFuzzy& completion, const FuzzyDueDate& due);

struct FuzzyFlowShopInstance {
  int jobs = 0;
  int machines = 0;
  /// proc[machine][job] — triangular fuzzy durations.
  std::vector<std::vector<TriFuzzy>> proc;
  std::vector<FuzzyDueDate> due;
};

/// Reusable evaluation scratch: allocate once per worker, reuse for every
/// genome (mirrors FlowShopScratch for the crisp recurrence).
struct FuzzyFlowShopScratch {
  std::vector<TriFuzzy> ready;       ///< per-machine fuzzy frontier
  std::vector<TriFuzzy> completion;  ///< per-job fuzzy completion times
};

/// Fuzzy completion time of every job under a permutation (fuzzy critical
/// path recurrence with component-wise max).
std::vector<TriFuzzy> fuzzy_completion_times(const FuzzyFlowShopInstance& inst,
                                             std::span<const int> perm);

/// Allocation-free variant: fills scratch.completion and returns it.
const std::vector<TriFuzzy>& fuzzy_completion_times(
    const FuzzyFlowShopInstance& inst, std::span<const int> perm,
    FuzzyFlowShopScratch& scratch);

/// Mean agreement index over jobs for a permutation (to MAXIMIZE).
double mean_agreement(const FuzzyFlowShopInstance& inst,
                      std::span<const int> perm);

/// Allocation-free variant for hot loops.
double mean_agreement(const FuzzyFlowShopInstance& inst,
                      std::span<const int> perm,
                      FuzzyFlowShopScratch& scratch);

/// Builds a fuzzy instance from crisp times: duration p becomes the
/// triangle (p·(1-spread), p, p·(1+spread)); due dates get a ramp of width
/// `ramp` times the job's crisp total processing, centered at
/// slack · total.
FuzzyFlowShopInstance fuzzify(const std::vector<std::vector<Time>>& crisp_proc,
                              double spread, double slack, double ramp);

}  // namespace psga::sched
