#include "src/sched/taillard.h"

namespace psga::sched {

int TaillardRng::next(int low, int high) {
  constexpr std::int32_t m = 2147483647;
  constexpr std::int32_t a = 16807;
  constexpr std::int32_t b = 127773;
  constexpr std::int32_t c = 2836;
  const std::int32_t k = seed_ / b;
  seed_ = a * (seed_ % b) - k * c;
  if (seed_ < 0) seed_ += m;
  const double value_0_1 = static_cast<double>(seed_) / static_cast<double>(m);
  return low + static_cast<int>(value_0_1 * (high - low + 1));
}

FlowShopInstance taillard_flow_shop(int jobs, int machines,
                                    std::int32_t time_seed) {
  FlowShopInstance inst;
  inst.jobs = jobs;
  inst.machines = machines;
  inst.proc.assign(static_cast<std::size_t>(machines),
                   std::vector<Time>(static_cast<std::size_t>(jobs), 0));
  TaillardRng rng(time_seed);
  // Published order: for each machine i, for each job j.
  for (int i = 0; i < machines; ++i) {
    for (int j = 0; j < jobs; ++j) {
      inst.proc[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          rng.next(1, 99);
    }
  }
  return inst;
}

JobShopInstance taillard_job_shop(int jobs, int machines,
                                  std::int32_t time_seed,
                                  std::int32_t machine_seed) {
  JobShopInstance inst;
  inst.jobs = jobs;
  inst.machines = machines;
  inst.ops.assign(static_cast<std::size_t>(jobs), {});
  TaillardRng times(time_seed);
  TaillardRng orders(machine_seed);
  for (int j = 0; j < jobs; ++j) {
    auto& route = inst.ops[static_cast<std::size_t>(j)];
    route.resize(static_cast<std::size_t>(machines));
    for (int i = 0; i < machines; ++i) {
      route[static_cast<std::size_t>(i)].duration = times.next(1, 99);
    }
  }
  for (int j = 0; j < jobs; ++j) {
    std::vector<int> machine_order(static_cast<std::size_t>(machines));
    for (int i = 0; i < machines; ++i) {
      machine_order[static_cast<std::size_t>(i)] = i;
    }
    for (int i = 0; i < machines; ++i) {
      const int swap_with = orders.next(i, machines - 1);
      std::swap(machine_order[static_cast<std::size_t>(i)],
                machine_order[static_cast<std::size_t>(swap_with)]);
    }
    for (int i = 0; i < machines; ++i) {
      inst.ops[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)].machine =
          machine_order[static_cast<std::size_t>(i)];
    }
  }
  return inst;
}

const std::vector<TaillardBenchmark>& taillard_20x5() {
  // Time seeds are the published ta001..ta010 seeds; best-known makespans
  // are the long-standing optima reported in the flow-shop literature.
  static const std::vector<TaillardBenchmark> table = {
      {"ta001", 20, 5, 873654221, 1278},  {"ta002", 20, 5, 379008056, 1359},
      {"ta003", 20, 5, 1866992158, 1081}, {"ta004", 20, 5, 216771124, 1293},
      {"ta005", 20, 5, 495070989, 1235},  {"ta006", 20, 5, 402959317, 1195},
      {"ta007", 20, 5, 1369363414, 1234}, {"ta008", 20, 5, 2021925980, 1206},
      {"ta009", 20, 5, 573109518, 1230},  {"ta010", 20, 5, 88325120, 1108},
  };
  return table;
}

FlowShopInstance make_taillard(const TaillardBenchmark& bench) {
  return taillard_flow_shop(bench.jobs, bench.machines, bench.time_seed);
}

}  // namespace psga::sched
