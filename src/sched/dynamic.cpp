#include "src/sched/dynamic.h"

#include <algorithm>

#include "src/par/rng.h"

namespace psga::sched {

namespace {

/// Earliest start >= `earliest` on `machine` such that [start, start+dur)
/// avoids every downtime window of that machine.
Time next_feasible_start(int machine, Time earliest, Time duration,
                         std::span<const Downtime> downtimes) {
  Time start = earliest;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const Downtime& w : downtimes) {
      if (w.machine != machine) continue;
      if (start < w.end && start + duration > w.start) {
        start = w.end;  // push past this window and re-check all
        moved = true;
      }
    }
  }
  return start;
}

}  // namespace

Schedule decode_with_downtime(const JobShopInstance& inst,
                              std::span<const int> op_sequence,
                              std::span<const Downtime> downtimes) {
  Schedule schedule;
  schedule.ops.reserve(op_sequence.size());
  std::vector<int> next_op(static_cast<std::size_t>(inst.jobs), 0);
  std::vector<Time> job_free(static_cast<std::size_t>(inst.jobs));
  for (int j = 0; j < inst.jobs; ++j) {
    job_free[static_cast<std::size_t>(j)] = inst.attrs.release_of(j);
  }
  std::vector<Time> machine_free(static_cast<std::size_t>(inst.machines), 0);
  for (int job : op_sequence) {
    const int index = next_op[static_cast<std::size_t>(job)]++;
    const JsOperation& op = inst.op(job, index);
    const Time earliest =
        std::max(job_free[static_cast<std::size_t>(job)],
                 machine_free[static_cast<std::size_t>(op.machine)]);
    const Time start =
        next_feasible_start(op.machine, earliest, op.duration, downtimes);
    const Time end = start + op.duration;
    schedule.ops.push_back(ScheduledOp{job, index, op.machine, start, end});
    job_free[static_cast<std::size_t>(job)] = end;
    machine_free[static_cast<std::size_t>(op.machine)] = end;
  }
  return schedule;
}

Time realized_makespan_with_prefix(const JobShopInstance& inst,
                                   std::span<const int> frozen_prefix,
                                   std::span<const int> suffix,
                                   std::span<const Downtime> downtimes) {
  std::vector<int> full;
  full.reserve(frozen_prefix.size() + suffix.size());
  full.insert(full.end(), frozen_prefix.begin(), frozen_prefix.end());
  full.insert(full.end(), suffix.begin(), suffix.end());
  return decode_with_downtime(inst, full, downtimes).makespan();
}

ReplanContext split_at(const JobShopInstance& inst,
                       std::span<const int> sequence,
                       std::span<const Downtime> downtimes, Time now) {
  const Schedule so_far = decode_with_downtime(inst, sequence, downtimes);
  std::size_t frozen = 0;
  while (frozen < so_far.ops.size() && so_far.ops[frozen].start < now) {
    ++frozen;
  }
  ReplanContext context;
  context.now = now;
  context.frozen_prefix.assign(
      sequence.begin(), sequence.begin() + static_cast<std::ptrdiff_t>(frozen));
  context.remaining.assign(
      sequence.begin() + static_cast<std::ptrdiff_t>(frozen), sequence.end());
  return context;
}

DynamicRunResult simulate_dynamic(const JobShopInstance& inst,
                                  std::span<const int> predictive_sequence,
                                  std::span<const Downtime> downtimes,
                                  const Replanner& replanner) {
  DynamicRunResult result;
  result.predictive_makespan =
      decode_operation_based(inst, predictive_sequence).makespan();

  std::vector<int> sequence(predictive_sequence.begin(),
                            predictive_sequence.end());
  if (replanner != nullptr) {
    // Re-plan at the start of each disruption, in time order.
    std::vector<Downtime> ordered(downtimes.begin(), downtimes.end());
    std::sort(ordered.begin(), ordered.end(),
              [](const Downtime& a, const Downtime& b) {
                return a.start < b.start;
              });
    for (const Downtime& event : ordered) {
      // Decode the current plan against all downtimes to find which genes
      // have started strictly before the event.
      ReplanContext context = split_at(inst, sequence, downtimes, event.start);
      const std::size_t frozen = context.frozen_prefix.size();
      if (frozen >= sequence.size()) continue;  // everything already started
      std::vector<int> replanned = replanner(context);
      // Defensive: accept only genuine permutations of the remainder.
      std::vector<int> a = replanned;
      std::vector<int> b = context.remaining;
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      if (a == b) {
        std::copy(replanned.begin(), replanned.end(),
                  sequence.begin() + static_cast<std::ptrdiff_t>(frozen));
        ++result.replans;
      }
    }
  }
  result.realized_schedule = decode_with_downtime(inst, sequence, downtimes);
  result.realized_makespan = result.realized_schedule.makespan();
  return result;
}

std::vector<Downtime> random_downtimes(int machines, int count, Time horizon,
                                       Time len_lo, Time len_hi,
                                       std::uint64_t seed) {
  par::Rng rng(seed);
  std::vector<Downtime> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Downtime w;
    w.machine = static_cast<int>(rng.below(static_cast<std::uint64_t>(machines)));
    w.start = rng.range(0, static_cast<int>(horizon));
    w.end = w.start + rng.range(static_cast<int>(len_lo),
                                static_cast<int>(len_hi));
    out.push_back(w);
  }
  return out;
}

}  // namespace psga::sched
