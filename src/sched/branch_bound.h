// Exact job-shop makespan solver by branch and bound over active
// schedules. AitZai et al. [14][15] pair a parallel B&B with their
// master-slave GA; this module provides both the exact reference for
// small instances (used by tests to certify GA solution quality) and the
// parallel-tree-search counterpart for the E23 bench.
//
// Branching follows Giffler–Thompson: each node fixes the next operation
// on the earliest-completing conflict machine, so leaves are exactly the
// active schedules (which always contain an optimal one). The bound is
// the classic max of job-remaining-work and machine-remaining-work
// relaxations. The parallel variant expands the root frontier and
// searches subtrees on the thread pool with a shared incumbent.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "src/par/thread_pool.h"
#include "src/sched/job_shop.h"

namespace psga::sched {

struct BranchBoundResult {
  Time best_makespan = 0;
  /// The sequence (operation-based chromosome) realizing best_makespan.
  std::vector<int> best_sequence;
  long long nodes_explored = 0;
  /// True if the search ran to completion (best is proven optimal);
  /// false if the node budget was exhausted first.
  bool proven_optimal = false;
};

struct BranchBoundConfig {
  /// Node budget; the search stops (without optimality proof) beyond it.
  long long max_nodes = 50'000'000;
  /// Initial incumbent (e.g. a GA or dispatch result); 0 = compute one
  /// from the dispatching rules internally.
  Time initial_upper_bound = 0;
};

/// Serial exact search.
BranchBoundResult branch_and_bound(const JobShopInstance& inst,
                                   const BranchBoundConfig& config = {});

/// Parallel search: root frontier expanded breadth-first until it holds
/// enough subtrees, then subtrees are explored concurrently sharing one
/// atomic incumbent. Returns the same optimum as the serial search.
BranchBoundResult parallel_branch_and_bound(
    const JobShopInstance& inst, const BranchBoundConfig& config = {},
    par::ThreadPool* pool = nullptr);

}  // namespace psga::sched
