#include "src/sched/open_shop.h"

#include <algorithm>
#include <numeric>
#include <optional>

namespace psga::sched {

namespace {

// Open shop "operation index" bookkeeping: validation wants each job's ops
// numbered 0..m-1; we number them in the order they get scheduled, and the
// schedule records which machine each ran on. Eligibility: index k of job
// j may run on any machine not used by j's other ops — the multiset check
// in validate() plus this duration lookup (by machine) enforces it.
std::optional<Time> os_duration(const void* ctx, int job, int /*index*/,
                                int machine) {
  const auto& inst = *static_cast<const OpenShopInstance*>(ctx);
  return inst.processing(job, machine);
}

}  // namespace

ValidationSpec OpenShopInstance::validation_spec() const {
  ValidationSpec spec;
  spec.jobs = jobs;
  spec.machines = machines;
  spec.ops_per_job.assign(static_cast<std::size_t>(jobs), machines);
  spec.ordered_stages = false;  // the defining property of the open shop
  spec.release = attrs.release;
  spec.duration = &os_duration;
  spec.ctx = this;
  return spec;
}

const Schedule& decode_open_shop(const OpenShopInstance& inst,
                                 std::span<const int> job_sequence,
                                 OpenShopDecoder decoder,
                                 OpenShopScratch& scratch) {
  Schedule& schedule = scratch.schedule;
  schedule.ops.clear();
  schedule.ops.reserve(job_sequence.size());
  // done is a flat jobs × machines bitmap (row-major).
  std::vector<unsigned char>& done = scratch.done;
  done.assign(static_cast<std::size_t>(inst.jobs) *
                  static_cast<std::size_t>(inst.machines),
              0);
  std::vector<int>& next_index = scratch.next_index;
  next_index.assign(static_cast<std::size_t>(inst.jobs), 0);
  std::vector<Time>& job_free = scratch.job_free;
  job_free.resize(static_cast<std::size_t>(inst.jobs));
  for (int j = 0; j < inst.jobs; ++j) {
    job_free[static_cast<std::size_t>(j)] = inst.attrs.release_of(j);
  }
  std::vector<Time>& machine_free = scratch.machine_free;
  machine_free.assign(static_cast<std::size_t>(inst.machines), 0);

  for (int job : job_sequence) {
    const std::size_t row =
        static_cast<std::size_t>(job) * static_cast<std::size_t>(inst.machines);
    // Candidate machines = unscheduled cells of this job's row.
    int chosen = -1;
    for (int m = 0; m < inst.machines; ++m) {
      if (done[row + static_cast<std::size_t>(m)] != 0) {
        continue;
      }
      if (chosen < 0) {
        chosen = m;
        continue;
      }
      switch (decoder) {
        case OpenShopDecoder::kLptTask:
          if (inst.processing(job, m) > inst.processing(job, chosen)) {
            chosen = m;
          }
          break;
        case OpenShopDecoder::kLptMachine: {
          const Time mf = machine_free[static_cast<std::size_t>(m)];
          const Time cf = machine_free[static_cast<std::size_t>(chosen)];
          if (mf < cf ||
              (mf == cf &&
               inst.processing(job, m) > inst.processing(job, chosen))) {
            chosen = m;
          }
          break;
        }
      }
    }
    const Time start = std::max(job_free[static_cast<std::size_t>(job)],
                                machine_free[static_cast<std::size_t>(chosen)]);
    const Time end = start + inst.processing(job, chosen);
    schedule.ops.push_back(
        ScheduledOp{job, next_index[static_cast<std::size_t>(job)]++, chosen,
                    start, end});
    done[row + static_cast<std::size_t>(chosen)] = 1;
    job_free[static_cast<std::size_t>(job)] = end;
    machine_free[static_cast<std::size_t>(chosen)] = end;
  }
  return schedule;
}

Schedule decode_open_shop(const OpenShopInstance& inst,
                          std::span<const int> job_sequence,
                          OpenShopDecoder decoder) {
  OpenShopScratch scratch;
  return decode_open_shop(inst, job_sequence, decoder, scratch);
}

Schedule open_shop_lpt_schedule(const OpenShopInstance& inst) {
  struct Op {
    int job;
    int machine;
    Time duration;
  };
  std::vector<Op> all;
  all.reserve(static_cast<std::size_t>(inst.jobs) *
              static_cast<std::size_t>(inst.machines));
  for (int j = 0; j < inst.jobs; ++j) {
    for (int m = 0; m < inst.machines; ++m) {
      all.push_back(Op{j, m, inst.processing(j, m)});
    }
  }
  std::sort(all.begin(), all.end(), [](const Op& a, const Op& b) {
    if (a.duration != b.duration) return a.duration > b.duration;
    if (a.job != b.job) return a.job < b.job;
    return a.machine < b.machine;
  });
  Schedule schedule;
  schedule.ops.reserve(all.size());
  std::vector<int> next_index(static_cast<std::size_t>(inst.jobs), 0);
  std::vector<Time> job_free(static_cast<std::size_t>(inst.jobs));
  for (int j = 0; j < inst.jobs; ++j) {
    job_free[static_cast<std::size_t>(j)] = inst.attrs.release_of(j);
  }
  std::vector<Time> machine_free(static_cast<std::size_t>(inst.machines), 0);
  for (const Op& op : all) {
    const Time start = std::max(job_free[static_cast<std::size_t>(op.job)],
                                machine_free[static_cast<std::size_t>(op.machine)]);
    const Time end = start + op.duration;
    schedule.ops.push_back(ScheduledOp{
        op.job, next_index[static_cast<std::size_t>(op.job)]++, op.machine,
        start, end});
    job_free[static_cast<std::size_t>(op.job)] = end;
    machine_free[static_cast<std::size_t>(op.machine)] = end;
  }
  return schedule;
}

double open_shop_objective(const OpenShopInstance& inst,
                           const Schedule& schedule, Criterion criterion,
                           OpenShopScratch& scratch) {
  schedule.job_completion_times(inst.jobs, scratch.completion);
  return evaluate_criterion(criterion, scratch.completion, inst.attrs);
}

double open_shop_objective(const OpenShopInstance& inst,
                           const Schedule& schedule, Criterion criterion) {
  OpenShopScratch scratch;
  return open_shop_objective(inst, schedule, criterion, scratch);
}

std::vector<int> random_job_repetition_sequence(const OpenShopInstance& inst,
                                                par::Rng& rng) {
  std::vector<int> seq;
  seq.reserve(static_cast<std::size_t>(inst.jobs) *
              static_cast<std::size_t>(inst.machines));
  for (int j = 0; j < inst.jobs; ++j) {
    for (int m = 0; m < inst.machines; ++m) seq.push_back(j);
  }
  rng.shuffle(seq);
  return seq;
}

Time open_shop_lower_bound(const OpenShopInstance& inst) {
  Time bound = 0;
  for (int j = 0; j < inst.jobs; ++j) {
    const Time load = std::accumulate(
        inst.proc[static_cast<std::size_t>(j)].begin(),
        inst.proc[static_cast<std::size_t>(j)].end(), Time{0});
    bound = std::max(bound, load);
  }
  for (int m = 0; m < inst.machines; ++m) {
    Time load = 0;
    for (int j = 0; j < inst.jobs; ++j) load += inst.processing(j, m);
    bound = std::max(bound, load);
  }
  return bound;
}

}  // namespace psga::sched
