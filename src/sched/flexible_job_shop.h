// Flexible job shop (FJSP): each operation may run on any machine of its
// eligibility set, with machine-dependent durations. The model carries the
// extensions of Defersha & Chen [36]: sequence-dependent setup times that
// are either *attached* (the job must be present during setup) or
// *detached* (setup may be performed before the job arrives), machine
// release dates, and minimum time lags between consecutive operations of a
// job. The genome is the assignment + sequencing chromosome pair the
// survey describes for flexible shops.
#pragma once

#include <span>
#include <vector>

#include "src/par/rng.h"
#include "src/sched/objectives.h"
#include "src/sched/schedule.h"

namespace psga::sched {

struct FjsChoice {
  int machine = 0;
  Time duration = 0;
};

struct FjsOperation {
  std::vector<FjsChoice> choices;  ///< eligible machines with durations
  Time min_lag_after = 0;          ///< min gap before the job's next op
};

struct FlexibleJobShopInstance {
  int jobs = 0;
  int machines = 0;
  /// ops[job] = the job's operations in processing order.
  std::vector<std::vector<FjsOperation>> ops;
  /// Optional sequence-dependent setups: setup[machine][prev_job+1][next_job]
  /// (prev_job = -1 → initial setup). Empty = no setups.
  std::vector<std::vector<std::vector<Time>>> setup;
  /// Detached setups may overlap the job's waiting time; attached setups
  /// start only once the job is physically on the machine.
  bool detached_setup = true;
  /// Machine release dates (empty = all available at 0).
  std::vector<Time> machine_release;
  JobAttributes attrs;

  int total_ops() const;
  int ops_of(int job) const {
    return static_cast<int>(ops[static_cast<std::size_t>(job)].size());
  }
  const FjsOperation& op(int job, int index) const {
    return ops[static_cast<std::size_t>(job)][static_cast<std::size_t>(index)];
  }
  Time setup_time(int machine, int prev_job, int next_job) const;
  Time machine_release_of(int machine) const;

  ValidationSpec validation_spec() const;
};

/// Reusable evaluation scratch for the FJSP decoder (one per worker).
struct FlexibleJobShopScratch {
  Schedule schedule;
  std::vector<int> next_op;
  std::vector<int> flat_base;
  std::vector<Time> job_free;
  std::vector<Time> machine_free;
  std::vector<int> last_job;
  std::vector<Time> completion;
};

/// Decodes (assignment, sequencing): `assignment[flat_op]` is an index into
/// that operation's eligibility set (flat ops are numbered job-major), and
/// `op_sequence` is a permutation with repetition of job ids.
Schedule decode_flexible_job_shop(const FlexibleJobShopInstance& inst,
                                  std::span<const int> assignment,
                                  std::span<const int> op_sequence);

/// Allocation-free variant: the returned reference points into `scratch`.
const Schedule& decode_flexible_job_shop(const FlexibleJobShopInstance& inst,
                                         std::span<const int> assignment,
                                         std::span<const int> op_sequence,
                                         FlexibleJobShopScratch& scratch);

/// Flat operation index of (job, op index).
int fjs_flat_op(const FlexibleJobShopInstance& inst, int job, int index);

double flexible_job_shop_objective(const FlexibleJobShopInstance& inst,
                                   const Schedule& schedule,
                                   Criterion criterion);

/// Allocation-free variant (reuses scratch.completion).
double flexible_job_shop_objective(const FlexibleJobShopInstance& inst,
                                   const Schedule& schedule,
                                   Criterion criterion,
                                   FlexibleJobShopScratch& scratch);

/// Random valid assignment chromosome (one eligibility index per flat op).
std::vector<int> random_fjs_assignment(const FlexibleJobShopInstance& inst,
                                       par::Rng& rng);

/// Random valid sequencing chromosome.
std::vector<int> random_fjs_sequence(const FlexibleJobShopInstance& inst,
                                     par::Rng& rng);

}  // namespace psga::sched
