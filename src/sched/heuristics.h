// Constructive reference heuristics. They provide (a) the heuristic
// objective value F̄ used by the survey's fitness transform Eq. (1), (b)
// warm-start individuals for the GAs, and (c) the serial reference that
// substitutes the commercial solver baseline of Akhshabi et al. [18]
// (Lingo 8 — unavailable; see DESIGN.md §2).
#pragma once

#include <vector>

#include "src/sched/flow_shop.h"
#include "src/sched/job_shop.h"

namespace psga::sched {

/// NEH (Nawaz–Enscore–Ham 1983): the canonical permutation-flow-shop
/// constructive heuristic. Returns the job permutation it builds.
std::vector<int> neh_permutation(const FlowShopInstance& inst);

/// Convenience: NEH makespan.
Time neh_makespan(const FlowShopInstance& inst);

/// Best dispatching-rule schedule over {SPT, LPT, MWR, FCFS} via
/// Giffler–Thompson; returns its makespan (job shop reference F̄).
Time best_dispatch_makespan(const JobShopInstance& inst);

}  // namespace psga::sched
