#include "src/sched/batch_decode.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace psga::sched {

namespace {

/// Shared length check for every batch kernel (and mirrored by the scalar
/// entry points in flow_shop.cpp): a lane with the wrong gene count would
/// silently read out of bounds, so reject the whole batch loudly.
void check_lane_length(std::size_t got, int expected, const char* what) {
  if (got != static_cast<std::size_t>(expected)) {
    throw std::invalid_argument(std::string(what) + " length " +
                                std::to_string(got) + " != expected " +
                                std::to_string(expected));
  }
}

void pack_flow_shop(const FlowShopInstance& inst,
                    FlowShopBatchScratch& scratch) {
  if (scratch.packed_instance == &inst) return;
  const auto jobs = static_cast<std::size_t>(inst.jobs);
  const auto machines = static_cast<std::size_t>(inst.machines);
  scratch.mproc.resize(jobs * machines);
  for (std::size_t m = 0; m < machines; ++m) {
    const auto& row = inst.proc[m];
    for (std::size_t j = 0; j < jobs; ++j) {
      scratch.mproc[m * jobs + j] = row[j];
    }
  }
  scratch.release.resize(jobs);
  for (int j = 0; j < inst.jobs; ++j) {
    scratch.release[static_cast<std::size_t>(j)] = inst.attrs.release_of(j);
  }
  // Narrow eligibility: with everything non-negative, no completion time
  // can exceed max release + total processing (a job never waits past the
  // moment every other operation has finished), so when that bound fits
  // int32 the narrow recurrence cannot overflow and is exact.
  Time total = 0;
  Time max_release = 0;
  bool non_negative = true;
  for (Time t : scratch.mproc) {
    total += t;
    non_negative = non_negative && t >= 0;
  }
  for (Time r : scratch.release) {
    max_release = std::max(max_release, r);
    non_negative = non_negative && r >= 0;
  }
  scratch.narrow =
      non_negative &&
      total <= std::numeric_limits<std::int32_t>::max() - max_release;
  if (scratch.narrow) {
    scratch.mproc32.assign(scratch.mproc.begin(), scratch.mproc.end());
    scratch.release32.assign(scratch.release.begin(), scratch.release.end());
  }
  scratch.packed_instance = &inst;
}

/// Lanes advanced per SIMD block. A compile-time width keeps every inner
/// loop's trip count constant, so the recurrence compiles to
/// straight-line SIMD with no runtime prologue/alias versioning per
/// machine step (which dominated a variable-width variant of this
/// kernel).
constexpr std::size_t kLaneBlock = 8;

#if defined(__GNUC__) || defined(__clang__)
#define PSGA_BATCH_SIMD 1
/// Four int32 lanes — one SSE2 register. GCC/Clang lower the vector
/// ternary below to pmaxsd (SSE4.1+) or pcmpgtd/pand/por (baseline
/// SSE2); either way the max never becomes the per-lane cmov chain the
/// autovectorizer's SLP pass falls back to on the unrolled scalar loop.
using v4s32 [[gnu::vector_size(16), gnu::aligned(4)]] = std::int32_t;
#endif

/// Advances one permutation position through every machine for a lane
/// block: front[m][w] = max(chain[w], front[m][w]) + mproc[m][jobrow[w]],
/// where chain[w] is the job's completion on the previous machine
/// (rel[w] before machine 0). The chain is carried in registers across
/// the machine loop — one front load, one store, and one block-wide
/// duration gather per machine step. On the narrow path the gathered
/// durations are built straight into vector registers (no stack staging
/// row — a store followed by a wider vector reload would defeat
/// store-to-load forwarding). The wide path keeps the plain loop: int64
/// max has no packed form below AVX-512, so scalar cmov is already the
/// best available.
template <typename T>
inline void advance_position(T* const __restrict front, const T* const mproc,
                             std::size_t jobs, std::size_t machines,
                             const std::size_t* const jobrow,
                             const T* const rel) {
#if PSGA_BATCH_SIMD
  if constexpr (std::is_same_v<T, std::int32_t>) {
    static_assert(kLaneBlock == 8);
    v4s32 a0;
    v4s32 a1;
    std::memcpy(&a0, rel, sizeof(a0));
    std::memcpy(&a1, rel + 4, sizeof(a1));
    for (std::size_t m = 0; m < machines; ++m) {
      const T* const mrow = mproc + m * jobs;
      const v4s32 d0 = {mrow[jobrow[0]], mrow[jobrow[1]], mrow[jobrow[2]],
                        mrow[jobrow[3]]};
      const v4s32 d1 = {mrow[jobrow[4]], mrow[jobrow[5]], mrow[jobrow[6]],
                        mrow[jobrow[7]]};
      T* const row = front + m * kLaneBlock;
      v4s32 b0;
      v4s32 b1;
      std::memcpy(&b0, row, sizeof(b0));
      std::memcpy(&b1, row + 4, sizeof(b1));
      a0 = ((a0 > b0) ? a0 : b0) + d0;
      a1 = ((a1 > b1) ? a1 : b1) + d1;
      std::memcpy(row, &a0, sizeof(a0));
      std::memcpy(row + 4, &a1, sizeof(a1));
    }
    return;
  }
#endif
  T chain[kLaneBlock];
  std::memcpy(chain, rel, sizeof(chain));
  for (std::size_t m = 0; m < machines; ++m) {
    const T* const mrow = mproc + m * jobs;
    T* const row = front + m * kLaneBlock;
    for (std::size_t w = 0; w < kLaneBlock; ++w) {
      const T v = std::max(chain[w], row[w]) + mrow[jobrow[w]];
      row[w] = v;
      chain[w] = v;
    }
  }
}

/// Advances all lanes through the flow-shop recurrence over working rows
/// of width T (int32 on the narrow path, Time otherwise — identical
/// arithmetic when narrow, see FlowShopBatchScratch::narrow). Lanes run
/// in blocks of kLaneBlock; a short tail block is padded with copies of
/// its first live lane whose results are simply not written back. When
/// Completion is false fills out[l] with the last-machine completion;
/// when true records per-job completion times into
/// `completion[lane * jobs + job]` (always as Time).
///
/// Per position the only gathers are kLaneBlock duration loads per
/// machine, pulled straight out of the machine-major matrix into a small
/// stack row that feeds row_step — front rows stay unit-stride and the
/// recurrence is max + add only. front[m][w] after a position's pass is
/// the completion of lane base+w's job on machine m — identical
/// arithmetic to the scalar `prev` chain (the reordering only changes
/// evaluation order of an exact integer DAG, never any value).
template <bool Completion, typename T>
void flow_shop_advance_rows(std::span<const std::span<const int>> perms,
                            std::size_t jobs, std::size_t machines,
                            const T* const mproc, const T* const release,
                            std::vector<T>& front_v, Time* const out,
                            Time* const completion) {
  const std::size_t lanes = perms.size();
  front_v.resize(machines * kLaneBlock);
  T* const front = front_v.data();

  for (std::size_t base = 0; base < lanes; base += kLaneBlock) {
    const std::size_t live = std::min(kLaneBlock, lanes - base);
    const int* perm_ptr[kLaneBlock];
    for (std::size_t w = 0; w < kLaneBlock; ++w) {
      perm_ptr[w] = perms[base + (w < live ? w : 0)].data();
    }
    std::fill(front, front + machines * kLaneBlock, T{0});

    for (std::size_t p = 0; p < jobs; ++p) {
      std::size_t jobrow[kLaneBlock];
      T rel[kLaneBlock];
      for (std::size_t w = 0; w < kLaneBlock; ++w) {
        jobrow[w] = static_cast<std::size_t>(perm_ptr[w][p]);
        rel[w] = release[jobrow[w]];
      }
      advance_position(front, mproc, jobs, machines, jobrow, rel);
      if constexpr (Completion) {
        for (std::size_t w = 0; w < live; ++w) {
          // With no machines the job "completes" at its release time,
          // matching the scalar recurrence's untouched `prev`.
          completion[(base + w) * jobs + jobrow[w]] = static_cast<Time>(
              machines > 0 ? front[(machines - 1) * kLaneBlock + w]
                           : rel[w]);
        }
      }
    }
    if constexpr (!Completion) {
      for (std::size_t w = 0; w < live; ++w) {
        out[base + w] =
            machines > 0
                ? static_cast<Time>(front[(machines - 1) * kLaneBlock + w])
                : 0;
      }
    }
  }
}

/// Packs, validates, and runs the recurrence at the width the instance
/// admits. Fills `out` (lanes' last-machine completions) when Completion
/// is false, scratch.completion when true.
template <bool Completion>
void flow_shop_advance(const FlowShopInstance& inst,
                       std::span<const std::span<const int>> perms,
                       FlowShopBatchScratch& scratch, Time* const out) {
  pack_flow_shop(inst, scratch);
  for (const auto& perm : perms) {
    check_lane_length(perm.size(), inst.jobs, "flow-shop permutation");
  }
  const auto machines = static_cast<std::size_t>(inst.machines);
  const auto jobs = static_cast<std::size_t>(inst.jobs);
  if constexpr (Completion) {
    scratch.completion.assign(perms.size() * jobs, 0);
  }
  if (scratch.narrow) {
    flow_shop_advance_rows<Completion, std::int32_t>(
        perms, jobs, machines, scratch.mproc32.data(),
        scratch.release32.data(), scratch.front32, out,
        scratch.completion.data());
  } else {
    flow_shop_advance_rows<Completion, Time>(
        perms, jobs, machines, scratch.mproc.data(), scratch.release.data(),
        scratch.front, out, scratch.completion.data());
  }
}

void pack_job_shop(const JobShopInstance& inst, JobShopBatchScratch& scratch) {
  if (scratch.packed_instance == &inst) return;
  const auto jobs = static_cast<std::size_t>(inst.jobs);
  scratch.job_offset.resize(jobs + 1);
  scratch.job_offset[0] = 0;
  scratch.op_machine.clear();
  scratch.op_duration.clear();
  for (int j = 0; j < inst.jobs; ++j) {
    for (const auto& op : inst.ops[static_cast<std::size_t>(j)]) {
      scratch.op_machine.push_back(op.machine);
      scratch.op_duration.push_back(op.duration);
    }
    scratch.job_offset[static_cast<std::size_t>(j) + 1] =
        static_cast<int>(scratch.op_machine.size());
  }
  scratch.release.resize(jobs);
  for (int j = 0; j < inst.jobs; ++j) {
    scratch.release[static_cast<std::size_t>(j)] = inst.attrs.release_of(j);
  }
  scratch.packed_instance = &inst;
}

}  // namespace

void flow_shop_makespan_batch(const FlowShopInstance& inst,
                              std::span<const std::span<const int>> perms,
                              std::span<Time> out,
                              FlowShopBatchScratch& scratch) {
  flow_shop_advance<false>(inst, perms, scratch, out.data());
}

void flow_shop_objective_batch(const FlowShopInstance& inst,
                               std::span<const std::span<const int>> perms,
                               Criterion criterion, std::span<double> out,
                               FlowShopBatchScratch& scratch) {
  const std::size_t lanes = perms.size();
  if (criterion == Criterion::kMakespan) {
    scratch.makespans.resize(lanes);
    flow_shop_advance<false>(inst, perms, scratch, scratch.makespans.data());
    for (std::size_t l = 0; l < lanes; ++l) {
      out[l] = static_cast<double>(scratch.makespans[l]);
    }
    return;
  }
  flow_shop_advance<true>(inst, perms, scratch, nullptr);
  const auto jobs = static_cast<std::size_t>(inst.jobs);
  for (std::size_t l = 0; l < lanes; ++l) {
    out[l] = evaluate_criterion(
        criterion,
        std::span<const Time>(scratch.completion.data() + l * jobs, jobs),
        inst.attrs);
  }
}

void job_shop_objective_batch(const JobShopInstance& inst,
                              std::span<const std::span<const int>> seqs,
                              JobShopBatchDecoder decoder, Criterion criterion,
                              std::span<double> out,
                              JobShopBatchScratch& scratch, double incumbent) {
  pack_job_shop(inst, scratch);
  const int total = inst.total_ops();
  for (const auto& seq : seqs) {
    check_lane_length(seq.size(), total, "job-shop operation sequence");
  }
  const auto jobs = static_cast<std::size_t>(inst.jobs);
  const auto machines = static_cast<std::size_t>(inst.machines);
  // The early exit is only sound for makespan-like monotone criteria: the
  // running horizon never decreases, so horizon >= incumbent proves the
  // final makespan is too. Criteria mixing due dates/weights are not
  // monotone in the horizon, so the incumbent is ignored for them.
  const bool may_prune =
      criterion == Criterion::kMakespan && incumbent < kNoIncumbent;

  const int* const job_offset = scratch.job_offset.data();
  const int* const op_machine = scratch.op_machine.data();
  const Time* const op_duration = scratch.op_duration.data();

  for (std::size_t lane = 0; lane < seqs.size(); ++lane) {
    const std::span<const int> seq = seqs[lane];
    scratch.next_op.assign(jobs, 0);
    scratch.job_free.assign(scratch.release.begin(), scratch.release.end());
    scratch.machine_free.assign(machines, 0);
    scratch.completion.assign(jobs, 0);
    int* const next_op = scratch.next_op.data();
    Time* const job_free = scratch.job_free.data();
    Time* const machine_free = scratch.machine_free.data();
    Time* const completion = scratch.completion.data();

    Time horizon = 0;
    bool pruned = false;

    if (decoder == JobShopBatchDecoder::kSemiActive) {
      // Mirrors decode_operation_based without materializing ScheduledOps.
      for (int gene : seq) {
        const auto j = static_cast<std::size_t>(gene);
        const int flat = job_offset[j] + next_op[j]++;
        const auto m = static_cast<std::size_t>(op_machine[flat]);
        const Time start = std::max(job_free[j], machine_free[m]);
        const Time end = start + op_duration[flat];
        job_free[j] = end;
        machine_free[m] = end;
        completion[j] = end;
        horizon = std::max(horizon, end);
        if (may_prune && static_cast<double>(horizon) >= incumbent) {
          pruned = true;
          break;
        }
      }
    } else {
      // Mirrors giffler_thompson_sequence: same conflict-machine scan,
      // same strict comparisons, same job-id iteration order.
      auto& positions = scratch.positions;
      positions.resize(jobs);
      for (auto& p : positions) p.clear();
      for (int pos = 0; pos < static_cast<int>(seq.size()); ++pos) {
        positions[static_cast<std::size_t>(seq[static_cast<std::size_t>(pos)])]
            .push_back(pos);
      }
      for (int scheduled = 0; scheduled < total; ++scheduled) {
        Time best_completion = std::numeric_limits<Time>::max();
        int conflict_machine = -1;
        for (int j = 0; j < inst.jobs; ++j) {
          const auto js = static_cast<std::size_t>(j);
          const int k = next_op[js];
          if (job_offset[j] + k >= job_offset[j + 1]) continue;
          const int flat = job_offset[j] + k;
          const Time start = std::max(
              job_free[js],
              machine_free[static_cast<std::size_t>(op_machine[flat])]);
          const Time op_completion = start + op_duration[flat];
          if (op_completion < best_completion) {
            best_completion = op_completion;
            conflict_machine = op_machine[flat];
          }
        }
        scratch.conflict_jobs.clear();
        for (int j = 0; j < inst.jobs; ++j) {
          const auto js = static_cast<std::size_t>(j);
          const int k = next_op[js];
          if (job_offset[j] + k >= job_offset[j + 1]) continue;
          const int flat = job_offset[j] + k;
          if (op_machine[flat] != conflict_machine) continue;
          const Time start = std::max(
              job_free[js],
              machine_free[static_cast<std::size_t>(conflict_machine)]);
          if (start < best_completion) scratch.conflict_jobs.push_back(j);
        }
        int winner = scratch.conflict_jobs.front();
        int best_pos = std::numeric_limits<int>::max();
        for (int j : scratch.conflict_jobs) {
          const auto js = static_cast<std::size_t>(j);
          const int pos = positions[js][static_cast<std::size_t>(next_op[js])];
          if (pos < best_pos) {
            best_pos = pos;
            winner = j;
          }
        }
        const auto ws = static_cast<std::size_t>(winner);
        const int flat = job_offset[winner] + next_op[ws]++;
        const auto m = static_cast<std::size_t>(op_machine[flat]);
        const Time start = std::max(job_free[ws], machine_free[m]);
        const Time end = start + op_duration[flat];
        job_free[ws] = end;
        machine_free[m] = end;
        completion[ws] = end;
        horizon = std::max(horizon, end);
        if (may_prune && static_cast<double>(horizon) >= incumbent) {
          pruned = true;
          break;
        }
      }
    }

    if (pruned) {
      // Lower bound: the partial horizon already proves the lane cannot
      // beat the incumbent.
      out[lane] = static_cast<double>(horizon);
    } else {
      out[lane] = evaluate_criterion(
          criterion, std::span<const Time>(completion, jobs), inst.attrs);
    }
  }
}

}  // namespace psga::sched
