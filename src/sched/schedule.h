// Explicit schedules and feasibility validation.
//
// Every decoder in psga can emit a full Schedule (not just an objective
// value), and Schedule::validate() enforces exactly the conditions of the
// survey's Table I:
//   1. each operation of a job is processed by one and only one machine;
//   2. each machine processes at most one operation at a time;
//   3. each job is available only after its release time;
//   4. setup/transfer times are zero unless the instance models them
//      (the FJSP/HFS variants with setups validate against their own
//      setup-aware expectations);
//   5. infinite intermediate storage (no blocking) unless the instance
//      models blocking explicitly.
// Property tests run validate() over random genomes for every decoder.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace psga::sched {

using Time = std::int64_t;

/// One scheduled operation: job `job`, its `index`-th operation, run on
/// `machine` during [start, end).
struct ScheduledOp {
  int job = 0;
  int index = 0;
  int machine = 0;
  Time start = 0;
  Time end = 0;
};

struct Schedule {
  std::vector<ScheduledOp> ops;

  Time makespan() const;

  /// Completion time per job (max end over the job's ops). `jobs` is the
  /// total job count (jobs with no ops complete at 0).
  std::vector<Time> job_completion_times(int jobs) const;

  /// Allocation-free variant: fills `out` (resized to `jobs`).
  void job_completion_times(int jobs, std::vector<Time>& out) const;
};

/// What a feasible schedule must satisfy; filled by each instance type.
struct ValidationSpec {
  int jobs = 0;
  int machines = 0;
  /// ops_per_job[j] = number of operations job j must execute.
  std::vector<int> ops_per_job;
  /// If true, operation k of a job must finish before operation k+1 starts
  /// (flow shops / job shops). Open shops set this to false.
  bool ordered_stages = true;
  /// Release time per job (empty = all zero).
  std::vector<Time> release;
  /// expected_duration(job, index, machine) — returns the required
  /// processing span, or nullopt if (job, index) may not run on `machine`.
  /// Durations and eligibility come from the concrete instance.
  std::optional<Time> (*duration)(const void* ctx, int job, int index,
                                  int machine) = nullptr;
  const void* ctx = nullptr;
  /// Minimum idle gap required on a machine between consecutive ops
  /// (sequence-dependent setups); 0 when the model has none.
  Time (*machine_gap)(const void* ctx, int machine, int prev_job,
                      int next_job) = nullptr;
};

/// Returns std::nullopt if the schedule is feasible, else a diagnostic.
std::optional<std::string> validate(const Schedule& schedule,
                                    const ValidationSpec& spec);

}  // namespace psga::sched
