// ASCII Gantt chart rendering of explicit schedules, for the examples and
// for eyeballing decoder output.
#pragma once

#include <string>

#include "src/sched/schedule.h"

namespace psga::sched {

struct GanttOptions {
  int width = 80;        ///< character columns for the time axis
  bool show_axis = true; ///< print a time ruler under the chart
};

/// Renders one row per machine; each operation paints its job's symbol
/// (0-9, then a-z, then A-Z, then '*') over its scaled time span. Idle
/// time shows as '.', downtime is simply unpainted.
std::string render_gantt(const Schedule& schedule, int machines,
                         const GanttOptions& options = {});

}  // namespace psga::sched
