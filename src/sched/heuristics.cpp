#include "src/sched/heuristics.h"

#include <algorithm>
#include <numeric>

namespace psga::sched {

std::vector<int> neh_permutation(const FlowShopInstance& inst) {
  // Order jobs by descending total processing time.
  std::vector<int> order(static_cast<std::size_t>(inst.jobs));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return inst.total_processing(a) > inst.total_processing(b);
  });
  // Insert each job at the position minimizing partial makespan.
  std::vector<int> seq;
  seq.reserve(order.size());
  std::vector<int> trial;
  FlowShopScratch scratch;
  for (int job : order) {
    std::size_t best_pos = 0;
    Time best_makespan = -1;
    for (std::size_t pos = 0; pos <= seq.size(); ++pos) {
      trial = seq;
      trial.insert(trial.begin() + static_cast<std::ptrdiff_t>(pos), job);
      const Time makespan = flow_shop_makespan_prefix(inst, trial, scratch);
      if (best_makespan < 0 || makespan < best_makespan) {
        best_makespan = makespan;
        best_pos = pos;
      }
    }
    seq.insert(seq.begin() + static_cast<std::ptrdiff_t>(best_pos), job);
  }
  return seq;
}

Time neh_makespan(const FlowShopInstance& inst) {
  return flow_shop_makespan(inst, neh_permutation(inst));
}

Time best_dispatch_makespan(const JobShopInstance& inst) {
  par::Rng rng(0);  // kRandom unused below; any seed works
  Time best = -1;
  for (PriorityRule rule : {PriorityRule::kSpt, PriorityRule::kLpt,
                            PriorityRule::kMostWorkRemaining,
                            PriorityRule::kFcfs}) {
    const Time makespan = giffler_thompson(inst, rule, rng).makespan();
    if (best < 0 || makespan < best) best = makespan;
  }
  return best;
}

}  // namespace psga::sched
