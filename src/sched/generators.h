// Parameterized random instance generators for the problem families the
// surveyed works evaluate on but whose data files are not publicly
// regenerable (open shop, hybrid flow shop, flexible job shop, lot
// streaming). All generators are deterministic functions of their seed.
#pragma once

#include <cstdint>

#include "src/sched/flexible_job_shop.h"
#include "src/sched/hybrid_flow_shop.h"
#include "src/sched/job_shop.h"
#include "src/sched/lot_streaming.h"
#include "src/sched/open_shop.h"

namespace psga::sched {

/// Uniform open shop: proc[job][machine] ~ U[lo, hi].
OpenShopInstance random_open_shop(int jobs, int machines, std::uint64_t seed,
                                  Time lo = 1, Time hi = 99);

struct HfsParams {
  int jobs = 20;
  std::vector<int> machines_per_stage = {2, 2, 2};
  Time lo = 1;
  Time hi = 99;
  /// Unrelated machines: per-machine multiplier in [1, unrelatedness];
  /// 1.0 = identical machines.
  double unrelatedness = 1.0;
  /// If > 0 also generate sequence-dependent setups ~ U[1, setup_hi].
  Time setup_hi = 0;
  bool blocking = false;
};

HybridFlowShopInstance random_hybrid_flow_shop(const HfsParams& params,
                                               std::uint64_t seed);

struct FjsParams {
  int jobs = 10;
  int machines = 6;
  int ops_per_job = 6;
  /// Each op is eligible on a random subset of this size (>= 1).
  int eligible_machines = 3;
  Time lo = 1;
  Time hi = 99;
  Time setup_hi = 0;          ///< 0 = no setups
  bool detached_setup = true;
  Time machine_release_hi = 0;  ///< 0 = all machines free at t=0
  Time max_lag = 0;             ///< 0 = no inter-operation time lags
};

FlexibleJobShopInstance random_flexible_job_shop(const FjsParams& params,
                                                 std::uint64_t seed);

struct LotStreamParams {
  int jobs = 8;
  std::vector<int> machines_per_stage = {2, 2};
  int batch_lo = 20;
  int batch_hi = 60;
  int sublots = 3;
  Time unit_lo = 1;
  Time unit_hi = 9;
};

LotStreamingInstance random_lot_streaming(const LotStreamParams& params,
                                          std::uint64_t seed);

/// Uniform random job shop (jobs × machines, every job visits every
/// machine once in a random order) — stand-in for ABZ/ORB-style instances.
JobShopInstance random_job_shop(int jobs, int machines, std::uint64_t seed,
                                Time lo = 1, Time hi = 99);

/// Assigns due dates D_j = R_j + slack_factor × (total processing of j)
/// and integer weights in [1, max_weight]; the standard TWT setup.
void assign_due_dates(JobAttributes& attrs, const std::vector<Time>& work,
                      double slack_factor, int max_weight, std::uint64_t seed);

}  // namespace psga::sched
