// OpenMP alternative to ThreadPool::parallel_for.
//
// The thread pool is the library default (deterministic static chunking,
// reused workers); this header offers the same loop shape on OpenMP for
// deployments that prefer the OpenMP runtime (survey §IV discusses the
// HPC frameworks interchangeably — the engines only need a parallel-for).
// Compiled to a serial loop when OpenMP is unavailable.
#pragma once

#include <cstddef>

#if defined(PSGA_HAVE_OPENMP)
#include <omp.h>
#endif

namespace psga::par {

/// Runs fn(i) for i in [0, n) using OpenMP when available (static
/// schedule, mirroring ThreadPool's chunking), else serially.
template <typename Fn>
void omp_parallel_for(std::size_t n, Fn&& fn) {
#if defined(PSGA_HAVE_OPENMP)
  const long long count = static_cast<long long>(n);
#pragma omp parallel for schedule(static)
  for (long long i = 0; i < count; ++i) {
    fn(static_cast<std::size_t>(i));
  }
#else
  for (std::size_t i = 0; i < n; ++i) fn(i);
#endif
}

/// True if the build has a real OpenMP runtime behind omp_parallel_for.
constexpr bool omp_available() {
#if defined(PSGA_HAVE_OPENMP)
  return true;
#else
  return false;
#endif
}

/// OpenMP worker count (1 when OpenMP is unavailable).
inline int omp_worker_count() {
#if defined(PSGA_HAVE_OPENMP)
  int workers = 1;
#pragma omp parallel
  {
#pragma omp single
    workers = omp_get_num_threads();
  }
  return workers;
#else
  return 1;
#endif
}

}  // namespace psga::par
