// In-process message-passing cluster: the MPI substitute.
//
// Several surveyed systems run island GAs over MPI on Beowulf clusters
// (Harmanani [33]) or multi-hundred-node workstation farms (Defersha
// [35][36]). This environment has no MPI installation, so psga provides a
// rank/mailbox layer with the same *semantics*: each rank runs on its own
// thread with private state and communicates only through explicit
// messages. Island-GA code written against this layer is line-for-line
// the code one would write against MPI_Send/MPI_Recv, which is what makes
// the substitution behaviour-preserving (see DESIGN.md §2).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace psga::par {

/// Opaque message payload. GA migration ships genomes as flat int/double
/// buffers, mirroring what MPI derived datatypes would carry.
struct Message {
  int source = -1;
  int tag = 0;
  std::vector<std::int64_t> ints;
  std::vector<double> doubles;
};

class Cluster;

/// Handle passed to each rank's body; provides the MPI-like operations.
class Rank {
 public:
  int id() const noexcept { return id_; }
  int size() const noexcept;

  /// Non-blocking, buffered send (like MPI_Send with a buffered mode).
  void send(int dest, Message msg) const;

  /// Blocking receive of the next message with matching tag (any source).
  Message recv(int tag) const;

  /// Non-blocking probe-and-receive: returns true and fills msg if a
  /// message with the tag is queued.
  bool try_recv(int tag, Message& msg) const;

  /// Collective barrier across all ranks.
  void barrier() const;

  /// Collective all-gather of one message per rank; result indexed by
  /// source rank. Implemented as send-to-all + receive-all, with an
  /// internal tag space so user tags never collide.
  std::vector<Message> allgather(Message mine, int tag) const;

 private:
  friend class Cluster;
  Rank(Cluster* cluster, int id) : cluster_(cluster), id_(id) {}
  Cluster* cluster_;
  int id_;
};

/// Runs `size` ranks, each executing `body(rank)`, and joins them.
/// Construction is cheap; all state lives for the duration of run().
class Cluster {
 public:
  explicit Cluster(int size);

  int size() const noexcept { return size_; }

  /// Execute the SPMD body on all ranks; blocks until every rank returns.
  void run(const std::function<void(Rank&)>& body);

 private:
  friend class Rank;

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable arrived;
    std::deque<Message> queue;
  };

  void deliver(int dest, Message msg);
  Message take(int rank, int tag);
  bool try_take(int rank, int tag, Message& msg);
  void barrier_wait();

  int size_;
  std::vector<Mailbox> mailboxes_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_epoch_ = 0;
};

}  // namespace psga::par
