#include "src/par/thread_pool.h"

#include "src/par/env.h"

namespace psga::par {

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = default_thread_count();
  const int helpers = threads - 1;  // caller thread is worker 0
  tasks_.resize(static_cast<std::size_t>(helpers > 0 ? helpers : 0));
  workers_.reserve(tasks_.size());
  for (std::size_t w = 0; w < tasks_.size(); ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::size_t seen_generation = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      task = tasks_[worker_index];
    }
    if (task.body != nullptr && task.begin < task.end) {
      (*task.body)(task.lane, task.begin, task.end);
    }
    {
      // Every helper acknowledges every generation, even with an empty
      // range — pending_ counts helpers, not nonempty chunks.
      std::lock_guard lock(mutex_);
      if (--pending_ == 0) done_.notify_one();
    }
  }
}

void ThreadPool::parallel_lanes(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t lanes = tasks_.size() + 1;
  if (lanes == 1 || n == 1) {
    fn(0, 0, n);
    return;
  }
  // Static chunking: lane k gets [k*n/lanes, (k+1)*n/lanes).
  std::size_t my_begin = 0, my_end = 0;
  {
    std::lock_guard lock(mutex_);
    pending_ = tasks_.size();
    for (std::size_t k = 0; k < lanes; ++k) {
      const std::size_t begin = k * n / lanes;
      const std::size_t end = (k + 1) * n / lanes;
      if (k == 0) {
        my_begin = begin;
        my_end = end;
      } else {
        tasks_[k - 1] = Task{&fn, k, begin, end};
      }
    }
    ++generation_;
  }
  wake_.notify_all();
  if (my_begin < my_end) fn(0, my_begin, my_end);
  std::unique_lock lock(mutex_);
  done_.wait(lock, [&] { return pending_ == 0; });
}

void ThreadPool::parallel_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  parallel_lanes(n, [&fn](std::size_t /*lane*/, std::size_t begin,
                          std::size_t end) { fn(begin, end); });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_chunks(n, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

ThreadPool& default_pool() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

}  // namespace psga::par
