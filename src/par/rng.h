// Deterministic, splittable random number generation.
//
// Every stochastic component in psga (engines, islands, cells, operators)
// draws from an Rng obtained by split()-ing a root seed, so a run is fully
// reproducible and — crucially for the parallel engines — *independent of
// the number of worker threads*: the stream assigned to island k or grid
// cell (x, y) is a pure function of the root seed and that identity.
//
// The generator is xoshiro256** (Blackman & Vigna, public domain
// reference), seeded through SplitMix64 as its authors recommend.
#pragma once

#include <cstdint>
#include <limits>

namespace psga::par {

/// SplitMix64 step; used for seeding and for cheap stream derivation.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** pseudo random generator with UniformRandomBitGenerator
/// interface plus the convenience draws the GA code needs.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x9d2c5680u) noexcept {
    reseed(seed);
  }

  constexpr void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    // The split key must also derive from the seed, so that child streams
    // of differently seeded parents differ.
    split_key_ = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0. Uses Lemire-style rejection
  /// to stay unbiased.
  constexpr std::uint64_t below(std::uint64_t n) noexcept {
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform int in [lo, hi] inclusive.
  constexpr int range(int lo, int hi) noexcept {
    return lo + static_cast<int>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box–Muller (single value, no caching: callers in
  /// psga draw rarely enough that simplicity wins over the spare deviate).
  double normal() noexcept;

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Derive an independent deterministic child stream. The child depends
  /// only on this stream's *identity path*, not on how many numbers were
  /// drawn: it hashes the original seed material kept aside for splitting.
  constexpr Rng split(std::uint64_t stream_id) const noexcept {
    std::uint64_t sm = split_key_ ^ (0xa0761d6478bd642fULL + stream_id);
    std::uint64_t a = splitmix64(sm);
    std::uint64_t b = splitmix64(sm);
    Rng child(a ^ (b << 1));
    child.split_key_ = b ^ (stream_id * 0xe7037ed1a0b428dbULL);
    return child;
  }

  /// Fisher–Yates shuffle of a random-access container.
  template <typename Container>
  constexpr void shuffle(Container& c) noexcept {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      auto tmp = c[i - 1];
      c[i - 1] = c[j];
      c[j] = tmp;
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  std::uint64_t split_key_ = 0x2545f4914f6cdd1dULL;
};

inline double Rng::normal() noexcept {
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  constexpr double two_pi = 6.283185307179586476925286766559;
  // std::sqrt/std::log are not constexpr-friendly pre-C++26; fine here.
  return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
         __builtin_cos(two_pi * u2);
}

}  // namespace psga::par
