// Analytic SIMT (GPU) throughput model — the CUDA substitute.
//
// The surveyed GPU results are throughput/speedup claims: AitZai [14]
// reports 15x more explored solutions on a Quadro 2000, Somani [16] ~9x on
// a Tesla C2075 (448 cores), Huang [24] 19x on a GTX285, Zajicek [25]
// 60-120x on a Tesla C1060. No GPU is available here, so E02/E07 pair the
// measured CPU thread-scaling curve with this first-order SIMT model to
// extrapolate to thousand-lane devices. The model is deliberately simple —
// Amdahl-style serial fraction, kernel-launch overhead per generation,
// warp divergence as a multiplicative efficiency — and is validated in
// tests against its own limiting cases (1 lane == serial; infinite lanes
// == overhead-bound).
#pragma once

#include <cstddef>

namespace psga::par {

struct SimtModelParams {
  int lanes = 448;               ///< parallel hardware lanes (CUDA cores)
  int warp_width = 32;           ///< lanes scheduled together
  double divergence = 0.85;      ///< fraction of warp lanes doing useful work
  double launch_overhead_us = 8; ///< per-kernel (per-generation) overhead
  double serial_fraction = 0.02; ///< host-side non-parallelizable share
  double lane_slowdown = 4.0;    ///< one GPU lane vs one CPU core on scalar code
};

class SimtModel {
 public:
  explicit SimtModel(SimtModelParams params) : params_(params) {}

  /// Predicted wall time (us) to evaluate `tasks` independent fitness
  /// evaluations, each costing `task_us` on one CPU core.
  double device_time_us(std::size_t tasks, double task_us) const;

  /// Serial CPU wall time (us) for the same work.
  double host_time_us(std::size_t tasks, double task_us) const {
    return static_cast<double>(tasks) * task_us;
  }

  /// Predicted device-vs-1-core speedup for one generation of `tasks`
  /// evaluations of cost `task_us` each.
  double speedup(std::size_t tasks, double task_us) const;

  const SimtModelParams& params() const { return params_; }

 private:
  SimtModelParams params_;
};

}  // namespace psga::par
