#include "src/par/cluster.h"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

namespace psga::par {

namespace {
// Tags >= kCollectiveTagBase are reserved for collectives.
constexpr int kCollectiveTagBase = 1 << 24;
}  // namespace

int Rank::size() const noexcept { return cluster_->size(); }

void Rank::send(int dest, Message msg) const {
  msg.source = id_;
  cluster_->deliver(dest, std::move(msg));
}

Message Rank::recv(int tag) const { return cluster_->take(id_, tag); }

bool Rank::try_recv(int tag, Message& msg) const {
  return cluster_->try_take(id_, tag, msg);
}

void Rank::barrier() const { cluster_->barrier_wait(); }

std::vector<Message> Rank::allgather(Message mine, int tag) const {
  const int internal_tag = kCollectiveTagBase + tag;
  mine.tag = internal_tag;
  for (int dest = 0; dest < size(); ++dest) {
    if (dest != id_) send(dest, mine);
  }
  std::vector<Message> out(static_cast<std::size_t>(size()));
  mine.source = id_;
  out[static_cast<std::size_t>(id_)] = std::move(mine);
  for (int received = 0; received + 1 < size(); ++received) {
    Message msg = recv(internal_tag);
    out[static_cast<std::size_t>(msg.source)] = std::move(msg);
  }
  return out;
}

Cluster::Cluster(int size) : size_(size), mailboxes_(static_cast<std::size_t>(size)) {
  if (size < 1) throw std::invalid_argument("Cluster size must be >= 1");
}

void Cluster::run(const std::function<void(Rank&)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &body] {
      Rank rank(this, r);
      body(rank);
    });
  }
  for (auto& t : threads) t.join();
}

void Cluster::deliver(int dest, Message msg) {
  auto& box = mailboxes_.at(static_cast<std::size_t>(dest));
  {
    std::lock_guard lock(box.mutex);
    box.queue.push_back(std::move(msg));
  }
  box.arrived.notify_all();
}

Message Cluster::take(int rank, int tag) {
  auto& box = mailboxes_.at(static_cast<std::size_t>(rank));
  std::unique_lock lock(box.mutex);
  for (;;) {
    const auto it = std::find_if(box.queue.begin(), box.queue.end(),
                                 [tag](const Message& m) { return m.tag == tag; });
    if (it != box.queue.end()) {
      Message msg = std::move(*it);
      box.queue.erase(it);
      return msg;
    }
    box.arrived.wait(lock);
  }
}

bool Cluster::try_take(int rank, int tag, Message& msg) {
  auto& box = mailboxes_.at(static_cast<std::size_t>(rank));
  std::lock_guard lock(box.mutex);
  const auto it = std::find_if(box.queue.begin(), box.queue.end(),
                               [tag](const Message& m) { return m.tag == tag; });
  if (it == box.queue.end()) return false;
  msg = std::move(*it);
  box.queue.erase(it);
  return true;
}

void Cluster::barrier_wait() {
  std::unique_lock lock(barrier_mutex_);
  const std::uint64_t epoch = barrier_epoch_;
  if (++barrier_arrived_ == size_) {
    barrier_arrived_ = 0;
    ++barrier_epoch_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock, [&] { return barrier_epoch_ != epoch; });
  }
}

}  // namespace psga::par
