// Fixed-size worker pool with a static-chunked parallel_for.
//
// This is the CPU carrier for the master-slave engine (Table III of the
// survey: fitness evaluation farmed to slaves), the cellular engine
// (Table IV: one lane per grid region) and the thread-backend island
// engine (Table V). Work is split into contiguous ranges, one per worker,
// so the mapping from loop index to worker is deterministic; combined with
// per-index Rng streams this keeps every engine's output independent of
// the worker count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace psga::par {

class ThreadPool {
 public:
  /// Creates `threads` workers; values < 1 are clamped to 1. A pool of one
  /// thread executes everything inline on the caller.
  explicit ThreadPool(int threads = -1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const noexcept { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for i in [0, n), blocking until all iterations finish.
  /// fn must be safe to call concurrently for distinct i. Exceptions from
  /// fn terminate (GA kernels are noexcept by design); keep kernels clean.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Runs fn(begin, end) once per contiguous chunk — cheaper when the body
  /// wants to hoist per-worker state out of the loop.
  void parallel_chunks(std::size_t n,
                       const std::function<void(std::size_t, std::size_t)>& fn);

  /// Like parallel_chunks, but also passes the lane index (0-based, lane 0
  /// is the calling thread). Lane k always receives the k-th static chunk
  /// [k*n/lanes, (k+1)*n/lanes), so per-lane state (e.g. an evaluation
  /// Workspace) is reused deterministically across calls.
  void parallel_lanes(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

 private:
  struct Task {
    const std::function<void(std::size_t, std::size_t, std::size_t)>* body =
        nullptr;
    std::size_t lane = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::vector<Task> tasks_;      // one slot per worker thread
  std::size_t generation_ = 0;   // bumped per parallel region
  std::size_t pending_ = 0;
  bool stop_ = false;
};

/// Library-wide default pool (sized from PSGA_THREADS). Engines take an
/// optional pool pointer and fall back to this.
ThreadPool& default_pool();

}  // namespace psga::par
