// Environment-variable configuration shared by tests, benches and examples.
#pragma once

#include <string>

namespace psga::par {

/// Number of worker threads requested via PSGA_THREADS, clamped to
/// [1, hardware_concurrency]; defaults to hardware_concurrency.
int default_thread_count();

/// Integer env var with fallback.
long env_long(const char* name, long fallback);

/// String env var with fallback.
std::string env_string(const char* name, const std::string& fallback);

/// Benchmark scale factor: PSGA_BENCH_SCALE = small|medium|large mapped to
/// 1, 4, 16. Experiment benches multiply population/generation budgets by
/// this so the default suite stays fast.
int bench_scale();

}  // namespace psga::par
