#include "src/par/env.h"

#include <cstdlib>
#include <thread>

namespace psga::par {

int default_thread_count() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const long requested = env_long("PSGA_THREADS", static_cast<long>(hw));
  if (requested < 1) return 1;
  if (requested > static_cast<long>(hw)) return static_cast<int>(hw);
  return static_cast<int>(requested);
}

long env_long(const char* name, long fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  return (end != nullptr && *end == '\0') ? value : fallback;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return (raw != nullptr && *raw != '\0') ? std::string(raw) : fallback;
}

int bench_scale() {
  const std::string scale = env_string("PSGA_BENCH_SCALE", "small");
  if (scale == "large") return 16;
  if (scale == "medium") return 4;
  return 1;
}

}  // namespace psga::par
