#include "src/par/simt_model.h"

#include <algorithm>
#include <cmath>

namespace psga::par {

double SimtModel::device_time_us(std::size_t tasks, double task_us) const {
  if (tasks == 0) return 0.0;
  const auto& p = params_;
  // Tasks are scheduled warp-by-warp; a warp retires at the pace of its
  // slowest lane and only `divergence` of its lanes do useful work.
  const double effective_lanes =
      std::max(1.0, static_cast<double>(p.lanes) * p.divergence);
  const double waves =
      std::ceil(static_cast<double>(tasks) / effective_lanes);
  const double lane_task_us = task_us * p.lane_slowdown;
  const double parallel_us = waves * lane_task_us;
  const double serial_us =
      p.serial_fraction * static_cast<double>(tasks) * task_us;
  return parallel_us + serial_us + p.launch_overhead_us;
}

double SimtModel::speedup(std::size_t tasks, double task_us) const {
  const double device = device_time_us(tasks, task_us);
  if (device <= 0.0) return 1.0;
  return host_time_us(tasks, task_us) / device;
}

}  // namespace psga::par
