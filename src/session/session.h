// Online replanning sessions — the serving-side face of the dynamic
// scheduling model (Section II, Tang et al. [9]). A Session owns a live
// job-shop instance plus the GA population from its last solve and
// answers a stream of disruption events (job arrival, machine breakdown,
// due-date change) by
//   1. rebasing the instance: the event mutates the instance/downtime
//      state, then sched::split_at freezes the already-dispatched prefix
//      of the current plan (the same freeze rule simulate_dynamic uses);
//   2. warm-starting: the previous population is repaired into the new
//      suffix genome space (keep-feasible-prefix repair) and injected
//      through Engine::seed_population, topped up with fresh immigrants;
//   3. re-solving the suffix under a deterministic per-event budget with
//      the wall-clock SLO as a safety cap.
//
// Anytime invariant: the session always holds a legal full plan. The
// event's baseline (the current plan right-shifted into the new state) is
// computed *before* the solve, and the solved suffix is adopted only when
// it is at least as good — so best_objective() never regresses past what
// right-shift repair guarantees, even if the solver is stopped early.
//
// Determinism: every replan uses a generation/evaluation budget and a
// per-event seed derived from (session seed, event index); the transcript
// records only deterministic fields (no timing), so the same event trace
// and seed produce a bit-identical transcript in-process and through
// psgad. Wall-clock SLO caps are a safety net — when a budget fits its
// SLO (the operating point the bench gate pins), they never fire and
// determinism is exact.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/exp/json.h"
#include "src/ga/eval_cache.h"
#include "src/ga/genome.h"
#include "src/ga/solver.h"
#include "src/ga/stop.h"
#include "src/obs/metrics.h"
#include "src/par/rng.h"
#include "src/par/thread_pool.h"
#include "src/sched/dynamic.h"
#include "src/sched/job_shop.h"

namespace psga::session {

enum class EventKind {
  kArrival,    ///< a new job (its machine route) enters the shop
  kBreakdown,  ///< a machine is down for [time, time + duration)
  kDueDate,    ///< an existing job's due date changes
};

std::string to_string(EventKind kind);
/// Inverse of to_string; throws std::invalid_argument on unknown names.
EventKind event_kind_from_string(const std::string& text);

/// One disruption. Which fields matter depends on `kind`:
///   kArrival   — route (required), due (optional)
///   kBreakdown — machine, duration
///   kDueDate   — job, due
struct Event {
  EventKind kind = EventKind::kBreakdown;
  sched::Time time = 0;  ///< disruption instant; non-decreasing per session

  std::vector<sched::JsOperation> route;  ///< kArrival: the new job's route
  sched::Time due = sched::JobAttributes::kNoDueDate;  ///< kArrival/kDueDate
  int machine = 0;                        ///< kBreakdown
  sched::Time duration = 0;               ///< kBreakdown: downtime length
  int job = -1;                           ///< kDueDate

  /// Parses the psgactl token format, e.g.
  ///   "kind=breakdown time=25 machine=2 duration=10"
  ///   "kind=arrival time=40 route=0:3,2:5,1:4 due=120"
  ///   "kind=due time=60 job=3 due=95"
  /// Throws std::invalid_argument naming the offending token.
  static Event parse(const std::string& text);
  std::string to_string() const;  ///< canonical tokens; parse round-trips

  /// Flat JSON members (kind/time/route/...), merged into protocol
  /// requests by the service layer.
  exp::Json to_json() const;
  static Event from_json(const exp::Json& json);
};

/// Population-transfer policy applied at each replan.
struct WarmStart {
  bool enabled = true;
  /// Fraction of the population left to the engine's own random
  /// initialization (fresh immigrants); the carried survivors fill
  /// (1 - immigrant_fraction) of the slots at most.
  double immigrant_fraction = 0.25;
  int max_carried = 0;  ///< extra cap on carried genomes; 0 = none
};

struct SessionConfig {
  /// SolverSpec tokens for the per-event engine; the per-event seed and
  /// shared cache are overridden by the session.
  std::string solver = "engine=simple pop=64";
  /// Deterministic per-event budget (the primary stop).
  int replan_generations = 40;
  long long replan_evaluations = 0;  ///< 0 = no evaluation budget
  /// Per-event wall-clock SLO in seconds (0 = none). Folded into the
  /// replan StopCondition as a safety cap; EventReply::slo_met reports
  /// whether the event stayed inside it.
  double slo_seconds = 0.0;
  WarmStart warm;
  std::uint64_t seed = 1;
  /// Cross-replan/cross-session objective cache (SessionManager injects
  /// its shared store here). Safe to share: each replan namespaces its
  /// keys with a distinct cache salt (Evaluator::set_hash_salt).
  ga::EvalCachePtr shared_cache;
  obs::RegistryPtr metrics;  ///< session.* metrics land here (may be null)
};

/// What one event (or the opening solve) produced. All fields except
/// `seconds` and `slo_met` are deterministic and enter the transcript.
struct EventReply {
  long long session = 0;
  int index = 0;        ///< 0 = the opening solve, then 1, 2, ...
  std::string kind;     ///< "open" or the event kind
  sched::Time time = 0;
  std::size_t frozen = 0;     ///< genes frozen by split_at
  std::size_t remaining = 0;  ///< genes re-optimized
  std::size_t carried = 0;    ///< warm-start genomes injected
  double baseline = 0.0;  ///< right-shift repair objective (pre-solve)
  double best = 0.0;      ///< adopted objective (<= baseline)
  bool adopted = false;   ///< solver beat (or matched) the baseline
  int generations = 0;
  long long evaluations = 0;
  std::uint64_t plan_hash = 0;  ///< genome_hash of the full plan sequence

  double seconds = 0.0;  ///< wall clock of the replan (NOT in transcript)
  bool slo_met = true;

  /// One transcript/protocol line. `include_timing` adds seconds/slo_met
  /// (protocol replies); the transcript always omits them.
  exp::Json to_json(bool include_timing) const;
};

/// One online replanning session. Methods are internally locked: a replan
/// in flight does not block best_objective()/plan() readers for its whole
/// duration — they see the last committed answer.
class Session {
 public:
  Session(sched::JobShopInstance inst, SessionConfig config,
          long long id = 0);

  /// The opening solve (event index 0): optimizes the full operation
  /// multiset from scratch and establishes the first plan.
  EventReply open();

  /// Applies one event under the config's deterministic budget.
  EventReply apply(const Event& event);
  /// Same, with an explicit per-event stop (tests pin targets this way).
  EventReply apply(const Event& event, const ga::StopCondition& stop);

  long long id() const { return id_; }
  double best_objective() const;
  /// The current full plan: frozen prefix + best known suffix.
  std::vector<int> plan() const;
  sched::Time now() const;
  int events() const;  ///< replies so far, including the opening solve
  std::uint64_t plan_hash() const;

  std::vector<EventReply> transcript() const;
  /// JSONL, one deterministic line per reply (timing excluded).
  std::string transcript_text() const;
  /// FNV-1a 64 over transcript_text() — the session identity the CI leg
  /// and the in-process-vs-daemon tests compare.
  std::uint64_t transcript_hash() const;

 private:
  EventReply replan_locked(const std::string& kind, sched::Time time,
                           const ga::StopCondition& stop,
                           std::unique_lock<std::mutex>& lock);
  /// Stamps plan hash + timing, records metrics, appends to the
  /// transcript. Caller holds the mutex.
  void finish_reply(EventReply& reply,
                    const std::chrono::steady_clock::time_point& start);
  ga::StopCondition default_stop() const;

  const long long id_;
  SessionConfig config_;
  ga::SolverSpec solver_spec_;  ///< parsed once from config_.solver

  mutable std::mutex mutex_;
  sched::JobShopInstance inst_;
  std::vector<sched::Downtime> downtimes_;
  std::vector<int> frozen_;
  std::vector<int> remaining_;  ///< best known suffix (current plan's tail)
  sched::Time now_ = 0;
  double best_ = 0.0;
  std::vector<ga::Genome> last_population_;  ///< previous replan, best-first
  std::vector<EventReply> transcript_;
  /// Serializes replans (the mutex drops while the engine runs, so
  /// readers stay live); a second apply() waits here for its turn.
  bool replanning_ = false;
  std::condition_variable replan_done_;

  /// Engines run on a private single lane, mirroring the daemon's
  /// per-job pools: identical execution shape in-process and in psgad.
  par::ThreadPool pool_{1};

  // Resolved metric handles (null when config_.metrics is null).
  obs::Counter* replans_ = nullptr;
  obs::Counter* slo_miss_ = nullptr;
  obs::Histogram* event_latency_ns_ = nullptr;
};

/// FNV-1a 64-bit (the transcript hash; exposed for the CI leg's tests).
std::uint64_t fnv1a(const std::string& text);

/// Deterministic seeded event trace for benches and CI smoke: `count`
/// events at strictly increasing times within the instance's rough
/// makespan horizon, cycling arrival/breakdown/due-date kinds with
/// instance-shaped routes and durations.
std::vector<Event> random_trace(const sched::JobShopInstance& inst, int count,
                                std::uint64_t seed);

}  // namespace psga::session
