#include "src/session/session.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace psga::session {

namespace {

/// Per-event solver seed: independent of the event's content, so a
/// different event at the same index draws a different search only
/// through the problem, never through correlated randomness.
std::uint64_t event_seed(std::uint64_t session_seed, int index) {
  std::uint64_t sm =
      session_seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(index + 1));
  return par::splitmix64(sm);
}

/// Cache-key namespace for one replan: distinct per (session, event), so
/// a store shared across sessions keeps each objective landscape apart.
std::uint64_t replan_salt(long long session_id, int index) {
  std::uint64_t sm = static_cast<std::uint64_t>(session_id + 1) *
                         0xda942042e4dd58b5ULL ^
                     static_cast<std::uint64_t>(index + 1);
  const std::uint64_t salt = par::splitmix64(sm);
  return salt != 0 ? salt : 1;
}

[[noreturn]] void event_error(const std::string& message) {
  throw std::invalid_argument("session::Event: " + message);
}

long long parse_ll(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const long long parsed = std::stoll(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    event_error("token '" + key + "=" + value + "' is not an integer");
  }
}

std::vector<sched::JsOperation> parse_route(const std::string& text) {
  std::vector<sched::JsOperation> route;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string part = text.substr(start, comma - start);
    const std::size_t colon = part.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= part.size()) {
      event_error("route entry '" + part + "' must be machine:duration");
    }
    sched::JsOperation op;
    op.machine = static_cast<int>(parse_ll("route", part.substr(0, colon)));
    op.duration = parse_ll("route", part.substr(colon + 1));
    route.push_back(op);
    start = comma + 1;
  }
  if (route.empty()) event_error("route must list at least one operation");
  return route;
}

std::string route_to_string(const std::vector<sched::JsOperation>& route) {
  std::ostringstream out;
  for (std::size_t i = 0; i < route.size(); ++i) {
    if (i > 0) out << ',';
    out << route[i].machine << ':' << route[i].duration;
  }
  return out.str();
}

/// Keep-feasible-prefix repair: project one previous-population genome
/// into the new remaining multiset — keep genes still owed (in their old
/// relative order), then append the new multiset's leftovers in ascending
/// job order (new arrivals land at the tail, a legal default position).
ga::Genome repair_genome(const ga::Genome& old, std::vector<int> want) {
  const int jobs = static_cast<int>(want.size());
  ga::Genome repaired;
  repaired.seq.reserve(old.seq.size());
  for (int gene : old.seq) {
    if (gene >= 0 && gene < jobs && want[static_cast<std::size_t>(gene)] > 0) {
      repaired.seq.push_back(gene);
      --want[static_cast<std::size_t>(gene)];
    }
  }
  for (int job = 0; job < jobs; ++job) {
    for (int c = 0; c < want[static_cast<std::size_t>(job)]; ++c) {
      repaired.seq.push_back(job);
    }
  }
  return repaired;
}

}  // namespace

std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kArrival: return "arrival";
    case EventKind::kBreakdown: return "breakdown";
    case EventKind::kDueDate: return "due";
  }
  return "breakdown";
}

EventKind event_kind_from_string(const std::string& text) {
  if (text == "arrival") return EventKind::kArrival;
  if (text == "breakdown") return EventKind::kBreakdown;
  if (text == "due" || text == "due-date") return EventKind::kDueDate;
  event_error("unknown kind '" + text + "' (expected arrival|breakdown|due)");
}

Event Event::parse(const std::string& text) {
  Event event;
  bool saw_kind = false;
  std::istringstream stream(text);
  std::string token;
  while (stream >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
      event_error("token '" + token + "' must be key=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "kind") {
      event.kind = event_kind_from_string(value);
      saw_kind = true;
    } else if (key == "time") {
      event.time = parse_ll(key, value);
    } else if (key == "route") {
      event.route = parse_route(value);
    } else if (key == "due") {
      event.due = parse_ll(key, value);
    } else if (key == "machine") {
      event.machine = static_cast<int>(parse_ll(key, value));
    } else if (key == "duration") {
      event.duration = parse_ll(key, value);
    } else if (key == "job") {
      event.job = static_cast<int>(parse_ll(key, value));
    } else {
      event_error("unknown key '" + key + "'");
    }
  }
  if (!saw_kind) event_error("missing kind= token");
  return event;
}

std::string Event::to_string() const {
  std::ostringstream out;
  out << "kind=" << session::to_string(kind) << " time=" << time;
  switch (kind) {
    case EventKind::kArrival:
      out << " route=" << route_to_string(route);
      if (due != sched::JobAttributes::kNoDueDate) out << " due=" << due;
      break;
    case EventKind::kBreakdown:
      out << " machine=" << machine << " duration=" << duration;
      break;
    case EventKind::kDueDate:
      out << " job=" << job << " due=" << due;
      break;
  }
  return out.str();
}

exp::Json Event::to_json() const {
  exp::Json json = exp::Json::object();
  json.set("kind", exp::Json::string(session::to_string(kind)));
  json.set("time", exp::Json::integer(time));
  switch (kind) {
    case EventKind::kArrival: {
      exp::Json ops = exp::Json::array();
      for (const sched::JsOperation& op : route) {
        ops.push(exp::Json::array()
                     .push(exp::Json::integer(op.machine))
                     .push(exp::Json::integer(op.duration)));
      }
      json.set("route", std::move(ops));
      if (due != sched::JobAttributes::kNoDueDate) {
        json.set("due", exp::Json::integer(due));
      }
      break;
    }
    case EventKind::kBreakdown:
      json.set("machine", exp::Json::integer(machine));
      json.set("duration", exp::Json::integer(duration));
      break;
    case EventKind::kDueDate:
      json.set("job", exp::Json::integer(job));
      json.set("due", exp::Json::integer(due));
      break;
  }
  return json;
}

Event Event::from_json(const exp::Json& json) {
  Event event;
  const exp::Json* kind = json.find("kind");
  if (kind == nullptr) event_error("missing 'kind' member");
  event.kind = event_kind_from_string(kind->as_string());
  if (const exp::Json* time = json.find("time")) event.time = time->as_i64();
  if (const exp::Json* route = json.find("route")) {
    for (const exp::Json& entry : route->items()) {
      if (entry.items().size() != 2) {
        event_error("route entries must be [machine, duration] pairs");
      }
      sched::JsOperation op;
      op.machine = static_cast<int>(entry.items()[0].as_i64());
      op.duration = entry.items()[1].as_i64();
      event.route.push_back(op);
    }
  }
  if (const exp::Json* due = json.find("due")) event.due = due->as_i64();
  if (const exp::Json* machine = json.find("machine")) {
    event.machine = static_cast<int>(machine->as_i64());
  }
  if (const exp::Json* duration = json.find("duration")) {
    event.duration = duration->as_i64();
  }
  if (const exp::Json* job = json.find("job")) {
    event.job = static_cast<int>(job->as_i64());
  }
  return event;
}

exp::Json EventReply::to_json(bool include_timing) const {
  exp::Json json = exp::Json::object();
  json.set("index", exp::Json::integer(index));
  json.set("kind", exp::Json::string(kind));
  json.set("time", exp::Json::integer(time));
  json.set("frozen", exp::Json::uinteger(frozen));
  json.set("remaining", exp::Json::uinteger(remaining));
  json.set("carried", exp::Json::uinteger(carried));
  json.set("baseline", exp::Json::number(baseline));
  json.set("best", exp::Json::number(best));
  json.set("adopted", exp::Json::boolean(adopted));
  json.set("generations", exp::Json::integer(generations));
  json.set("evaluations", exp::Json::integer(evaluations));
  json.set("plan_hash", exp::Json::uinteger(plan_hash));
  if (include_timing) {
    json.set("seconds", exp::Json::number(seconds));
    json.set("slo_met", exp::Json::boolean(slo_met));
  }
  return json;
}

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

Session::Session(sched::JobShopInstance inst, SessionConfig config,
                 long long id)
    : id_(id),
      config_(std::move(config)),
      solver_spec_(ga::SolverSpec::parse(config_.solver)),
      inst_(std::move(inst)) {
  // The canonical fresh plan: job 0's ops, then job 1's, ... — legal for
  // any job shop, and the deterministic starting point open() improves.
  remaining_.reserve(static_cast<std::size_t>(inst_.total_ops()));
  for (int job = 0; job < inst_.jobs; ++job) {
    for (int op = 0; op < inst_.ops_of(job); ++op) remaining_.push_back(job);
  }
  best_ = static_cast<double>(
      sched::realized_makespan_with_prefix(inst_, frozen_, remaining_,
                                           downtimes_));
  if (config_.metrics != nullptr) {
    replans_ = &config_.metrics->counter("session.replans");
    slo_miss_ = &config_.metrics->counter("session.slo_miss");
    event_latency_ns_ =
        &config_.metrics->histogram("session.event_latency_ns");
  }
}

ga::StopCondition Session::default_stop() const {
  ga::StopCondition stop;
  stop.max_generations = config_.replan_generations;
  stop.max_evaluations = config_.replan_evaluations;
  stop.max_seconds = config_.slo_seconds;  // wall-clock safety cap
  return stop;
}

EventReply Session::open() {
  std::unique_lock<std::mutex> lock(mutex_);
  replan_done_.wait(lock, [this] { return !replanning_; });
  return replan_locked("open", 0, default_stop(), lock);
}

EventReply Session::apply(const Event& event) {
  return apply(event, default_stop());
}

EventReply Session::apply(const Event& event, const ga::StopCondition& stop) {
  std::unique_lock<std::mutex> lock(mutex_);
  replan_done_.wait(lock, [this] { return !replanning_; });
  if (transcript_.empty()) {
    throw std::logic_error("session::Session: apply() before open()");
  }
  if (event.time < now_) {
    throw std::invalid_argument(
        "session::Session: event time " + std::to_string(event.time) +
        " precedes session clock " + std::to_string(now_));
  }

  // 1. Mutate the instance/downtime state.
  int arrival_job = -1;
  switch (event.kind) {
    case EventKind::kBreakdown: {
      if (event.machine < 0 || event.machine >= inst_.machines) {
        event_error("breakdown machine out of range");
      }
      if (event.duration <= 0) event_error("breakdown duration must be > 0");
      downtimes_.push_back(sched::Downtime{
          event.machine, event.time, event.time + event.duration});
      break;
    }
    case EventKind::kArrival: {
      if (event.route.empty()) event_error("arrival requires a route");
      for (const sched::JsOperation& op : event.route) {
        if (op.machine < 0 || op.machine >= inst_.machines) {
          event_error("arrival route machine out of range");
        }
        if (op.duration <= 0) event_error("arrival durations must be > 0");
      }
      arrival_job = inst_.jobs;
      inst_.ops.push_back(event.route);
      inst_.jobs += 1;
      inst_.attrs.release.resize(static_cast<std::size_t>(inst_.jobs), 0);
      inst_.attrs.release.back() = event.time;
      if (event.due != sched::JobAttributes::kNoDueDate) {
        inst_.attrs.due.resize(static_cast<std::size_t>(inst_.jobs),
                               sched::JobAttributes::kNoDueDate);
        inst_.attrs.due.back() = event.due;
      }
      break;
    }
    case EventKind::kDueDate: {
      if (event.job < 0 || event.job >= inst_.jobs) {
        event_error("due-date job out of range");
      }
      inst_.attrs.due.resize(static_cast<std::size_t>(inst_.jobs),
                             sched::JobAttributes::kNoDueDate);
      inst_.attrs.due[static_cast<std::size_t>(event.job)] = event.due;
      break;
    }
  }
  now_ = event.time;

  // 2. Rebase: freeze what already started (the simulate_dynamic rule),
  // keep the rest re-optimizable; a new arrival's genes join the tail.
  std::vector<int> full;
  full.reserve(frozen_.size() + remaining_.size());
  full.insert(full.end(), frozen_.begin(), frozen_.end());
  full.insert(full.end(), remaining_.begin(), remaining_.end());
  sched::ReplanContext context =
      sched::split_at(inst_, full, downtimes_, now_);
  frozen_ = std::move(context.frozen_prefix);
  remaining_ = std::move(context.remaining);
  if (arrival_job >= 0) {
    for (int op = 0; op < inst_.ops_of(arrival_job); ++op) {
      remaining_.push_back(arrival_job);
    }
  }

  // 3. Re-solve the suffix.
  return replan_locked(session::to_string(event.kind), event.time, stop, lock);
}

EventReply Session::replan_locked(const std::string& kind, sched::Time time,
                                  const ga::StopCondition& stop,
                                  std::unique_lock<std::mutex>& lock) {
  const auto t0 = std::chrono::steady_clock::now();
  const int index = static_cast<int>(transcript_.size());

  EventReply reply;
  reply.session = id_;
  reply.index = index;
  reply.kind = kind;
  reply.time = time;
  reply.frozen = frozen_.size();
  reply.remaining = remaining_.size();

  // Anytime answer, pre-solve: the current plan right-shifted into the
  // new state is legal, and its objective bounds whatever we adopt.
  const double baseline = static_cast<double>(
      sched::realized_makespan_with_prefix(inst_, frozen_, remaining_,
                                           downtimes_));
  reply.baseline = baseline;
  best_ = baseline;

  if (remaining_.empty()) {
    // Everything is already dispatched — nothing to re-optimize.
    reply.best = baseline;
    finish_reply(reply, t0);
    return reply;
  }

  // Snapshot the state the solve runs against, then release the lock so
  // readers stay live while the engine works (replans themselves stay
  // serialized: apply() holds the session's event order by construction,
  // and the manager never dispatches two events of one session at once).
  auto snapshot = std::make_shared<const sched::JobShopInstance>(inst_);
  std::vector<int> frozen = frozen_;
  std::vector<int> remaining = remaining_;
  std::vector<sched::Downtime> downtimes = downtimes_;
  std::vector<ga::Genome> previous = last_population_;

  ga::SolverSpec spec = solver_spec_;
  spec.seed = event_seed(config_.seed, index);
  spec.shared_cache = config_.shared_cache;
  spec.cache_salt = replan_salt(id_, index);

  replanning_ = true;
  lock.unlock();

  ga::RunResult run;
  ga::PopulationSection population;
  std::size_t carried = 0;
  try {
    auto problem = std::make_shared<ga::DynamicSuffixProblem>(
        snapshot, std::move(frozen), remaining, std::move(downtimes));
    ga::Solver solver = ga::Solver::build(spec, problem, &pool_);

    if (config_.warm.enabled && !previous.empty()) {
      std::vector<int> want(static_cast<std::size_t>(snapshot->jobs), 0);
      for (int job : remaining) ++want[static_cast<std::size_t>(job)];
      std::size_t cap = static_cast<std::size_t>(
          (1.0 - config_.warm.immigrant_fraction) *
          static_cast<double>(previous.size()));
      if (config_.warm.max_carried > 0) {
        cap = std::min(cap,
                       static_cast<std::size_t>(config_.warm.max_carried));
      }
      std::vector<ga::Genome> seeds;
      seeds.reserve(std::min(cap, previous.size()));
      for (const ga::Genome& genome : previous) {
        if (seeds.size() >= cap) break;
        seeds.push_back(repair_genome(genome, want));
      }
      carried = seeds.size();
      if (!solver.engine().seed_population(std::move(seeds))) {
        carried = 0;  // engine cold-starts (quantum/cluster)
      }
    }

    run = solver.run(stop);
    population = solver.engine().population_snapshot();
  } catch (...) {
    lock.lock();
    replanning_ = false;
    replan_done_.notify_all();
    throw;
  }

  lock.lock();
  replanning_ = false;
  last_population_ = std::move(population.genomes);
  reply.carried = carried;
  reply.generations = run.generations;
  reply.evaluations = run.evaluations;
  if (run.best_objective <= baseline &&
      run.best.seq.size() == remaining_.size()) {
    remaining_ = run.best.seq;
    best_ = run.best_objective;
    reply.adopted = true;
  }
  reply.best = best_;
  finish_reply(reply, t0);
  replan_done_.notify_all();
  return reply;
}

void Session::finish_reply(
    EventReply& reply,
    const std::chrono::steady_clock::time_point& start) {
  ga::Genome plan_genome;
  plan_genome.seq.reserve(frozen_.size() + remaining_.size());
  plan_genome.seq.insert(plan_genome.seq.end(), frozen_.begin(),
                         frozen_.end());
  plan_genome.seq.insert(plan_genome.seq.end(), remaining_.begin(),
                         remaining_.end());
  reply.plan_hash = ga::genome_hash(plan_genome);

  const auto elapsed = std::chrono::steady_clock::now() - start;
  reply.seconds =
      std::chrono::duration<double>(elapsed).count();
  reply.slo_met =
      config_.slo_seconds <= 0.0 || reply.seconds <= config_.slo_seconds;

  if (replans_ != nullptr && reply.index > 0) replans_->add();
  if (event_latency_ns_ != nullptr) {
    event_latency_ns_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }
  if (slo_miss_ != nullptr && !reply.slo_met) slo_miss_->add();

  transcript_.push_back(reply);
}

double Session::best_objective() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return best_;
}

std::vector<int> Session::plan() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> full;
  full.reserve(frozen_.size() + remaining_.size());
  full.insert(full.end(), frozen_.begin(), frozen_.end());
  full.insert(full.end(), remaining_.begin(), remaining_.end());
  return full;
}

sched::Time Session::now() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return now_;
}

int Session::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(transcript_.size());
}

std::uint64_t Session::plan_hash() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return transcript_.empty() ? 0 : transcript_.back().plan_hash;
}

std::vector<EventReply> Session::transcript() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return transcript_;
}

std::string Session::transcript_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string text;
  for (const EventReply& reply : transcript_) {
    text += reply.to_json(/*include_timing=*/false).dump();
    text += '\n';
  }
  return text;
}

std::uint64_t Session::transcript_hash() const {
  return fnv1a(transcript_text());
}

std::vector<Event> random_trace(const sched::JobShopInstance& inst, int count,
                                std::uint64_t seed) {
  par::Rng rng(seed);
  // Rough horizon: average machine load; events land inside it so they
  // actually interact with the schedule.
  sched::Time work = 0;
  sched::Time dur_lo = 0;
  sched::Time dur_hi = 0;
  for (const auto& route : inst.ops) {
    for (const sched::JsOperation& op : route) {
      work += op.duration;
      if (dur_lo == 0 || op.duration < dur_lo) dur_lo = op.duration;
      if (op.duration > dur_hi) dur_hi = op.duration;
    }
  }
  if (dur_lo <= 0) dur_lo = 1;
  if (dur_hi < dur_lo) dur_hi = dur_lo;
  const sched::Time horizon =
      std::max<sched::Time>(1, work / std::max(1, inst.machines));
  const int step = std::max(1, static_cast<int>(horizon) / (count + 1));

  std::vector<Event> trace;
  trace.reserve(static_cast<std::size_t>(count));
  sched::Time clock = 0;
  for (int i = 0; i < count; ++i) {
    clock += rng.range(1, step);
    Event event;
    event.time = clock;
    switch (rng.below(3)) {
      case 0: {
        event.kind = EventKind::kArrival;
        const int length = rng.range(2, std::max(2, inst.machines));
        for (int op = 0; op < length; ++op) {
          sched::JsOperation js;
          js.machine = static_cast<int>(
              rng.below(static_cast<std::uint64_t>(inst.machines)));
          js.duration = rng.range(static_cast<int>(dur_lo),
                                  static_cast<int>(dur_hi));
          event.route.push_back(js);
        }
        break;
      }
      case 1: {
        event.kind = EventKind::kBreakdown;
        event.machine = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(inst.machines)));
        event.duration =
            rng.range(std::max(1, static_cast<int>(horizon) / 20),
                      std::max(2, static_cast<int>(horizon) / 8));
        break;
      }
      default: {
        event.kind = EventKind::kDueDate;
        event.job =
            static_cast<int>(rng.below(static_cast<std::uint64_t>(inst.jobs)));
        event.due = clock + rng.range(static_cast<int>(horizon) / 4 + 1,
                                      static_cast<int>(horizon) + 1);
        break;
      }
    }
    trace.push_back(std::move(event));
  }
  return trace;
}

}  // namespace psga::session
