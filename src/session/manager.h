// Multiplexes many concurrent replanning sessions over a shared worker
// pool and one shared (salted) objective cache.
//
// Ordering and fairness: every session owns a FIFO event queue; at most
// one worker processes a given session at a time (so per-session event
// order — and therefore the transcript — is exactly the submission
// order), and a round-robin cursor picks the next runnable session, so a
// chatty session cannot starve the others. Because each Session is
// internally deterministic, the manager's scheduling freedom never leaks
// into any transcript.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/session/session.h"

namespace psga::session {

struct SessionManagerConfig {
  int workers = 2;  ///< event-processing threads (clamped to >= 1)
  /// The shared objective store handed to every session (kOff = none).
  /// Safe across sessions: replans namespace their keys (cache salt).
  ga::EvalCacheConfig cache;
  obs::RegistryPtr metrics;  ///< ensured when null
};

class SessionManager {
 public:
  explicit SessionManager(SessionManagerConfig config = {});
  /// Drains the queues (every accepted event still gets its replan) and
  /// joins the workers.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Creates a session, runs its opening solve inline (the caller needs
  /// the first answer anyway) and returns its id. The manager injects
  /// its shared cache and metrics registry into `config`.
  long long open(sched::JobShopInstance inst, SessionConfig config);

  /// Enqueues an event (FIFO within the session); returns a ticket.
  /// Throws std::invalid_argument for unknown/closed sessions.
  long long submit(long long session, Event event);

  /// Blocks until `ticket` has been processed and returns its reply.
  /// Rethrows the event's error if its replan threw.
  EventReply wait(long long session, long long ticket);

  /// submit() + wait(): what the service layer calls per connection.
  EventReply apply(long long session, const Event& event);

  struct BestView {
    double best = 0.0;
    sched::Time now = 0;
    int events = 0;
    std::uint64_t plan_hash = 0;
  };
  /// The session's current committed answer (live during replans).
  BestView best(long long session) const;

  struct CloseResult {
    int events = 0;
    std::string transcript;      ///< deterministic JSONL
    std::uint64_t transcript_hash = 0;
  };
  /// Waits for the session's queued events, then removes it.
  CloseResult close(long long session);

  int active() const;  ///< open sessions
  /// Blocks until every queued event of every session is processed.
  void drain();

  const obs::RegistryPtr& metrics() const { return metrics_; }

 private:
  struct Entry {
    std::unique_ptr<Session> session;
    std::deque<std::pair<long long, Event>> queue;
    std::map<long long, EventReply> done;
    /// Events whose replan threw: ticket -> error message.
    std::map<long long, std::string> failed;
    long long next_ticket = 1;
    bool busy = false;     ///< a worker is inside session->apply()
    bool closing = false;  ///< no new submissions
  };

  void worker_loop();
  /// Round-robin scan for a session with work and no worker; returns
  /// nullptr when none. Caller holds mutex_.
  Entry* next_runnable(long long* id_out);
  Entry& entry_or_throw(long long session);
  const Entry& entry_or_throw(long long session) const;

  SessionManagerConfig config_;
  ga::EvalCachePtr cache_;
  obs::RegistryPtr metrics_;
  obs::Gauge* active_ = nullptr;
  obs::Counter* opened_ = nullptr;
  obs::Counter* closed_ = nullptr;
  obs::Counter* events_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable work_;  ///< new work / shutdown
  std::condition_variable done_;  ///< an event finished / queue drained
  std::map<long long, Entry> sessions_;
  long long next_id_ = 1;
  long long cursor_ = 0;  ///< round-robin fairness cursor (session id)
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace psga::session
