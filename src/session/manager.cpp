#include "src/session/manager.h"

#include <stdexcept>
#include <utility>

namespace psga::session {

SessionManager::SessionManager(SessionManagerConfig config)
    : config_(std::move(config)) {
  if (config_.workers < 1) config_.workers = 1;
  cache_ = ga::EvalCache::make(config_.cache);
  metrics_ = obs::ensure_registry(config_.metrics);
  active_ = &metrics_->gauge("session.active");
  opened_ = &metrics_->counter("session.opened");
  closed_ = &metrics_->counter("session.closed");
  events_ = &metrics_->counter("session.events");
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SessionManager::~SessionManager() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

long long SessionManager::open(sched::JobShopInstance inst,
                               SessionConfig config) {
  if (config.shared_cache == nullptr) config.shared_cache = cache_;
  if (config.metrics == nullptr) config.metrics = metrics_;
  long long id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;
  }
  // Built and opened before registration, so no worker can see a
  // half-initialized session.
  auto session = std::make_unique<Session>(std::move(inst), std::move(config),
                                           id);
  session->open();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sessions_[id].session = std::move(session);
  }
  opened_->add();
  active_->add(1);
  return id;
}

long long SessionManager::submit(long long session, Event event) {
  long long ticket = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Entry& entry = entry_or_throw(session);
    ticket = entry.next_ticket++;
    entry.queue.emplace_back(ticket, std::move(event));
  }
  events_->add();
  work_.notify_one();
  return ticket;
}

EventReply SessionManager::wait(long long session, long long ticket) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = sessions_.find(session);
    if (it == sessions_.end()) {
      throw std::runtime_error("session " + std::to_string(session) +
                               " closed while waiting for ticket " +
                               std::to_string(ticket));
    }
    Entry& entry = it->second;
    auto done = entry.done.find(ticket);
    if (done != entry.done.end()) {
      EventReply reply = std::move(done->second);
      entry.done.erase(done);
      return reply;
    }
    auto failed = entry.failed.find(ticket);
    if (failed != entry.failed.end()) {
      std::string message = std::move(failed->second);
      entry.failed.erase(failed);
      throw std::runtime_error(message);
    }
    done_.wait(lock);
  }
}

EventReply SessionManager::apply(long long session, const Event& event) {
  return wait(session, submit(session, event));
}

SessionManager::BestView SessionManager::best(long long session) const {
  const Session* live = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live = entry_or_throw(session).session.get();
  }
  // Safe without the manager lock: close() waits for the queue to drain
  // before erasing, and Session accessors are internally locked.
  BestView view;
  view.best = live->best_objective();
  view.now = live->now();
  view.events = live->events();
  view.plan_hash = live->plan_hash();
  return view;
}

SessionManager::CloseResult SessionManager::close(long long session) {
  std::unique_lock<std::mutex> lock(mutex_);
  Entry& entry = entry_or_throw(session);
  if (entry.closing) {
    throw std::invalid_argument("session " + std::to_string(session) +
                                " is already closing");
  }
  entry.closing = true;
  done_.wait(lock, [&entry] { return entry.queue.empty() && !entry.busy; });
  CloseResult result;
  result.events = entry.session->events();
  result.transcript = entry.session->transcript_text();
  result.transcript_hash = entry.session->transcript_hash();
  sessions_.erase(session);
  lock.unlock();
  closed_->add();
  active_->add(-1);
  done_.notify_all();
  return result;
}

int SessionManager::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(sessions_.size());
}

void SessionManager::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] {
    for (const auto& [id, entry] : sessions_) {
      if (!entry.queue.empty() || entry.busy) return false;
    }
    return true;
  });
}

void SessionManager::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    long long id = 0;
    Entry* entry = next_runnable(&id);
    if (entry == nullptr) {
      if (stop_) return;
      work_.wait(lock);
      continue;
    }
    auto [ticket, event] = std::move(entry->queue.front());
    entry->queue.pop_front();
    entry->busy = true;
    Session* session = entry->session.get();
    lock.unlock();

    EventReply reply;
    std::string error;
    try {
      reply = session->apply(event);
    } catch (const std::exception& ex) {
      error = ex.what();
    } catch (...) {
      error = "unknown replan error";
    }

    lock.lock();
    auto it = sessions_.find(id);
    if (it != sessions_.end()) {
      it->second.busy = false;
      if (error.empty()) {
        it->second.done.emplace(ticket, std::move(reply));
      } else {
        it->second.failed.emplace(ticket, std::move(error));
      }
    }
    done_.notify_all();
    // The session may hold further queued events another worker can take.
    work_.notify_all();
  }
}

SessionManager::Entry* SessionManager::next_runnable(long long* id_out) {
  auto runnable = [](const Entry& entry) {
    return !entry.busy && !entry.queue.empty();
  };
  for (auto it = sessions_.upper_bound(cursor_); it != sessions_.end(); ++it) {
    if (runnable(it->second)) {
      cursor_ = it->first;
      *id_out = it->first;
      return &it->second;
    }
  }
  for (auto it = sessions_.begin();
       it != sessions_.end() && it->first <= cursor_; ++it) {
    if (runnable(it->second)) {
      cursor_ = it->first;
      *id_out = it->first;
      return &it->second;
    }
  }
  return nullptr;
}

SessionManager::Entry& SessionManager::entry_or_throw(long long session) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    throw std::invalid_argument("unknown session id " +
                                std::to_string(session));
  }
  return it->second;
}

const SessionManager::Entry& SessionManager::entry_or_throw(
    long long session) const {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    throw std::invalid_argument("unknown session id " +
                                std::to_string(session));
  }
  return it->second;
}

}  // namespace psga::session
