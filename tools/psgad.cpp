// psgad — the long-lived solver daemon: serves RunSpec jobs over a
// Unix-domain socket (newline-delimited JSON, see docs/service.md).
//
//   $ psgad [options]
//
//   --socket PATH          listen here (default /tmp/psgad.sock, or
//                          $PSGAD_SOCKET)
//   --workers N            concurrent running jobs (default 2)
//   --max-queued N         admission limit on queued jobs (default 64)
//   --max-generations N    per-job generation cap (0 = uncapped)
//   --max-seconds S        per-job wall-clock cap
//   --max-evals N          per-job evaluation-budget cap
//   --every N              telemetry generation stride (0 = final only)
//   --config FILE          token config file (key=value; same keys as the
//                          flags: socket= workers= max_queued=
//                          telemetry_every= max_generations= max_seconds=
//                          max_evaluations=); flags given after --config
//                          override it
//
// Signals: SIGTERM/SIGINT drain gracefully (stop admission, cancel the
// queue, finish running jobs, exit 0); SIGHUP re-reads --config and
// swaps in the reloadable limits (admission + budget caps + stride).
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/svc/server.h"

namespace {

// Self-pipe: the async-signal-safe handler writes one byte; the signal
// thread in main() turns it into drain()/reload() calls.
int signal_pipe[2] = {-1, -1};

void on_signal(int sig) {
  const char byte = sig == SIGHUP ? 'h' : 't';
  // write() is async-signal-safe; a full pipe just drops the byte (a
  // pending drain/reload is already on its way).
  [[maybe_unused]] const ssize_t n = write(signal_pipe[1], &byte, 1);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH] [--workers N] [--max-queued N]\n"
               "       %*s [--max-generations N] [--max-seconds S] "
               "[--max-evals N]\n"
               "       %*s [--every N] [--config FILE]\n",
               argv0, static_cast<int>(std::strlen(argv0)), "",
               static_cast<int>(std::strlen(argv0)), "");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using psga::svc::Server;
  using psga::svc::ServerConfig;

  ServerConfig config;
  if (const char* env_socket = std::getenv("PSGAD_SOCKET")) {
    config.socket_path = env_socket;
  }
  std::string config_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "psgad: %s needs a value\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    try {
      if (arg == "--socket") {
        config.socket_path = next_value();
      } else if (arg == "--workers") {
        config.workers = std::atoi(next_value());
      } else if (arg == "--max-queued") {
        config.max_queued = std::atoi(next_value());
      } else if (arg == "--max-generations") {
        config.max_generations = std::atoi(next_value());
      } else if (arg == "--max-seconds") {
        config.max_seconds = std::atof(next_value());
      } else if (arg == "--max-evals") {
        config.max_evaluations = std::atoll(next_value());
      } else if (arg == "--every") {
        config.telemetry_every = std::atoi(next_value());
      } else if (arg == "--config") {
        config_path = next_value();
        config.apply_file(config_path);
      } else if (arg == "--help" || arg == "-h") {
        return usage(argv[0]);
      } else {
        std::fprintf(stderr, "psgad: unknown option %s\n", arg.c_str());
        return usage(argv[0]);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "psgad: %s\n", e.what());
      return 1;
    }
  }

  if (pipe(signal_pipe) != 0) {
    std::perror("psgad: pipe");
    return 1;
  }
  struct sigaction action{};
  action.sa_handler = on_signal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGHUP, &action, nullptr);

  Server server(config);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psgad: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "psgad: listening on %s (%d workers)\n",
               server.socket_path().c_str(), config.workers);

  // Signal loop: runs until a drain lands (SIGTERM/SIGINT or a client's
  // `drain` op). Reload failures keep the current limits — a bad config
  // edit must not take the daemon down.
  std::thread signal_thread([&] {
    char byte;
    while (read(signal_pipe[0], &byte, 1) == 1) {
      if (byte == 'h') {
        if (config_path.empty()) {
          std::fprintf(stderr, "psgad: SIGHUP but no --config file\n");
          continue;
        }
        try {
          ServerConfig fresh = config;
          fresh.apply_file(config_path);
          server.reload(fresh);
          std::fprintf(stderr, "psgad: reloaded %s\n", config_path.c_str());
        } catch (const std::exception& e) {
          std::fprintf(stderr, "psgad: reload failed: %s\n", e.what());
        }
        continue;
      }
      std::fprintf(stderr, "psgad: draining\n");
      server.drain();
      return;
    }
  });

  server.wait();  // returns once drained (by signal or client) + stopped
  // Unblock the signal thread if the drain came from a client.
  close(signal_pipe[1]);
  signal_thread.join();
  close(signal_pipe[0]);
  std::fprintf(stderr, "psgad: drained, exiting\n");
  return 0;
}
