// psga_report — renders sweep telemetry JSONL into a flat CSV and a
// self-contained HTML dashboard (summary tables, RPD vs the declared
// reference, cache hit rates, SVG convergence curves per axis value).
//
//   $ psga_report [--csv PATH] [--html PATH] <telemetry.jsonl>
//
// With no --csv/--html the output paths default to the input path with
// its .jsonl suffix replaced by .csv / .html. Either flag may be `-` to
// write that artifact to stdout instead of a file.
//
// The input may be a live or truncated file (a SIGKILLed sweep, a
// resumed run): malformed tail lines are skipped and duplicate cell
// records resolve last-wins, so `psga_report` over a resumed telemetry
// file renders the same report as one uninterrupted run.
//
// Exit status: 1 for unusable input (missing file, no sweep content)
// or unwritable output.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/exp/report_render.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--csv PATH] [--html PATH] <telemetry.jsonl>\n",
               argv0);
  return 1;
}

/// input path minus a trailing ".jsonl" (or ".json"), plus `suffix`.
std::string default_output(const std::string& input, const char* suffix) {
  std::string base = input;
  for (const char* ext : {".jsonl", ".json"}) {
    const std::size_t n = std::strlen(ext);
    if (base.size() > n && base.compare(base.size() - n, n, ext) == 0) {
      base.resize(base.size() - n);
      break;
    }
  }
  return base + suffix;
}

/// Writes `text` to `path` ("-" = stdout). Returns false on failure.
bool write_artifact(const std::string& path, const std::string& text,
                    const char* what) {
  if (path == "-") {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "psga_report: cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  std::fprintf(stderr, "psga_report: wrote %s %s\n", what, path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string csv_path;
  std::string html_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "psga_report: %s needs a value\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--csv") {
      csv_path = next_value();
    } else if (arg == "--html") {
      html_path = next_value();
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "psga_report: unknown option %s\n", arg.c_str());
      return usage(argv[0]);
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (input.empty()) return usage(argv[0]);
  if (csv_path.empty()) csv_path = default_output(input, ".csv");
  if (html_path.empty()) html_path = default_output(input, ".html");

  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "psga_report: cannot read %s\n", input.c_str());
    return 1;
  }
  const std::vector<psga::exp::SweepReport> reports =
      psga::exp::parse_telemetry(in);
  if (reports.empty()) {
    std::fprintf(stderr, "psga_report: %s holds no sweep telemetry\n",
                 input.c_str());
    return 1;
  }

  if (!write_artifact(csv_path, psga::exp::render_csv(reports), "CSV")) {
    return 1;
  }
  if (!write_artifact(html_path, psga::exp::render_html(reports), "HTML")) {
    return 1;
  }
  return 0;
}
