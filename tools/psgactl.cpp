// psgactl — thin control CLI for a running psgad (docs/service.md).
//
//   $ psgactl [--socket PATH] <command> [args]
//
//   submit '<runspec>' [--priority N] [--generations N] [--seconds S]
//                      [--evals N] [--target X] [--watch]
//          prints the job id (or, with --watch, streams telemetry and
//          prints the final record)
//   list               one job per line
//   status <id>        one-line job record; exit 1 when the job failed
//                      (mirrors psga_sweep's any-cell-failed convention)
//   wait <id> [--timeout S]
//                      blocks until terminal, then prints like status;
//                      with --timeout, exits 3 when S seconds pass first
//   watch <id>         streams the job's JSONL telemetry to stdout
//                      (replayed from the start, then live, ending with
//                      job_end), then exits like status
//   cancel <id>        requests cancellation, prints the resulting state
//   drain              graceful server drain; prints cancelled count
//   ping               exit 0 iff the daemon answers
//   info               server config, build type, uptime, job counts,
//                      cumulative totals and latency percentiles
//                      (pretty-printed JSON)
//   stats              the daemon's full metrics registry — counters,
//                      gauges, log2 histograms with p50/p95/p99
//                      (pretty-printed JSON)
//
//   session open '<instance>' [--solver S] [--generations N] [--evals N]
//                [--slo S] [--seed N] [--cold] [--immigrants F]
//                      opens a replanning session, prints its id
//   session event <id> '<tokens>'
//                      applies one event (session::Event::parse format,
//                      e.g. 'kind=breakdown time=25 machine=2
//                      duration=10'), prints the reply JSON; exit 1 when
//                      the event missed its SLO
//   session best <id>  the session's current answer (JSON)
//   session close <id> [--transcript]
//                      drains + closes; prints events and the transcript
//                      hash (with --transcript, the full JSONL first)
//
// The socket defaults to $PSGAD_SOCKET, then /tmp/psgad.sock. Transport
// and server errors print to stderr and exit 2; a failed job makes
// status/wait/watch (and submit --watch) exit 1.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/session/session.h"
#include "src/svc/client.h"

namespace {

using namespace psga;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--socket PATH] <command> [args]\n"
      "commands:\n"
      "  submit '<runspec>' [--priority N] [--generations N] [--seconds S]\n"
      "                     [--evals N] [--target X] [--watch]\n"
      "  list | status <id> | wait <id> [--timeout S] | watch <id>\n"
      "  cancel <id> | drain | ping | info | stats\n"
      "  session open '<instance>' [--solver S] [--generations N]\n"
      "               [--evals N] [--slo S] [--seed N] [--cold]\n"
      "               [--immigrants F]\n"
      "  session event <id> '<kind=... time=... ...>'\n"
      "  session best <id> | session close <id> [--transcript]\n",
      argv0);
  return 2;
}

void print_job(const svc::JobRecord& job) {
  std::printf("job %lld  %s", job.id, svc::to_string(job.state));
  if (job.state == svc::JobState::kDone ||
      job.state == svc::JobState::kCancelled) {
    std::printf("  best=%g generations=%d evaluations=%lld", job.best_objective,
                job.generations, job.evaluations);
  }
  if (!job.error.empty()) std::printf("  error=%s", job.error.c_str());
  if (job.seconds > 0) std::printf("  seconds=%.3f", job.seconds);
  std::printf("  spec=%s\n", job.spec.c_str());
}

/// status/wait/watch share the failed-job exit convention.
int job_exit(const svc::JobRecord& job) {
  return job.state == svc::JobState::kFailed ? 1 : 0;
}

long long parse_id(const char* text) {
  char* end = nullptr;
  const long long id = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "psgactl: bad job id '%s'\n", text);
    std::exit(2);
  }
  return id;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/psgad.sock";
  if (const char* env_socket = std::getenv("PSGAD_SOCKET")) {
    socket_path = env_socket;
  }

  int i = 1;
  if (i + 1 < argc && std::strcmp(argv[i], "--socket") == 0) {
    socket_path = argv[i + 1];
    i += 2;
  }
  if (i >= argc) return usage(argv[0]);
  const std::string command = argv[i++];

  try {
    svc::Client client(socket_path);

    if (command == "submit") {
      if (i >= argc) return usage(argv[0]);
      const std::string spec = argv[i++];
      svc::SubmitOptions options;
      bool watch = false;
      for (; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&]() -> const char* {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "psgactl: %s needs a value\n", arg.c_str());
            std::exit(2);
          }
          return argv[++i];
        };
        if (arg == "--priority") {
          options.priority = std::atoi(next_value());
        } else if (arg == "--generations") {
          options.generations = std::atoi(next_value());
        } else if (arg == "--seconds") {
          options.seconds = std::atof(next_value());
        } else if (arg == "--evals") {
          options.evaluations = std::atoll(next_value());
        } else if (arg == "--target") {
          options.target = std::atof(next_value());
        } else if (arg == "--watch") {
          watch = true;
        } else {
          return usage(argv[0]);
        }
      }
      const long long id = client.submit(spec, options);
      if (!watch) {
        std::printf("%lld\n", id);
        return 0;
      }
      const svc::JobRecord job = client.watch(id, [](const exp::Json& line) {
        std::printf("%s\n", line.dump().c_str());
      });
      print_job(job);
      return job_exit(job);
    }

    if (command == "list") {
      for (const svc::JobRecord& job : client.list()) print_job(job);
      return 0;
    }
    if (command == "status" || command == "wait") {
      if (i >= argc) return usage(argv[0]);
      const long long id = parse_id(argv[i++]);
      double timeout = 0;
      if (command == "wait" && i < argc) {
        if (std::strcmp(argv[i], "--timeout") != 0 || i + 1 >= argc) {
          return usage(argv[0]);
        }
        timeout = std::atof(argv[i + 1]);
        i += 2;
      }
      if (command == "wait") {
        const std::optional<svc::JobRecord> job = client.wait_for(id, timeout);
        if (!job) {
          std::fprintf(stderr, "psgactl: job %lld still running after %gs\n",
                       id, timeout);
          return 3;
        }
        print_job(*job);
        return job_exit(*job);
      }
      const svc::JobRecord job = client.status(id);
      print_job(job);
      return job_exit(job);
    }
    if (command == "watch") {
      if (i >= argc) return usage(argv[0]);
      const svc::JobRecord job =
          client.watch(parse_id(argv[i]), [](const exp::Json& line) {
            std::printf("%s\n", line.dump().c_str());
          });
      return job_exit(job);
    }
    if (command == "cancel") {
      if (i >= argc) return usage(argv[0]);
      std::printf("%s\n", svc::to_string(client.cancel(parse_id(argv[i]))));
      return 0;
    }
    if (command == "drain") {
      std::printf("drained (%d queued job(s) cancelled)\n", client.drain());
      return 0;
    }
    if (command == "ping") {
      client.ping();
      std::printf("ok\n");
      return 0;
    }
    if (command == "info") {
      std::printf("%s\n", client.info().dump(2).c_str());
      return 0;
    }
    if (command == "stats") {
      std::printf("%s\n", client.stats().dump(2).c_str());
      return 0;
    }
    if (command == "session") {
      if (i >= argc) return usage(argv[0]);
      const std::string sub = argv[i++];

      if (sub == "open") {
        if (i >= argc) return usage(argv[0]);
        const std::string instance = argv[i++];
        svc::SessionOptions options;
        for (; i < argc; ++i) {
          const std::string arg = argv[i];
          auto next_value = [&]() -> const char* {
            if (i + 1 >= argc) {
              std::fprintf(stderr, "psgactl: %s needs a value\n", arg.c_str());
              std::exit(2);
            }
            return argv[++i];
          };
          if (arg == "--solver") {
            options.solver = next_value();
          } else if (arg == "--generations") {
            options.generations = std::atoi(next_value());
          } else if (arg == "--evals") {
            options.evaluations = std::atoll(next_value());
          } else if (arg == "--slo") {
            options.slo_seconds = std::atof(next_value());
          } else if (arg == "--seed") {
            options.seed = static_cast<std::uint64_t>(
                std::strtoull(next_value(), nullptr, 10));
          } else if (arg == "--cold") {
            options.warm = false;
          } else if (arg == "--immigrants") {
            options.immigrants = std::atof(next_value());
          } else {
            return usage(argv[0]);
          }
        }
        std::printf("%lld\n", client.session_open(instance, options));
        return 0;
      }

      if (sub == "event") {
        if (i + 1 >= argc) return usage(argv[0]);
        const long long id = parse_id(argv[i]);
        const session::Event event = session::Event::parse(argv[i + 1]);
        const exp::Json reply = client.session_event(id, event.to_json());
        std::printf("%s\n", reply.dump().c_str());
        return reply.find("slo_met") != nullptr &&
                       !reply.find("slo_met")->as_bool()
                   ? 1
                   : 0;
      }

      if (sub == "best") {
        if (i >= argc) return usage(argv[0]);
        std::printf("%s\n",
                    client.session_best(parse_id(argv[i])).dump(2).c_str());
        return 0;
      }

      if (sub == "close") {
        if (i >= argc) return usage(argv[0]);
        const long long id = parse_id(argv[i++]);
        const bool transcript =
            i < argc && std::strcmp(argv[i], "--transcript") == 0;
        const exp::Json closed = client.session_close(id);
        if (transcript) {
          std::printf("%s", closed.string_or("transcript", "").c_str());
        }
        const exp::Json* hash = closed.find("transcript_hash");
        std::printf("session %lld closed  events=%lld  transcript_hash=%llx\n",
                    id, closed.find("events")->as_i64(),
                    static_cast<unsigned long long>(
                        hash != nullptr ? hash->as_u64() : 0));
        return 0;
      }

      return usage(argv[0]);
    }
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psgactl: %s\n", e.what());
    return 2;
  }
}
