// psgactl — thin control CLI for a running psgad (docs/service.md).
//
//   $ psgactl [--socket PATH] <command> [args]
//
//   submit '<runspec>' [--priority N] [--generations N] [--seconds S]
//                      [--evals N] [--target X] [--watch]
//          prints the job id (or, with --watch, streams telemetry and
//          prints the final record)
//   list               one job per line
//   status <id>        one-line job record; exit 1 when the job failed
//                      (mirrors psga_sweep's any-cell-failed convention)
//   wait <id>          blocks until terminal, then prints like status
//   watch <id>         streams the job's JSONL telemetry to stdout
//                      (replayed from the start, then live, ending with
//                      job_end), then exits like status
//   cancel <id>        requests cancellation, prints the resulting state
//   drain              graceful server drain; prints cancelled count
//   ping               exit 0 iff the daemon answers
//   info               server config, build type, uptime, job counts,
//                      cumulative totals and latency percentiles
//                      (pretty-printed JSON)
//   stats              the daemon's full metrics registry — counters,
//                      gauges, log2 histograms with p50/p95/p99
//                      (pretty-printed JSON)
//
// The socket defaults to $PSGAD_SOCKET, then /tmp/psgad.sock. Transport
// and server errors print to stderr and exit 2; a failed job makes
// status/wait/watch (and submit --watch) exit 1.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/svc/client.h"

namespace {

using namespace psga;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--socket PATH] <command> [args]\n"
      "commands:\n"
      "  submit '<runspec>' [--priority N] [--generations N] [--seconds S]\n"
      "                     [--evals N] [--target X] [--watch]\n"
      "  list | status <id> | wait <id> | watch <id> | cancel <id>\n"
      "  drain | ping | info | stats\n",
      argv0);
  return 2;
}

void print_job(const svc::JobRecord& job) {
  std::printf("job %lld  %s", job.id, svc::to_string(job.state));
  if (job.state == svc::JobState::kDone ||
      job.state == svc::JobState::kCancelled) {
    std::printf("  best=%g generations=%d evaluations=%lld", job.best_objective,
                job.generations, job.evaluations);
  }
  if (!job.error.empty()) std::printf("  error=%s", job.error.c_str());
  if (job.seconds > 0) std::printf("  seconds=%.3f", job.seconds);
  std::printf("  spec=%s\n", job.spec.c_str());
}

/// status/wait/watch share the failed-job exit convention.
int job_exit(const svc::JobRecord& job) {
  return job.state == svc::JobState::kFailed ? 1 : 0;
}

long long parse_id(const char* text) {
  char* end = nullptr;
  const long long id = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "psgactl: bad job id '%s'\n", text);
    std::exit(2);
  }
  return id;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/psgad.sock";
  if (const char* env_socket = std::getenv("PSGAD_SOCKET")) {
    socket_path = env_socket;
  }

  int i = 1;
  if (i + 1 < argc && std::strcmp(argv[i], "--socket") == 0) {
    socket_path = argv[i + 1];
    i += 2;
  }
  if (i >= argc) return usage(argv[0]);
  const std::string command = argv[i++];

  try {
    svc::Client client(socket_path);

    if (command == "submit") {
      if (i >= argc) return usage(argv[0]);
      const std::string spec = argv[i++];
      svc::SubmitOptions options;
      bool watch = false;
      for (; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&]() -> const char* {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "psgactl: %s needs a value\n", arg.c_str());
            std::exit(2);
          }
          return argv[++i];
        };
        if (arg == "--priority") {
          options.priority = std::atoi(next_value());
        } else if (arg == "--generations") {
          options.generations = std::atoi(next_value());
        } else if (arg == "--seconds") {
          options.seconds = std::atof(next_value());
        } else if (arg == "--evals") {
          options.evaluations = std::atoll(next_value());
        } else if (arg == "--target") {
          options.target = std::atof(next_value());
        } else if (arg == "--watch") {
          watch = true;
        } else {
          return usage(argv[0]);
        }
      }
      const long long id = client.submit(spec, options);
      if (!watch) {
        std::printf("%lld\n", id);
        return 0;
      }
      const svc::JobRecord job = client.watch(id, [](const exp::Json& line) {
        std::printf("%s\n", line.dump().c_str());
      });
      print_job(job);
      return job_exit(job);
    }

    if (command == "list") {
      for (const svc::JobRecord& job : client.list()) print_job(job);
      return 0;
    }
    if (command == "status" || command == "wait") {
      if (i >= argc) return usage(argv[0]);
      const long long id = parse_id(argv[i]);
      const svc::JobRecord job =
          command == "wait" ? client.wait(id) : client.status(id);
      print_job(job);
      return job_exit(job);
    }
    if (command == "watch") {
      if (i >= argc) return usage(argv[0]);
      const svc::JobRecord job =
          client.watch(parse_id(argv[i]), [](const exp::Json& line) {
            std::printf("%s\n", line.dump().c_str());
          });
      return job_exit(job);
    }
    if (command == "cancel") {
      if (i >= argc) return usage(argv[0]);
      std::printf("%s\n", svc::to_string(client.cancel(parse_id(argv[i]))));
      return 0;
    }
    if (command == "drain") {
      std::printf("drained (%d queued job(s) cancelled)\n", client.drain());
      return 0;
    }
    if (command == "ping") {
      client.ping();
      std::printf("ok\n");
      return 0;
    }
    if (command == "info") {
      std::printf("%s\n", client.info().dump(2).c_str());
      return 0;
    }
    if (command == "stats") {
      std::printf("%s\n", client.stats().dump(2).c_str());
      return 0;
    }
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psgactl: %s\n", e.what());
    return 2;
  }
}
