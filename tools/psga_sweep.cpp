// psga_sweep — the canonical way to reproduce the paper's parameter
// studies: run every sweep in a declarative spec file, stream JSONL
// telemetry and print the study tables.
//
//   $ psga_sweep [options] <spec-file>
//
//   --threads N        cells in flight (default 1: serial; results are
//                      bit-identical at any thread count)
//   --telemetry PATH   write JSONL telemetry (see docs/sweeps.md)
//   --every N          generation-event stride (default 1; 0 = final
//                      records only)
//   --summary PATH     also write the tables to PATH
//   --csv              emit tables as CSV instead of aligned text
//   --reps N           override every sweep's @reps
//   --seed N           override every sweep's @seed
//   --list             print the expanded cells and exit (dry run)
//   --list-problems    print the problem registry (problem= values) and exit
//   --list-engines     print the engine registry (engine= values) and exit
//   --quiet            no per-cell progress on stderr
//   --dispatch SOCKET  send each expanded cell's RunSpec to the psgad
//                      daemon at SOCKET instead of running in-process
//                      lanes (serial submit/wait; prints one line per
//                      cell — full scale-out is a ROADMAP item). Cell
//                      seeds are baked into the specs, so results match
//                      the in-process runner bit-for-bit.
//
// Exit status: 1 for unusable input (missing/unparsable spec file,
// zero-cell sweeps, unreachable --dispatch daemon) and when any cell
// failed — cell failures are fail-soft (the sweep completes and the
// summaries report them) but the process still signals them, so CI
// wrappers cannot mistake a partially failed sweep for a clean one.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/exp/aggregate.h"
#include "src/exp/sweep_runner.h"
#include "src/exp/sweep_spec.h"
#include "src/exp/telemetry.h"
#include "src/ga/solver.h"
#include "src/svc/client.h"

namespace {

using namespace psga;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threads N] [--telemetry PATH] [--every N]\n"
               "       %*s [--summary PATH] [--csv] [--reps N] [--seed N]\n"
               "       %*s [--list] [--quiet] [--dispatch SOCKET] <spec-file>\n"
               "       %s --list-problems | --list-engines\n",
               argv0, static_cast<int>(std::strlen(argv0)), "",
               static_cast<int>(std::strlen(argv0)), "", argv0);
  return 1;
}

/// The full RunSpec of one expanded cell: the cell's combined tokens
/// (base + axes + trailing seed=) with the @instances entry folded in as
/// an instance= token — the same folding SweepRunner's planner performs
/// before building a cell in-process, so a dispatched cell solves the
/// identical spec.
std::string cell_runspec(const psga::exp::SweepCell& cell) {
  std::string spec = cell.spec;
  if (!cell.instance.empty()) spec += " instance=" + cell.instance;
  return spec;
}

/// --dispatch: submit every cell of every sweep to a running psgad and
/// wait for each result (serial — the minimal remote mode). Returns the
/// number of failed cells; throws for transport-level errors (daemon
/// unreachable / connection lost), which poison the whole dispatch.
int dispatch_sweeps(const std::vector<psga::exp::SweepSpec>& sweeps,
                    const std::string& socket_path, bool quiet) {
  psga::svc::Client client(socket_path);
  int failed = 0;
  for (const psga::exp::SweepSpec& sweep : sweeps) {
    for (const psga::exp::SweepCell& cell : sweep.expand()) {
      psga::svc::SubmitOptions options;
      if (sweep.stop.max_generations < std::numeric_limits<int>::max()) {
        options.generations = sweep.stop.max_generations;
      }
      if (sweep.stop.max_seconds > 0) options.seconds = sweep.stop.max_seconds;
      if (sweep.stop.max_evaluations > 0) {
        options.evaluations = sweep.stop.max_evaluations;
      }
      if (sweep.stop.target_objective >= 0) {
        options.target = sweep.stop.target_objective;
      }
      const std::string spec = cell_runspec(cell);
      // Transport/admission errors (ServiceError) propagate: without a
      // reachable daemon the whole dispatch is unusable, unlike a
      // fail-soft cell error which is just one job in state failed.
      const psga::svc::JobRecord job =
          client.wait(client.submit(spec, options));
      const bool ok = job.state == psga::svc::JobState::kDone;
      failed += !ok;
      if (ok) {
        if (!quiet) {
          std::printf("%s\t%d\tbest=%.17g evaluations=%lld generations=%d\t%s\n",
                      sweep.name.c_str(), cell.index, job.best_objective,
                      job.evaluations, job.generations, spec.c_str());
        }
      } else {
        std::printf("%s\t%d\t%s\t%s\t%s\n", sweep.name.c_str(), cell.index,
                    psga::svc::to_string(job.state),
                    job.error.c_str(), spec.c_str());
      }
    }
  }
  return failed;
}

/// Prints one registry ("problem" or "engine") as aligned name +
/// one-line description rows — the discoverability path for spec keys.
int print_catalog(const char* key,
                  const std::vector<ga::RegistryEntry>& catalog) {
  std::size_t width = 0;
  for (const ga::RegistryEntry& entry : catalog) {
    width = std::max(width, entry.name.size());
  }
  for (const ga::RegistryEntry& entry : catalog) {
    std::printf("%s=%-*s  %s\n", key, static_cast<int>(width),
                entry.name.c_str(), entry.description.c_str());
  }
  return catalog.empty() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string telemetry_path;
  std::string summary_path;
  std::string dispatch_socket;
  int threads = 1;
  int every = 1;
  bool csv = false;
  bool list = false;
  bool quiet = false;
  std::optional<int> reps_override;
  std::optional<std::uint64_t> seed_override;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "psga_sweep: %s needs a value\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      threads = std::atoi(next_value());
    } else if (arg == "--telemetry") {
      telemetry_path = next_value();
    } else if (arg == "--every") {
      every = std::atoi(next_value());
    } else if (arg == "--summary") {
      summary_path = next_value();
    } else if (arg == "--dispatch") {
      dispatch_socket = next_value();
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--reps") {
      reps_override = std::atoi(next_value());
    } else if (arg == "--seed") {
      seed_override = std::strtoull(next_value(), nullptr, 10);
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--list-problems") {
      return print_catalog("problem", ga::problem_catalog());
    } else if (arg == "--list-engines") {
      return print_catalog("engine", ga::engine_catalog());
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "psga_sweep: unknown option %s\n", arg.c_str());
      return usage(argv[0]);
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (spec_path.empty()) return usage(argv[0]);

  std::ifstream spec_file(spec_path);
  if (!spec_file) {
    std::fprintf(stderr, "psga_sweep: cannot read %s\n", spec_path.c_str());
    return 1;
  }
  std::ostringstream spec_text;
  spec_text << spec_file.rdbuf();

  std::vector<exp::SweepSpec> sweeps;
  try {
    sweeps = exp::SweepSpec::parse_file(spec_text.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psga_sweep: %s\n", e.what());
    return 1;
  }
  if (sweeps.empty()) {
    std::fprintf(stderr, "psga_sweep: %s declares no sweeps\n",
                 spec_path.c_str());
    return 1;
  }
  for (exp::SweepSpec& sweep : sweeps) {
    if (reps_override) sweep.reps = *reps_override;
    if (seed_override) sweep.seed = *seed_override;
  }

  if (!dispatch_socket.empty()) {
    try {
      const int failed = dispatch_sweeps(sweeps, dispatch_socket, quiet);
      if (failed > 0) {
        std::fprintf(stderr, "psga_sweep: %d dispatched cell(s) failed\n",
                     failed);
      }
      return failed > 0 ? 1 : 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "psga_sweep: dispatch: %s\n", e.what());
      return 1;
    }
  }

  if (list) {
    for (const exp::SweepSpec& sweep : sweeps) {
      try {
        for (const exp::SweepCell& cell : sweep.expand()) {
          std::printf("%s\t%d\t%s\t%s\n", sweep.name.c_str(), cell.index,
                      cell.instance.c_str(), cell.spec.c_str());
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "psga_sweep: %s\n", e.what());
        return 1;
      }
    }
    return 0;
  }

  std::ofstream telemetry_file;
  std::optional<exp::TelemetrySink> sink;
  if (!telemetry_path.empty()) {
    telemetry_file.open(telemetry_path);
    if (!telemetry_file) {
      std::fprintf(stderr, "psga_sweep: cannot write %s\n",
                   telemetry_path.c_str());
      return 1;
    }
    sink.emplace(telemetry_file);
  }

  std::ostringstream tables;
  int total_cells = 0;
  int failed_cells = 0;
  for (const exp::SweepSpec& sweep : sweeps) {
    exp::SweepOptions options;
    options.threads = threads;
    options.telemetry = sink ? &*sink : nullptr;
    options.telemetry_every = every;
    if (!quiet) {
      options.progress = [&](const exp::CellResult& cell, int done,
                             int total) {
        std::fprintf(stderr, "\r[%s] %d/%d%s", sweep.name.c_str(), done,
                     total, cell.ok ? "" : " (cell failed)");
        if (done == total) std::fprintf(stderr, "\n");
      };
    }
    try {
      const exp::SweepResult result = exp::run_sweep(sweep, options);
      total_cells += static_cast<int>(result.cells.size());
      failed_cells += result.failed;
      if (csv) {
        tables << "# sweep " << sweep.name << "\n"
               << exp::summary_table(result.spec, exp::summarize(result))
                      .to_csv()
               << "\n";
      } else {
        exp::print_summary(result, tables);
        tables << "\n";
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "psga_sweep: sweep '%s': %s\n",
                   sweep.name.c_str(), e.what());
      return 1;
    }
  }

  std::fputs(tables.str().c_str(), stdout);
  if (!summary_path.empty()) {
    std::ofstream summary_file(summary_path);
    if (!summary_file) {
      std::fprintf(stderr, "psga_sweep: cannot write %s\n",
                   summary_path.c_str());
      return 1;
    }
    summary_file << tables.str();
  }
  if (failed_cells > 0) {
    std::fprintf(stderr, "psga_sweep: %d/%d cells failed\n", failed_cells,
                 total_cells);
  }
  // Any failed cell is a non-zero exit: failures are fail-soft inside
  // the sweep (every other cell still runs and reports) but must not
  // look like success to the calling shell. psgactl status mirrors this
  // for failed jobs.
  return failed_cells > 0 ? 1 : 0;
}
