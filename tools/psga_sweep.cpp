// psga_sweep — the canonical way to reproduce the paper's parameter
// studies: run every sweep in a declarative spec file, stream JSONL
// telemetry and print the study tables.
//
//   $ psga_sweep [options] <spec-file>
//
//   --threads N        in-process cells in flight (default 1: serial;
//                      results are bit-identical at any thread count)
//   --telemetry PATH   write JSONL telemetry (see docs/sweeps.md)
//   --every N          generation-event stride (default 1; 0 = final
//                      records only)
//   --summary PATH     also write the tables to PATH
//   --csv              emit tables as CSV instead of aligned text
//   --reps N           override every sweep's @reps
//   --seed N           override every sweep's @seed
//   --resume FILE      skip cells whose `cell` records (matched by the
//                      stable cell hash) already sit in FILE, and append
//                      new telemetry to FILE — the file ends up equal to
//                      one uninterrupted run's
//   --trace FILE       overlay trace=on on every cell and write the
//                      merged Chrome trace-event JSON to FILE (one
//                      process per cell; load in chrome://tracing or
//                      ui.perfetto.dev). In-process only. Cell specs,
//                      hashes and results are unchanged, so traced runs
//                      resume untraced ones and vice versa.
//   --list             print the expanded cells and exit (dry run)
//   --list-problems    print the problem registry (problem= values) and exit
//   --list-engines     print the engine registry (engine= values) and exit
//   --quiet            no per-cell progress on stderr
//   --dispatch SOCKET  run each expanded cell as a job on the psgad
//                      daemon at SOCKET instead of in-process lanes.
//                      Cell seeds are baked into the specs, so results
//                      (and the summary tables) match the in-process
//                      runner bit-for-bit; the dispatched telemetry is
//                      byte-compatible too (src/svc/dispatch.h).
//   --jobs N           with --dispatch: cells in flight against the
//                      daemon (default 1)
//
// All of --telemetry/--summary/--csv/--reps/--seed/--resume apply to
// --dispatch runs exactly as to in-process ones. --threads and
// --every are in-process-only knobs and are rejected under --dispatch
// (use --jobs; the daemon's telemetry_every governs its stream).
//
// Exit status: 1 for unusable input (missing/unparsable spec file,
// zero-cell sweeps, option conflicts) and when any cell failed — cell
// failures are fail-soft (the sweep completes and the summaries report
// them) but the process still signals them, so CI wrappers cannot
// mistake a partially failed sweep for a clean one.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/exp/aggregate.h"
#include "src/exp/sweep_runner.h"
#include "src/exp/sweep_spec.h"
#include "src/exp/telemetry.h"
#include "src/ga/solver.h"
#include "src/obs/trace.h"
#include "src/svc/dispatch.h"

namespace {

using namespace psga;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threads N] [--telemetry PATH] [--every N]\n"
               "       %*s [--summary PATH] [--csv] [--reps N] [--seed N]\n"
               "       %*s [--resume FILE] [--trace FILE] [--list] [--quiet]\n"
               "       %*s [--dispatch SOCKET [--jobs N]] <spec-file>\n"
               "       %s --list-problems | --list-engines\n",
               argv0, static_cast<int>(std::strlen(argv0)), "",
               static_cast<int>(std::strlen(argv0)), "",
               static_cast<int>(std::strlen(argv0)), "", argv0);
  return 1;
}

/// Prints one registry ("problem" or "engine") as aligned name +
/// one-line description rows — the discoverability path for spec keys.
int print_catalog(const char* key,
                  const std::vector<ga::RegistryEntry>& catalog) {
  std::size_t width = 0;
  for (const ga::RegistryEntry& entry : catalog) {
    width = std::max(width, entry.name.size());
  }
  for (const ga::RegistryEntry& entry : catalog) {
    std::printf("%s=%-*s  %s\n", key, static_cast<int>(width),
                entry.name.c_str(), entry.description.c_str());
  }
  return catalog.empty() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string telemetry_path;
  std::string summary_path;
  std::string dispatch_socket;
  std::string resume_path;
  std::string trace_path;
  int threads = 1;
  bool threads_set = false;
  int every = 1;
  bool every_set = false;
  int jobs = 1;
  bool jobs_set = false;
  bool csv = false;
  bool list = false;
  bool quiet = false;
  std::optional<int> reps_override;
  std::optional<std::uint64_t> seed_override;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "psga_sweep: %s needs a value\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      threads = std::atoi(next_value());
      threads_set = true;
    } else if (arg == "--telemetry") {
      telemetry_path = next_value();
    } else if (arg == "--every") {
      every = std::atoi(next_value());
      every_set = true;
    } else if (arg == "--summary") {
      summary_path = next_value();
    } else if (arg == "--dispatch") {
      dispatch_socket = next_value();
    } else if (arg == "--jobs") {
      jobs = std::atoi(next_value());
      jobs_set = true;
    } else if (arg == "--resume") {
      resume_path = next_value();
    } else if (arg == "--trace") {
      trace_path = next_value();
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--reps") {
      reps_override = std::atoi(next_value());
    } else if (arg == "--seed") {
      seed_override = std::strtoull(next_value(), nullptr, 10);
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--list-problems") {
      return print_catalog("problem", ga::problem_catalog());
    } else if (arg == "--list-engines") {
      return print_catalog("engine", ga::engine_catalog());
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "psga_sweep: unknown option %s\n", arg.c_str());
      return usage(argv[0]);
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (spec_path.empty()) return usage(argv[0]);

  // Option conflicts fail loudly instead of silently ignoring a flag.
  if (!dispatch_socket.empty() && threads_set) {
    std::fprintf(stderr,
                 "psga_sweep: --threads controls in-process lanes; with "
                 "--dispatch use --jobs for cells in flight\n");
    return 1;
  }
  if (!dispatch_socket.empty() && every_set && every != 1) {
    std::fprintf(stderr,
                 "psga_sweep: --every does not apply to --dispatch (the "
                 "daemon's telemetry_every governs its stream)\n");
    return 1;
  }
  if (dispatch_socket.empty() && jobs_set) {
    std::fprintf(stderr, "psga_sweep: --jobs requires --dispatch\n");
    return 1;
  }
  if (!dispatch_socket.empty() && !trace_path.empty()) {
    std::fprintf(stderr,
                 "psga_sweep: --trace needs the in-process runner (the "
                 "daemon's spans stay in its process); drop --dispatch\n");
    return 1;
  }
  if (!resume_path.empty() && !telemetry_path.empty() &&
      telemetry_path != resume_path) {
    std::fprintf(stderr,
                 "psga_sweep: --resume appends telemetry to the resumed "
                 "file; drop --telemetry or point it at %s\n",
                 resume_path.c_str());
    return 1;
  }
  if (!resume_path.empty()) telemetry_path = resume_path;

  std::ifstream spec_file(spec_path);
  if (!spec_file) {
    std::fprintf(stderr, "psga_sweep: cannot read %s\n", spec_path.c_str());
    return 1;
  }
  std::ostringstream spec_text;
  spec_text << spec_file.rdbuf();

  std::vector<exp::SweepSpec> sweeps;
  try {
    sweeps = exp::SweepSpec::parse_file(spec_text.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psga_sweep: %s\n", e.what());
    return 1;
  }
  if (sweeps.empty()) {
    std::fprintf(stderr, "psga_sweep: %s declares no sweeps\n",
                 spec_path.c_str());
    return 1;
  }
  for (exp::SweepSpec& sweep : sweeps) {
    if (reps_override) sweep.reps = *reps_override;
    if (seed_override) sweep.seed = *seed_override;
  }

  if (list) {
    for (const exp::SweepSpec& sweep : sweeps) {
      try {
        for (const exp::SweepCell& cell : sweep.expand()) {
          std::printf("%s\t%d\t%s\t%s\n", sweep.name.c_str(), cell.index,
                      cell.instance.c_str(), cell.spec.c_str());
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "psga_sweep: %s\n", e.what());
        return 1;
      }
    }
    return 0;
  }

  // Hashes carry the sweep name, so one map covers every sweep in the
  // file. The scan tolerates the ragged tail a SIGKILL leaves.
  exp::FinishedCells finished;
  if (!resume_path.empty()) {
    std::ifstream resume_file(resume_path);
    if (!resume_file) {
      std::fprintf(stderr, "psga_sweep: cannot read resume file %s\n",
                   resume_path.c_str());
      return 1;
    }
    finished = exp::scan_finished_cells(resume_file);
    if (!quiet) {
      std::fprintf(stderr, "psga_sweep: resuming past %zu finished cell(s)\n",
                   finished.size());
    }
  }

  std::ofstream telemetry_file;
  std::optional<exp::TelemetrySink> sink;
  if (!telemetry_path.empty()) {
    // Resume appends below the already-scanned records so the file ends
    // up as the union — equal to one uninterrupted run's telemetry.
    telemetry_file.open(telemetry_path, resume_path.empty()
                                            ? std::ios::out
                                            : std::ios::out | std::ios::app);
    if (!telemetry_file) {
      std::fprintf(stderr, "psga_sweep: cannot write %s\n",
                   telemetry_path.c_str());
      return 1;
    }
    if (!resume_path.empty()) {
      // A SIGKILL can leave a partial final line with no newline;
      // appended records must not merge into it. The partial line then
      // stands alone and every telemetry consumer skips it.
      std::ifstream tail(telemetry_path, std::ios::binary);
      tail.seekg(0, std::ios::end);
      if (tail.tellg() > 0) {
        tail.seekg(-1, std::ios::end);
        char last = '\n';
        tail.get(last);
        if (last != '\n') telemetry_file << '\n';
      }
    }
    sink.emplace(telemetry_file);
  }

  std::ostringstream tables;
  int total_cells = 0;
  int failed_cells = 0;
  // Merged across every sweep in the file: pids are offset per sweep so
  // cell tracks never collide in the one trace file.
  std::vector<obs::TraceProcess> trace;
  int trace_pid_base = 0;
  for (const exp::SweepSpec& sweep : sweeps) {
    auto progress = [&](const exp::CellResult& cell, int done, int total) {
      std::fprintf(stderr, "\r[%s] %d/%d%s", sweep.name.c_str(), done, total,
                   cell.ok ? "" : " (cell failed)");
      if (done == total) std::fprintf(stderr, "\n");
    };
    try {
      exp::SweepResult result;
      if (!dispatch_socket.empty()) {
        svc::DispatchOptions options;
        options.jobs = jobs;
        options.telemetry = sink ? &*sink : nullptr;
        options.resume = finished.empty() ? nullptr : &finished;
        if (!quiet) options.progress = progress;
        result = svc::dispatch_sweep(sweep, dispatch_socket, options);
      } else {
        exp::SweepOptions options;
        options.threads = threads;
        options.telemetry = sink ? &*sink : nullptr;
        options.telemetry_every = every;
        options.resume = finished.empty() ? nullptr : &finished;
        options.trace = !trace_path.empty();
        if (!quiet) options.progress = progress;
        result = exp::run_sweep(sweep, options);
      }
      for (obs::TraceProcess& process : result.trace) {
        process.pid += trace_pid_base;
        process.name = sweep.name + " " + process.name;
        trace.push_back(std::move(process));
      }
      trace_pid_base += static_cast<int>(result.cells.size());
      total_cells += static_cast<int>(result.cells.size());
      failed_cells += result.failed;
      if (csv) {
        tables << "# sweep " << sweep.name << "\n"
               << exp::summary_table(result.spec, exp::summarize(result))
                      .to_csv()
               << "\n";
      } else {
        exp::print_summary(result, tables);
        tables << "\n";
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "psga_sweep: sweep '%s': %s\n", sweep.name.c_str(),
                   e.what());
      return 1;
    }
  }

  if (!trace_path.empty()) {
    std::ofstream trace_file(trace_path);
    if (!trace_file) {
      std::fprintf(stderr, "psga_sweep: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    obs::write_chrome_trace(trace_file, trace);
    if (!quiet) {
      std::fprintf(stderr, "psga_sweep: wrote %zu traced cell(s) to %s\n",
                   trace.size(), trace_path.c_str());
    }
  }

  std::fputs(tables.str().c_str(), stdout);
  if (!summary_path.empty()) {
    std::ofstream summary_file(summary_path);
    if (!summary_file) {
      std::fprintf(stderr, "psga_sweep: cannot write %s\n",
                   summary_path.c_str());
      return 1;
    }
    summary_file << tables.str();
  }
  if (failed_cells > 0) {
    std::fprintf(stderr, "psga_sweep: %d/%d cells failed\n", failed_cells,
                 total_cells);
  }
  // Any failed cell is a non-zero exit: failures are fail-soft inside
  // the sweep (every other cell still runs and reports) but must not
  // look like success to the calling shell. psgactl status mirrors this
  // for failed jobs.
  return failed_cells > 0 ? 1 : 0;
}
