#!/usr/bin/env bash
# Tier-1 verify + perf smoke for psga.
#
#   ./ci.sh            build, run the full ctest suite, rebuild the
#                      cache/async/sweep/service suites under
#                      ASan/UBSan and run them, run a psga_sweep smoke
#                      sweep (JSONL + summary validated), run a psgad
#                      service smoke (submit/watch/cancel/drain over a
#                      temp socket) and a session smoke (10-event seeded
#                      replanning trace, SLO met, transcript hash stable
#                      across two runs), emit a fresh bench JSON snapshot
#                      (bench_micro_decoders + bench_micro_cache +
#                      bench_session_latency merged), diff it against the
#                      committed BENCH_micro.json (per-bench deltas),
#                      then refresh the snapshot
#   SKIP_BENCH=1 ./ci.sh        tests only
#   SKIP_SAN=1 ./ci.sh          skip the sanitizer leg
#   SKIP_BENCH_DIFF=1 ./ci.sh   snapshot without the regression gate
#   BENCH_TOLERANCE=0.25        decode-bench regression threshold (fraction)
#
# The JSON snapshot gives future PRs a perf trajectory: the diff prints
# the per-benchmark change vs the committed baseline and FAILS when any
# decode bench regresses by more than BENCH_TOLERANCE (default 25%)
# beyond the suite-wide median drift (shared-host slowdowns move every
# bench together and are not regressions).
# Snapshots carry a psga_build_type context stamp and are refused
# entirely from Debug builds (debug numbers would poison the baseline);
# the summary also prints the batch-vs-scalar decode speedups.
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

# Sanitizer leg: the cache/async suites stress a double-buffered pipeline
# (coordinator threads writing objective slots the engine thread reads
# after the fence) and the sweep suite races whole solver runs across
# lanes, so run exactly those binaries under ASan/UBSan.
if [[ "${SKIP_SAN:-0}" != "1" ]]; then
  SAN_DIR=${SAN_DIR:-build-asan}
  cmake -B "$SAN_DIR" -S . -DPSGA_SANITIZE=ON \
        -DPSGA_BUILD_BENCHES=OFF -DPSGA_BUILD_EXAMPLES=OFF
  # Without GTest the target is never defined (main build only warns) —
  # degrade the same way instead of failing on the missing target.
  # (Capture first: `grep -q` would SIGPIPE make under pipefail.)
  SAN_TARGETS=$(cmake --build "$SAN_DIR" --target help 2>/dev/null || true)
  if grep -q psga_pipeline_tests <<<"$SAN_TARGETS"; then
    cmake --build "$SAN_DIR" -j "$JOBS" --target psga_pipeline_tests
    "$SAN_DIR"/psga_pipeline_tests --gtest_brief=1
    echo "ci.sh: sanitizer leg OK"
  else
    echo "psga_pipeline_tests not configured (GTest missing?); skipping sanitizer leg"
  fi
fi

# Sweep smoke: sweeps/smoke.sweep through the psga_sweep CLI (parallel,
# 2 cells in flight) — a 2-axes x 2-reps grid on ta001 plus a
# two-problem-family grid (flowshop ta001 + jobshop ft06) through the
# problem registry. Validates that every JSONL telemetry line parses,
# all cells succeeded, the family cells carry canonical problem specs,
# the summary table is non-empty, and the registry listings print.
if [[ -x "$BUILD_DIR/psga_sweep" ]] && command -v python3 >/dev/null; then
  # Capture first: piping straight into `grep -q` would SIGPIPE the
  # writer under pipefail once grep exits on its match.
  PROBLEM_ROWS=$("$BUILD_DIR"/psga_sweep --list-problems)
  grep -q "problem=jobshop" <<<"$PROBLEM_ROWS" \
    || { echo "ci.sh: --list-problems has no jobshop row"; exit 1; }
  ENGINE_ROWS=$("$BUILD_DIR"/psga_sweep --list-engines)
  grep -q "engine=island" <<<"$ENGINE_ROWS" \
    || { echo "ci.sh: --list-engines has no island row"; exit 1; }
  SWEEP_JSONL=$(mktemp /tmp/psga_sweep.XXXXXX.jsonl)
  SWEEP_SUMMARY=$(mktemp /tmp/psga_sweep_summary.XXXXXX.txt)
  "$BUILD_DIR"/psga_sweep --quiet --threads 2 \
    --telemetry "$SWEEP_JSONL" --summary "$SWEEP_SUMMARY" sweeps/smoke.sweep
  python3 - "$SWEEP_JSONL" "$SWEEP_SUMMARY" <<'PYEOF'
import json
import sys

cells = ok = 0
families = set()
with open(sys.argv[1]) as f:
    for line in f:
        record = json.loads(line)  # every line must parse
        # Every record is stamped with the telemetry schema version
        # (consumers key their parsers off it; see docs/sweeps.md).
        version = record.get("schema_version")
        assert version == 1, f"bad schema_version {version!r}: {line!r}"
        if record.get("event") == "cell":
            cells += 1
            ok += bool(record["ok"])
            problem = record.get("problem", "")
            if problem:
                families.add(problem.split()[0])
with open(sys.argv[2]) as f:
    summary = f.read()
assert cells == 12, f"expected 12 cell records, got {cells}"
assert ok == cells, f"{cells - ok} smoke sweep cells failed"
assert families == {"problem=flowshop", "problem=jobshop"}, (
    f"expected both problem families in telemetry, got {families}")
assert "topology" in summary and "|" in summary, "summary table looks empty"
print(f"ci.sh: sweep smoke OK ({cells} cells over {len(families)} "
      "problem families, telemetry parses)")
PYEOF
  rm -f "$SWEEP_JSONL" "$SWEEP_SUMMARY"

  # Traced re-run of the same sweep: --trace must produce a Chrome
  # trace-event file Perfetto would load — one process track per cell,
  # process_name metadata, and well-formed complete ("X") spans.
  TRACE_JSON=$(mktemp /tmp/psga_trace.XXXXXX.json)
  "$BUILD_DIR"/psga_sweep --quiet --threads 2 --trace "$TRACE_JSON" \
    sweeps/smoke.sweep >/dev/null
  python3 - "$TRACE_JSON" <<'PYEOF'
import json
import sys

with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "trace has no events"
pids = {e["pid"] for e in events}
metadata = {e["name"] for e in events if e["ph"] == "M"}
spans = [e for e in events if e["ph"] == "X"]
assert "process_name" in metadata, "missing process_name metadata"
assert spans, "no complete (X) span events"
assert len(pids) == 12, f"expected 12 cell tracks, got {len(pids)}"
for e in spans:
    assert e["name"] and e["ts"] >= 0 and e["dur"] >= 0, e
print(f"ci.sh: trace smoke OK ({len(spans)} spans over "
      f"{len(pids)} cell tracks)")
PYEOF
  rm -f "$TRACE_JSON"
else
  echo "psga_sweep or python3 missing; skipping sweep smoke"
fi

# Service smoke: the psgad/psgactl pair end to end (docs/service.md) —
# start a daemon on a temp socket, submit a small flowshop job and watch
# its telemetry stream (every line must parse and carry schema_version),
# cancel a long-running job mid-flight, drain, and require the daemon to
# exit 0 and unlink its socket.
if [[ -x "$BUILD_DIR/psgad" && -x "$BUILD_DIR/psgactl" ]] \
   && command -v python3 >/dev/null; then
  SVC_SOCKET=$(mktemp -u /tmp/psgad_ci.XXXXXX.sock)
  "$BUILD_DIR"/psgad --socket "$SVC_SOCKET" --workers 2 &
  SVC_PID=$!
  # The daemon binds before accepting; poll ping rather than sleeping.
  for _ in $(seq 50); do
    "$BUILD_DIR"/psgactl --socket "$SVC_SOCKET" ping >/dev/null 2>&1 && break
    sleep 0.1
  done
  "$BUILD_DIR"/psgactl --socket "$SVC_SOCKET" ping >/dev/null \
    || { echo "ci.sh: psgad did not come up on $SVC_SOCKET"; exit 1; }

  SVC_JOB=$("$BUILD_DIR"/psgactl --socket "$SVC_SOCKET" submit \
    'problem=flowshop instance=ta001 engine=island eval=async_pool seed=7' \
    --generations 10)
  SVC_WATCH=$(mktemp /tmp/psgad_ci_watch.XXXXXX.jsonl)
  "$BUILD_DIR"/psgactl --socket "$SVC_SOCKET" watch "$SVC_JOB" > "$SVC_WATCH"
  python3 - "$SVC_WATCH" <<'PYEOF'
import json
import sys

lines = [json.loads(line) for line in open(sys.argv[1])]  # all must parse
assert lines, "watch streamed no telemetry"
for record in lines:
    version = record.get("schema_version")
    assert version == 1, f"bad schema_version {version!r}: {record!r}"
assert lines[0]["event"] == "run_begin", lines[0]
assert lines[-1]["event"] == "job_end" and lines[-1]["ok"], lines[-1]
generations = sum(r.get("event") == "generation" for r in lines)
assert generations >= 10, f"only {generations} generation records"
print(f"ci.sh: watch streamed {len(lines)} telemetry lines "
      f"(best={lines[-1]['best_objective']})")
PYEOF
  rm -f "$SVC_WATCH"

  # Stats/info scrape: the daemon's metrics registry over the wire —
  # `stats` returns the full snapshot (obs_json layout), `info` the
  # build type, uptime, cumulative totals and latency percentiles.
  SVC_STATS=$(mktemp /tmp/psgad_ci_stats.XXXXXX.json)
  SVC_INFO=$(mktemp /tmp/psgad_ci_info.XXXXXX.json)
  "$BUILD_DIR"/psgactl --socket "$SVC_SOCKET" stats > "$SVC_STATS"
  "$BUILD_DIR"/psgactl --socket "$SVC_SOCKET" info > "$SVC_INFO"
  python3 - "$SVC_STATS" "$SVC_INFO" <<'PYEOF'
import json
import sys

with open(sys.argv[1]) as f:
    stats = json.load(f)
assert stats["ok"] and stats["uptime_seconds"] >= 0, stats
counters = stats["metrics"]["counters"]
assert counters.get("svc.jobs.admitted", 0) >= 1, counters
assert counters.get("svc.jobs.completed", 0) >= 1, counters
assert stats["metrics"]["histograms"]["svc.job.run_ns"]["count"] >= 1, (
    stats["metrics"]["histograms"])
with open(sys.argv[2]) as f:
    info = json.load(f)
assert info["build_type"], info
assert info["uptime_seconds"] >= 0, info
assert info["totals"]["admitted"] >= 1, info
assert info["latency"]["run"]["p50"] >= 0, info
print("ci.sh: stats scrape OK (admitted="
      f"{counters['svc.jobs.admitted']}, build={info['build_type']})")
PYEOF
  rm -f "$SVC_STATS" "$SVC_INFO"

  CANCEL_JOB=$("$BUILD_DIR"/psgactl --socket "$SVC_SOCKET" submit \
    'problem=flowshop instance=ta001 engine=simple pop=8 seed=1' \
    --generations 50000000)
  "$BUILD_DIR"/psgactl --socket "$SVC_SOCKET" cancel "$CANCEL_JOB" >/dev/null
  CANCELLED=$("$BUILD_DIR"/psgactl --socket "$SVC_SOCKET" wait "$CANCEL_JOB")
  grep -q cancelled <<<"$CANCELLED" \
    || { echo "ci.sh: cancel did not land: $CANCELLED"; exit 1; }

  "$BUILD_DIR"/psgactl --socket "$SVC_SOCKET" drain >/dev/null
  if ! wait "$SVC_PID"; then
    echo "ci.sh: psgad exited non-zero after drain"; exit 1
  fi
  if [[ -e "$SVC_SOCKET" ]]; then
    echo "ci.sh: psgad left its socket behind"; exit 1
  fi
  echo "ci.sh: service smoke OK (submit/watch/cancel/drain)"
else
  echo "psgad/psgactl or python3 missing; skipping service smoke"
fi

# Session smoke: the online replanning path end to end (docs/sessions.md)
# — open a session on a live psgad, stream a fixed 10-event trace through
# `psgactl session event` (which exits 1 on an SLO miss), replay the
# identical trace in a second session and require bit-identical
# transcript hashes (the determinism invariant, exercised through the
# daemon's shared cache and manager workers), check the daemon reports no
# active sessions afterwards, then drain cleanly.
if [[ -x "$BUILD_DIR/psgad" && -x "$BUILD_DIR/psgactl" ]]; then
  SES_SOCKET=$(mktemp -u /tmp/psgad_ses.XXXXXX.sock)
  "$BUILD_DIR"/psgad --socket "$SES_SOCKET" --workers 2 &
  SES_PID=$!
  for _ in $(seq 50); do
    "$BUILD_DIR"/psgactl --socket "$SES_SOCKET" ping >/dev/null 2>&1 && break
    sleep 0.1
  done
  "$BUILD_DIR"/psgactl --socket "$SES_SOCKET" ping >/dev/null \
    || { echo "ci.sh: psgad did not come up on $SES_SOCKET"; exit 1; }

  # Breakdowns, arrivals and due-date changes interleaved, times
  # non-decreasing — every session event kind crosses the wire.
  SES_TRACE=(
    "kind=breakdown time=5 machine=0 duration=8"
    "kind=breakdown time=9 machine=3 duration=6"
    "kind=arrival time=14 route=0:4,2:6,4:3"
    "kind=due time=18 job=2 due=70"
    "kind=breakdown time=22 machine=1 duration=10"
    "kind=arrival time=27 route=5:5,1:4,3:6,0:2"
    "kind=breakdown time=33 machine=5 duration=7"
    "kind=due time=38 job=1 due=90"
    "kind=breakdown time=45 machine=2 duration=9"
    "kind=arrival time=52 route=2:3,4:5"
  )
  SES_HASHES=()
  for _ in 1 2; do
    SES_ID=$("$BUILD_DIR"/psgactl --socket "$SES_SOCKET" session open ft06 \
      --generations 12 --seed 7 --slo 5)
    for event in "${SES_TRACE[@]}"; do
      "$BUILD_DIR"/psgactl --socket "$SES_SOCKET" session event "$SES_ID" \
        "$event" >/dev/null \
        || { echo "ci.sh: session event failed or missed its SLO: $event"
             exit 1; }
    done
    SES_CLOSE=$("$BUILD_DIR"/psgactl --socket "$SES_SOCKET" session close \
      "$SES_ID")
    SES_HASHES+=("${SES_CLOSE##*transcript_hash=}")
  done
  if [[ -z "${SES_HASHES[0]}" \
        || "${SES_HASHES[0]}" != "${SES_HASHES[1]}" ]]; then
    echo "ci.sh: session transcripts diverged: ${SES_HASHES[*]}"; exit 1
  fi
  grep -q '"sessions": 0' \
    <<<"$("$BUILD_DIR"/psgactl --socket "$SES_SOCKET" info)" \
    || { echo "ci.sh: daemon still reports active sessions"; exit 1; }

  "$BUILD_DIR"/psgactl --socket "$SES_SOCKET" drain >/dev/null
  if ! wait "$SES_PID"; then
    echo "ci.sh: psgad exited non-zero after session smoke"; exit 1
  fi
  echo "ci.sh: session smoke OK (${#SES_TRACE[@]} events x 2 runs, SLO met," \
       "transcript hash ${SES_HASHES[0]})"
else
  echo "psgad/psgactl missing; skipping session smoke"
fi

# Dispatch resume smoke: run the smoke sweep through `psga_sweep
# --dispatch --jobs 2` against a live psgad, SIGKILL the sweep once the
# first finished cell record lands, then `--resume` it to completion.
# Validates the headline resume invariant — the resumed telemetry holds
# every cell exactly once (no duplicates, no holes) — and renders it
# with psga_report, checking the CSV parses and the HTML is whole.
if [[ -x "$BUILD_DIR/psga_sweep" && -x "$BUILD_DIR/psgad" \
      && -x "$BUILD_DIR/psga_report" ]] && command -v python3 >/dev/null; then
  DSP_SOCKET=$(mktemp -u /tmp/psgad_dsp.XXXXXX.sock)
  "$BUILD_DIR"/psgad --socket "$DSP_SOCKET" --workers 2 &
  DSP_PID=$!
  for _ in $(seq 50); do
    "$BUILD_DIR"/psgactl --socket "$DSP_SOCKET" ping >/dev/null 2>&1 && break
    sleep 0.1
  done
  "$BUILD_DIR"/psgactl --socket "$DSP_SOCKET" ping >/dev/null \
    || { echo "ci.sh: psgad did not come up on $DSP_SOCKET"; exit 1; }
  DSP_JSONL=$(mktemp /tmp/psga_dispatch.XXXXXX.jsonl)
  DSP_SUMMARY=$(mktemp /tmp/psga_dispatch_summary.XXXXXX.csv)
  "$BUILD_DIR"/psga_sweep --quiet --dispatch "$DSP_SOCKET" --jobs 2 \
    --telemetry "$DSP_JSONL" sweeps/smoke.sweep >/dev/null &
  DSP_SWEEP_PID=$!
  # Kill the dispatch as soon as the first finished cell lands. If it
  # finishes first, the resume below must still yield a complete,
  # duplicate-free file — the invariant holds either way.
  for _ in $(seq 200); do
    grep -q '"event":"cell"' "$DSP_JSONL" 2>/dev/null && break
    kill -0 "$DSP_SWEEP_PID" 2>/dev/null || break
    sleep 0.05
  done
  kill -9 "$DSP_SWEEP_PID" 2>/dev/null || true
  wait "$DSP_SWEEP_PID" 2>/dev/null || true
  "$BUILD_DIR"/psga_sweep --quiet --dispatch "$DSP_SOCKET" --jobs 2 \
    --resume "$DSP_JSONL" --csv --summary "$DSP_SUMMARY" \
    sweeps/smoke.sweep >/dev/null
  python3 - "$DSP_JSONL" "$DSP_SUMMARY" <<'PYEOF'
import csv
import json
import sys

hashes = {}
bad = 0
with open(sys.argv[1]) as f:
    for line in f:
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            bad += 1  # the SIGKILL's partial line; every consumer skips it
            continue
        if record.get("event") == "cell":
            count = hashes.get(record["hash"], 0)
            hashes[record["hash"]] = count + 1
            assert record["ok"], record
assert bad <= 1, f"{bad} unparsable telemetry lines"
assert len(hashes) == 12, f"expected 12 distinct cells, got {len(hashes)}"
dupes = {h: n for h, n in hashes.items() if n != 1}
assert not dupes, f"duplicate cell records after resume: {dupes}"
rows = [r for r in csv.reader(open(sys.argv[2]))
        if r and not r[0].startswith("# ")]
assert len(rows) >= 6, "resumed summary CSV looks empty"
print(f"ci.sh: dispatch resume smoke OK "
      f"({len(hashes)} cells once each, {bad} partial line)")
PYEOF
  DSP_CSV=$(mktemp /tmp/psga_report.XXXXXX.csv)
  DSP_HTML=$(mktemp /tmp/psga_report.XXXXXX.html)
  "$BUILD_DIR"/psga_report --csv "$DSP_CSV" --html "$DSP_HTML" \
    "$DSP_JSONL" 2>/dev/null
  python3 - "$DSP_CSV" "$DSP_HTML" <<'PYEOF'
import csv
import sys

data = 0
ok_column = None
for row in csv.reader(open(sys.argv[1])):
    if not row or row[0].startswith("# "):
        continue
    if row[1] == "cell":  # per-sweep header; axis columns vary per block
        ok_column = row.index("ok")
        continue
    assert ok_column is not None, f"cell row before any header: {row}"
    assert row[ok_column] == "true", f"report CSV has a failed cell: {row}"
    data += 1
assert data == 12, f"expected 12 CSV cell rows, got {data}"
html = open(sys.argv[2]).read()
assert "<svg" in html and "</html>" in html, "report HTML incomplete"
assert 'class="tiles"' in html and "cell p95" in html, (
    "report HTML is missing the latency tiles")
print("ci.sh: report render OK (CSV parses, HTML whole, latency tiles)")
PYEOF
  "$BUILD_DIR"/psgactl --socket "$DSP_SOCKET" drain >/dev/null
  if ! wait "$DSP_PID"; then
    echo "ci.sh: psgad exited non-zero after dispatch smoke"; exit 1
  fi
  rm -f "$DSP_JSONL" "$DSP_SUMMARY" "$DSP_CSV" "$DSP_HTML"
else
  echo "psga_sweep/psgad/psga_report or python3 missing; skipping dispatch resume smoke"
fi

if [[ "${SKIP_BENCH:-0}" != "1" && ! -x "$BUILD_DIR/bench_micro_decoders" ]]; then
  echo "bench_micro_decoders not built (google-benchmark missing?); skipping perf snapshot"
  SKIP_BENCH=1
fi

# The committed snapshot must record optimized numbers: a Debug build
# would both pollute the baseline and trip the regression gate with
# meaningless 5-10x deltas, so refuse to snapshot or compare from one.
# (google-benchmark's own library_build_type reflects the *system*
# benchmark library, not this tree — read the cache instead.)
PSGA_BUILD_TYPE=""
if [[ -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  PSGA_BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
                    "$BUILD_DIR/CMakeCache.txt" | head -1)
fi
if [[ "${SKIP_BENCH:-0}" != "1" && "${PSGA_BUILD_TYPE,,}" == "debug" ]]; then
  echo "ci.sh: $BUILD_DIR is a Debug build; refusing to snapshot or diff benches"
  SKIP_BENCH=1
fi

if [[ "${SKIP_BENCH:-0}" != "1" ]]; then
  FRESH=$(mktemp /tmp/psga_bench_micro.XXXXXX.json)
  # Repetitions + medians: single runs on a busy host swing by +-30%,
  # which is larger than the regression gate's tolerance.
  "$BUILD_DIR"/bench_micro_decoders \
    --benchmark_min_time=0.05 \
    --benchmark_repetitions=5 \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json \
    --benchmark_out="$FRESH" \
    --benchmark_out_format=json >/dev/null

  # Keep only the median aggregate per bench, under the plain bench name,
  # so the snapshot format (and the committed baseline's names) stay the
  # same as a single-run snapshot.
  if command -v python3 >/dev/null; then
    python3 - "$FRESH" <<'PYEOF'
import json
import sys

with open(sys.argv[1]) as f:
    snapshot = json.load(f)
medians = [b for b in snapshot["benchmarks"]
           if b.get("aggregate_name") == "median"]
if medians:
    for b in medians:
        b["name"] = b["name"].removesuffix("_median")
    snapshot["benchmarks"] = medians
with open(sys.argv[1], "w") as f:
    json.dump(snapshot, f, indent=1)
PYEOF
  fi

  # Merge the cache/async bench into the same snapshot so the
  # hit-rate/decode-reduction counters live in BENCH_micro.json.
  if [[ -x "$BUILD_DIR/bench_micro_cache" ]] && command -v python3 >/dev/null; then
    CACHE_FRESH=$(mktemp /tmp/psga_bench_cache.XXXXXX.json)
    "$BUILD_DIR"/bench_micro_cache \
      --benchmark_min_time=0.05 \
      --benchmark_format=json \
      --benchmark_out="$CACHE_FRESH" \
      --benchmark_out_format=json >/dev/null
    python3 - "$FRESH" "$CACHE_FRESH" <<'PYEOF'
import json
import sys

with open(sys.argv[1]) as f:
    merged = json.load(f)
with open(sys.argv[2]) as f:
    merged["benchmarks"].extend(json.load(f)["benchmarks"])
with open(sys.argv[1], "w") as f:
    json.dump(merged, f, indent=1)
PYEOF
    rm -f "$CACHE_FRESH"
  fi

  # Session event-latency snapshot: bench_session_latency reports the
  # per-event replan p95 (manual time) for warm and cold sessions over a
  # fixed seeded trace. Medians-of-5 ride into BENCH_micro.json like the
  # decoder benches, and the SessionEvent tag puts them under the same
  # >25% regression gate.
  if [[ -x "$BUILD_DIR/bench_session_latency" ]] \
     && command -v python3 >/dev/null; then
    SES_FRESH=$(mktemp /tmp/psga_bench_session.XXXXXX.json)
    "$BUILD_DIR"/bench_session_latency \
      --benchmark_min_time=0.05 \
      --benchmark_repetitions=5 \
      --benchmark_report_aggregates_only=true \
      --benchmark_format=json \
      --benchmark_out="$SES_FRESH" \
      --benchmark_out_format=json >/dev/null
    python3 - "$FRESH" "$SES_FRESH" <<'PYEOF'
import json
import sys

with open(sys.argv[1]) as f:
    merged = json.load(f)
with open(sys.argv[2]) as f:
    session = json.load(f)["benchmarks"]
medians = [b for b in session if b.get("aggregate_name") == "median"]
for b in medians:
    b["name"] = b["name"].removesuffix("_median")
merged["benchmarks"].extend(medians)
with open(sys.argv[1], "w") as f:
    json.dump(merged, f, indent=1)
PYEOF
    rm -f "$SES_FRESH"
  fi

  # Obs overhead gate: the always-on metrics write path must stay under
  # OBS_TOLERANCE (default 2%) of a decode-heavy engine run. The
  # enabled/disabled legs run back to back in one process so host drift
  # cancels out, and the gate judges min-of-repetitions (contention
  # only ever inflates a timing). A burst can still poison a whole
  # process, so a failing measurement is retried in fresh processes.
  if [[ -x "$BUILD_DIR/bench_micro_obs" ]] && command -v python3 >/dev/null; then
    OBS_FRESH=$(mktemp /tmp/psga_bench_obs.XXXXXX.json)
    OBS_OK=0
    for attempt in 1 2 3; do
      "$BUILD_DIR"/bench_micro_obs \
        --benchmark_min_time=0.05 \
        --benchmark_repetitions=5 \
        --benchmark_format=json \
        --benchmark_out="$OBS_FRESH" \
        --benchmark_out_format=json >/dev/null
      if OBS_TOLERANCE=${OBS_TOLERANCE:-0.02} \
         python3 - "$OBS_FRESH" <<'PYEOF'
import json
import os
import sys

tolerance = float(os.environ.get("OBS_TOLERANCE", "0.02"))
with open(sys.argv[1]) as f:
    benches = json.load(f)["benchmarks"]


def best(name):
    times = [b["real_time"] for b in benches
             if b["name"].startswith(name)
             and b.get("run_type") == "iteration"]
    assert times, f"no iteration timings for {name}"
    return min(times)


off = best("BM_DecodeRunObs/metrics:0")
on = best("BM_DecodeRunObs/metrics:1")
ratio = on / off
print(f"ci.sh: obs overhead {ratio - 1.0:+.2%} (metrics on {on:.2f} vs "
      f"off {off:.2f} ms, gate {tolerance:.0%})")
sys.exit(0 if ratio <= 1.0 + tolerance else 1)
PYEOF
      then OBS_OK=1; break; fi
      echo "ci.sh: obs overhead above gate, retrying ($attempt/3)"
    done
    if [[ "$OBS_OK" != "1" ]]; then
      echo "ci.sh: metrics-enabled decode run stayed > ${OBS_TOLERANCE:-0.02} slower across retries"
      exit 1
    fi
    # The primitive-cost benches ride into BENCH_micro.json with the
    # other micro suites (median aggregates, plain names).
    python3 - "$FRESH" "$OBS_FRESH" <<'PYEOF'
import json
import sys

with open(sys.argv[1]) as f:
    merged = json.load(f)
with open(sys.argv[2]) as f:
    obs = json.load(f)["benchmarks"]
medians = [b for b in obs if b.get("aggregate_name") == "median"]
for b in medians:
    b["name"] = b["name"].removesuffix("_median")
merged["benchmarks"].extend(medians)
with open(sys.argv[1], "w") as f:
    json.dump(merged, f, indent=1)
PYEOF
    rm -f "$OBS_FRESH"
  fi

  # Stamp the snapshot with this tree's build type so a future diff can
  # tell an optimized baseline from a stray debug one.
  if command -v python3 >/dev/null; then
    python3 - "$FRESH" "$PSGA_BUILD_TYPE" <<'PYEOF'
import json
import sys

with open(sys.argv[1]) as f:
    snapshot = json.load(f)
snapshot.setdefault("context", {})["psga_build_type"] = sys.argv[2]
with open(sys.argv[1], "w") as f:
    json.dump(snapshot, f, indent=1)
PYEOF
  fi

  if [[ "${SKIP_BENCH_DIFF:-0}" != "1" && -f BENCH_micro.json ]] \
     && command -v python3 >/dev/null; then
    # The gate python prints the delta table and writes the names of
    # regressed decode benches to $3 (empty file = pass).
    GATE_FAILS=$(mktemp /tmp/psga_bench_fails.XXXXXX)
    # Optional $1: file of bench names — only those may fail the gate
    # (used by the retry pass so a drift re-estimate over the updated
    # suite cannot flag benches that already passed the first pass).
    run_bench_gate() {
      BENCH_TOLERANCE=${BENCH_TOLERANCE:-0.25} GATE_ONLY="${1:-}" \
        python3 - BENCH_micro.json "$FRESH" "$GATE_FAILS" <<'PYEOF'
import json
import os
import sys

tolerance = float(os.environ.get("BENCH_TOLERANCE", "0.25"))
only = set()
if os.environ.get("GATE_ONLY"):
    with open(os.environ["GATE_ONLY"]) as f:
        only = {line.strip() for line in f if line.strip()}
with open(sys.argv[1]) as f:
    baseline = {b["name"]: b for b in json.load(f)["benchmarks"]}
with open(sys.argv[2]) as f:
    fresh = {b["name"]: b for b in json.load(f)["benchmarks"]}

# On a shared host the whole suite drifts together run-to-run (other
# tenants, frequency scaling) by more than the tolerance, so gate on the
# drift-normalized delta: each bench's time ratio divided by the median
# ratio across the full suite. A real regression moves one bench
# relative to the rest; host slowdown moves them all and cancels out.
ratios = sorted(fresh[n]["real_time"] / baseline[n]["real_time"]
                for n in fresh if n in baseline)
drift = ratios[len(ratios) // 2] if ratios else 1.0
# Host contention only ever *slows* the suite; a median ratio below 1.0
# means the committed baseline itself was recorded under load, and
# dividing by it would flag benches whose raw time barely moved. So only
# normalize slowdowns away — never penalize a run for being faster.
drift = max(drift, 1.0)

width = max((len(n) for n in fresh), default=20)
print(f"\n-- bench deltas vs committed BENCH_micro.json "
      f"(host drift x{drift:.2f}; gate: decode benches "
      f"> {tolerance:.0%} slower than drift fail)")
failures = []
for name, bench in fresh.items():
    old = baseline.get(name)
    if old is None:
        print(f"  {name:<{width}}  (new bench)")
        continue
    delta = bench["real_time"] / old["real_time"] - 1.0
    normalized = bench["real_time"] / old["real_time"] / drift - 1.0
    # The regression gate covers the decoder benches (the evaluation hot
    # path this snapshot exists to guard) plus the session event-latency
    # p95s; *_Scratch twins included.
    gated = any(tag in name for tag in
                ("Decode", "SemiActive", "GifflerThompson", "Makespan",
                 "Flexible", "LotStreaming", "OpenShop", "HybridFlowShop",
                 "SessionEvent"))
    marker = ""
    if only and name not in only:
        gated = False
    if gated and normalized > tolerance:
        marker = "  << REGRESSION"
        failures.append((name, normalized))
    print(f"  {name:<{width}}  {old['real_time']:10.0f} -> "
          f"{bench['real_time']:10.0f} {bench.get('time_unit', 'ns')} "
          f"({delta:+7.1%} raw, {normalized:+7.1%} vs drift){marker}")
for name in baseline:
    if name not in fresh:
        print(f"  {name:<{width}}  (removed)")
with open(sys.argv[3], "w") as f:
    for name, delta in failures:
        f.write(f"{name}\n")
if failures:
    print(f"\nci.sh: {len(failures)} decode bench(es) regressed more than "
          f"{tolerance:.0%} beyond the suite-wide drift")
print()
PYEOF
    }
    run_bench_gate
    if [[ -s "$GATE_FAILS" ]]; then
      # Contention bursts during the minutes-long full suite inflate
      # individual benches by up to ~60% (narrow re-runs of the same
      # benches are stable within a few %), so re-measure just the
      # failing benches in isolation and re-judge on those numbers; the
      # isolated timings also land in the refreshed snapshot. Two noise
      # sources, two countermeasures: contention only ever inflates a
      # timing, so the retry judges on the min rather than the median —
      # and some benches are bimodal *per process* (heap/ASLR layout
      # locks each process into a fast or slow mode for its lifetime),
      # so the min is taken across several separate retry processes,
      # letting one fast-mode process clear a bench that is not slower.
      FILTER="^($(paste -sd'|' "$GATE_FAILS"))\$"
      RETRY_LIST=$(mktemp /tmp/psga_bench_retry_list.XXXXXX)
      cp "$GATE_FAILS" "$RETRY_LIST"
      echo "ci.sh: re-measuring $(wc -l < "$GATE_FAILS") failing bench(es) in isolation"
      RETRY_FILES=()
      for attempt in 1 2 3 4; do
        RETRY=$(mktemp "/tmp/psga_bench_retry.${attempt}.XXXXXX.json")
        RETRY_FILES+=("$RETRY")
        "$BUILD_DIR"/bench_micro_decoders \
          --benchmark_filter="$FILTER" \
          --benchmark_min_time=0.05 \
          --benchmark_repetitions=3 \
          --benchmark_format=json \
          --benchmark_out="$RETRY" \
          --benchmark_out_format=json >/dev/null
        # The session benches live in their own binary; re-measure them
        # too when one of them is what failed (family-level filter — the
        # reported /manual_time suffix is not part of the filter name).
        if grep -q SessionEvent "$GATE_FAILS" \
           && [[ -x "$BUILD_DIR/bench_session_latency" ]]; then
          SES_RETRY=$(mktemp "/tmp/psga_bench_sretry.${attempt}.XXXXXX.json")
          RETRY_FILES+=("$SES_RETRY")
          "$BUILD_DIR"/bench_session_latency \
            --benchmark_filter="BM_SessionEventP95" \
            --benchmark_min_time=0.05 \
            --benchmark_repetitions=3 \
            --benchmark_format=json \
            --benchmark_out="$SES_RETRY" \
            --benchmark_out_format=json >/dev/null
        fi
      done
      python3 - "$FRESH" "${RETRY_FILES[@]}" <<'PYEOF'
import json
import sys

with open(sys.argv[1]) as f:
    snapshot = json.load(f)
remeasured = {}
for path in sys.argv[2:]:
    with open(path) as f:
        # A retry binary whose filter matched nothing leaves an empty
        # out file (exit 0, no JSON) — e.g. bench_micro_decoders when
        # only session benches failed. Skip it.
        text = f.read()
    if not text.strip():
        continue
    retry = json.loads(text)["benchmarks"]
    for b in retry:
        if b.get("run_type") != "iteration":
            continue
        cur = remeasured.get(b["name"])
        if cur is None or b["real_time"] < cur["real_time"]:
            remeasured[b["name"]] = b
for b in snapshot["benchmarks"]:
    if b["name"] in remeasured:
        fixed = dict(remeasured[b["name"]])
        fixed["name"] = b["name"]
        b.clear()
        b.update(fixed)
with open(sys.argv[1], "w") as f:
    json.dump(snapshot, f, indent=1)
PYEOF
      rm -f "${RETRY_FILES[@]}"
      run_bench_gate "$RETRY_LIST"
      rm -f "$RETRY_LIST"
    fi
    if [[ -s "$GATE_FAILS" ]]; then
      echo "ci.sh: decode bench regression confirmed by isolated re-run:"
      cat "$GATE_FAILS"
      rm -f "$GATE_FAILS"
      exit 1
    fi
    rm -f "$GATE_FAILS"
  fi

  # Scalar-vs-batch decode speedup summary (items/s, so the batched
  # kernels are directly comparable to their one-genome twins).
  if command -v python3 >/dev/null; then
    python3 - "$FRESH" <<'PYEOF'
import json
import sys

with open(sys.argv[1]) as f:
    benches = {b["name"]: b for b in json.load(f)["benchmarks"]}
pairs = [
    ("BM_FlowShopMakespan/20/5", "BM_FlowShopMakespanBatch/20/5/16"),
    ("BM_FlowShopMakespan/50/10", "BM_FlowShopMakespanBatch/50/10/16"),
    ("BM_FlowShopMakespan/100/20", "BM_FlowShopMakespanBatch/100/20/16"),
    ("BM_JobShopSemiActiveScratch", "BM_JobShopSemiActiveBatch/16"),
    ("BM_JobShopGifflerThompsonScratch", "BM_JobShopGifflerThompsonBatch/16"),
]
rows = []
for scalar, batch in pairs:
    s, b = benches.get(scalar), benches.get(batch)
    if not s or not b:
        continue
    su, bu = s.get("items_per_second"), b.get("items_per_second")
    if not su or not bu:
        continue
    rows.append((batch, bu / su, scalar))
if rows:
    print("-- batch decode speedup vs scalar (items/s)")
    width = max(len(r[0]) for r in rows)
    for batch, speedup, scalar in rows:
        print(f"  {batch:<{width}}  {speedup:5.2f}x vs {scalar}")
    print()
PYEOF
  fi

  mv "$FRESH" BENCH_micro.json
  echo "wrote BENCH_micro.json"
fi

echo "ci.sh: OK"
