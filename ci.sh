#!/usr/bin/env bash
# Tier-1 verify + perf smoke for psga.
#
#   ./ci.sh            build, run the full ctest suite, emit a fresh
#                      bench_micro_decoders JSON snapshot, diff it against
#                      the committed BENCH_micro.json (per-bench deltas),
#                      then refresh the snapshot
#   SKIP_BENCH=1 ./ci.sh        tests only
#   SKIP_BENCH_DIFF=1 ./ci.sh   snapshot without the regression gate
#   BENCH_TOLERANCE=0.25        decode-bench regression threshold (fraction)
#
# The JSON snapshot gives future PRs a perf trajectory: the diff prints
# the per-benchmark change vs the committed baseline and FAILS when any
# decode bench regresses by more than BENCH_TOLERANCE (default 25%).
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

if [[ "${SKIP_BENCH:-0}" != "1" && ! -x "$BUILD_DIR/bench_micro_decoders" ]]; then
  echo "bench_micro_decoders not built (google-benchmark missing?); skipping perf snapshot"
  SKIP_BENCH=1
fi

if [[ "${SKIP_BENCH:-0}" != "1" ]]; then
  FRESH=$(mktemp /tmp/psga_bench_micro.XXXXXX.json)
  "$BUILD_DIR"/bench_micro_decoders \
    --benchmark_min_time=0.05 \
    --benchmark_format=json \
    --benchmark_out="$FRESH" \
    --benchmark_out_format=json >/dev/null

  if [[ "${SKIP_BENCH_DIFF:-0}" != "1" && -f BENCH_micro.json ]] \
     && command -v python3 >/dev/null; then
    BENCH_TOLERANCE=${BENCH_TOLERANCE:-0.25} \
      python3 - BENCH_micro.json "$FRESH" <<'PYEOF'
import json
import os
import sys

tolerance = float(os.environ.get("BENCH_TOLERANCE", "0.25"))
with open(sys.argv[1]) as f:
    baseline = {b["name"]: b for b in json.load(f)["benchmarks"]}
with open(sys.argv[2]) as f:
    fresh = {b["name"]: b for b in json.load(f)["benchmarks"]}

width = max((len(n) for n in fresh), default=20)
print(f"\n-- bench deltas vs committed BENCH_micro.json "
      f"(gate: decode benches > {tolerance:.0%} slower fail)")
failures = []
for name, bench in fresh.items():
    old = baseline.get(name)
    if old is None:
        print(f"  {name:<{width}}  (new bench)")
        continue
    delta = bench["real_time"] / old["real_time"] - 1.0
    # The regression gate covers the decoder benches (the evaluation hot
    # path this snapshot exists to guard); *_Scratch twins included.
    gated = any(tag in name for tag in
                ("Decode", "SemiActive", "GifflerThompson", "Makespan",
                 "Flexible", "LotStreaming", "OpenShop", "HybridFlowShop"))
    marker = ""
    if gated and delta > tolerance:
        marker = "  << REGRESSION"
        failures.append((name, delta))
    print(f"  {name:<{width}}  {old['real_time']:10.0f} -> "
          f"{bench['real_time']:10.0f} {bench.get('time_unit', 'ns')} "
          f"({delta:+7.1%}){marker}")
for name in baseline:
    if name not in fresh:
        print(f"  {name:<{width}}  (removed)")
if failures:
    print(f"\nci.sh: {len(failures)} decode bench(es) regressed more than "
          f"{tolerance:.0%}:")
    for name, delta in failures:
        print(f"  {name}: {delta:+.1%}")
    sys.exit(1)
print()
PYEOF
  fi

  mv "$FRESH" BENCH_micro.json
  echo "wrote BENCH_micro.json"
fi

echo "ci.sh: OK"
