#!/usr/bin/env bash
# Tier-1 verify + perf smoke for psga.
#
#   ./ci.sh            build, run the full ctest suite, then emit a
#                      bench_micro_decoders JSON snapshot to BENCH_micro.json
#   SKIP_BENCH=1 ./ci.sh   tests only
#
# The JSON snapshot gives future PRs a perf trajectory: compare the
# *_Scratch decoder timings against the committed baseline before and
# after a change to the evaluation hot path.
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

if [[ "${SKIP_BENCH:-0}" != "1" && ! -x "$BUILD_DIR/bench_micro_decoders" ]]; then
  echo "bench_micro_decoders not built (google-benchmark missing?); skipping perf snapshot"
  SKIP_BENCH=1
fi

if [[ "${SKIP_BENCH:-0}" != "1" ]]; then
  "$BUILD_DIR"/bench_micro_decoders \
    --benchmark_min_time=0.05 \
    --benchmark_format=json \
    --benchmark_out=BENCH_micro.json \
    --benchmark_out_format=json >/dev/null
  echo "wrote BENCH_micro.json"
fi

echo "ci.sh: OK"
