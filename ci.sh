#!/usr/bin/env bash
# Tier-1 verify + perf smoke for psga.
#
#   ./ci.sh            build, run the full ctest suite, rebuild the
#                      cache/async/sweep determinism suites under
#                      ASan/UBSan and run them, run a psga_sweep smoke
#                      sweep (JSONL + summary validated), emit a fresh
#                      bench JSON snapshot
#                      (bench_micro_decoders + bench_micro_cache merged),
#                      diff it against the committed BENCH_micro.json
#                      (per-bench deltas), then refresh the snapshot
#   SKIP_BENCH=1 ./ci.sh        tests only
#   SKIP_SAN=1 ./ci.sh          skip the sanitizer leg
#   SKIP_BENCH_DIFF=1 ./ci.sh   snapshot without the regression gate
#   BENCH_TOLERANCE=0.25        decode-bench regression threshold (fraction)
#
# The JSON snapshot gives future PRs a perf trajectory: the diff prints
# the per-benchmark change vs the committed baseline and FAILS when any
# decode bench regresses by more than BENCH_TOLERANCE (default 25%).
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

# Sanitizer leg: the cache/async suites stress a double-buffered pipeline
# (coordinator threads writing objective slots the engine thread reads
# after the fence) and the sweep suite races whole solver runs across
# lanes, so run exactly those binaries under ASan/UBSan.
if [[ "${SKIP_SAN:-0}" != "1" ]]; then
  SAN_DIR=${SAN_DIR:-build-asan}
  cmake -B "$SAN_DIR" -S . -DPSGA_SANITIZE=ON \
        -DPSGA_BUILD_BENCHES=OFF -DPSGA_BUILD_EXAMPLES=OFF
  # Without GTest the target is never defined (main build only warns) —
  # degrade the same way instead of failing on the missing target.
  # (Capture first: `grep -q` would SIGPIPE make under pipefail.)
  SAN_TARGETS=$(cmake --build "$SAN_DIR" --target help 2>/dev/null || true)
  if grep -q psga_pipeline_tests <<<"$SAN_TARGETS"; then
    cmake --build "$SAN_DIR" -j "$JOBS" --target psga_pipeline_tests
    "$SAN_DIR"/psga_pipeline_tests --gtest_brief=1
    echo "ci.sh: sanitizer leg OK"
  else
    echo "psga_pipeline_tests not configured (GTest missing?); skipping sanitizer leg"
  fi
fi

# Sweep smoke: sweeps/smoke.sweep through the psga_sweep CLI (parallel,
# 2 cells in flight) — a 2-axes x 2-reps grid on ta001 plus a
# two-problem-family grid (flowshop ta001 + jobshop ft06) through the
# problem registry. Validates that every JSONL telemetry line parses,
# all cells succeeded, the family cells carry canonical problem specs,
# the summary table is non-empty, and the registry listings print.
if [[ -x "$BUILD_DIR/psga_sweep" ]] && command -v python3 >/dev/null; then
  # Capture first: piping straight into `grep -q` would SIGPIPE the
  # writer under pipefail once grep exits on its match.
  PROBLEM_ROWS=$("$BUILD_DIR"/psga_sweep --list-problems)
  grep -q "problem=jobshop" <<<"$PROBLEM_ROWS" \
    || { echo "ci.sh: --list-problems has no jobshop row"; exit 1; }
  ENGINE_ROWS=$("$BUILD_DIR"/psga_sweep --list-engines)
  grep -q "engine=island" <<<"$ENGINE_ROWS" \
    || { echo "ci.sh: --list-engines has no island row"; exit 1; }
  SWEEP_JSONL=$(mktemp /tmp/psga_sweep.XXXXXX.jsonl)
  SWEEP_SUMMARY=$(mktemp /tmp/psga_sweep_summary.XXXXXX.txt)
  "$BUILD_DIR"/psga_sweep --quiet --threads 2 \
    --telemetry "$SWEEP_JSONL" --summary "$SWEEP_SUMMARY" sweeps/smoke.sweep
  python3 - "$SWEEP_JSONL" "$SWEEP_SUMMARY" <<'PYEOF'
import json
import sys

cells = ok = 0
families = set()
with open(sys.argv[1]) as f:
    for line in f:
        record = json.loads(line)  # every line must parse
        if record.get("event") == "cell":
            cells += 1
            ok += bool(record["ok"])
            problem = record.get("problem", "")
            if problem:
                families.add(problem.split()[0])
with open(sys.argv[2]) as f:
    summary = f.read()
assert cells == 12, f"expected 12 cell records, got {cells}"
assert ok == cells, f"{cells - ok} smoke sweep cells failed"
assert families == {"problem=flowshop", "problem=jobshop"}, (
    f"expected both problem families in telemetry, got {families}")
assert "topology" in summary and "|" in summary, "summary table looks empty"
print(f"ci.sh: sweep smoke OK ({cells} cells over {len(families)} "
      "problem families, telemetry parses)")
PYEOF
  rm -f "$SWEEP_JSONL" "$SWEEP_SUMMARY"
else
  echo "psga_sweep or python3 missing; skipping sweep smoke"
fi

if [[ "${SKIP_BENCH:-0}" != "1" && ! -x "$BUILD_DIR/bench_micro_decoders" ]]; then
  echo "bench_micro_decoders not built (google-benchmark missing?); skipping perf snapshot"
  SKIP_BENCH=1
fi

if [[ "${SKIP_BENCH:-0}" != "1" ]]; then
  FRESH=$(mktemp /tmp/psga_bench_micro.XXXXXX.json)
  "$BUILD_DIR"/bench_micro_decoders \
    --benchmark_min_time=0.05 \
    --benchmark_format=json \
    --benchmark_out="$FRESH" \
    --benchmark_out_format=json >/dev/null

  # Merge the cache/async bench into the same snapshot so the
  # hit-rate/decode-reduction counters live in BENCH_micro.json.
  if [[ -x "$BUILD_DIR/bench_micro_cache" ]] && command -v python3 >/dev/null; then
    CACHE_FRESH=$(mktemp /tmp/psga_bench_cache.XXXXXX.json)
    "$BUILD_DIR"/bench_micro_cache \
      --benchmark_min_time=0.05 \
      --benchmark_format=json \
      --benchmark_out="$CACHE_FRESH" \
      --benchmark_out_format=json >/dev/null
    python3 - "$FRESH" "$CACHE_FRESH" <<'PYEOF'
import json
import sys

with open(sys.argv[1]) as f:
    merged = json.load(f)
with open(sys.argv[2]) as f:
    merged["benchmarks"].extend(json.load(f)["benchmarks"])
with open(sys.argv[1], "w") as f:
    json.dump(merged, f, indent=1)
PYEOF
    rm -f "$CACHE_FRESH"
  fi

  if [[ "${SKIP_BENCH_DIFF:-0}" != "1" && -f BENCH_micro.json ]] \
     && command -v python3 >/dev/null; then
    BENCH_TOLERANCE=${BENCH_TOLERANCE:-0.25} \
      python3 - BENCH_micro.json "$FRESH" <<'PYEOF'
import json
import os
import sys

tolerance = float(os.environ.get("BENCH_TOLERANCE", "0.25"))
with open(sys.argv[1]) as f:
    baseline = {b["name"]: b for b in json.load(f)["benchmarks"]}
with open(sys.argv[2]) as f:
    fresh = {b["name"]: b for b in json.load(f)["benchmarks"]}

width = max((len(n) for n in fresh), default=20)
print(f"\n-- bench deltas vs committed BENCH_micro.json "
      f"(gate: decode benches > {tolerance:.0%} slower fail)")
failures = []
for name, bench in fresh.items():
    old = baseline.get(name)
    if old is None:
        print(f"  {name:<{width}}  (new bench)")
        continue
    delta = bench["real_time"] / old["real_time"] - 1.0
    # The regression gate covers the decoder benches (the evaluation hot
    # path this snapshot exists to guard); *_Scratch twins included.
    gated = any(tag in name for tag in
                ("Decode", "SemiActive", "GifflerThompson", "Makespan",
                 "Flexible", "LotStreaming", "OpenShop", "HybridFlowShop"))
    marker = ""
    if gated and delta > tolerance:
        marker = "  << REGRESSION"
        failures.append((name, delta))
    print(f"  {name:<{width}}  {old['real_time']:10.0f} -> "
          f"{bench['real_time']:10.0f} {bench.get('time_unit', 'ns')} "
          f"({delta:+7.1%}){marker}")
for name in baseline:
    if name not in fresh:
        print(f"  {name:<{width}}  (removed)")
if failures:
    print(f"\nci.sh: {len(failures)} decode bench(es) regressed more than "
          f"{tolerance:.0%}:")
    for name, delta in failures:
        print(f"  {name}: {delta:+.1%}")
    sys.exit(1)
print()
PYEOF
  fi

  mv "$FRESH" BENCH_micro.json
  echo "wrote BENCH_micro.json"
fi

echo "ci.sh: OK"
