// E22 — Section III.A, Eq. (1) vs Eq. (2): the survey presents two fitness
// transforms for minimization problems — FIT = max(Fbar - F, 0) against a
// heuristic reference Fbar, and FIT = 1/F. This ablation compares the two
// under roulette selection (where the transform changes selection
// pressure) and under tournament selection (where only ordering matters,
// so the transforms must tie exactly).
#include "bench/bench_util.h"
#include "src/ga/problem_registry.h"
#include "src/ga/registry.h"
#include "src/ga/solver.h"
#include "src/sched/heuristics.h"
#include "src/sched/taillard.h"

int main() {
  using namespace psga;
  bench::header("E22 fitness_transforms", "Survey §III.A, Eq. (1)/(2)",
                "two fitness transforms for minimization; Eq. (1) needs a "
                "heuristic reference Fbar, Eq. (2) is reference-free");

  const auto bench_entry = sched::taillard_20x5().front();
  const auto inst = sched::make_taillard(bench_entry);
  auto problem = ga::make_problem(inst);
  const double fbar = static_cast<double>(sched::neh_makespan(inst)) * 1.2;

  const int generations = 40 * bench::scale();
  const int replications = 4 * bench::scale();

  auto run = [&](ga::FitnessTransform transform, const char* selection,
                 std::uint64_t seed) {
    ga::GaConfig cfg;
    cfg.population = 80;
    cfg.termination.max_generations = generations;
    cfg.seed = seed;
    cfg.transform = transform;
    cfg.reference_objective = fbar;
    cfg.ops.selection = ga::make_selection(selection);
    cfg.ops.crossover = ga::make_crossover("ox");
    cfg.ops.mutation = ga::make_mutation("swap");
    const auto engine = ga::make_engine(problem, cfg);
    return engine->run().best_objective;
  };

  stats::Table table({"selection", "transform", "mean best Cmax",
                      "min best Cmax"});
  for (const char* selection : {"roulette", "tournament2"}) {
    for (const auto& [label, transform] :
         std::vector<std::pair<std::string, ga::FitnessTransform>>{
             {"Eq.(1) max(Fbar - F, 0)", ga::FitnessTransform::kReference},
             {"Eq.(2) 1/F", ga::FitnessTransform::kInverse}}) {
      std::vector<double> finals;
      for (int rep = 0; rep < replications; ++rep) {
        finals.push_back(run(transform, selection, 6000 + 23 * rep));
      }
      table.add_row({selection, label,
                     stats::Table::num(stats::mean(finals), 1),
                     stats::Table::num(stats::min_of(finals), 0)});
    }
  }
  table.print();
  std::printf("\nReference Fbar = %.0f (1.2 x NEH); best known = %lld.\n"
              "Expected shape: under tournament the two transforms nearly "
              "tie (they are rank-equivalent except where Eq. (1) clamps "
              "individuals above Fbar to fitness 0, losing their order); "
              "under roulette Eq. (1) applies stronger pressure near Fbar "
              "and typically edges out 1/F, whose fitness ratios are "
              "nearly flat at these magnitudes.\n",
              fbar, static_cast<long long>(bench_entry.best_known));
  return 0;
}
