// E02 — AitZai et al. [14]: job shop with blocking-style heavy evaluation,
// master-slave GA under a fixed wall-clock budget. Paper: the GPU
// master-slave GA explored up to 15x more solutions than the CPU version
// in the same 300 s budget (population 1056).
//
// Reproduction: explored-solutions count under a fixed (scaled-down)
// budget vs worker count on the thread pool, plus the SIMT model's
// prediction for a GPU-sized lane count.
#include "bench/bench_util.h"
#include "src/ga/solver.h"
#include "src/ga/problem_registry.h"
#include "src/par/simt_model.h"
#include "src/sched/classics.h"

int main() {
  using namespace psga;
  bench::header(
      "E02 masterslave_budget", "AitZai et al. [14], §III.B",
      "GPU master-slave GA explores up to 15x more solutions than 1-core "
      "CPU in an equal time budget (population 1056)");

  // The paper's evaluation is expensive (alternative-graph longest paths);
  // the GT active-schedule decoder is our closest expensive decoder.
  auto problem = ga::make_problem(
      sched::ft10().instance, ga::JobShopProblem::Decoder::kGifflerThompson);

  ga::GaConfig cfg;
  cfg.population = 1056;  // the paper's population size
  cfg.seed = 1;
  const double budget = 0.3 * bench::scale();  // scaled stand-in for 300 s

  stats::Table table({"workers", "explored solutions", "vs 1 worker"});
  long long base = 0;
  for (int workers : {1, 2, 4, 8, 16, 24}) {
    par::ThreadPool pool(workers);
    const auto engine = ga::make_master_slave_engine(problem, cfg, &pool);
    const ga::GaResult result =
        engine->run(ga::StopCondition::time_budget(budget));
    if (workers == 1) base = result.evaluations;
    table.add_row({std::to_string(workers), std::to_string(result.evaluations),
                   stats::Table::num(static_cast<double>(result.evaluations) /
                                         static_cast<double>(base),
                                     2) +
                       "x"});
  }
  table.print();

  // SIMT extrapolation for the paper's GPU-class device.
  par::SimtModelParams gpu;  // defaults model a Tesla-class part
  par::SimtModel model(gpu);
  const double per_eval_us = 50.0;
  const double predicted = model.speedup(1056, per_eval_us);
  std::printf(
      "\nSIMT model (448 lanes, divergence 0.85, 4x lane slowdown):\n"
      "  predicted explored-solutions ratio vs 1 core: %.1fx "
      "(paper: ~15x)\n",
      predicted);
  return 0;
}
