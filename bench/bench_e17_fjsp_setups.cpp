// E17 — Defersha & Chen [36]: flexible job shop with sequence-dependent
// setups, attached/detached setups, machine release dates and time lags;
// island GA with RANDOM migration routes regenerated each epoch. Paper:
// on medium problems the island GA improves solution quality; on large
// problems it converges to a good solution within the allowed time where
// the single GA fails (stalls far above).
//
// Reproduction: medium and large generated FJSP instances; single GA vs
// random-topology island GA at equal wall budget per size.
#include "bench/bench_util.h"
#include "src/ga/solver.h"
#include "src/ga/problem_registry.h"
#include "src/sched/generators.h"

int main() {
  using namespace psga;
  bench::header("E17 fjsp_setups", "Defersha & Chen [36], §III.D",
                "FJSP with sequence-dependent setups + release dates + "
                "lags; random-epoch migration routes; island GA better on "
                "medium, converges where single GA stalls on large");

  struct Size {
    const char* label;
    int jobs;
    int machines;
    int ops;
  };
  stats::Table table({"size", "single GA best", "island GA best",
                      "island improvement (%)"});

  for (const Size size : {Size{"medium (8x5x4)", 8, 5, 4},
                          Size{"large (20x8x6)", 20, 8, 6}}) {
    sched::FjsParams params;
    params.jobs = size.jobs;
    params.machines = size.machines;
    params.ops_per_job = size.ops;
    params.eligible_machines = 3;
    params.setup_hi = 15;
    params.detached_setup = false;  // attached setups ([36] models both)
    params.machine_release_hi = 40;
    params.max_lag = 6;
    auto problem = ga::make_problem(
        sched::random_flexible_job_shop(params, 3601));

    const int generations = 150 * bench::scale();
    ga::GaConfig base;
    base.population = 96;
    base.termination.max_generations = generations;
    base.seed = 36;
    base.ops.selection = std::make_shared<ga::RouletteSelection>();
    base.ops.mutation_rate = 0.1;

    const auto single = ga::make_engine(problem, base);
    const double single_best = single->run().best_objective;

    ga::IslandGaConfig icfg;
    icfg.islands = 6;
    icfg.base = base;
    icfg.base.population = 16;
    icfg.migration.topology = ga::Topology::kRandom;  // [36]'s routes
    icfg.migration.interval = 5;
    const auto island = ga::make_engine(problem, icfg);
    const double island_best = island->run().best_objective;

    table.add_row({size.label, stats::Table::num(single_best, 0),
                   stats::Table::num(island_best, 0),
                   stats::Table::num(
                       100.0 * (single_best - island_best) / single_best, 2)});
  }
  table.print();
  std::printf("\nExpected shape ([36]): island improvement positive for both "
              "rows and larger (or at least decisive) on the large "
              "instance.\n");
  return 0;
}
