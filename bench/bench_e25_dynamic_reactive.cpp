// E25 — Section II "new integrated factors": Tang et al. [9] use a
// predictive-reactive approach for dynamic shop scheduling. This bench
// injects machine breakdowns into a job shop mid-execution and compares
// (a) the undisrupted predictive makespan, (b) passive right-shift repair,
// and (c) GA-based reactive re-optimization of the not-yet-started
// operations — the predictive-reactive scheme.
#include "bench/bench_util.h"
#include "src/ga/problem_registry.h"
#include "src/ga/solver.h"
#include "src/sched/classics.h"
#include "src/sched/dynamic.h"

int main() {
  using namespace psga;
  bench::header("E25 dynamic_reactive", "Survey §II, Tang et al. [9]",
                "predictive-reactive rescheduling under machine breakdowns "
                "beats passive right-shift repair");

  const auto& inst = sched::ft10().instance;

  // Predictive schedule: GA on the nominal instance.
  auto nominal = ga::make_problem(inst);
  ga::GaConfig cfg;
  cfg.population = 60;
  cfg.termination.max_generations = 40 * bench::scale();
  cfg.seed = 25;
  const auto predictive_engine = ga::make_engine(nominal, cfg);
  const ga::GaResult predictive = predictive_engine->run();

  stats::Table table({"scenario", "predictive Cmax", "right-shift Cmax",
                      "reactive Cmax", "reactive advantage (%)", "replans"});
  for (int scenario = 1; scenario <= 4; ++scenario) {
    const auto windows = sched::random_downtimes(
        inst.machines, 3, static_cast<sched::Time>(predictive.best_objective),
        40, 120, 2500u + static_cast<unsigned>(scenario));

    const auto passive =
        sched::simulate_dynamic(inst, predictive.best.seq, windows);

    std::vector<sched::Downtime> window_vec(windows.begin(), windows.end());
    auto replanner = [&](const sched::ReplanContext& context) {
      auto problem = ga::make_dynamic_suffix_problem(
          &inst, context.frozen_prefix, context.remaining, window_vec);
      ga::GaConfig rcfg;
      rcfg.population = 30;
      rcfg.termination.max_generations = 20 * bench::scale();
      rcfg.seed = 77;
      const auto engine = ga::make_engine(problem, rcfg);
      const ga::GaResult r = engine->run();
      // Keep the incumbent (right-shift) order unless the GA beats it, so
      // reacting can never hurt — the predictive-reactive guarantee.
      ga::Genome incumbent;
      incumbent.seq = context.remaining;
      return problem->objective(incumbent) <= r.best_objective
                 ? context.remaining
                 : r.best.seq;
    };
    const auto reactive =
        sched::simulate_dynamic(inst, predictive.best.seq, windows, replanner);

    table.add_row(
        {"breakdowns-" + std::to_string(scenario),
         stats::Table::num(static_cast<double>(passive.predictive_makespan), 0),
         stats::Table::num(static_cast<double>(passive.realized_makespan), 0),
         stats::Table::num(static_cast<double>(reactive.realized_makespan), 0),
         stats::Table::num(
             100.0 *
                 static_cast<double>(passive.realized_makespan -
                                     reactive.realized_makespan) /
                 static_cast<double>(passive.realized_makespan),
             2),
         std::to_string(reactive.replans)});
  }
  table.print();
  std::printf("\nExpected shape ([9]): reactive <= right-shift on every "
              "scenario; both >= the undisrupted predictive makespan.\n");
  return 0;
}
