// E13 — Bożejko & Wodecki [31]: island GA minimizing the total weighted
// completion time for the (single-machine special case of the) flow shop.
// Paper: the 8-processor implementation performed best.
//
// Reproduction: sum(wj Cj) flow shop under 1, 2, 4, 8, 16 islands at equal
// total budget; quality per island count plus parallel wall-clock.
#include "bench/bench_util.h"
#include "src/ga/solver.h"
#include "src/ga/problem_registry.h"
#include "src/sched/generators.h"
#include "src/sched/taillard.h"

int main() {
  using namespace psga;
  bench::header("E13 weighted_completion", "Bożejko & Wodecki [31], §III.D",
                "island GA for sum wjCj; the 8-processor version best");

  // Single-machine special case: weighted completion scheduling.
  sched::FlowShopInstance inst = sched::taillard_flow_shop(50, 1, 311);
  std::vector<sched::Time> work(50);
  for (int j = 0; j < 50; ++j) work[static_cast<std::size_t>(j)] = inst.proc[0][static_cast<std::size_t>(j)];
  sched::assign_due_dates(inst.attrs, work, 2.0, 9, 13);
  auto problem = ga::make_problem(
      inst, sched::Criterion::kTotalWeightedCompletion);

  const int total_pop = 128;
  const int generations = 40 * bench::scale();

  stats::Table table({"islands", "best sum wjCj", "seconds"});
  for (int islands : {1, 2, 4, 8, 16}) {
    double best = 0.0;
    double seconds = 0.0;
    if (islands == 1) {
      ga::GaConfig cfg;
      cfg.population = total_pop;
      cfg.termination.max_generations = generations;
      cfg.seed = 31;
      const auto engine = ga::make_engine(problem, cfg);
      ga::GaResult r;
      seconds = bench::time_seconds([&] { r = engine->run(); });
      best = r.best_objective;
    } else {
      ga::IslandGaConfig cfg;
      cfg.islands = islands;
      cfg.base.population = total_pop / islands;
      cfg.base.termination.max_generations = generations;
      cfg.base.seed = 31;
      cfg.migration.interval = 8;
      const auto engine = ga::make_engine(problem, cfg);
      ga::RunResult r;
      seconds = bench::time_seconds([&] { r = engine->run(); });
      best = r.best_objective;
    }
    table.add_row({std::to_string(islands), stats::Table::num(best, 0),
                   stats::Table::num(seconds, 3)});
  }
  table.print();
  std::printf("\nExpected shape ([31]): quality improves with islands up to "
              "~8, then flattens or degrades as subpopulations get too "
              "small (128/16 = 8 individuals).\n");
  return 0;
}
